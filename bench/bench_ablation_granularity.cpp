// Ablation: over-decomposition granularity (paper §III: "the size of the
// biggest quanta of work establishes a lower bound by which the problem
// can be balanced ... a more refined problem provides more opportunity to
// distribute work").
//
// Fixes the total work (attempts) and processor count, sweeps the number
// of regions, and reports how both load-balancing families respond —
// including the setup/communication price of over-decomposing too far.

#include "figure_common.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 1 << 17));
  const auto procs = static_cast<std::uint32_t>(args.get_i64("procs", 128));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf(
      "=== Ablation: region granularity (med-cube, p=%u, fixed work) ===\n",
      procs);
  const auto e = env::med_cube();

  TextTable table({"regions", "regions/proc", "NoLB", "Repart",
                   "Hybrid WS", "repart gain", "ws gain"});
  for (const std::uint32_t regions : {512u, 1728u, 4096u, 13824u, 32768u}) {
    const core::RegionGrid grid = core::RegionGrid::make_auto(
        e->space().position_bounds(), regions, false);
    const auto w =
        bench::make_prm_workload(*e, grid, attempts, seed, false);

    double results[3] = {0, 0, 0};
    const core::Strategy strategies[3] = {core::Strategy::kNoLB,
                                          core::Strategy::kRepartition,
                                          core::Strategy::kHybridWS};
    for (int i = 0; i < 3; ++i) {
      core::PrmRunConfig cfg;
      cfg.procs = procs;
      cfg.strategy = strategies[i];
      cfg.seed = seed;
      results[i] = core::simulate_prm_run(w, cfg).total_s;
    }
    char repart_gain[32], ws_gain[32];
    std::snprintf(repart_gain, sizeof repart_gain, "%.2fx",
                  results[0] / results[1]);
    std::snprintf(ws_gain, sizeof ws_gain, "%.2fx", results[0] / results[2]);
    table.row()
        .num(static_cast<std::uint64_t>(grid.size()))
        .num(static_cast<std::uint64_t>(grid.size() / procs))
        .num(results[0], 3)
        .num(results[1], 3)
        .num(results[2], 3)
        .cell(repart_gain)
        .cell(ws_gain);
  }
  table.print();
  std::printf(
      "\n# coarse grids leave both techniques little to move; finer grids\n"
      "# converge toward the balance bound until per-region overheads bite.\n");
  return 0;
}
