// Ablation: which partitioner should the repartitioning strategy use?
//
// On a measured med-cube workload, compares the naive block mapping,
// greedy LPT (balance-only), space-filling-curve, weighted RCB, and RCB
// with boundary refinement across the metrics that matter: node-connection
// makespan (balance), region-graph edge cut (communication), migration
// volume (redistribution cost), and end-to-end time.

#include "figure_common.hpp"
#include "core/region_weight.hpp"
#include "loadbal/partition.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 8000));
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 1 << 17));
  const auto procs = static_cast<std::uint32_t>(args.get_i64("procs", 128));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf("=== Ablation: partitioner choice (med-cube, p=%u) ===\n",
              procs);
  const auto e = env::med_cube();
  const core::RegionGrid grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), regions, false);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);

  const auto naive = core::naive_assignment(grid.size(), procs);
  const auto weights = core::weights_from_sample_counts(w.sample_counts());
  const auto centroids = w.centroids();
  const auto bytes = w.region_bytes();
  const loadbal::PartitionProblem problem{weights, centroids, w.region_edges,
                                          w.bounds, procs};

  struct Candidate {
    const char* name;
    loadbal::Assignment assignment;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"block (naive)", naive});
  candidates.push_back({"greedy LPT", loadbal::partition_greedy_lpt(problem)});
  candidates.push_back({"SFC (Morton)", loadbal::partition_sfc(problem)});
  candidates.push_back({"RCB", loadbal::partition_rcb(problem)});
  {
    auto refined = loadbal::partition_rcb(problem);
    loadbal::refine_edge_cut(problem, refined);
    candidates.push_back({"RCB + refine", std::move(refined)});
  }

  const auto build = w.build_times();
  TextTable table({"partitioner", "node-conn makespan", "CV (work)",
                   "edge cut", "regions moved", "migration MB"});
  for (const auto& c : candidates) {
    const auto mv = loadbal::migration_volume(bytes, naive, c.assignment,
                                              procs);
    table.row()
        .cell(c.name)
        .num(loadbal::makespan(build, c.assignment, procs), 4)
        .num(loadbal::load_cv(build, c.assignment, procs), 3)
        .num(loadbal::edge_cut(w.region_edges, c.assignment))
        .num(static_cast<std::uint64_t>(mv.items_moved))
        .num(static_cast<double>(mv.total) / (1 << 20), 2);
  }
  table.print();
  std::printf(
      "\n# takeaway: LPT balances best but shreds locality (max edge cut);\n"
      "# RCB balances nearly as well at a fraction of the cut — the\n"
      "# \"preserve the spatial geometry\" trade-off of paper §III-B.\n");
  return 0;
}
