// Ablation: node-generation strategy in a narrow-passage environment.
//
// The walls environment concentrates the planning difficulty in small
// passage volumes. Uniform sampling wastes attempts in open space;
// Gaussian sampling concentrates nodes near C-obstacle surfaces; the
// bridge test concentrates them inside the passages. Reports acceptance
// rate, roadmap connectivity (fraction of nodes in the largest connected
// component — the quantity that decides whether queries succeed), and
// sampling cost.

#include "figure_common.hpp"
#include "graph/components.hpp"
#include "planner/prm.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 24000));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf("=== Ablation: sampling strategy (walls environment) ===\n");
  const auto e = env::walls(false);

  TextTable table({"sampler", "kept", "accept %", "roadmap edges",
                   "largest CC %", "CD queries"});
  struct Case {
    const char* name;
    planner::SamplerKind kind;
    double scale;
  };
  for (const Case c : {Case{"uniform", planner::SamplerKind::kUniform, 0.0},
                       Case{"gaussian(6)", planner::SamplerKind::kGaussian,
                            6.0},
                       Case{"bridge(18)", planner::SamplerKind::kBridgeTest,
                            18.0}}) {
    planner::PrmParams params;
    params.k_neighbors = 8;
    params.sampler = c.kind;
    params.sampler_scale = c.scale;
    planner::Prm prm(*e, params);
    prm.build(attempts, seed);
    const auto& g = prm.roadmap();

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
      for (const auto& he : g.edges_of(v))
        if (he.to > v) edges.emplace_back(v, he.to);
    const auto labels = graph::component_labels(g.num_vertices(), edges);
    const auto cc = graph::summarize_components(labels);

    table.row()
        .cell(c.name)
        .num(static_cast<std::uint64_t>(g.num_vertices()))
        .num(100.0 * static_cast<double>(prm.stats().samples_valid) /
                 static_cast<double>(prm.stats().samples_attempted),
             1)
        .num(static_cast<std::uint64_t>(g.num_edges()))
        .num(100.0 * cc.largest_fraction, 1)
        .num(prm.stats().cd.queries);
  }
  table.print();
  std::printf(
      "\n# obstacle-aware samplers pay more CD per kept node and keep far\n"
      "# fewer nodes per attempt budget, concentrating them near surfaces\n"
      "# and passages; on an equal-attempt budget alone they lose global\n"
      "# connectivity — which is why practical planners mix them with\n"
      "# uniform sampling rather than replacing it.\n");
  return 0;
}
