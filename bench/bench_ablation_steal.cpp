// Ablation: work-stealing engine knobs.
//
// On a measured med-cube workload at a fixed core count, sweeps:
//   - victim policy (RAND-8, DIFFUSIVE, HYBRID, LIFELINE extension)
//   - steal granularity (regions per grant)
//   - probing persistence (give-up threshold)
// reporting makespan, steal traffic, and the stolen-work fraction.

#include "figure_common.hpp"

using namespace pmpl;

namespace {

loadbal::WsResult run(const core::Workload& w, std::uint32_t procs,
                      loadbal::WsConfig cfg) {
  std::vector<loadbal::WsItem> items(w.regions.size());
  for (std::size_t r = 0; r < items.size(); ++r)
    items[r] = {w.regions[r].service_s(), w.regions[r].bytes};
  const auto initial = core::naive_assignment(items.size(), procs);
  return loadbal::simulate_work_stealing(items, initial, procs, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 8000));
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 1 << 17));
  const auto procs = static_cast<std::uint32_t>(args.get_i64("procs", 192));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf("=== Ablation: work-stealing knobs (med-cube, p=%u) ===\n",
              procs);
  const auto e = env::med_cube();
  const core::RegionGrid grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), regions, false);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);

  std::printf("\n(1) Victim policy (steal 1 region/grant, give up after 3)\n");
  TextTable policies({"policy", "makespan", "requests", "grants",
                      "stolen fraction"});
  for (const auto kind :
       {loadbal::StealPolicyKind::kRandK, loadbal::StealPolicyKind::kDiffusive,
        loadbal::StealPolicyKind::kHybrid,
        loadbal::StealPolicyKind::kLifeline}) {
    loadbal::WsConfig cfg;
    cfg.policy = kind;
    cfg.seed = seed;
    const auto r = run(w, procs, cfg);
    policies.row()
        .cell(loadbal::to_string(kind))
        .num(r.makespan_s, 4)
        .num(r.steal_requests)
        .num(r.steal_grants)
        .num(r.stolen_fraction(), 3);
  }
  policies.print();

  std::printf("\n(2) Steal granularity (HYBRID)\n");
  TextTable granularity({"regions/grant", "makespan", "grants",
                         "regions migrated", "stolen fraction"});
  for (const std::uint32_t g : {1u, 2u, 4u, 8u, 1u << 30}) {
    loadbal::WsConfig cfg;
    cfg.steal_max_items = g;
    cfg.seed = seed;
    const auto r = run(w, procs, cfg);
    granularity.row()
        .cell(g >= (1u << 30) ? "half-queue" : std::to_string(g))
        .num(r.makespan_s, 4)
        .num(r.steal_grants)
        .num(r.regions_migrated)
        .num(r.stolen_fraction(), 3);
  }
  granularity.print();

  std::printf("\n(3) Probing persistence (HYBRID, steal 1)\n");
  TextTable persistence({"give up after", "makespan", "requests",
                         "stolen fraction"});
  for (const std::uint32_t g : {1u, 2u, 3u, 6u, 12u}) {
    loadbal::WsConfig cfg;
    cfg.give_up_after = g;
    cfg.seed = seed;
    const auto r = run(w, procs, cfg);
    persistence.row()
        .num(static_cast<int>(g))
        .num(r.makespan_s, 4)
        .num(r.steal_requests)
        .num(r.stolen_fraction(), 3);
  }
  persistence.print();
  return 0;
}
