// Anytime-planning bench: the quality-vs-deadline degradation curve of the
// shared-memory anytime PRM builder, plus the wall-clock overhead of
// periodic checkpointing.
//
// A full (deadline-free) build is timed first; deadlines are then swept as
// fractions of that full build time and each deadline-cut run reports what
// fraction of the roadmap it delivered (regions, vertices, edges) and how
// far past its deadline it ran (the bounded-overrun claim, measured).
// Checkpoint overhead compares the full build against the same build
// snapshotting every 8 completed regions — the claim is under 2%.
//
// Emits machine-readable BENCH_anytime.json (path overridable as argv[1]).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/parallel_build.hpp"
#include "core/profile.hpp"
#include "env/builders.hpp"
#include "loadbal/metrics.hpp"
#include "runtime/metrics_registry.hpp"
#include "util/timer.hpp"

namespace {

using namespace pmpl;

constexpr std::size_t kAttempts = 1 << 16;
constexpr std::size_t kRegions = 64;
constexpr std::uint32_t kWorkers = 4;
constexpr std::uint64_t kSeed = 29;
constexpr int kRepeats = 3;

struct CurvePoint {
  double deadline_frac = 0.0;  ///< of the full build's wall time
  double deadline_s = 0.0;
  double elapsed_s = 0.0;
  double overrun_s = 0.0;  ///< max(0, elapsed - deadline)
  std::size_t regions_completed = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t components = 0;
  double vertex_frac = 0.0;  ///< of the full build's vertex count
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_anytime.json";
  const auto e = env::med_cube();
  const auto grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), kRegions, false);

  const auto build = [&](const core::AnytimeOptions& anytime, double* wall_s) {
    core::ParallelPrmConfig cfg;
    cfg.total_attempts = kAttempts;
    cfg.workers = kWorkers;
    cfg.seed = kSeed;
    cfg.anytime = anytime;
    WallTimer timer;
    auto r = core::parallel_build_prm(*e, grid, cfg);
    *wall_s = timer.elapsed_s();
    return r;
  };

  // Full build, repeated; the minimum is the noise-free reference.
  double full_s = 1e30;
  std::size_t full_vertices = 0, full_edges = 0;
  runtime::MetricsRegistry metrics;
  for (int i = 0; i < kRepeats; ++i) {
    double t = 0.0;
    const auto r = build({}, &t);
    if (!r.degradation.complete()) {
      std::fprintf(stderr, "FATAL: deadline-free build did not complete\n");
      return 1;
    }
    full_s = std::min(full_s, t);
    full_vertices = r.roadmap.num_vertices();
    full_edges = r.roadmap.num_edges();
    if (i == 0) {
      // Shared-schema "metrics" member: worker stats and planner work
      // counts of the first full build.
      publish(metrics, r.workers, "workers/");
      publish(metrics, core::to_work_counts(r.stats), "work/");
    }
  }
  std::printf("full build: %.3fs, |V|=%zu |E|=%zu (%zu regions)\n", full_s,
              full_vertices, full_edges, grid.size());

  // Quality-vs-deadline curve.
  const double fractions[] = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5};
  std::vector<CurvePoint> curve;
  std::printf("%9s %10s %10s %9s %8s %9s %9s %11s\n", "deadline", "elapsed",
              "overrun", "regions", "|V|", "|E|", "comps", "vertex_frac");
  for (const double frac : fractions) {
    core::AnytimeOptions anytime;
    const runtime::CancelToken token(
        runtime::Deadline::after_s(frac * full_s));
    anytime.cancel = &token;
    double t = 0.0;
    const auto r = build(anytime, &t);
    CurvePoint p;
    p.deadline_frac = frac;
    p.deadline_s = frac * full_s;
    p.elapsed_s = t;
    p.overrun_s = std::max(0.0, t - p.deadline_s);
    p.regions_completed = r.degradation.regions_completed;
    p.vertices = r.roadmap.num_vertices();
    p.edges = r.roadmap.num_edges();
    p.components = r.degradation.connected_components;
    p.vertex_frac = full_vertices != 0 ? static_cast<double>(p.vertices) /
                                             static_cast<double>(full_vertices)
                                       : 0.0;
    curve.push_back(p);
    std::printf("%8.3fs %9.3fs %9.3fs %5zu/%-3zu %8zu %9zu %9zu %11.3f\n",
                p.deadline_s, p.elapsed_s, p.overrun_s, p.regions_completed,
                grid.size(), p.vertices, p.edges, p.components,
                p.vertex_frac);
  }

  // Checkpoint overhead: the same full build, snapshotting as it runs.
  const std::string ckpt_path = out_path + ".ckpt.tmp";
  double ckpt_s = 1e30;
  for (int i = 0; i < kRepeats; ++i) {
    core::AnytimeOptions anytime;
    anytime.checkpoint_path = ckpt_path;
    anytime.checkpoint_every = 8;
    double t = 0.0;
    const auto r = build(anytime, &t);
    if (!r.degradation.complete()) {
      std::fprintf(stderr, "FATAL: checkpointing build did not complete\n");
      return 1;
    }
    ckpt_s = std::min(ckpt_s, t);
  }
  std::remove(ckpt_path.c_str());
  const double overhead = full_s > 0.0 ? (ckpt_s - full_s) / full_s : 0.0;
  std::printf("\ncheckpoint overhead: %.3fs vs %.3fs = %+.2f%% (claim: <2%%) "
              "%s\n",
              ckpt_s, full_s, 100.0 * overhead,
              overhead < 0.02 ? "OK" : "EXCEEDED");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"anytime\",\n");
  std::fprintf(f, "  \"attempts\": %zu,\n  \"regions\": %zu,\n", kAttempts,
               grid.size());
  std::fprintf(f, "  \"workers\": %u,\n  \"full_build_s\": %.6f,\n", kWorkers,
               full_s);
  std::fprintf(f, "  \"full_vertices\": %zu,\n  \"full_edges\": %zu,\n",
               full_vertices, full_edges);
  std::fprintf(f,
               "  \"checkpoint_build_s\": %.6f,\n"
               "  \"checkpoint_overhead\": %.6f,\n"
               "  \"checkpoint_overhead_ok\": %s,\n",
               ckpt_s, overhead, overhead < 0.02 ? "true" : "false");
  std::fprintf(f, "  \"curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    std::fprintf(
        f,
        "    {\"deadline_frac\": %g, \"deadline_s\": %.6f, "
        "\"elapsed_s\": %.6f, \"overrun_s\": %.6f, "
        "\"regions_completed\": %zu, \"vertices\": %zu, \"edges\": %zu, "
        "\"components\": %zu, \"vertex_frac\": %.4f}%s\n",
        p.deadline_frac, p.deadline_s, p.elapsed_s, p.overrun_s,
        p.regions_completed, p.vertices, p.edges, p.components, p.vertex_frac,
        i + 1 < curve.size() ? "," : "");
  }
  metrics.set("full_build_s", full_s);
  metrics.set("checkpoint_build_s", ckpt_s);
  metrics.set("checkpoint_overhead", overhead);
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.to_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
