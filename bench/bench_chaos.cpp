// Chaos / resurrection bench: pins the end-to-end restart gate (every
// rank SIGKILLed at least once, staggered, restarted from checkpoints —
// union roadmap bit-identical to the fault-free DES, zero duplicated
// executions) with wall-time and recovery counters, then runs a seeded
// chaos soak and embeds its per-schedule invariant report. Emits
// machine-readable BENCH_chaos.json (path overridable as argv[1];
// soak width as argv[2], default 8 — CI's chaos-soak job runs >= 20).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "loadbal/chaos.hpp"
#include "loadbal/ws_cluster.hpp"
#include "loadbal/ws_engine.hpp"

using namespace pmpl;

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_chaos.json";
  const std::uint32_t soak_n =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

  // --- the restart gate -------------------------------------------------
  const std::uint32_t p = 4, n = 64;
  const std::uint64_t seed = 4242;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::WsConfig wcfg;
  wcfg.seed = seed;
  wcfg.rand_k = 2;
  const auto des =
      loadbal::simulate_work_stealing(work.items, work.initial, p, wcfg);
  const auto expected =
      loadbal::roadmap_hash(seed, loadbal::completed_set(des));

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.rank.run_timeout_s = 8.0;
  cfg.timeout_s = 60.0;
  cfg.restart.enabled = true;
  cfg.faults.seed = 7;
  for (std::uint32_t r = 0; r < p; ++r) cfg.faults.crash(r, 0.03 + 0.03 * r);

  const double t0 = wall_now();
  const auto real = loadbal::run_ws_cluster(cfg);
  const double gate_wall_s = wall_now() - t0;

  bool all_killed_restarted = true;
  std::uint32_t restarts = 0;
  for (std::uint32_t r = 0; r < p; ++r) {
    if (!real.killed[r] || real.restarts[r] < 1) all_killed_restarted = false;
    restarts += real.restarts[r];
  }
  std::vector<std::uint32_t> times(n, 0);
  for (std::uint32_t r = 0; r < p; ++r)
    if (real.reported[r])
      for (std::uint32_t item : real.ranks[r].executed)
        if (item < n) ++times[item];
  std::uint64_t dups = 0;
  for (std::uint32_t t : times)
    if (t > 1) dups += t - 1;
  const bool gate = real.ok && real.terminated_all && real.all_done &&
                    real.roadmap == expected && dups == 0 &&
                    all_killed_restarted;

  std::printf("restart gate: %s (wall %.2fs, restarts %u, dups %llu, "
              "hash %016llx vs %016llx)\n",
              gate ? "PASS" : "FAIL", gate_wall_s, restarts,
              static_cast<unsigned long long>(dups),
              static_cast<unsigned long long>(real.roadmap),
              static_cast<unsigned long long>(expected));

  // --- the soak ---------------------------------------------------------
  loadbal::ChaosConfig chaos;
  chaos.schedules = soak_n;
  const double t1 = wall_now();
  const auto soak = loadbal::run_chaos_soak(chaos);
  const double soak_wall_s = wall_now() - t1;
  std::printf("chaos soak: %u/%u passed, leaks %s, wall %.1fs\n", soak.passed,
              soak.passed + soak.failed, soak.no_leaks ? "none" : "LEAKED",
              soak_wall_s);

  const std::string soak_report = out_path + ".soak.tmp";
  if (!loadbal::write_chaos_report(soak, chaos, soak_report)) {
    std::fprintf(stderr, "cannot write %s\n", soak_report.c_str());
    return 1;
  }
  std::string soak_json;
  if (std::FILE* f = std::fopen(soak_report.c_str(), "rb")) {
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
      soak_json.append(buf, got);
    std::fclose(f);
  }
  std::remove(soak_report.c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"restart_gate\": {\n    \"pass\": %s,\n"
               "    \"ranks\": %u,\n    \"regions\": %u,\n"
               "    \"wall_s\": %.3f,\n    \"restarts\": %u,\n"
               "    \"duplicates\": %llu,\n    \"zombies_fenced\": %llu,\n"
               "    \"roadmap\": \"%016llx\",\n    \"expected\": "
               "\"%016llx\",\n    \"all_killed_restarted\": %s\n  },\n"
               "  \"soak_wall_s\": %.3f,\n  \"soak\": %s}\n",
               gate ? "true" : "false", p, n, gate_wall_s, restarts,
               static_cast<unsigned long long>(dups),
               static_cast<unsigned long long>(real.zombies_fenced),
               static_cast<unsigned long long>(real.roadmap),
               static_cast<unsigned long long>(expected),
               all_killed_restarted ? "true" : "false", soak_wall_s,
               soak_json.empty() ? "null" : soak_json.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return gate && soak.ok ? 0 : 1;
}
