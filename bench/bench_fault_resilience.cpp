// Fault-resilience bench: makespan degradation of the three victim-selection
// policies under injected crashes, stragglers and a targeted neighbor-death
// scenario, at p = 64 on the hopper cluster model.
//
// Sweeps crash counts {1,2,4,8} and straggler factors {2,4,8} and crashes
// the mesh neighborhood of a hotspot rank — the hypothesis being that
// DIFFUSIVE degrades hardest there, because its entire steal domain around
// the hotspot dies while RAND-K keeps sampling the whole machine.
//
// Emits machine-readable BENCH_faults.json (path overridable as argv[1])
// and prints the degradation table.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "loadbal/ws_engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/topology.hpp"

namespace {

using namespace pmpl;

constexpr std::uint32_t kProcs = 64;
constexpr std::size_t kRegions = 1024;
constexpr std::uint32_t kHotspot = 27;  // center of the 8x8 process mesh

const char* policy_name(loadbal::StealPolicyKind k) {
  switch (k) {
    case loadbal::StealPolicyKind::kRandK: return "rand8";
    case loadbal::StealPolicyKind::kDiffusive: return "diffusive";
    default: return "hybrid";
  }
}

/// Skewed workload: every region costs 1-5 work units, the hotspot rank's
/// regions cost 8x that (the heterogeneous-environment shape that makes
/// load balancing matter in the paper).
std::vector<loadbal::WsItem> make_items(
    const std::vector<std::uint32_t>& initial) {
  std::vector<loadbal::WsItem> items(initial.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].service_s = 1e-4 * (1.0 + static_cast<double>(i % 5));
    if (initial[i] == kHotspot) items[i].service_s *= 8.0;
    items[i].bytes = 512;
  }
  return items;
}

std::vector<std::uint32_t> block_assignment(std::size_t n, std::uint32_t p) {
  std::vector<std::uint32_t> a(n);
  for (std::size_t i = 0; i < n; ++i)
    a[i] = static_cast<std::uint32_t>(i * p / n);
  return a;
}

/// Victim ranks spread evenly across [0, p), skipping the hotspot so the
/// crash sweep measures recovery, not loss of the dominant producer.
std::vector<std::uint32_t> spread_victims(std::uint32_t n) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto r = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * kProcs) / n);
    if (r == kHotspot) ++r;
    out.push_back(r % kProcs);
  }
  return out;
}

struct Row {
  std::string policy;
  std::string scenario;
  double param = 0.0;  ///< crash count / straggler factor / neighbors killed
  double makespan_s = 0.0;
  double degradation = 0.0;
  std::uint64_t regions_recovered = 0;
  double reexecuted_service_s = 0.0;
  double recovery_latency_max_s = 0.0;
  double straggler_delay_s = 0.0;
  std::uint64_t tokens_regenerated = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  const auto initial = block_assignment(kRegions, kProcs);
  const auto items = make_items(initial);
  const loadbal::StealPolicyKind policies[] = {
      loadbal::StealPolicyKind::kRandK, loadbal::StealPolicyKind::kDiffusive,
      loadbal::StealPolicyKind::kHybrid};
  const std::uint32_t crash_counts[] = {1, 2, 4, 8};
  const double straggler_factors[] = {2.0, 4.0, 8.0};

  std::vector<Row> rows;
  runtime::MetricsRegistry metrics;
  std::printf("%-10s %-16s %7s %11s %12s %10s\n", "policy", "scenario",
              "param", "makespan_s", "degradation", "recovered");
  for (const auto policy : policies) {
    loadbal::WsConfig cfg;
    cfg.policy = policy;
    cfg.cluster = runtime::ClusterSpec::hopper();
    cfg.seed = 11;
    const auto base = loadbal::simulate_work_stealing(items, initial, kProcs,
                                                      cfg);
    if (!base.terminated || base.hit_event_limit) {
      std::fprintf(stderr, "FATAL: fault-free %s run did not terminate\n",
                   policy_name(policy));
      return 1;
    }
    const double base_s = base.makespan_s;
    // Shared-schema "metrics" member: the fault-free DES counters per
    // policy (deterministic for the fixed seed).
    publish(metrics, base, std::string(policy_name(policy)) + "/");

    auto run = [&](const runtime::FaultPlan& plan, const char* scenario,
                   double param) {
      auto fcfg = cfg;
      fcfg.faults = plan;
      const auto r =
          loadbal::simulate_work_stealing(items, initial, kProcs, fcfg);
      if (!r.terminated || r.hit_event_limit) {
        std::fprintf(stderr, "FATAL: %s/%s param=%g did not terminate\n",
                     policy_name(policy), scenario, param);
        std::exit(1);
      }
      Row row;
      row.policy = policy_name(policy);
      row.scenario = scenario;
      row.param = param;
      row.makespan_s = r.makespan_s;
      row.degradation = r.makespan_s / base_s;
      row.regions_recovered = r.faults.regions_recovered;
      row.reexecuted_service_s = r.faults.reexecuted_service_s;
      row.recovery_latency_max_s = r.faults.recovery_latency_max_s;
      row.straggler_delay_s = r.faults.straggler_delay_s;
      row.tokens_regenerated = r.faults.tokens_regenerated;
      rows.push_back(row);
      std::printf("%-10s %-16s %7g %11.5f %12.3f %10llu\n",
                  row.policy.c_str(), scenario, param, row.makespan_s,
                  row.degradation,
                  static_cast<unsigned long long>(row.regions_recovered));
    };

    run(runtime::FaultPlan{}, "fault_free", 0.0);

    // Crash sweep: victims spread across the machine, dying mid-work (the
    // makespan has a termination tail, so half of it is already too late).
    for (const auto k : crash_counts) {
      runtime::FaultPlan plan;
      for (const auto v : spread_victims(k)) plan.crash(v, 0.25 * base_s);
      run(plan, "crash", static_cast<double>(k));
    }

    // Straggler sweep: four spread ranks slow for the whole run.
    for (const auto f : straggler_factors) {
      runtime::FaultPlan plan;
      for (const auto v : spread_victims(4)) plan.straggler(v, f, 0.0, base_s);
      run(plan, "straggler", f);
    }

    // Neighbor death: kill the hotspot's entire mesh neighborhood early,
    // while the hotspot still holds most of its heavy regions.
    {
      const runtime::ProcessMesh mesh(kProcs);
      runtime::FaultPlan plan;
      const auto neighbors = mesh.neighbors(kHotspot);
      for (const auto v : neighbors) plan.crash(v, 0.2 * base_s);
      run(plan, "neighbor_death", static_cast<double>(neighbors.size()));
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_resilience\",\n");
  std::fprintf(f, "  \"procs\": %u,\n  \"regions\": %zu,\n", kProcs, kRegions);
  std::fprintf(f, "  \"hotspot_rank\": %u,\n  \"results\": [\n", kHotspot);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"scenario\": \"%s\", \"param\": %g, "
        "\"makespan_s\": %.6f, \"degradation\": %.4f, "
        "\"regions_recovered\": %llu, \"reexecuted_service_s\": %.6f, "
        "\"recovery_latency_max_s\": %.6f, \"straggler_delay_s\": %.6f, "
        "\"tokens_regenerated\": %llu}%s\n",
        r.policy.c_str(), r.scenario.c_str(), r.param, r.makespan_s,
        r.degradation, static_cast<unsigned long long>(r.regions_recovered),
        r.reexecuted_service_s, r.recovery_latency_max_s, r.straggler_delay_s,
        static_cast<unsigned long long>(r.tokens_regenerated),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.to_json().c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
