// Figure 10: radial RRT with load balancing on the Opteron cluster,
// p = 8..256, in mixed (60% blocked) / mixed-30 / free.
//
// Work stealing gives ~2x in mixed, less in mixed-30, and neither helps
// nor hurts in free. Repartitioning (shown for mixed-30, as in the paper's
// subplot (b)) uses the k-random-rays weight probe — a poor estimator whose
// partition can be *worse* than no load balancing.

#include "figure_common.hpp"

using namespace pmpl;

namespace {

void run_env(std::unique_ptr<env::Environment> e, const char* label,
             bool with_repartitioning, std::uint32_t regions,
             std::size_t nodes, std::uint64_t seed) {
  const geo::Vec3 root_pos{50, 50, 50};
  const core::RadialRegions radial(root_pos, 45.0, regions, 4, seed,
                                   /*two_d=*/false);
  Xoshiro256ss rng(seed);
  const auto root = e->space().at_position(root_pos, rng);

  WallTimer timer;
  core::RrtWorkloadConfig wcfg;
  wcfg.total_nodes = nodes;
  wcfg.seed = seed;
  const auto w = core::build_rrt_workload(*e, radial, root, wcfg);
  std::printf("\n# workload %-10s regions=%u tree nodes=%zu "
              "(measured in %.2fs wall)\n",
              e->name().c_str(), regions, w.roadmap.num_vertices(),
              timer.elapsed_s());

  std::vector<core::Strategy> strategies{
      core::Strategy::kNoLB, core::Strategy::kHybridWS,
      core::Strategy::kRand8WS, core::Strategy::kDiffusiveWS};
  if (with_repartitioning) strategies.push_back(core::Strategy::kRepartition);

  std::printf("%s execution time (simulated seconds)\n", label);
  std::vector<std::string> header{"procs"};
  for (const auto s : strategies)
    header.push_back(s == core::Strategy::kRepartition ? "Repart (k-rays)"
                                                       : core::to_string(s));
  header.push_back("best WS speedup");
  TextTable table(header);
  double corr = 0.0;
  for (const std::uint32_t p : {8u, 32u, 64u, 128u, 256u}) {
    table.row().num(static_cast<int>(p));
    double base = 0.0, best_ws = 1e300;
    for (const auto s : strategies) {
      core::RrtRunConfig cfg;
      cfg.procs = p;
      cfg.strategy = s;
      cfg.cluster = runtime::ClusterSpec::opteron_cluster();
      cfg.seed = seed;
      const auto r = core::simulate_rrt_run(w, *e, radial, cfg);
      table.num(r.total_s, 3);
      if (s == core::Strategy::kNoLB) base = r.total_s;
      if (core::is_work_stealing(s)) best_ws = std::min(best_ws, r.total_s);
      if (s == core::Strategy::kRepartition) corr = r.weight_correlation;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", base / best_ws);
    table.cell(buf);
  }
  table.print();
  if (with_repartitioning)
    std::printf("# k-rays weight vs true branch cost correlation: %.2f "
                "(imperfect -> repartitioning can lose)\n", corr);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto regions = static_cast<std::uint32_t>(
      args.get_i64("regions", full ? 4096 : 2048));
  const auto nodes = static_cast<std::size_t>(
      args.get_i64("nodes", full ? (1 << 16) : (1 << 15)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf("=== Figure 10: radial RRT across environments, Opteron ===\n");
  run_env(env::mixed(0.60), "(a) mixed (60% blocked)", false, regions, nodes,
          seed);
  run_env(env::mixed(0.30), "(b) mixed-30 (30% blocked)", true, regions,
          nodes, seed);
  run_env(env::free_env(), "(c) free", false, regions, nodes, seed);
  return 0;
}
