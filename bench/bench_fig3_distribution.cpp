// Figure 3: roadmap node distribution across four processors in an
// imbalanced 2D environment, before and after rebalancing.
//
// The paper's Fig 3(b) shows most roadmap nodes held by two of four
// processors under uniform subdivision; Fig 3(c) shows an even spread after
// load balancing. This harness prints nodes-per-processor for the naive
// mapping and for the repartitioned mapping, plus the CVs.

#include "figure_common.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 256));
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 1 << 14));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  constexpr std::uint32_t kProcs = 4;

  std::printf("=== Figure 3: node distribution before/after rebalancing ===\n");
  const auto e = env::imbalanced_2d();
  const core::RegionGrid grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), regions, /*two_d=*/true);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);

  core::PrmRunConfig cfg;
  cfg.procs = kProcs;
  cfg.strategy = core::Strategy::kNoLB;
  const auto before = core::simulate_prm_run(w, cfg);
  cfg.strategy = core::Strategy::kRepartition;
  const auto after = core::simulate_prm_run(w, cfg);

  TextTable table({"processor", "nodes (before)", "nodes (after)", "ideal"});
  const std::uint64_t total = w.roadmap.num_vertices();
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    table.row()
        .num(static_cast<int>(p))
        .num(before.nodes_per_proc[p])
        .num(after.nodes_per_proc[p])
        .num(total / kProcs);
  }
  table.print();
  std::printf("\nCV of nodes/processor: before=%.3f after=%.3f\n",
              before.cv_nodes_before, after.cv_nodes_after);
  std::printf("node-connection phase: before=%.3fs after=%.3fs (%.2fx)\n",
              before.phases.node_connection_s, after.phases.node_connection_s,
              before.phases.node_connection_s /
                  after.phases.node_connection_s);
  return 0;
}
