// Figure 4: validation of the analytic model environment (§IV-B).
//
// (a) Coefficient of variation vs processor count:
//       - model imbalance (per-region V_free, naive column mapping)
//       - model best balance (greedy global partition of V_free)
//       - experimental imbalance (# roadmap samples, naive mapping)
//       - experimental after repartitioning (# samples)
// (b) Percentage improvement vs processor count:
//       - theoretical (unit area): reduction of the max-loaded processor's
//         V_free under the best partition
//       - experimental (# samples): reduction of the max nodes/processor
//       - runtime: reduction of the node-connection phase time

#include "figure_common.hpp"
#include "model/model_env.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto side =
      static_cast<std::uint32_t>(args.get_i64("side", full ? 64 : 40));
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", full ? (1 << 19) : (1 << 17)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  const double blocked = args.get_f64("blocked", 0.25);

  std::printf("=== Figure 4: model environment validation ===\n");
  std::printf("# model: unit square, centered square obstacle, blocked=%.2f, "
              "%ux%u regions\n", blocked, side, side);

  const model::ModelEnvironment analytic(blocked, side);
  const auto e = env::model_2d(blocked);
  const core::RegionGrid grid(e->space().position_bounds(), side, side, 1);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = attempts;
  wcfg.seed = seed;
  wcfg.prm.resolution = 0.05;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  std::printf("# experimental roadmap: |V|=%zu |E|=%zu\n",
              w.roadmap.num_vertices(), w.roadmap.num_edges());

  std::printf("\n(a) Coefficient of variation of per-processor load\n");
  TextTable cv_table({"procs", "model naive (Vfree)", "model best (Vfree)",
                      "exp naive (#samples)", "exp repart (#samples)"});
  for (const std::uint32_t p : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    core::PrmRunConfig cfg;
    cfg.procs = p;
    cfg.strategy = core::Strategy::kRepartition;
    cfg.seed = seed;
    const auto run = core::simulate_prm_run(w, cfg);
    cv_table.row()
        .num(static_cast<int>(p))
        .num(analytic.cv_naive(p), 3)
        .num(analytic.cv_best(p), 3)
        .num(run.cv_nodes_before, 3)
        .num(run.cv_nodes_after, 3);
  }
  cv_table.print();

  std::printf("\n(b) Potential / realized improvement (%%)\n");
  TextTable imp_table({"procs", "theoretical (unit area)",
                       "experimental (#samples)", "runtime (node conn)"});
  for (const std::uint32_t p : {16u, 32u, 64u, 128u}) {
    core::PrmRunConfig cfg;
    cfg.procs = p;
    cfg.seed = seed;
    cfg.strategy = core::Strategy::kNoLB;
    const auto base = core::simulate_prm_run(w, cfg);
    cfg.strategy = core::Strategy::kRepartition;
    const auto repart = core::simulate_prm_run(w, cfg);

    std::uint64_t base_max = 0, repart_max = 0;
    for (const auto n : base.nodes_per_proc) base_max = std::max(base_max, n);
    for (const auto n : repart.nodes_per_proc)
      repart_max = std::max(repart_max, n);
    const double exp_pct =
        base_max ? 100.0 * (double(base_max) - double(repart_max)) /
                       double(base_max)
                 : 0.0;
    const double run_pct =
        100.0 *
        (base.phases.node_connection_s - repart.phases.node_connection_s) /
        base.phases.node_connection_s;
    imp_table.row()
        .num(static_cast<int>(p))
        .num(analytic.max_load_improvement_pct(p), 1)
        .num(exp_pct, 1)
        .num(run_pct, 1);
  }
  imp_table.print();
  std::printf(
      "\n# expectation: the experimental series tracks the model; the\n"
      "# achievable improvement shrinks as regions/processor shrink.\n");
  return 0;
}
