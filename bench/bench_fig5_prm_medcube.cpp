// Figure 5: PRM with load balancing in med-cube on HOPPER.
//
// (a) Strong-scaling execution time at p = 96..768 for Without LB /
//     Repartitioning / Hybrid WS / Rand-8 WS.
// (b) Coefficient of variation of roadmap nodes per processor before and
//     after repartitioning.
// (c) Load profile (roadmap nodes per processor) at p = 192 for the naive
//     mapping, repartitioning, and the ideal.

#include <algorithm>

#include "figure_common.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto regions = static_cast<std::uint32_t>(
      args.get_i64("regions", full ? 32768 : 13824));
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", full ? (1 << 19) : (1 << 18)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  const std::vector<std::uint32_t> procs{96, 192, 384, 768};

  std::printf("=== Figure 5: PRM load balancing, med-cube, Hopper ===\n");
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), regions,
                                  false);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);
  const auto cluster = runtime::ClusterSpec::hopper();

  const auto rows =
      bench::sweep_prm(w, procs, bench::kPrmStrategies, cluster, seed);
  bench::print_time_table("(a) Execution time (simulated seconds)", rows,
                          procs, bench::kPrmStrategies);

  std::printf("\n(b) CV of roadmap nodes per processor\n");
  TextTable cv_table({"procs", "before repartitioning",
                      "after repartitioning"});
  for (const std::uint32_t p : procs)
    for (const auto& r : rows)
      if (r.procs == p && r.strategy == core::Strategy::kRepartition)
        cv_table.row()
            .num(static_cast<int>(p))
            .num(r.result.cv_nodes_before, 3)
            .num(r.result.cv_nodes_after, 3);
  cv_table.print();

  std::printf("\n(c) Load profile at p = 192 (nodes/processor, sorted "
              "descending; deciles)\n");
  core::PrmRunConfig cfg;
  cfg.procs = 192;
  cfg.seed = seed;
  cfg.cluster = cluster;
  cfg.strategy = core::Strategy::kNoLB;
  auto no_lb = core::simulate_prm_run(w, cfg).nodes_per_proc;
  cfg.strategy = core::Strategy::kRepartition;
  auto repart = core::simulate_prm_run(w, cfg).nodes_per_proc;
  std::sort(no_lb.rbegin(), no_lb.rend());
  std::sort(repart.rbegin(), repart.rend());
  const std::uint64_t ideal = w.roadmap.num_vertices() / 192;
  TextTable profile({"percentile", "Without LB", "Repartitioning", "Ideal"});
  for (const int pct : {0, 10, 25, 50, 75, 90, 100}) {
    const std::size_t idx =
        std::min<std::size_t>(191, static_cast<std::size_t>(pct) * 192 / 100);
    profile.row()
        .cell("p" + std::to_string(pct))
        .num(no_lb[idx])
        .num(repart[idx])
        .num(ideal);
  }
  profile.print();
  return 0;
}
