// Figure 6: PRM in med-cube on HOPPER at higher core counts
// (p = 384..3072): the repartitioning benefit persists at scale, with the
// margin narrowing as regions per processor shrink.

#include "figure_common.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto regions = static_cast<std::uint32_t>(
      args.get_i64("regions", full ? 46656 : 13824));
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", full ? (1 << 20) : (1 << 18)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  const std::vector<std::uint32_t> procs{384, 768, 1536, 3072};
  const std::vector<core::Strategy> strategies{core::Strategy::kNoLB,
                                               core::Strategy::kRepartition};

  std::printf("=== Figure 6: PRM at scale (up to 3072 cores), med-cube, "
              "Hopper ===\n");
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), regions,
                                  false);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);

  const auto rows = bench::sweep_prm(w, procs, strategies,
                                     runtime::ClusterSpec::hopper(), seed);
  bench::print_time_table("Execution time (simulated seconds)", rows, procs,
                          strategies);
  std::printf("\n# regions/processor: ");
  for (const auto p : procs) std::printf("%u->%zu  ", p, grid.size() / p);
  std::printf("\n");
  return 0;
}
