// Figure 7: phase breakdown and remote accesses.
//
// (a) At p = 192: the time spent in region connection / node connection /
//     other (setup + sampling + redistribution) for each strategy. Node
//     connection dominates the baseline (~90% in the paper).
// (b) At p = 768: remote accesses performed during region connection
//     (region-graph adjacency lookups and roadmap vertex fetches) without
//     LB vs after repartitioning, plus the region-graph edge cut that
//     drives them.

#include "figure_common.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto regions = static_cast<std::uint32_t>(
      args.get_i64("regions", full ? 32768 : 13824));
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", full ? (1 << 19) : (1 << 18)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf("=== Figure 7: phase breakdown and remote accesses ===\n");
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), regions,
                                  false);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);
  const auto cluster = runtime::ClusterSpec::hopper();

  std::printf("\n(a) Phase breakdown at p = 192 (simulated seconds)\n");
  TextTable phases({"strategy", "region connection", "node connection",
                    "other", "total", "node conn %"});
  for (const auto s : bench::kPrmStrategies) {
    core::PrmRunConfig cfg;
    cfg.procs = 192;
    cfg.strategy = s;
    cfg.cluster = cluster;
    cfg.seed = seed;
    const auto r = core::simulate_prm_run(w, cfg);
    const double other = r.phases.setup_s + r.phases.sampling_s +
                         r.phases.redistribution_s;
    phases.row()
        .cell(core::to_string(s))
        .num(r.phases.region_connection_s, 3)
        .num(r.phases.node_connection_s, 3)
        .num(other, 3)
        .num(r.total_s, 3)
        .num(100.0 * r.phases.node_connection_s / r.total_s, 1);
  }
  phases.print();

  std::printf("\n(b) Remote accesses in region connection at p = 768\n");
  TextTable remote({"strategy", "region-graph accesses", "roadmap accesses",
                    "region-graph edge cut"});
  for (const auto s :
       {core::Strategy::kNoLB, core::Strategy::kRepartition,
        core::Strategy::kHybridWS, core::Strategy::kRand8WS}) {
    core::PrmRunConfig cfg;
    cfg.procs = 768;
    cfg.strategy = s;
    cfg.cluster = cluster;
    cfg.seed = seed;
    const auto r = core::simulate_prm_run(w, cfg);
    remote.row()
        .cell(core::to_string(s))
        .num(r.remote_region_graph)
        .num(r.remote_roadmap)
        .num(r.edge_cut_after);
  }
  remote.print();
  return 0;
}
