// Figure 8: PRM with load balancing across environments on the Opteron
// cluster, p = 32..256.
//
// The paper's prose names med-cube / small-cube / free while the subplot
// captions name Walls / Walls-45 / Free; we run both sets. Expected shape:
// large gains in med-cube, modest gains in small-cube, and no significant
// overhead (or benefit) in free.

#include "figure_common.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto regions = static_cast<std::uint32_t>(
      args.get_i64("regions", full ? 13824 : 8000));
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", full ? (1 << 18) : (1 << 17)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  const std::vector<std::uint32_t> procs{32, 64, 128, 256};
  const auto cluster = runtime::ClusterSpec::opteron_cluster();

  std::printf("=== Figure 8: PRM across environments, Opteron cluster ===\n");

  const std::unique_ptr<env::Environment> envs[] = {
      env::med_cube(), env::small_cube(), env::free_env(), env::walls(false),
      env::walls(true)};
  const char* labels[] = {"(a) med-cube", "(b) small-cube", "(c) free",
                          "(alt) walls", "(alt) walls-45"};
  for (std::size_t i = 0; i < std::size(envs); ++i) {
    const auto& e = *envs[i];
    const core::RegionGrid grid = core::RegionGrid::make_auto(
        e.space().position_bounds(), regions, false);
    const auto w = bench::make_prm_workload(e, grid, attempts, seed);
    const auto rows =
        bench::sweep_prm(w, procs, bench::kPrmStrategies, cluster, seed);
    bench::print_time_table(
        std::string(labels[i]) + " execution time (simulated seconds)", rows,
        procs, bench::kPrmStrategies);
  }
  return 0;
}
