// Figure 9: distribution of tasks induced by HYBRID work stealing for PRM
// at p = 96 and p = 768 (med-cube, Hopper).
//
// At 96 cores many underloaded processors find and execute a substantial
// number of stolen tasks; at 768 cores stealable work per processor
// collapses and few processors manage to steal at all.

#include <algorithm>

#include "figure_common.hpp"

using namespace pmpl;

namespace {

void report(const core::Workload& w, std::uint32_t procs,
            std::uint64_t seed) {
  core::PrmRunConfig cfg;
  cfg.procs = procs;
  cfg.strategy = core::Strategy::kHybridWS;
  cfg.cluster = runtime::ClusterSpec::hopper();
  cfg.seed = seed;
  const auto r = core::simulate_prm_run(w, cfg);
  const auto& ws = r.ws;

  std::vector<std::uint64_t> stolen = ws.stolen_tasks;
  std::sort(stolen.rbegin(), stolen.rend());
  std::uint64_t total_stolen = 0, total_local = 0, thieves = 0;
  for (std::uint32_t p = 0; p < procs; ++p) {
    total_stolen += ws.stolen_tasks[p];
    total_local += ws.local_tasks[p];
    if (ws.stolen_tasks[p] > 0) ++thieves;
  }

  std::printf("\n--- p = %u ---\n", procs);
  TextTable table({"metric", "value"});
  table.row().cell("tasks executed (local)").num(total_local);
  table.row().cell("tasks executed (stolen)").num(total_stolen);
  table.row().cell("stolen fraction").num(ws.stolen_fraction(), 3);
  table.row().cell("processors that stole >0 tasks").num(thieves);
  table.row().cell("stolen tasks/processor (mean)").num(
      double(total_stolen) / procs, 2);
  table.row().cell("steal requests").num(ws.steal_requests);
  table.row().cell("steal grants").num(ws.steal_grants);
  table.row().cell("steal denies").num(ws.steal_denies);
  table.print();

  std::printf("stolen-task profile (sorted desc): ");
  for (const int pct : {0, 10, 25, 50, 75, 100}) {
    const std::size_t idx = std::min<std::size_t>(
        procs - 1, static_cast<std::size_t>(pct) * procs / 100);
    std::printf("p%d=%llu  ", pct,
                static_cast<unsigned long long>(stolen[idx]));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool full = args.get_bool("full");
  const auto regions = static_cast<std::uint32_t>(
      args.get_i64("regions", full ? 32768 : 13824));
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", full ? (1 << 19) : (1 << 18)));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));

  std::printf(
      "=== Figure 9: stolen vs local tasks, Hybrid WS, med-cube ===\n");
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), regions,
                                  false);
  const auto w = bench::make_prm_workload(*e, grid, attempts, seed);

  report(w, 96, seed);
  report(w, 768, seed);
  std::printf(
      "\n# expectation: stolen tasks/processor collapse from 96 to 768\n"
      "# cores (less stealable work per processor, more victims to probe).\n");
  return 0;
}
