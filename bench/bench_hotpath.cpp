// Hot-path kernel bench: the pre-overhaul kernels, reimplemented here
// verbatim, raced against the shipping ones on identical inputs.
//
//  - k-NN: recursive pointer-chasing AoS kd-tree (full C-space metric at
//    every visited node) vs the bucketed SoA tree with positional
//    lower-bound skipping.
//  - Edge validation: sequential sweep with per-step interpolate +
//    per-primitive std::function BVH callbacks vs the incremental
//    interpolator + midpoint-out ordering + batched validity.
//  - Wide validity: the per-pose sequential batch sweep (the pre-SIMD
//    first_collision) vs the SoA block path at the best dispatch level.
//
// All comparisons assert identical results (neighbor ids/distances
// bit-for-bit, edge verdicts and lengths, pose verdicts, PRM roadmap
// hashes and ValidityStats across SIMD levels) — optimization may only
// change speed, never answers. Emits BENCH_hotpath.json (path overridable
// as argv[1]; --quick shrinks sizes for CI). Exits nonzero if the kd-tree
// stops pruning or (--quick, wide kernels available) the wide validity
// path falls under the 1.5x gate against the scalar batch.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "collision/bvh.hpp"
#include "cspace/local_planner.hpp"
#include "cspace/validity.hpp"
#include "env/builders.hpp"
#include "geometry/pose_block.hpp"
#include "geometry/simd.hpp"
#include "planner/knn.hpp"
#include "planner/prm.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace pmpl;

namespace {

// --- legacy k-NN: recursive AoS kd-tree -----------------------------------
// The pre-overhaul KdTreeKnn, with the canonical (distance, id) tie-break
// grafted in so results compare bit-for-bit against the new kernels.

void legacy_heap_consider(std::vector<planner::Neighbor>& heap, std::size_t k,
                          planner::Neighbor n) {
  const auto before = [](const planner::Neighbor& a,
                         const planner::Neighbor& b) {
    return planner::neighbor_before(a, b);
  };
  if (heap.size() < k) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), before);
  } else if (planner::neighbor_before(n, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), before);
    heap.back() = n;
    std::push_heap(heap.begin(), heap.end(), before);
  }
}

class LegacyKdTree {
 public:
  explicit LegacyKdTree(const cspace::CSpace& space) : space_(&space) {}

  void insert(graph::VertexId id, const cspace::Config& c) {
    points_.push_back({space_->position(c), id, c});
    const std::size_t buffered = points_.size() - tree_size_;
    if (buffered >= 32 && buffered * 2 >= tree_size_) rebuild();
  }

  std::vector<planner::Neighbor> nearest(const cspace::Config& q,
                                         std::size_t k) const {
    std::vector<planner::Neighbor> heap;
    heap.reserve(k + 1);
    search(root_, space_->position(q), k, heap, q);
    for (std::size_t i = tree_size_; i < points_.size(); ++i)
      legacy_heap_consider(heap, k,
                           {points_[i].id, space_->distance(q, points_[i].cfg)});
    std::sort_heap(heap.begin(), heap.end(),
                   [](const planner::Neighbor& a, const planner::Neighbor& b) {
                     return planner::neighbor_before(a, b);
                   });
    return heap;
  }

 private:
  struct Point {
    geo::Vec3 pos;
    graph::VertexId id;
    cspace::Config cfg;
  };
  struct Node {
    std::uint32_t point = 0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint8_t axis = 0;
  };
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  void rebuild() {
    nodes_.clear();
    nodes_.reserve(points_.size());
    std::vector<std::uint32_t> items(points_.size());
    for (std::size_t i = 0; i < items.size(); ++i)
      items[i] = static_cast<std::uint32_t>(i);
    root_ = points_.empty() ? kNoNode : build_subtree(items, 0, items.size(), 0);
    tree_size_ = points_.size();
  }

  std::uint32_t build_subtree(std::vector<std::uint32_t>& items, std::size_t lo,
                              std::size_t hi, int depth) {
    if (lo >= hi) return kNoNode;
    const std::size_t mid = lo + (hi - lo) / 2;
    const auto axis = static_cast<std::uint8_t>(depth % 3);
    std::nth_element(items.begin() + static_cast<long>(lo),
                     items.begin() + static_cast<long>(mid),
                     items.begin() + static_cast<long>(hi),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return points_[a].pos[axis] < points_[b].pos[axis];
                     });
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({items[mid], kNoNode, kNoNode, axis});
    const std::uint32_t left = build_subtree(items, lo, mid, depth + 1);
    const std::uint32_t right = build_subtree(items, mid + 1, hi, depth + 1);
    nodes_[idx].left = left;
    nodes_[idx].right = right;
    return idx;
  }

  void search(std::uint32_t node, const geo::Vec3& q, std::size_t k,
              std::vector<planner::Neighbor>& heap,
              const cspace::Config& qcfg) const {
    if (node == kNoNode) return;
    const Node& n = nodes_[node];
    const Point& p = points_[n.point];
    legacy_heap_consider(heap, k, {p.id, space_->distance(qcfg, p.cfg)});
    const double delta = q[n.axis] - p.pos[n.axis];
    const std::uint32_t near_child = delta < 0.0 ? n.left : n.right;
    const std::uint32_t far_child = delta < 0.0 ? n.right : n.left;
    search(near_child, q, k, heap, qcfg);
    if (heap.size() < k || !(std::fabs(delta) > heap.front().distance))
      search(far_child, q, k, heap, qcfg);
  }

  const cspace::CSpace* space_;
  std::vector<Point> points_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = kNoNode;
  std::size_t tree_size_ = 0;
};

// --- legacy edge validation -----------------------------------------------
// The pre-overhaul per-step path: full interpolate per step (slerp
// invariants recomputed every time), sequential sweep from the `a` end,
// and the type-erased std::function BVH traversal per robot primitive —
// which heap-allocates for its captures on every narrow-phase query.

struct LegacyEdgeResult {
  bool success = false;
  double length = 0.0;
};

class LegacyEdgeValidator {
 public:
  LegacyEdgeValidator(const cspace::CSpace& space,
                      const collision::RigidBody& robot,
                      std::span<const collision::ObstacleShape> obstacles,
                      double resolution)
      : space_(&space),
        robot_(&robot),
        obstacles_(obstacles),
        resolution_(resolution) {
    bvh_.build(obstacles_);
  }

  LegacyEdgeResult plan(const cspace::Config& a, const cspace::Config& b) const {
    LegacyEdgeResult r;
    r.length = space_->distance(a, b);
    const std::size_t n = space_->step_count(a, b, resolution_);
    for (std::size_t i = 1; i < n; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(n);
      if (!config_valid(space_->interpolate(a, b, t))) return r;
    }
    r.success = true;
    return r;
  }

 private:
  bool config_valid(const cspace::Config& c) const {
    if (!space_->in_bounds(c)) return false;
    const geo::Transform pose = space_->pose(c);
    for (const auto& box : robot_->boxes) {
      const collision::Obb world = pose.apply(box);
      const std::function<bool(std::uint32_t)> fn = [&](std::uint32_t idx) {
        return collision::hits(world, obstacles_[idx]);
      };
      if (bvh_.for_overlaps(world.bounds(), fn)) return false;
    }
    for (const auto& sphere : robot_->spheres) {
      const collision::Sphere world = pose.apply(sphere);
      const std::function<bool(std::uint32_t)> fn = [&](std::uint32_t idx) {
        return collision::hits(world, obstacles_[idx]);
      };
      if (bvh_.for_overlaps(world.bounds(), fn)) return false;
    }
    return true;
  }

  const cspace::CSpace* space_;
  const collision::RigidBody* robot_;
  std::span<const collision::ObstacleShape> obstacles_;
  double resolution_;
  collision::Bvh bvh_;
};

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t roadmap_hash(const planner::Roadmap& g) {
  std::uint64_t h = 14695981039346656037ull;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& vert = g.vertex(v);
    for (std::size_t i = 0; i < vert.cfg.size(); ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &vert.cfg[i], sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
    for (const auto& e : g.edges_of(v)) {
      h = fnv1a(h, &e.to, sizeof e.to);
      std::uint64_t bits;
      std::memcpy(&bits, &e.prop.length, sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_hotpath.json";
  ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const auto points =
      static_cast<std::size_t>(args.get_i64("points", quick ? 2000 : 6000, 8));
  const auto queries =
      static_cast<std::size_t>(args.get_i64("queries", quick ? 1500 : 6000, 1));
  const auto edges =
      static_cast<std::size_t>(args.get_i64("edges", quick ? 200 : 800, 1));
  const std::size_t k = 6;

  const auto e = env::med_cube();
  const cspace::CSpace& space = e->space();
  Xoshiro256ss rng(97);

  // --- k-NN ---------------------------------------------------------------
  LegacyKdTree legacy_tree(space);
  planner::KdTreeKnn new_tree(space);
  planner::BruteForceKnn brute(space);
  for (std::size_t i = 0; i < points; ++i) {
    const cspace::Config c = space.sample(rng);
    legacy_tree.insert(static_cast<graph::VertexId>(i), c);
    new_tree.insert(static_cast<graph::VertexId>(i), c);
    brute.insert(static_cast<graph::VertexId>(i), c);
  }
  std::vector<cspace::Config> knn_queries;
  knn_queries.reserve(queries);
  for (std::size_t q = 0; q < queries; ++q)
    knn_queries.push_back(space.sample(rng));

  // Correctness + visited-candidate accounting (untimed pass).
  planner::PlannerStats kd_stats, brute_stats;
  for (const auto& q : knn_queries) {
    const auto legacy = legacy_tree.nearest(q, k);
    const auto fresh = new_tree.nearest(q, k, &kd_stats);
    const auto exact = brute.nearest(q, k, &brute_stats);
    if (legacy.size() != fresh.size() || fresh.size() != exact.size()) {
      std::fprintf(stderr, "FAIL: k-NN result size mismatch\n");
      return 1;
    }
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (legacy[i].id != fresh[i].id || fresh[i].id != exact[i].id ||
          legacy[i].distance != fresh[i].distance ||
          fresh[i].distance != exact[i].distance) {
        std::fprintf(stderr, "FAIL: k-NN results differ at rank %zu\n", i);
        return 1;
      }
    }
  }

  // Timed passes (single-threaded wall clock; checksum defeats DCE).
  double checksum = 0.0;
  WallTimer t_legacy;
  for (const auto& q : knn_queries)
    checksum += legacy_tree.nearest(q, k).front().distance;
  const double legacy_knn_s = t_legacy.elapsed_s();
  WallTimer t_new;
  for (const auto& q : knn_queries)
    checksum -= new_tree.nearest(q, k).front().distance;
  const double new_knn_s = t_new.elapsed_s();
  const double legacy_qps = static_cast<double>(queries) / legacy_knn_s;
  const double new_qps = static_cast<double>(queries) / new_knn_s;
  const double knn_speedup = new_qps / legacy_qps;

  const auto kd_visited = kd_stats.knn_candidates;
  const auto brute_visited = brute_stats.knn_candidates;
  std::printf("knn: %zu pts, %zu queries, k=%zu | legacy %.0f q/s, new %.0f "
              "q/s -> %.2fx | visited kd %llu vs brute %llu (checksum %g)\n",
              points, queries, k, legacy_qps, new_qps, knn_speedup,
              static_cast<unsigned long long>(kd_visited),
              static_cast<unsigned long long>(brute_visited), checksum);

  // --- edge validation ----------------------------------------------------
  const auto& validity =
      dynamic_cast<const cspace::RigidBodyValidity&>(e->validity());
  const double resolution = 1.0;
  const LegacyEdgeValidator legacy_lp(space, validity.robot(),
                                      e->checker().obstacles(), resolution);
  const cspace::LocalPlanner new_lp(space, validity, resolution);

  std::vector<std::pair<cspace::Config, cspace::Config>> edge_set;
  while (edge_set.size() < edges) {
    cspace::Config a = space.sample(rng);
    cspace::Config b = space.sample(rng);
    if (validity.valid(a) && validity.valid(b))
      edge_set.emplace_back(std::move(a), std::move(b));
  }

  // Correctness pass: identical verdicts and lengths.
  std::size_t accepted = 0;
  for (const auto& [a, b] : edge_set) {
    const auto legacy = legacy_lp.plan(a, b);
    const auto fresh = new_lp.plan(a, b);
    if (legacy.success != fresh.success || legacy.length != fresh.length) {
      std::fprintf(stderr, "FAIL: edge verdicts differ\n");
      return 1;
    }
    accepted += fresh.success;
  }

  WallTimer t_legacy_e;
  std::size_t acc_l = 0;
  for (const auto& [a, b] : edge_set) acc_l += legacy_lp.plan(a, b).success;
  const double legacy_edge_s = t_legacy_e.elapsed_s();
  WallTimer t_new_e;
  std::size_t acc_n = 0;
  for (const auto& [a, b] : edge_set) acc_n += new_lp.plan(a, b).success;
  const double new_edge_s = t_new_e.elapsed_s();
  const double legacy_eps = static_cast<double>(edges) / legacy_edge_s;
  const double new_eps = static_cast<double>(edges) / new_edge_s;
  const double edge_speedup = new_eps / legacy_eps;
  std::printf("edges: %zu (%zu accepted) | legacy %.0f e/s, new %.0f e/s -> "
              "%.2fx\n",
              edges, accepted, legacy_eps, new_eps, edge_speedup);
  if (acc_l != accepted || acc_n != accepted) {
    std::fprintf(stderr, "FAIL: timed passes disagree on accepted count\n");
    return 1;
  }

  // --- wide validity kernels ----------------------------------------------
  // Workload: blocks of interpolated edge-interior poses between valid
  // endpoints — exactly what the connection phase feeds the checker. The
  // connection phase links k-nearest neighbors, so candidate edges are
  // short; endpoints are clamped to that regime. The mix still spans
  // fully-free edges (all 16 poses checked) and blocked ones (early
  // first-collision exits), so both paths get their best cases.
  const geo::SimdLevel best_level = geo::detected_simd_level();
  const auto blocks_n =
      static_cast<std::size_t>(args.get_i64("blocks", quick ? 1500 : 6000, 8));
  const auto& checker = e->checker();
  const auto& robot = validity.robot();
  std::vector<geo::PoseBlock> blocks(blocks_n);
  std::vector<std::vector<geo::Transform>> spans(blocks_n);
  for (std::size_t bi = 0; bi < blocks_n; ++bi) {
    cspace::Config ea, eb;
    do {
      ea = space.sample(rng);
    } while (!validity.valid(ea));
    constexpr double kEdgeLen = 15.0;  // ~the k-NN connection radius
    do {
      const cspace::Config far = space.sample(rng);
      const double d = space.distance(ea, far);
      eb = d <= kEdgeLen ? far : space.interpolate(ea, far, kEdgeLen / d);
    } while (!validity.valid(eb));
    const double steps = static_cast<double>(geo::PoseBlock::kCapacity) + 1.0;
    for (std::size_t i = 0; i < geo::PoseBlock::kCapacity; ++i) {
      const geo::Transform t =
          space.pose(space.interpolate(ea, eb, (static_cast<double>(i) + 1.0) / steps));
      blocks[bi].push(t);
      spans[bi].push_back(t);
    }
  }

  // Correctness: block verdicts and consumed-query counts equal the
  // per-pose sequential sweep at every supported dispatch level.
  for (std::size_t bi = 0; bi < blocks_n; ++bi) {
    collision::CollisionStats seq;
    const std::size_t ref =
        checker.first_collision_sequential(robot, spans[bi], &seq);
    for (int lv = 0; lv <= static_cast<int>(best_level); ++lv) {
      geo::set_simd_level(static_cast<geo::SimdLevel>(lv));
      collision::CollisionStats bs;
      if (checker.first_collision(robot, blocks[bi], &bs) != ref ||
          bs.queries != seq.queries) {
        std::fprintf(stderr, "FAIL: wide verdicts differ at level %s\n",
                     to_string(static_cast<geo::SimdLevel>(lv)));
        return 1;
      }
    }
  }

  // Roadmaps and ValidityStats must be bitwise-identical across levels.
  std::uint64_t map_hash = 0;
  cspace::ValidityStats vstats_ref;
  for (int lv = 0; lv <= static_cast<int>(best_level); ++lv) {
    geo::set_simd_level(static_cast<geo::SimdLevel>(lv));
    planner::Prm prm(*e);
    prm.build(quick ? 800 : 2000, 42);
    const std::uint64_t h = roadmap_hash(prm.roadmap());
    cspace::ValidityStats vs;
    Xoshiro256ss vrng(7);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<cspace::Config> cs;
      for (int i = 0; i < 12; ++i) cs.push_back(space.sample(vrng));
      e->validity().valid_batch_counted(cs, vs);
    }
    if (lv == 0) {
      map_hash = h;
      vstats_ref = vs;
    } else if (h != map_hash || vs.checks != vstats_ref.checks ||
               vs.hits != vstats_ref.hits) {
      std::fprintf(stderr,
                   "FAIL: roadmap hash or ValidityStats differ at level %s\n",
                   to_string(static_cast<geo::SimdLevel>(lv)));
      return 1;
    }
  }

  // Timed passes: per-pose sequential sweep (the pre-SIMD batch) vs the
  // block path at scalar and at the best level. Best-of-N per variant:
  // single passes on a shared box are scheduler-noise-limited, and the
  // minimum is the honest per-path cost.
  const auto time_blocks = [&](bool sequential) {
    double best_s = 0.0;
    std::size_t sink = 0;
    for (int rep = 0; rep < 5; ++rep) {
      std::size_t rep_sink = 0;
      WallTimer t;
      for (std::size_t bi = 0; bi < blocks_n; ++bi)
        rep_sink += sequential
                        ? checker.first_collision_sequential(robot, spans[bi])
                        : checker.first_collision(robot, blocks[bi]);
      const double s = t.elapsed_s();
      if (rep == 0 || s < best_s) best_s = s;
      sink = rep_sink;
    }
    return std::pair<double, std::size_t>{best_s, sink};
  };
  geo::set_simd_level(geo::SimdLevel::kScalar);
  const auto [seq_s, seq_sink] = time_blocks(true);
  const auto [scalar_s, scalar_sink] = time_blocks(false);
  geo::set_simd_level(best_level);
  const auto [wide_s, wide_sink] = time_blocks(false);
  if (seq_sink != scalar_sink || scalar_sink != wide_sink) {
    std::fprintf(stderr, "FAIL: timed wide passes disagree on verdicts\n");
    return 1;
  }
  const double poses =
      static_cast<double>(blocks_n * geo::PoseBlock::kCapacity);
  const double seq_pps = poses / seq_s;
  const double scalar_pps = poses / scalar_s;
  const double wide_pps = poses / wide_s;
  const double wide_speedup = wide_pps / seq_pps;
  std::printf("simd: %zu blocks x %zu poses | sequential %.0f p/s, block "
              "scalar %.0f p/s, block %s %.0f p/s -> %.2fx vs sequential "
              "(sink %zu)\n",
              blocks_n, geo::PoseBlock::kCapacity, seq_pps, scalar_pps,
              to_string(best_level), wide_pps, wide_speedup, wide_sink);

  // --- report -------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"hotpath\",\n  \"quick\": %s,\n"
      "  \"knn\": {\n"
      "    \"points\": %zu,\n    \"queries\": %zu,\n    \"k\": %zu,\n"
      "    \"legacy_qps\": %.1f,\n    \"new_qps\": %.1f,\n"
      "    \"speedup\": %.3f,\n"
      "    \"kd_visited_candidates\": %llu,\n"
      "    \"brute_visited_candidates\": %llu\n  },\n"
      "  \"edges\": {\n"
      "    \"count\": %zu,\n    \"accepted\": %zu,\n"
      "    \"legacy_eps\": %.1f,\n    \"new_eps\": %.1f,\n"
      "    \"speedup\": %.3f\n  },\n"
      "  \"simd\": {\n"
      "    \"level\": \"%s\",\n    \"blocks\": %zu,\n"
      "    \"lanes\": %zu,\n"
      "    \"sequential_pps\": %.1f,\n    \"scalar_block_pps\": %.1f,\n"
      "    \"wide_pps\": %.1f,\n    \"speedup\": %.3f,\n"
      "    \"roadmap_hash\": %llu\n  }\n}\n",
      quick ? "true" : "false", points, queries, k, legacy_qps, new_qps,
      knn_speedup, static_cast<unsigned long long>(kd_visited),
      static_cast<unsigned long long>(brute_visited), edges, accepted,
      legacy_eps, new_eps, edge_speedup, to_string(best_level), blocks_n,
      geo::kWideLanes, seq_pps, scalar_pps, wide_pps, wide_speedup,
      static_cast<unsigned long long>(map_hash));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (kd_visited > brute_visited) {
    std::fprintf(stderr,
                 "FAIL: kd-tree visited %llu candidates, brute force would "
                 "visit %llu — the tree is not pruning\n",
                 static_cast<unsigned long long>(kd_visited),
                 static_cast<unsigned long long>(brute_visited));
    return 1;
  }
  // Wide-kernel speedup gate (CI runs --quick). Skipped when the build or
  // CPU offers no wide path — the scalar fallback has nothing to beat.
  if (quick) {
    if (best_level == geo::SimdLevel::kScalar) {
      std::fprintf(stderr,
                   "warning: no SIMD level available, speedup gate skipped\n");
    } else if (wide_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: wide validity kernel %.2fx vs the scalar batch — "
                   "gate is 1.5x\n",
                   wide_speedup);
      return 1;
    }
  }
  return 0;
}
