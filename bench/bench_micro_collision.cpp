// Microbenchmarks for the collision substrate: the per-operation costs
// that the work-unit model (runtime/work_units.hpp) abstracts.
//
// This binary brings its own main: before the google-benchmark cases run,
// a wide-vs-scalar sweep times every SIMD primitive kernel (hit masks and
// the fused place+bounds) on identical lane groups and writes the result
// to BENCH_simd.json. Per-kernel checksums must match bit for bit between
// the scalar ground truth and the widest available level — a mismatch
// fails the run.
//
//   $ bench_micro_collision --simd-out=FILE   # JSON path (default
//                                             # BENCH_simd.json)
//   $ bench_micro_collision --simd-only       # skip the google benchmarks

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "env/builders.hpp"
#include "geometry/intersect_wide.hpp"
#include "geometry/simd.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace pmpl;

// --- wide-vs-scalar primitive sweep ---------------------------------------

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct KernelRow {
  std::string name;
  double scalar_tps = 0.0;  // lane tests per second, scalar ground truth
  double wide_tps = 0.0;    // lane tests per second, best level
  double speedup = 0.0;
  std::uint64_t checksum = 0;  // identical at both levels by construction
  bool match = false;
};

struct LaneWorkload {
  std::vector<geo::ObbLanes4> obbs;
  std::vector<geo::SphereLanes4> spheres;
  // Raw SoA pose components for the placement kernels.
  std::vector<double> tx, ty, tz, qw, qx, qy, qz;
};

LaneWorkload make_workload(std::size_t groups) {
  LaneWorkload w;
  Xoshiro256ss rng(11);
  const geo::Obb body{{0, 0, 0}, {3, 2, 1},
                      geo::Quat::uniform(0.2, 0.5, 0.7).to_matrix()};
  const geo::Sphere sbody{{0, 0, 0}, 2.5};
  const std::size_t n = groups * geo::kWideLanes;
  w.tx.resize(n);
  w.ty.resize(n);
  w.tz.resize(n);
  w.qw.resize(n);
  w.qx.resize(n);
  w.qy.resize(n);
  w.qz.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Near the obstacle band so the masks are a hit/miss mix.
    const geo::Quat q =
        geo::Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform());
    w.tx[i] = rng.uniform(30, 70);
    w.ty[i] = rng.uniform(30, 70);
    w.tz[i] = rng.uniform(30, 70);
    w.qw[i] = q.w;
    w.qx[i] = q.x;
    w.qy[i] = q.y;
    w.qz[i] = q.z;
  }
  // Placement is bit-identical at every level, so the hit-mask inputs can
  // be placed once (at whatever level is active) and shared.
  w.obbs.resize(groups);
  w.spheres.resize(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t base = g * geo::kWideLanes;
    geo::place_box_lanes(w.tx.data() + base, w.ty.data() + base,
                         w.tz.data() + base, w.qw.data() + base,
                         w.qx.data() + base, w.qy.data() + base,
                         w.qz.data() + base, geo::kWideLanes, body,
                         w.obbs[g]);
    geo::place_sphere_lanes(w.tx.data() + base, w.ty.data() + base,
                            w.tz.data() + base, w.qw.data() + base,
                            w.qx.data() + base, w.qy.data() + base,
                            w.qz.data() + base, geo::kWideLanes, sbody,
                            w.spheres[g]);
  }
  return w;
}

/// Best-of-N wall time of `pass()`, which returns the pass checksum.
template <typename Pass>
std::pair<double, std::uint64_t> time_pass(Pass&& pass) {
  double best_s = 0.0;
  std::uint64_t sum = 0;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer t;
    sum = pass();
    const double s = t.elapsed_s();
    if (rep == 0 || s < best_s) best_s = s;
  }
  return {best_s, sum};
}

/// Times `pass` (its return value must already be cheap to fold) and
/// verifies cross-level equality with the untimed `check`, which may hash
/// every output bit without polluting the measurement.
template <typename Pass, typename Check>
KernelRow run_kernel(const char* name, std::size_t groups,
                     geo::SimdLevel best, Pass&& pass, Check&& check) {
  KernelRow row;
  row.name = name;
  const double lane_tests =
      static_cast<double>(groups) * static_cast<double>(geo::kWideLanes);
  geo::set_simd_level(geo::SimdLevel::kScalar);
  const auto [scalar_s, scalar_sink] = time_pass(pass);
  const std::uint64_t scalar_sum = check();
  geo::set_simd_level(best);
  const auto [wide_s, wide_sink] = time_pass(pass);
  const std::uint64_t wide_sum = check();
  row.scalar_tps = lane_tests / scalar_s;
  row.wide_tps = lane_tests / wide_s;
  row.speedup = row.wide_tps / row.scalar_tps;
  row.checksum = scalar_sum;
  row.match = scalar_sum == wide_sum && scalar_sink == wide_sink;
  return row;
}

int run_simd_sweep(const std::string& out_path) {
  const geo::SimdLevel best = geo::detected_simd_level();
  const std::size_t groups = 4096;
  const LaneWorkload w = make_workload(groups);

  const geo::Aabb aabb_obs{{40, 40, 40}, {60, 60, 60}};
  const geo::Obb obb_obs{{50, 50, 50}, {12, 8, 10},
                         geo::Quat::uniform(0.6, 0.1, 0.8).to_matrix()};
  const geo::Sphere sph_obs{{50, 50, 50}, 15};
  const geo::Obb body{{0, 0, 0}, {3, 2, 1},
                      geo::Quat::uniform(0.2, 0.5, 0.7).to_matrix()};

  std::vector<KernelRow> rows;
  const auto mask_pass = [&](const auto& lanes_vec, const auto& obstacle) {
    return [&]() {
      std::uint64_t sum = 0;
      for (std::size_t g = 0; g < lanes_vec.size(); ++g)
        sum = sum * 33 + geo::hit_mask(lanes_vec[g], geo::kWideLanes,
                                       obstacle);
      return sum;
    };
  };
  const auto add_mask = [&](const char* name, const auto& lanes_vec,
                            const auto& obstacle) {
    const auto pass = mask_pass(lanes_vec, obstacle);
    rows.push_back(run_kernel(name, groups, best, pass, pass));
  };
  add_mask("obb_vs_aabb", w.obbs, aabb_obs);
  add_mask("obb_vs_obb", w.obbs, obb_obs);
  add_mask("obb_vs_sphere", w.obbs, sph_obs);
  add_mask("sphere_vs_aabb", w.spheres, aabb_obs);
  add_mask("sphere_vs_obb", w.spheres, obb_obs);
  add_mask("sphere_vs_sphere", w.spheres, sph_obs);
  // Fused placement + union bounds (the checker's per-group entry). The
  // timed pass folds just the union box corner; the untimed check hashes
  // every placed lane bit and the box.
  rows.push_back(run_kernel(
      "place_box_bounded", groups, best,
      [&]() {
        std::uint64_t sum = 0;
        geo::ObbLanes4 lanes;
        for (std::size_t g = 0; g < groups; ++g) {
          const std::size_t base = g * geo::kWideLanes;
          const geo::Aabb box = geo::place_box_lanes_bounded(
              w.tx.data() + base, w.ty.data() + base, w.tz.data() + base,
              w.qw.data() + base, w.qx.data() + base, w.qy.data() + base,
              w.qz.data() + base, geo::kWideLanes, body, lanes);
          std::uint64_t bits;
          std::memcpy(&bits, &box.lo.x, sizeof bits);
          sum ^= bits + 0x9e3779b97f4a7c15ull + (sum << 6) + (sum >> 2);
        }
        return sum;
      },
      [&]() {
        std::uint64_t h = 14695981039346656037ull;
        geo::ObbLanes4 lanes;
        for (std::size_t g = 0; g < groups; ++g) {
          const std::size_t base = g * geo::kWideLanes;
          const geo::Aabb box = geo::place_box_lanes_bounded(
              w.tx.data() + base, w.ty.data() + base, w.tz.data() + base,
              w.qw.data() + base, w.qx.data() + base, w.qy.data() + base,
              w.qz.data() + base, geo::kWideLanes, body, lanes);
          h = fnv1a(h, lanes.cx, sizeof lanes.cx);
          h = fnv1a(h, lanes.cy, sizeof lanes.cy);
          h = fnv1a(h, lanes.cz, sizeof lanes.cz);
          h = fnv1a(h, lanes.m, sizeof lanes.m);
          h = fnv1a(h, &box, sizeof box);
        }
        return h;
      }));

  bool all_match = true;
  for (const auto& r : rows) all_match = all_match && r.match;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"micro_collision_simd\",\n"
               "  \"level\": \"%s\",\n  \"lanes\": %zu,\n"
               "  \"groups\": %zu,\n  \"kernels\": [\n",
               to_string(best), geo::kWideLanes, groups);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scalar_tps\": %.1f, "
                 "\"wide_tps\": %.1f, \"speedup\": %.3f, "
                 "\"checksum\": %llu, \"match\": %s}%s\n",
                 r.name.c_str(), r.scalar_tps, r.wide_tps, r.speedup,
                 static_cast<unsigned long long>(r.checksum),
                 r.match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const auto& r : rows)
    std::printf("simd %-18s scalar %12.0f t/s | %s %12.0f t/s -> %5.2fx %s\n",
                r.name.c_str(), r.scalar_tps, to_string(best), r.wide_tps,
                r.speedup, r.match ? "" : "CHECKSUM MISMATCH");
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: wide kernel checksum differs from scalar\n");
    return 1;
  }
  return 0;
}

// --- google-benchmark cases ------------------------------------------------

void BM_PointQuery(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  Xoshiro256ss rng(1);
  for (auto _ : state) {
    const geo::Vec3 p{rng.uniform(0, 100), rng.uniform(0, 100),
                      rng.uniform(0, 100)};
    benchmark::DoNotOptimize(e->checker().point_in_collision(p));
  }
}
BENCHMARK(BM_PointQuery);

void BM_RigidBodyQuery(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  const auto robot = collision::RigidBody::box({2.5, 2.5, 2.5});
  Xoshiro256ss rng(2);
  for (auto _ : state) {
    const geo::Transform pose{
        geo::Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform()),
        {rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)}};
    benchmark::DoNotOptimize(e->checker().in_collision(robot, pose));
  }
}
BENCHMARK(BM_RigidBodyQuery);

void BM_ValidityCheckMedCube(benchmark::State& state) {
  const auto e = env::med_cube();
  Xoshiro256ss rng(3);
  for (auto _ : state) {
    const auto c = e->space().sample(rng);
    benchmark::DoNotOptimize(e->validity().valid(c));
  }
}
BENCHMARK(BM_ValidityCheckMedCube);

void BM_SegmentQuery(benchmark::State& state) {
  const auto e = env::mixed(0.30);
  Xoshiro256ss rng(4);
  for (auto _ : state) {
    const geo::Segment seg{{rng.uniform(0, 100), rng.uniform(0, 100),
                            rng.uniform(0, 100)},
                           {rng.uniform(0, 100), rng.uniform(0, 100),
                            rng.uniform(0, 100)}};
    benchmark::DoNotOptimize(e->checker().segment_in_collision(seg));
  }
}
BENCHMARK(BM_SegmentQuery);

void BM_Raycast(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  Xoshiro256ss rng(5);
  for (auto _ : state) {
    const geo::Vec3 d{rng.uniform(-1, 1), rng.uniform(-1, 1),
                      rng.uniform(-1, 1)};
    const geo::Ray ray{{50, 50, 50}, d.normalized()};
    benchmark::DoNotOptimize(e->checker().raycast(ray));
  }
}
BENCHMARK(BM_Raycast);

void BM_ObbObbSat(benchmark::State& state) {
  Xoshiro256ss rng(6);
  const geo::Obb a{{0, 0, 0}, {1, 2, 3},
                   geo::Quat::uniform(0.3, 0.6, 0.9).to_matrix()};
  const geo::Obb b{{2.5, 0.5, 1.0}, {2, 1, 1},
                   geo::Quat::uniform(0.8, 0.2, 0.4).to_matrix()};
  for (auto _ : state) benchmark::DoNotOptimize(geo::intersects(a, b));
}
BENCHMARK(BM_ObbObbSat);

void BM_HitMaskObbAabb(benchmark::State& state) {
  const LaneWorkload w = make_workload(64);
  const geo::Aabb obs{{40, 40, 40}, {60, 60, 60}};
  geo::set_simd_level(state.range(0) == 0 ? geo::SimdLevel::kScalar
                                          : geo::detected_simd_level());
  std::size_t g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo::hit_mask(w.obbs[g], geo::kWideLanes, obs));
    g = (g + 1) % w.obbs.size();
  }
  geo::set_simd_level(geo::detected_simd_level());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(geo::kWideLanes));
}
BENCHMARK(BM_HitMaskObbAabb)->Arg(0)->Arg(1);

void BM_BvhBuild(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  std::vector<collision::ObstacleShape> obs(e->checker().obstacles().begin(),
                                            e->checker().obstacles().end());
  for (auto _ : state) {
    collision::Bvh bvh;
    bvh.build(obs);
    benchmark::DoNotOptimize(bvh.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(obs.size()));
}
BENCHMARK(BM_BvhBuild);

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simd.json";
  bool simd_only = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--simd-out=", 11) == 0)
      out_path = argv[i] + 11;
    else if (std::strcmp(argv[i], "--simd-only") == 0)
      simd_only = true;
    else
      passthrough.push_back(argv[i]);
  }
  if (pmpl::geo::detected_simd_level() == pmpl::geo::SimdLevel::kScalar)
    std::printf("no wide level available, SIMD sweep reports scalar only\n");
  const int rc = run_simd_sweep(out_path);
  if (rc != 0 || simd_only) return rc;

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
