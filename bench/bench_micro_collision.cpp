// Microbenchmarks for the collision substrate: the per-operation costs
// that the work-unit model (runtime/work_units.hpp) abstracts.

#include <benchmark/benchmark.h>

#include "env/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace pmpl;

void BM_PointQuery(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  Xoshiro256ss rng(1);
  for (auto _ : state) {
    const geo::Vec3 p{rng.uniform(0, 100), rng.uniform(0, 100),
                      rng.uniform(0, 100)};
    benchmark::DoNotOptimize(e->checker().point_in_collision(p));
  }
}
BENCHMARK(BM_PointQuery);

void BM_RigidBodyQuery(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  const auto robot = collision::RigidBody::box({2.5, 2.5, 2.5});
  Xoshiro256ss rng(2);
  for (auto _ : state) {
    const geo::Transform pose{
        geo::Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform()),
        {rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)}};
    benchmark::DoNotOptimize(e->checker().in_collision(robot, pose));
  }
}
BENCHMARK(BM_RigidBodyQuery);

void BM_ValidityCheckMedCube(benchmark::State& state) {
  const auto e = env::med_cube();
  Xoshiro256ss rng(3);
  for (auto _ : state) {
    const auto c = e->space().sample(rng);
    benchmark::DoNotOptimize(e->validity().valid(c));
  }
}
BENCHMARK(BM_ValidityCheckMedCube);

void BM_SegmentQuery(benchmark::State& state) {
  const auto e = env::mixed(0.30);
  Xoshiro256ss rng(4);
  for (auto _ : state) {
    const geo::Segment seg{{rng.uniform(0, 100), rng.uniform(0, 100),
                            rng.uniform(0, 100)},
                           {rng.uniform(0, 100), rng.uniform(0, 100),
                            rng.uniform(0, 100)}};
    benchmark::DoNotOptimize(e->checker().segment_in_collision(seg));
  }
}
BENCHMARK(BM_SegmentQuery);

void BM_Raycast(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  Xoshiro256ss rng(5);
  for (auto _ : state) {
    const geo::Vec3 d{rng.uniform(-1, 1), rng.uniform(-1, 1),
                      rng.uniform(-1, 1)};
    const geo::Ray ray{{50, 50, 50}, d.normalized()};
    benchmark::DoNotOptimize(e->checker().raycast(ray));
  }
}
BENCHMARK(BM_Raycast);

void BM_ObbObbSat(benchmark::State& state) {
  Xoshiro256ss rng(6);
  const geo::Obb a{{0, 0, 0}, {1, 2, 3},
                   geo::Quat::uniform(0.3, 0.6, 0.9).to_matrix()};
  const geo::Obb b{{2.5, 0.5, 1.0}, {2, 1, 1},
                   geo::Quat::uniform(0.8, 0.2, 0.4).to_matrix()};
  for (auto _ : state) benchmark::DoNotOptimize(geo::intersects(a, b));
}
BENCHMARK(BM_ObbObbSat);

void BM_BvhBuild(benchmark::State& state) {
  const auto e = env::mixed(0.60);
  std::vector<collision::ObstacleShape> obs(e->checker().obstacles().begin(),
                                            e->checker().obstacles().end());
  for (auto _ : state) {
    collision::Bvh bvh;
    bvh.build(obs);
    benchmark::DoNotOptimize(bvh.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(obs.size()));
}
BENCHMARK(BM_BvhBuild);

}  // namespace
