// Microbenchmarks for k-nearest-neighbor search: kd-tree vs brute force —
// the classic parallel-PRM bottleneck that subdivision avoids.

#include <benchmark/benchmark.h>

#include "planner/knn.hpp"
#include "util/rng.hpp"

namespace {

using namespace pmpl;

void fill(planner::NeighborFinder& finder, const cspace::CSpace& space,
          std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    finder.insert(static_cast<graph::VertexId>(i), space.sample(rng));
}

void BM_KdTreeQuery(benchmark::State& state) {
  const auto space = cspace::CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  planner::KdTreeKnn tree(space);
  fill(tree, space, static_cast<std::size_t>(state.range(0)), 1);
  Xoshiro256ss rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(tree.nearest(space.sample(rng), 6));
}
BENCHMARK(BM_KdTreeQuery)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BruteForceQuery(benchmark::State& state) {
  const auto space = cspace::CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  planner::BruteForceKnn brute(space);
  fill(brute, space, static_cast<std::size_t>(state.range(0)), 1);
  Xoshiro256ss rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(brute.nearest(space.sample(rng), 6));
}
BENCHMARK(BM_BruteForceQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KdTreeInsert(benchmark::State& state) {
  const auto space = cspace::CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  Xoshiro256ss rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    planner::KdTreeKnn tree(space);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i)
      tree.insert(static_cast<graph::VertexId>(i), space.sample(rng));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeInsert)->Arg(1000)->Arg(10000);

}  // namespace
