// Microbenchmarks for the region-graph partitioners and the DES
// work-stealing engine (scheduler overhead per simulated steal).

#include <benchmark/benchmark.h>

#include "loadbal/partition.hpp"
#include "loadbal/ws_engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace pmpl;

struct Instance {
  std::vector<double> weights;
  std::vector<geo::Vec3> centroids;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

Instance make_instance(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  Instance inst;
  inst.weights.reserve(n);
  inst.centroids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.weights.push_back(rng.uniform(0.1, 10.0));
    inst.centroids.push_back(
        {rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  for (std::size_t i = 0; i + 1 < n; ++i)
    inst.edges.emplace_back(static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(i + 1));
  return inst;
}

void BM_GreedyLpt(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 1);
  const loadbal::PartitionProblem p{inst.weights, inst.centroids, inst.edges,
                                    geo::Aabb{{0, 0, 0}, {100, 100, 100}},
                                    64};
  for (auto _ : state)
    benchmark::DoNotOptimize(loadbal::partition_greedy_lpt(p));
}
BENCHMARK(BM_GreedyLpt)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Rcb(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 2);
  const loadbal::PartitionProblem p{inst.weights, inst.centroids, inst.edges,
                                    geo::Aabb{{0, 0, 0}, {100, 100, 100}},
                                    64};
  for (auto _ : state) benchmark::DoNotOptimize(loadbal::partition_rcb(p));
}
BENCHMARK(BM_Rcb)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Sfc(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 3);
  const loadbal::PartitionProblem p{inst.weights, inst.centroids, inst.edges,
                                    geo::Aabb{{0, 0, 0}, {100, 100, 100}},
                                    64};
  for (auto _ : state) benchmark::DoNotOptimize(loadbal::partition_sfc(p));
}
BENCHMARK(BM_Sfc)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_WsEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(4);
  std::vector<loadbal::WsItem> items(n);
  for (auto& item : items) item = {rng.uniform(1e-4, 1e-2), 1000};
  const auto initial = loadbal::partition_block(n, 64);
  for (auto _ : state) {
    const auto r = loadbal::simulate_work_stealing(items, initial, 64, {});
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WsEngine)->Arg(1000)->Arg(10000);

}  // namespace
