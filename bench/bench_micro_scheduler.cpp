// Scheduler substrate microbenchmark: the pre-refactor mutex+condvar pool
// vs the lock-free Chase–Lev work-stealing Scheduler, across task grains
// (1/10/100 µs of busy work) and thread counts (1..max hardware threads,
// plus oversubscribed points on small machines).
//
// Emits a machine-readable BENCH_scheduler.json (path overridable as
// argv[1]) so the perf trajectory of the runtime can be tracked across
// PRs, and prints a human-readable table.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics_registry.hpp"
#include "runtime/scheduler.hpp"
#include "util/timer.hpp"

namespace {

/// The mutex ThreadPool this PR replaced, kept verbatim as the baseline:
/// one global queue, every pop under one lock, wait_idle on a condvar.
class LegacyMutexPool {
 public:
  explicit LegacyMutexPool(std::size_t threads) {
    const std::size_t n = std::max<std::size_t>(1, threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~LegacyMutexPool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    task_ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard lock(mutex_);
      tasks_.push_back(std::move(task));
    }
    task_ready_.notify_one();
  }

  void wait_idle() {
    std::unique_lock lock(mutex_);
    all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard lock(mutex_);
        --active_;
        if (tasks_.empty() && active_ == 0) all_idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Busy work of roughly `us` microseconds (clock-bounded spin).
void spin_us(double us) {
  if (us <= 0.0) return;
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::nanoseconds(static_cast<long>(us * 1e3));
  while (std::chrono::steady_clock::now() < end) {
  }
}

struct Row {
  std::string executor;
  double grain_us = 0.0;
  std::size_t threads = 0;
  std::size_t tasks = 0;
  double wall_s = 0.0;
  double tasks_per_s = 0.0;
  // Scheduler-only observability (the legacy pool has no counters).
  bool has_counters = false;
  std::uint64_t steal_failures = 0;
  double park_s = 0.0;
};

double time_mutex_pool(std::size_t threads, std::size_t tasks,
                       double grain_us) {
  LegacyMutexPool pool(threads);
  pmpl::WallTimer t;
  for (std::size_t i = 0; i < tasks; ++i)
    pool.submit([grain_us] { spin_us(grain_us); });
  pool.wait_idle();
  return t.elapsed_s();
}

/// One repetition on a *persistent* scheduler, so its counters accumulate
/// across reps and their monotonicity can be asserted.
double time_scheduler(pmpl::runtime::Scheduler& sched, std::size_t tasks,
                      double grain_us) {
  pmpl::runtime::TaskGroup group;
  pmpl::WallTimer t;
  for (std::size_t i = 0; i < tasks; ++i)
    sched.submit([grain_us] { spin_us(grain_us); }, &group);
  sched.wait(group);
  return t.elapsed_s();
}

/// Scheduler counters summed across workers.
struct SchedTotals {
  std::uint64_t executed = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_failures = 0;
  double park_s = 0.0;
};

SchedTotals totals_of(const pmpl::runtime::Scheduler& sched) {
  SchedTotals t;
  for (const auto& c : sched.counters()) {
    t.executed += c.executed_local + c.executed_stolen;
    t.steal_attempts += c.steal_attempts;
    t.steal_failures += c.steal_failures;
    t.park_s += c.park_s;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_scheduler.json";
  const auto hw = std::max(1u, std::thread::hardware_concurrency());

  // Thread sweep: powers of two through the hardware width; on narrow
  // machines extend past it so queue contention is still exercised.
  std::vector<std::size_t> thread_counts;
  for (std::size_t p = 1; p <= hw; p *= 2) thread_counts.push_back(p);
  while (thread_counts.size() < 3) thread_counts.push_back(thread_counts.back() * 2);
  if (thread_counts.back() != hw && hw > thread_counts.back())
    thread_counts.push_back(hw);

  const std::vector<std::pair<double, std::size_t>> grains = {
      {1.0, 16384}, {10.0, 4096}, {100.0, 512}};
  constexpr int kReps = 3;

  std::vector<Row> rows;
  int monotonicity_violations = 0;
  pmpl::runtime::MetricsRegistry metrics;
  std::printf("# scheduler substrate: %u hardware threads\n", hw);
  std::printf("%-10s %9s %8s %8s %12s %14s\n", "executor", "grain_us",
              "threads", "tasks", "wall_s", "tasks_per_s");
  for (const auto& [grain_us, tasks] : grains) {
    for (const std::size_t p : thread_counts) {
      // Baseline: a fresh pool per repetition (it has no counters to keep).
      {
        double best = 1e100;
        for (int rep = 0; rep < kReps; ++rep)
          best = std::min(best, time_mutex_pool(p, tasks, grain_us));
        Row row{"mutex_pool", grain_us, p, tasks, best,
                static_cast<double>(tasks) / best};
        std::printf("%-10s %9.0f %8zu %8zu %12.6f %14.0f\n",
                    row.executor.c_str(), row.grain_us, row.threads,
                    row.tasks, row.wall_s, row.tasks_per_s);
        rows.push_back(std::move(row));
      }
      // One persistent Scheduler per (grain, threads) config: counters
      // accumulate across repetitions, so each rep must advance them
      // monotonically and execute exactly `tasks` more tasks.
      {
        pmpl::runtime::Scheduler sched(p);
        double best = 1e100;
        SchedTotals prev = totals_of(sched);
        for (int rep = 0; rep < kReps; ++rep) {
          best = std::min(best, time_scheduler(sched, tasks, grain_us));
          const SchedTotals cur = totals_of(sched);
          if (cur.executed != prev.executed + tasks ||
              cur.steal_attempts < prev.steal_attempts ||
              cur.steal_failures < prev.steal_failures ||
              cur.park_s < prev.park_s) {
            std::fprintf(stderr,
                         "FAIL: counters not monotone at grain=%.0f p=%zu "
                         "rep=%d (executed %llu -> %llu, expected +%zu)\n",
                         grain_us, p, rep,
                         static_cast<unsigned long long>(prev.executed),
                         static_cast<unsigned long long>(cur.executed), tasks);
            ++monotonicity_violations;
          }
          prev = cur;
        }
        metrics.add("scheduler/executed", prev.executed);
        metrics.add("scheduler/steal_attempts", prev.steal_attempts);
        metrics.add("scheduler/steal_failures", prev.steal_failures);
        metrics.observe("scheduler/park_s_per_config", prev.park_s);
        Row row{"chase_lev", grain_us, p, tasks, best,
                static_cast<double>(tasks) / best, true, prev.steal_failures,
                prev.park_s};
        std::printf("%-10s %9.0f %8zu %8zu %12.6f %14.0f\n",
                    row.executor.c_str(), row.grain_us, row.threads,
                    row.tasks, row.wall_s, row.tasks_per_s);
        rows.push_back(std::move(row));
      }
    }
  }

  // Speedup per (grain, threads): chase_lev over mutex_pool.
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"scheduler_substrate\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n  \"results\": [\n", hw);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"executor\": \"%s\", \"grain_us\": %.0f, "
                 "\"threads\": %zu, \"tasks\": %zu, \"wall_s\": %.6f, "
                 "\"tasks_per_s\": %.0f",
                 r.executor.c_str(), r.grain_us, r.threads, r.tasks, r.wall_s,
                 r.tasks_per_s);
    if (r.has_counters)
      std::fprintf(f, ", \"steal_failures\": %llu, \"park_s\": %.6f",
                   static_cast<unsigned long long>(r.steal_failures),
                   r.park_s);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup\": [\n");
  bool first = true;
  std::printf("\n%9s %8s %8s\n", "grain_us", "threads", "speedup");
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& mutex_row = rows[i];
    const Row& sched_row = rows[i + 1];
    const double speedup = sched_row.tasks_per_s / mutex_row.tasks_per_s;
    std::fprintf(f,
                 "%s    {\"grain_us\": %.0f, \"threads\": %zu, "
                 "\"chase_lev_over_mutex\": %.3f}",
                 first ? "" : ",\n", mutex_row.grain_us, mutex_row.threads,
                 speedup);
    std::printf("%9.0f %8zu %7.2fx\n", mutex_row.grain_us, mutex_row.threads,
                speedup);
    first = false;
  }
  std::fprintf(f, "\n  ],\n  \"metrics\": %s\n}\n", metrics.to_json().c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (monotonicity_violations > 0) {
    std::fprintf(stderr, "%d counter monotonicity violation(s)\n",
                 monotonicity_violations);
    return 1;
  }
  return 0;
}
