// Planning-as-a-service load driver -> BENCH_service.json.
//
// Exercises the long-lived query engine (service/query_engine.hpp) against
// the sequential per-query baseline (planner::query_roadmap) and under
// snapshot churn:
//
//  - throughput: the batched engine must beat the baseline by >= 1.5x at
//    8 workers (hard gate, --quick included) *and* return bit-identical
//    paths — batching may only change speed, never answers;
//  - deadlines: a budgeted run reports the deadline-miss rate and exact
//    p50/p99/p999 latency over the in-deadline (non-degraded) answers;
//  - churn: a background thread densifies + publishes new epochs while the
//    engine serves; every solved path must validate against the
//    environment, every answer's epoch tag must be one the pool actually
//    published, and when the traffic stops the pool must have reclaimed
//    every retired snapshot (hard gates);
//  - a load x workers x churn sweep for the serving-throughput table.
//
// Output path overridable as argv[1]; --quick shrinks sizes for CI. Exits
// nonzero when any gate fails.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "figure_common.hpp"
#include "env/builders.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "service/query_engine.hpp"
#include "service/snapshot.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pmpl;

namespace {

bool same_path(const std::vector<cspace::Config>& a,
               const std::vector<cspace::Config>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t d = 0; d < a[i].size(); ++d)
      if (a[i][d] != b[i][d]) return false;
  }
  return true;
}

/// Exact nearest-rank quantile over a sample vector (sorted in place).
double quantile_us(std::vector<double>& latencies_s, double q) {
  if (latencies_s.empty()) return 0.0;
  std::sort(latencies_s.begin(), latencies_s.end());
  const auto n = static_cast<double>(latencies_s.size());
  const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  return latencies_s[std::min(idx, latencies_s.size() - 1)] * 1e6;
}

struct WaveStats {
  double qps = 0.0;
  double p99_us = 0.0;
  std::size_t solved = 0;
};

/// Serve `reqs` through `engine` in waves of `wave`; optionally collect
/// results for equality checks.
WaveStats serve(service::QueryEngine& engine,
                const std::vector<service::QueryRequest>& reqs,
                std::size_t wave,
                std::vector<service::QueryResult>* out = nullptr) {
  WaveStats ws;
  std::vector<double> lat;
  lat.reserve(reqs.size());
  WallTimer timer;
  for (std::size_t i = 0; i < reqs.size(); i += wave) {
    const std::size_t n = std::min(wave, reqs.size() - i);
    auto results =
        engine.run_batch(std::span<const service::QueryRequest>(
            reqs.data() + i, n));
    for (auto& r : results) {
      if (r.status == service::QueryStatus::kSolved) ++ws.solved;
      lat.push_back(r.latency_s);
      if (out != nullptr) out->push_back(std::move(r));
    }
  }
  const double total_s = timer.elapsed_s();
  ws.qps = static_cast<double>(reqs.size()) / total_s;
  ws.p99_us = quantile_us(lat, 0.99);
  return ws;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_service.json";
  ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const auto attempts = static_cast<std::size_t>(
      args.get_i64("attempts", quick ? 3000 : 12000, 1));
  const auto num_queries = static_cast<std::size_t>(
      args.get_i64("queries", quick ? 64 : 400, 1));
  const auto wave =
      static_cast<std::size_t>(args.get_i64("wave", 16, 1));
  const auto workers =
      static_cast<std::size_t>(args.get_i64("workers", 8, 1));
  const double deadline_ms = args.get_f64("deadline-ms", quick ? 50.0 : 200.0);
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 31));

  // --- workload -----------------------------------------------------------
  const auto e = env::maze_2d();
  planner::PrmParams params;
  params.k_neighbors = 8;
  params.resolution = 0.5;
  planner::Prm prm(*e, params);
  WallTimer build_timer;
  prm.build(attempts, seed);
  const planner::Roadmap roadmap = prm.roadmap();
  std::printf("# workload maze_2d attempts=%zu |V|=%zu |E|=%zu (%.2fs)\n",
              attempts, roadmap.num_vertices(), roadmap.num_edges(),
              build_timer.elapsed_s());

  Xoshiro256ss rng(seed + 1);
  std::vector<service::QueryRequest> reqs;
  while (reqs.size() < num_queries) {
    service::QueryRequest q;
    q.start = e->space().sample(rng);
    q.goal = e->space().sample(rng);
    if (!e->validity().valid(q.start) || !e->validity().valid(q.goal))
      continue;
    q.k = params.k_neighbors;
    reqs.push_back(std::move(q));
  }

  // --- baseline: sequential query_roadmap per query -----------------------
  // Each call rebuilds its k-NN finder from scratch — the per-query cost
  // the engine amortizes across the whole epoch.
  std::vector<std::optional<std::vector<cspace::Config>>> baseline;
  baseline.reserve(reqs.size());
  WallTimer base_timer;
  for (const auto& q : reqs)
    baseline.push_back(planner::query_roadmap(*e, roadmap, q.start, q.goal,
                                              q.k, params.resolution));
  const double baseline_s = base_timer.elapsed_s();
  const double baseline_qps = static_cast<double>(reqs.size()) / baseline_s;
  std::size_t baseline_solved = 0;
  for (const auto& p : baseline) baseline_solved += p.has_value() ? 1 : 0;
  std::printf("baseline: %zu queries, %zu solved, %.1f qps\n", reqs.size(),
              baseline_solved, baseline_qps);

  // --- engine: batched serving at `workers` -------------------------------
  service::SnapshotPool pool;
  pool.publish(planner::Roadmap(roadmap));
  runtime::MetricsRegistry metrics;
  service::QueryEngineConfig cfg;
  cfg.workers = workers;
  cfg.resolution = params.resolution;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  // Warm pass builds the per-epoch finder; the timed pass measures steady
  // serving (a long-lived service is warm by definition).
  engine.run_batch(std::span<const service::QueryRequest>(reqs.data(), 1));
  std::vector<service::QueryResult> engine_results;
  engine_results.reserve(reqs.size());
  const WaveStats served = serve(engine, reqs, wave, &engine_results);
  const double speedup = served.qps / baseline_qps;
  std::printf("engine:   %zu queries, %zu solved, %.1f qps -> %.2fx vs "
              "baseline (wave=%zu, workers=%zu)\n",
              reqs.size(), served.solved, served.qps, speedup, wave, workers);

  // Equality gate: batched answers must be bit-identical to the baseline.
  bool identical = true;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const bool engine_solved =
        engine_results[i].status == service::QueryStatus::kSolved;
    if (engine_solved != baseline[i].has_value() ||
        (engine_solved && !same_path(engine_results[i].path, *baseline[i]))) {
      std::fprintf(stderr, "FAIL: engine path differs from baseline at "
                   "query %zu\n", i);
      identical = false;
    }
  }

  // --- deadline run -------------------------------------------------------
  // Deadlines are armed per wave right before serving so every query gets
  // the same budget regardless of its position in the run.
  auto budget = reqs;
  std::vector<double> in_deadline_lat;
  std::size_t misses = 0;
  for (std::size_t i = 0; i < budget.size(); i += wave) {
    const std::size_t n = std::min(wave, budget.size() - i);
    for (std::size_t j = i; j < i + n; ++j)
      budget[j].deadline = runtime::Deadline::after_ms(deadline_ms);
    const auto results = engine.run_batch(
        std::span<const service::QueryRequest>(budget.data() + i, n));
    for (const auto& r : results) {
      if (r.degraded)
        ++misses;
      else
        in_deadline_lat.push_back(r.latency_s);
    }
  }
  const double miss_rate =
      static_cast<double>(misses) / static_cast<double>(budget.size());
  const double dl_p50 = quantile_us(in_deadline_lat, 0.50);
  const double dl_p99 = quantile_us(in_deadline_lat, 0.99);
  const double dl_p999 = quantile_us(in_deadline_lat, 0.999);
  std::printf("deadline: budget %.0fms, %zu/%zu missed (%.1f%%), in-deadline "
              "p50 %.0fus p99 %.0fus p999 %.0fus\n",
              deadline_ms, misses, budget.size(), miss_rate * 100.0, dl_p50,
              dl_p99, dl_p999);

  // --- churn: serve while a publisher swaps epochs underneath -------------
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> publishes{0};
  std::thread publisher([&] {
    std::uint64_t pseed = seed + 100;
    while (!stop.load(std::memory_order_acquire)) {
      service::densify_and_publish(pool, *e, params, quick ? 40 : 150,
                                   pseed++);
      publishes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  bool churn_ok = true;
  std::size_t churn_solved = 0;
  std::uint64_t min_epoch = ~0ull, max_epoch = 0;
  const int churn_waves = quick ? 6 : 20;
  for (int w = 0; w < churn_waves; ++w) {
    const auto results = engine.run_batch(std::span<const
        service::QueryRequest>(reqs.data(), std::min<std::size_t>(wave,
                                                                  reqs.size())));
    for (const auto& r : results) {
      if (r.status != service::QueryStatus::kSolved) continue;
      ++churn_solved;
      min_epoch = std::min(min_epoch, r.epoch);
      max_epoch = std::max(max_epoch, r.epoch);
      if (r.epoch == 0 || r.epoch > pool.published_total()) {
        std::fprintf(stderr, "FAIL: answer tagged unpublished epoch %llu\n",
                     static_cast<unsigned long long>(r.epoch));
        churn_ok = false;
      }
      if (!planner::path_valid(*e, r.path, params.resolution)) {
        std::fprintf(stderr, "FAIL: invalid path served during churn\n");
        churn_ok = false;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  publisher.join();

  // Reclamation gate: with traffic stopped and no refs held, only the
  // current epoch may remain resident.
  const std::uint64_t live_end = pool.live_slots();
  const std::uint64_t reclaimed = pool.reclaimed_total();
  if (live_end != 1) {
    std::fprintf(stderr, "FAIL: %llu snapshots resident after churn "
                 "(leaked retired epochs)\n",
                 static_cast<unsigned long long>(live_end));
    churn_ok = false;
  }
  if (churn_solved == 0) {
    std::fprintf(stderr, "FAIL: no queries solved during churn\n");
    churn_ok = false;
  }
  std::printf("churn:    %llu publishes, %zu solved across epochs "
              "[%llu, %llu], %llu reclaimed, %llu resident\n",
              static_cast<unsigned long long>(publishes.load()), churn_solved,
              static_cast<unsigned long long>(min_epoch),
              static_cast<unsigned long long>(max_epoch),
              static_cast<unsigned long long>(reclaimed),
              static_cast<unsigned long long>(live_end));

  // --- sweep: load x workers x churn --------------------------------------
  TextTable table({"workers", "wave", "churn", "qps", "p99 us"});
  struct SweepCell {
    std::size_t workers, wave;
    bool churn;
    WaveStats ws;
  };
  std::vector<SweepCell> sweep;
  const std::vector<std::size_t> sweep_workers =
      quick ? std::vector<std::size_t>{1, workers}
            : std::vector<std::size_t>{1, 2, 4, workers};
  const std::vector<std::size_t> sweep_waves =
      quick ? std::vector<std::size_t>{4, wave}
            : std::vector<std::size_t>{1, 4, wave, 2 * wave};
  for (const bool churn : {false, true}) {
    std::atomic<bool> sstop{false};
    std::thread spub;
    if (churn)
      spub = std::thread([&] {
        std::uint64_t pseed = seed + 500;
        while (!sstop.load(std::memory_order_acquire))
          service::densify_and_publish(pool, *e, params, quick ? 40 : 150,
                                       pseed++);
      });
    for (const std::size_t sw : sweep_workers) {
      for (const std::size_t sv : sweep_waves) {
        runtime::MetricsRegistry sink;
        service::QueryEngineConfig scfg = cfg;
        scfg.workers = sw;
        scfg.metrics = &sink;
        service::QueryEngine se(*e, pool, scfg);
        const auto ws = serve(se, reqs, sv);
        sweep.push_back({sw, sv, churn, ws});
        table.row()
            .num(static_cast<std::uint64_t>(sw))
            .num(static_cast<std::uint64_t>(sv))
            .cell(churn ? "on" : "off")
            .num(ws.qps, 1)
            .num(ws.p99_us, 0);
      }
    }
    if (churn) {
      sstop.store(true, std::memory_order_release);
      spub.join();
    }
  }
  std::printf("\nserving throughput sweep\n");
  table.print();

  engine.publish_pool_metrics();

  // --- report -------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"service\",\n  \"quick\": %s,\n"
      "  \"workload\": {\n"
      "    \"env\": \"maze_2d\",\n    \"vertices\": %zu,\n"
      "    \"edges\": %zu,\n    \"queries\": %zu\n  },\n"
      "  \"baseline\": {\n"
      "    \"qps\": %.1f,\n    \"solved\": %zu\n  },\n"
      "  \"engine\": {\n"
      "    \"workers\": %zu,\n    \"wave\": %zu,\n    \"qps\": %.1f,\n"
      "    \"solved\": %zu,\n    \"speedup\": %.3f,\n"
      "    \"paths_bit_identical\": %s\n  },\n"
      "  \"deadline\": {\n"
      "    \"budget_ms\": %.1f,\n    \"misses\": %zu,\n"
      "    \"miss_rate\": %.4f,\n    \"in_deadline_p50_us\": %.1f,\n"
      "    \"in_deadline_p99_us\": %.1f,\n"
      "    \"in_deadline_p999_us\": %.1f\n  },\n"
      "  \"churn\": {\n"
      "    \"publishes\": %llu,\n    \"solved\": %zu,\n"
      "    \"epoch_min\": %llu,\n    \"epoch_max\": %llu,\n"
      "    \"reclaimed\": %llu,\n    \"resident_end\": %llu,\n"
      "    \"ok\": %s\n  },\n"
      "  \"sweep\": [\n",
      quick ? "true" : "false", roadmap.num_vertices(), roadmap.num_edges(),
      reqs.size(), baseline_qps, baseline_solved, workers, wave, served.qps,
      served.solved, speedup, identical ? "true" : "false", deadline_ms,
      misses, miss_rate, dl_p50, dl_p99, dl_p999,
      static_cast<unsigned long long>(publishes.load()), churn_solved,
      static_cast<unsigned long long>(min_epoch),
      static_cast<unsigned long long>(max_epoch),
      static_cast<unsigned long long>(reclaimed),
      static_cast<unsigned long long>(live_end), churn_ok ? "true" : "false");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& c = sweep[i];
    std::fprintf(f,
                 "    {\"workers\": %zu, \"wave\": %zu, \"churn\": %s, "
                 "\"qps\": %.1f, \"p99_us\": %.1f}%s\n",
                 c.workers, c.wave, c.churn ? "true" : "false", c.ws.qps,
                 c.ws.p99_us, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  bench::write_metrics_member(f, metrics);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // --- gates --------------------------------------------------------------
  int rc = 0;
  if (!identical) rc = 1;
  if (!churn_ok) rc = 1;
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: batched serving %.2fx vs sequential baseline at "
                 "%zu workers — gate is 1.5x\n",
                 speedup, workers);
    rc = 1;
  }
  if (served.solved != baseline_solved) {
    std::fprintf(stderr, "FAIL: engine solved %zu vs baseline %zu\n",
                 served.solved, baseline_solved);
    rc = 1;
  }
  return rc;
}
