// Tracing overhead bench: the same shared-memory parallel PRM build run
// untraced and traced, best-of-N wall time each way. The instrumentation
// budget for the tracing layer is <= 3% slowdown with rings attached
// (DESIGN.md §5e); this harness measures it and records the verdict in
// BENCH_trace.json (path overridable as argv[1]).
//
// The two builds must also produce identical roadmaps — tracing draws no
// randomness and never changes control flow — so the bench doubles as an
// end-to-end check of the "disabled means absent / enabled means inert"
// contract on real planner work. A roadmap mismatch is a hard failure;
// the overhead number is recorded but not gated here (wall-clock noise on
// shared CI boxes is larger than the effect — the JSON is the record).

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/parallel_build.hpp"
#include "env/builders.hpp"
#include "runtime/trace.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace pmpl;

namespace {

struct BuildOutcome {
  double wall_s = 0.0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
};

BuildOutcome run_build(const env::Environment& e, const core::RegionGrid& grid,
                       std::size_t attempts, std::uint32_t workers,
                       std::uint64_t seed, bool traced) {
  runtime::Tracer tracer;
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = attempts;
  cfg.seed = seed;
  cfg.workers = workers;
  if (traced) cfg.tracer = &tracer;
  WallTimer t;
  const auto built = core::parallel_build_prm(e, grid, cfg);
  BuildOutcome out;
  out.wall_s = t.elapsed_s();
  out.vertices = built.roadmap.num_vertices();
  out.edges = built.roadmap.num_edges();
  out.events = tracer.total_events();
  out.dropped = tracer.total_dropped();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional argv[1] (when not a flag) overrides the output path; flags
  // are parsed from the full argv (the parser skips positionals).
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_trace.json";
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 20000, 1));
  const auto workers =
      static_cast<std::uint32_t>(args.get_i64("workers", 4, 1, 256));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 7));
  constexpr int kReps = 3;
  constexpr double kThreshold = 0.03;

  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 64, false);

  std::printf("# trace overhead: %zu attempts, %u workers, best of %d\n",
              attempts, workers, kReps);
  BuildOutcome untraced, traced;
  untraced.wall_s = traced.wall_s = 1e100;
  // Interleave the modes so drift (thermal, other tenants) hits both.
  for (int rep = 0; rep < kReps; ++rep) {
    const auto u = run_build(*e, grid, attempts, workers, seed, false);
    const auto t = run_build(*e, grid, attempts, workers, seed, true);
    std::printf("rep %d: untraced %.4fs, traced %.4fs (%llu events, "
                "%llu dropped)\n",
                rep, u.wall_s, t.wall_s,
                static_cast<unsigned long long>(t.events),
                static_cast<unsigned long long>(t.dropped));
    if (u.vertices != t.vertices || u.edges != t.edges) {
      std::fprintf(stderr,
                   "FAIL: traced build differs (|V| %zu vs %zu, |E| %zu vs "
                   "%zu) — tracing must not perturb the roadmap\n",
                   u.vertices, t.vertices, u.edges, t.edges);
      return 1;
    }
    if (u.wall_s < untraced.wall_s) untraced = u;
    if (t.wall_s < traced.wall_s) traced = t;
  }

  const double overhead =
      untraced.wall_s > 0.0 ? traced.wall_s / untraced.wall_s - 1.0 : 0.0;
  std::printf("best: untraced %.4fs, traced %.4fs -> overhead %+.2f%% "
              "(budget %.0f%%)\n",
              untraced.wall_s, traced.wall_s, 100.0 * overhead,
              100.0 * kThreshold);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"trace_overhead\",\n"
               "  \"attempts\": %zu,\n  \"workers\": %u,\n  \"reps\": %d,\n"
               "  \"untraced_wall_s\": %.6f,\n  \"traced_wall_s\": %.6f,\n"
               "  \"overhead_frac\": %.6f,\n  \"threshold_frac\": %.2f,\n"
               "  \"within_threshold\": %s,\n"
               "  \"trace_events\": %llu,\n  \"trace_dropped\": %llu,\n"
               "  \"roadmap_vertices\": %zu,\n  \"roadmap_edges\": %zu\n}\n",
               attempts, workers, kReps, untraced.wall_s, traced.wall_s,
               overhead, kThreshold, overhead <= kThreshold ? "true" : "false",
               static_cast<unsigned long long>(traced.events),
               static_cast<unsigned long long>(traced.dropped),
               traced.vertices, traced.edges);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
