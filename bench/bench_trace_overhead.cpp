// Tracing overhead bench: the same shared-memory parallel PRM build run
// untraced and traced, best-of-N wall time each way. The instrumentation
// budget for the tracing layer is <= 3% slowdown with rings attached
// (DESIGN.md §5e); this harness measures it and records the verdict in
// BENCH_trace.json (path overridable as argv[1]).
//
// The two builds must also produce identical roadmaps — tracing draws no
// randomness and never changes control flow — so the bench doubles as an
// end-to-end check of the "disabled means absent / enabled means inert"
// contract on real planner work. A roadmap mismatch is a hard failure;
// the overhead number is recorded but not gated here (wall-clock noise on
// shared CI boxes is larger than the effect — the JSON is the record).
//
// A second section measures the distributed path: the same fault-free
// socket cluster run with and without --trace (frame flows, clock sync,
// protocol flows, flight-recorder writes all active when tracing). The
// cluster overhead budget is the same <= 3%, recorded as
// cluster_overhead_frac / cluster_within_threshold, and traced vs
// untraced roadmap hashes must match exactly.

#include <algorithm>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "core/parallel_build.hpp"
#include "env/builders.hpp"
#include "loadbal/ws_cluster.hpp"
#include "runtime/trace.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace pmpl;

namespace {

struct BuildOutcome {
  double wall_s = 0.0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
};

BuildOutcome run_build(const env::Environment& e, const core::RegionGrid& grid,
                       std::size_t attempts, std::uint32_t workers,
                       std::uint64_t seed, bool traced) {
  runtime::Tracer tracer;
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = attempts;
  cfg.seed = seed;
  cfg.workers = workers;
  if (traced) cfg.tracer = &tracer;
  WallTimer t;
  const auto built = core::parallel_build_prm(e, grid, cfg);
  BuildOutcome out;
  out.wall_s = t.elapsed_s();
  out.vertices = built.roadmap.num_vertices();
  out.edges = built.roadmap.num_edges();
  out.events = tracer.total_events();
  out.dropped = tracer.total_dropped();
  return out;
}

struct ClusterOutcome {
  bool ok = false;
  double wall_s = 0.0;  // slowest rank's finish time, not harness wall
  std::uint64_t roadmap = 0;
};

ClusterOutcome run_cluster(const loadbal::ClusterItems& work,
                           std::uint32_t ranks, std::uint64_t seed,
                           const std::string& trace_prefix) {
  loadbal::ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.trace_path = trace_prefix;
  cfg.timeout_s = 60.0;
  const auto real = loadbal::run_ws_cluster(cfg);
  ClusterOutcome out;
  out.ok = real.ok && real.terminated_all && real.all_done;
  out.roadmap = real.roadmap;
  // Per-rank finish time isolates protocol+tracing cost from fork/join
  // harness noise (mirrors bench_transport's wall measure).
  for (std::uint32_t r = 0; r < ranks; ++r)
    if (real.reported[r] && real.ranks[r].finish_s > out.wall_s)
      out.wall_s = real.ranks[r].finish_s;
  if (!trace_prefix.empty())
    for (std::uint32_t r = 0; r < ranks; ++r)
      ::unlink((trace_prefix + ".r" + std::to_string(r) + ".g0.json").c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional argv[1] (when not a flag) overrides the output path; flags
  // are parsed from the full argv (the parser skips positionals).
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_trace.json";
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 20000, 1));
  const auto workers =
      static_cast<std::uint32_t>(args.get_i64("workers", 4, 1, 256));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 7));
  constexpr int kReps = 3;
  constexpr double kThreshold = 0.03;

  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 64, false);

  std::printf("# trace overhead: %zu attempts, %u workers, best of %d\n",
              attempts, workers, kReps);
  BuildOutcome untraced, traced;
  untraced.wall_s = traced.wall_s = 1e100;
  // Interleave the modes so drift (thermal, other tenants) hits both.
  for (int rep = 0; rep < kReps; ++rep) {
    const auto u = run_build(*e, grid, attempts, workers, seed, false);
    const auto t = run_build(*e, grid, attempts, workers, seed, true);
    std::printf("rep %d: untraced %.4fs, traced %.4fs (%llu events, "
                "%llu dropped)\n",
                rep, u.wall_s, t.wall_s,
                static_cast<unsigned long long>(t.events),
                static_cast<unsigned long long>(t.dropped));
    if (u.vertices != t.vertices || u.edges != t.edges) {
      std::fprintf(stderr,
                   "FAIL: traced build differs (|V| %zu vs %zu, |E| %zu vs "
                   "%zu) — tracing must not perturb the roadmap\n",
                   u.vertices, t.vertices, u.edges, t.edges);
      return 1;
    }
    if (u.wall_s < untraced.wall_s) untraced = u;
    if (t.wall_s < traced.wall_s) traced = t;
  }

  const double overhead =
      untraced.wall_s > 0.0 ? traced.wall_s / untraced.wall_s - 1.0 : 0.0;
  std::printf("best: untraced %.4fs, traced %.4fs -> overhead %+.2f%% "
              "(budget %.0f%%)\n",
              untraced.wall_s, traced.wall_s, 100.0 * overhead,
              100.0 * kThreshold);

  // Distributed section: the socket cluster with the full tracing stack
  // (frame flows, clock sync, flight recorder) vs tracing off.
  const auto cluster_ranks =
      static_cast<std::uint32_t>(args.get_i64("cluster-ranks", 4, 2, 16));
  const auto cluster_regions = static_cast<std::uint32_t>(
      args.get_i64("cluster-regions", 64, 1, 1 << 20));
  const auto cluster_work =
      loadbal::make_cluster_items(seed, cluster_regions, cluster_ranks);
  const std::string trace_prefix =
      "/tmp/bench_trace_overhead." + std::to_string(::getpid());
  std::printf("# cluster overhead: %u ranks x %u regions, best of %d\n",
              cluster_ranks, cluster_regions, kReps);
  ClusterOutcome cu, ct;
  cu.wall_s = ct.wall_s = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto u = run_cluster(cluster_work, cluster_ranks, seed, "");
    const auto t = run_cluster(cluster_work, cluster_ranks, seed,
                               trace_prefix);
    std::printf("rep %d: untraced %.4fs, traced %.4fs\n", rep, u.wall_s,
                t.wall_s);
    if (!u.ok || !t.ok) {
      std::fprintf(stderr, "FAIL: cluster run did not terminate cleanly\n");
      return 1;
    }
    if (u.roadmap != t.roadmap) {
      std::fprintf(stderr,
                   "FAIL: traced cluster roadmap %016llx differs from "
                   "untraced %016llx — tracing must not perturb the run\n",
                   static_cast<unsigned long long>(t.roadmap),
                   static_cast<unsigned long long>(u.roadmap));
      return 1;
    }
    if (u.wall_s < cu.wall_s) cu = u;
    if (t.wall_s < ct.wall_s) ct = t;
  }
  const double cluster_overhead =
      cu.wall_s > 0.0 ? ct.wall_s / cu.wall_s - 1.0 : 0.0;
  std::printf("best: untraced %.4fs, traced %.4fs -> overhead %+.2f%% "
              "(budget %.0f%%)\n",
              cu.wall_s, ct.wall_s, 100.0 * cluster_overhead,
              100.0 * kThreshold);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"trace_overhead\",\n"
               "  \"attempts\": %zu,\n  \"workers\": %u,\n  \"reps\": %d,\n"
               "  \"untraced_wall_s\": %.6f,\n  \"traced_wall_s\": %.6f,\n"
               "  \"overhead_frac\": %.6f,\n  \"threshold_frac\": %.2f,\n"
               "  \"within_threshold\": %s,\n"
               "  \"trace_events\": %llu,\n  \"trace_dropped\": %llu,\n"
               "  \"roadmap_vertices\": %zu,\n  \"roadmap_edges\": %zu,\n"
               "  \"cluster_ranks\": %u,\n  \"cluster_regions\": %u,\n"
               "  \"cluster_untraced_wall_s\": %.6f,\n"
               "  \"cluster_traced_wall_s\": %.6f,\n"
               "  \"cluster_overhead_frac\": %.6f,\n"
               "  \"cluster_within_threshold\": %s,\n"
               "  \"cluster_roadmap\": \"%016llx\"\n}\n",
               attempts, workers, kReps, untraced.wall_s, traced.wall_s,
               overhead, kThreshold, overhead <= kThreshold ? "true" : "false",
               static_cast<unsigned long long>(traced.events),
               static_cast<unsigned long long>(traced.dropped),
               traced.vertices, traced.edges, cluster_ranks, cluster_regions,
               cu.wall_s, ct.wall_s, cluster_overhead,
               cluster_overhead <= kThreshold ? "true" : "false",
               static_cast<unsigned long long>(ct.roadmap));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
