// Transport comparison bench: the same seeded work-stealing scenarios run
// through the DES (simulated transport) and through real forked processes
// over Unix-domain sockets, holding the two to the sim-vs-real gate
// (identical roadmap hashes; see DESIGN.md §5h) and reporting wall time,
// protocol-event counts and transport health side by side.
//
// Scenarios: fault-free, SIGKILL-one-rank, lossy links. Emits
// machine-readable BENCH_transport.json (path overridable as argv[1])
// with the shared "metrics" schema: per-scenario protocol counters and
// nested transport health (reconnects, retransmits, frames dropped,
// heartbeat misses) published through the metrics registry.

#include <cstdio>
#include <string>
#include <vector>

#include "loadbal/ws_cluster.hpp"
#include "loadbal/ws_engine.hpp"
#include "runtime/fault_io.hpp"
#include "runtime/metrics_registry.hpp"

namespace {

using namespace pmpl;

constexpr std::uint32_t kRanks = 4;
constexpr std::uint32_t kRegions = 64;
constexpr std::uint64_t kSeed = 42;

struct Scenario {
  std::string name;
  runtime::FaultPlan plan;
};

struct Row {
  std::string scenario;
  // DES side.
  bool des_terminated = false;
  double des_makespan_s = 0.0;
  std::uint64_t des_hash = 0;
  std::uint64_t des_grants = 0;
  // Real side.
  bool real_terminated = false;
  bool real_all_done = false;
  double real_wall_s = 0.0;
  std::uint64_t real_hash = 0;
  std::uint64_t real_grants = 0;
  std::uint64_t real_retransmits = 0;
  std::uint64_t real_recovered = 0;
  std::uint64_t real_frames_dropped = 0;
  bool gate = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_transport.json";
  const auto work = loadbal::make_cluster_items(kSeed, kRegions, kRanks);

  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault_free", {}});
  {
    runtime::FaultPlan p;
    p.seed = 99;
    p.crash(1, 0.10);
    scenarios.push_back({"sigkill_rank1", p});
  }
  {
    runtime::FaultPlan p;
    p.seed = 5;
    p.lossy_links(0.25, 0.0, 0.0, 0.4);
    p.lose_tokens(0.25, 0.0, 0.4);
    scenarios.push_back({"lossy_links", p});
  }

  runtime::MetricsRegistry metrics;
  std::vector<Row> rows;
  std::printf("%-14s %10s %10s %7s %7s %8s %6s %6s\n", "scenario",
              "des mksp", "real wall", "grants", "grants", "retrans",
              "recov", "gate");
  std::printf("%-14s %10s %10s %7s %7s %8s %6s %6s\n", "", "(sim-s)",
              "(s)", "des", "real", "real", "real", "");
  for (const auto& sc : scenarios) {
    Row row;
    row.scenario = sc.name;

    loadbal::WsConfig wcfg;
    wcfg.seed = kSeed;
    wcfg.rand_k = 2;
    wcfg.faults = sc.plan;
    const auto des =
        loadbal::simulate_work_stealing(work.items, work.initial, kRanks, wcfg);
    row.des_terminated = des.terminated;
    row.des_makespan_s = des.makespan_s;
    row.des_grants = des.steal_grants;
    row.des_hash = loadbal::roadmap_hash(kSeed, loadbal::completed_set(des));

    loadbal::ClusterConfig cfg;
    cfg.ranks = kRanks;
    cfg.rank.items = work.items;
    cfg.rank.initial = work.initial;
    cfg.rank.seed = kSeed;
    cfg.faults = sc.plan;
    cfg.timeout_s = 60.0;
    const auto real = loadbal::run_ws_cluster(cfg);
    row.real_terminated = real.terminated_all;
    row.real_all_done = real.all_done;
    row.real_hash = real.roadmap;
    row.real_grants = real.steal_grants;
    row.real_retransmits = real.grant_retransmits;
    row.real_recovered = real.regions_recovered;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      if (!real.reported[r]) continue;
      if (real.ranks[r].finish_s > row.real_wall_s)
        row.real_wall_s = real.ranks[r].finish_s;
      row.real_frames_dropped += real.ranks[r].transport.frames_dropped;
      // Shared metrics schema: per-scenario, per-rank protocol health.
      publish(metrics, real.ranks[r],
              sc.name + "/rank" + std::to_string(r) + "/");
    }
    row.gate = real.ok && real.terminated_all && row.des_hash == row.real_hash;

    std::printf("%-14s %10.4f %10.3f %7llu %7llu %8llu %6llu %6s\n",
                row.scenario.c_str(), row.des_makespan_s, row.real_wall_s,
                static_cast<unsigned long long>(row.des_grants),
                static_cast<unsigned long long>(row.real_grants),
                static_cast<unsigned long long>(row.real_retransmits),
                static_cast<unsigned long long>(row.real_recovered),
                row.gate ? "MATCH" : "FAIL");
    rows.push_back(row);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"transport\",\n");
  std::fprintf(f, "  \"ranks\": %u,\n  \"regions\": %u,\n  \"seed\": %llu,\n",
               kRanks, kRegions, static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"des_terminated\": %s, "
        "\"des_makespan_s\": %.6f, \"des_roadmap\": \"%016llx\", "
        "\"des_grants\": %llu, \"real_terminated\": %s, "
        "\"real_all_done\": %s, \"real_wall_s\": %.6f, "
        "\"real_roadmap\": \"%016llx\", \"real_grants\": %llu, "
        "\"real_retransmits\": %llu, \"real_recovered\": %llu, "
        "\"real_frames_dropped\": %llu, \"gate\": %s}%s\n",
        r.scenario.c_str(), r.des_terminated ? "true" : "false",
        r.des_makespan_s, static_cast<unsigned long long>(r.des_hash),
        static_cast<unsigned long long>(r.des_grants),
        r.real_terminated ? "true" : "false",
        r.real_all_done ? "true" : "false", r.real_wall_s,
        static_cast<unsigned long long>(r.real_hash),
        static_cast<unsigned long long>(r.real_grants),
        static_cast<unsigned long long>(r.real_retransmits),
        static_cast<unsigned long long>(r.real_recovered),
        static_cast<unsigned long long>(r.real_frames_dropped),
        r.gate ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.to_json().c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  for (const Row& r : rows)
    if (!r.gate) return 1;
  return 0;
}
