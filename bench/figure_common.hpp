#pragma once
/// \file figure_common.hpp
/// Shared plumbing for the figure-regeneration harnesses: standard
/// workload construction, strategy sweeps, and table output.
///
/// Every harness accepts:
///   --regions N      region-graph size (default per figure)
///   --attempts N     total sampling attempts / tree nodes
///   --seed S         global seed
///   --full           larger budgets (closer to the paper's scale)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/prm_driver.hpp"
#include "core/rrt_driver.hpp"
#include "env/builders.hpp"
#include "runtime/metrics_registry.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pmpl::bench {

/// Named strategy list used across the PRM figures.
inline const std::vector<core::Strategy> kPrmStrategies = {
    core::Strategy::kNoLB, core::Strategy::kRepartition,
    core::Strategy::kHybridWS, core::Strategy::kRand8WS};

/// Build (and time) a PRM workload for an environment.
inline core::Workload make_prm_workload(const env::Environment& e,
                                        const core::RegionGrid& grid,
                                        std::size_t attempts,
                                        std::uint64_t seed,
                                        bool announce = true) {
  WallTimer timer;
  core::PrmWorkloadConfig cfg;
  cfg.total_attempts = attempts;
  cfg.seed = seed;
  auto w = core::build_prm_workload(e, grid, cfg);
  if (announce) {
    std::printf(
        "# workload %-12s regions=%zu attempts=%zu |V|=%zu |E|=%zu "
        "(measured in %.2fs wall)\n",
        e.name().c_str(), grid.size(), attempts, w.roadmap.num_vertices(),
        w.roadmap.num_edges(), timer.elapsed_s());
  }
  return w;
}

/// One row of a strategy x procs sweep.
struct SweepRow {
  core::Strategy strategy;
  std::uint32_t procs;
  core::PrmRunResult result;
};

inline std::vector<SweepRow> sweep_prm(
    const core::Workload& w, const std::vector<std::uint32_t>& proc_counts,
    const std::vector<core::Strategy>& strategies,
    const runtime::ClusterSpec& cluster, std::uint64_t seed) {
  std::vector<SweepRow> rows;
  for (const std::uint32_t p : proc_counts) {
    for (const core::Strategy s : strategies) {
      core::PrmRunConfig cfg;
      cfg.procs = p;
      cfg.strategy = s;
      cfg.cluster = cluster;
      cfg.seed = seed;
      rows.push_back({s, p, core::simulate_prm_run(w, cfg)});
    }
  }
  return rows;
}

/// Print an execution-time table: rows = proc counts, cols = strategies.
inline void print_time_table(const std::string& title,
                             const std::vector<SweepRow>& rows,
                             const std::vector<std::uint32_t>& proc_counts,
                             const std::vector<core::Strategy>& strategies) {
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> header{"procs"};
  for (const auto s : strategies) header.push_back(core::to_string(s));
  header.push_back("best speedup");
  TextTable table(header);
  for (const std::uint32_t p : proc_counts) {
    table.row().num(static_cast<int>(p));
    double base = 0.0, best = 1e300;
    for (const auto s : strategies) {
      for (const auto& r : rows)
        if (r.procs == p && r.strategy == s) {
          table.num(r.result.total_s, 3);
          if (s == core::Strategy::kNoLB) base = r.result.total_s;
          best = std::min(best, r.result.total_s);
        }
    }
    table.cell(base > 0.0 ? [&] {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx", base / best);
      return std::string(buf);
    }() : "-");
  }
  table.print();
}

/// Shared `"metrics"` member for BENCH_*.json files: every bench embeds a
/// MetricsRegistry's flat snapshot under this one key, so downstream
/// tooling reads a single schema (counters/gauges/histograms) regardless
/// of which bench produced the file. Call between two members of the
/// top-level JSON object; writes no trailing comma or newline.
inline void write_metrics_member(std::FILE* f,
                                 const runtime::MetricsRegistry& reg) {
  std::fprintf(f, "  \"metrics\": %s", reg.to_json().c_str());
}

}  // namespace pmpl::bench
