
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_partition.cpp" "bench/CMakeFiles/bench_ablation_partition.dir/bench_ablation_partition.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_partition.dir/bench_ablation_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmpl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_cspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_loadbal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
