# Empty dependencies file for bench_ablation_sampler.
# This may be replaced when dependencies are built.
