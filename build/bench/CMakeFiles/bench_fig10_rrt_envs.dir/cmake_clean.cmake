file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rrt_envs.dir/bench_fig10_rrt_envs.cpp.o"
  "CMakeFiles/bench_fig10_rrt_envs.dir/bench_fig10_rrt_envs.cpp.o.d"
  "bench_fig10_rrt_envs"
  "bench_fig10_rrt_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rrt_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
