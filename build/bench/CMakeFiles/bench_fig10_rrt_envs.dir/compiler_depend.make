# Empty compiler generated dependencies file for bench_fig10_rrt_envs.
# This may be replaced when dependencies are built.
