file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_prm_medcube.dir/bench_fig5_prm_medcube.cpp.o"
  "CMakeFiles/bench_fig5_prm_medcube.dir/bench_fig5_prm_medcube.cpp.o.d"
  "bench_fig5_prm_medcube"
  "bench_fig5_prm_medcube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_prm_medcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
