# Empty compiler generated dependencies file for bench_fig5_prm_medcube.
# This may be replaced when dependencies are built.
