file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_prm_scale.dir/bench_fig6_prm_scale.cpp.o"
  "CMakeFiles/bench_fig6_prm_scale.dir/bench_fig6_prm_scale.cpp.o.d"
  "bench_fig6_prm_scale"
  "bench_fig6_prm_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_prm_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
