# Empty compiler generated dependencies file for bench_fig6_prm_scale.
# This may be replaced when dependencies are built.
