file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_prm_envs.dir/bench_fig8_prm_envs.cpp.o"
  "CMakeFiles/bench_fig8_prm_envs.dir/bench_fig8_prm_envs.cpp.o.d"
  "bench_fig8_prm_envs"
  "bench_fig8_prm_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_prm_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
