# Empty dependencies file for bench_fig8_prm_envs.
# This may be replaced when dependencies are built.
