# Empty dependencies file for bench_fig9_steal_tasks.
# This may be replaced when dependencies are built.
