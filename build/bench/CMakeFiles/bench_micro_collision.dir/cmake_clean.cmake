file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_collision.dir/bench_micro_collision.cpp.o"
  "CMakeFiles/bench_micro_collision.dir/bench_micro_collision.cpp.o.d"
  "bench_micro_collision"
  "bench_micro_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
