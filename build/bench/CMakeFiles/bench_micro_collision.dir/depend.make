# Empty dependencies file for bench_micro_collision.
# This may be replaced when dependencies are built.
