file(REMOVE_RECURSE
  "CMakeFiles/multiquery.dir/multiquery.cpp.o"
  "CMakeFiles/multiquery.dir/multiquery.cpp.o.d"
  "multiquery"
  "multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
