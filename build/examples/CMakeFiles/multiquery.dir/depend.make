# Empty dependencies file for multiquery.
# This may be replaced when dependencies are built.
