file(REMOVE_RECURSE
  "CMakeFiles/planar_arm.dir/planar_arm.cpp.o"
  "CMakeFiles/planar_arm.dir/planar_arm.cpp.o.d"
  "planar_arm"
  "planar_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planar_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
