# Empty compiler generated dependencies file for planar_arm.
# This may be replaced when dependencies are built.
