file(REMOVE_RECURSE
  "CMakeFiles/radial_rrt_exploration.dir/radial_rrt_exploration.cpp.o"
  "CMakeFiles/radial_rrt_exploration.dir/radial_rrt_exploration.cpp.o.d"
  "radial_rrt_exploration"
  "radial_rrt_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radial_rrt_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
