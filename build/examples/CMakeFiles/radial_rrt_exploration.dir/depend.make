# Empty dependencies file for radial_rrt_exploration.
# This may be replaced when dependencies are built.
