file(REMOVE_RECURSE
  "CMakeFiles/warehouse_navigation.dir/warehouse_navigation.cpp.o"
  "CMakeFiles/warehouse_navigation.dir/warehouse_navigation.cpp.o.d"
  "warehouse_navigation"
  "warehouse_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
