file(REMOVE_RECURSE
  "CMakeFiles/pmpl_collision.dir/collision/bvh.cpp.o"
  "CMakeFiles/pmpl_collision.dir/collision/bvh.cpp.o.d"
  "CMakeFiles/pmpl_collision.dir/collision/checker.cpp.o"
  "CMakeFiles/pmpl_collision.dir/collision/checker.cpp.o.d"
  "CMakeFiles/pmpl_collision.dir/collision/shape.cpp.o"
  "CMakeFiles/pmpl_collision.dir/collision/shape.cpp.o.d"
  "libpmpl_collision.a"
  "libpmpl_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
