file(REMOVE_RECURSE
  "libpmpl_collision.a"
)
