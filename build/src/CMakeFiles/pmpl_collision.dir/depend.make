# Empty dependencies file for pmpl_collision.
# This may be replaced when dependencies are built.
