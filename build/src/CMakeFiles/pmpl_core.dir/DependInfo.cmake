
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/parallel_build.cpp" "src/CMakeFiles/pmpl_core.dir/core/parallel_build.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/parallel_build.cpp.o.d"
  "/root/repo/src/core/parallel_build_rrt.cpp" "src/CMakeFiles/pmpl_core.dir/core/parallel_build_rrt.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/parallel_build_rrt.cpp.o.d"
  "/root/repo/src/core/prm_driver.cpp" "src/CMakeFiles/pmpl_core.dir/core/prm_driver.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/prm_driver.cpp.o.d"
  "/root/repo/src/core/radial_regions.cpp" "src/CMakeFiles/pmpl_core.dir/core/radial_regions.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/radial_regions.cpp.o.d"
  "/root/repo/src/core/region_grid.cpp" "src/CMakeFiles/pmpl_core.dir/core/region_grid.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/region_grid.cpp.o.d"
  "/root/repo/src/core/region_weight.cpp" "src/CMakeFiles/pmpl_core.dir/core/region_weight.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/region_weight.cpp.o.d"
  "/root/repo/src/core/rrt_driver.cpp" "src/CMakeFiles/pmpl_core.dir/core/rrt_driver.cpp.o" "gcc" "src/CMakeFiles/pmpl_core.dir/core/rrt_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmpl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_loadbal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_cspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
