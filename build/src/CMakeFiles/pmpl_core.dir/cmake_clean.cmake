file(REMOVE_RECURSE
  "CMakeFiles/pmpl_core.dir/core/parallel_build.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/parallel_build.cpp.o.d"
  "CMakeFiles/pmpl_core.dir/core/parallel_build_rrt.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/parallel_build_rrt.cpp.o.d"
  "CMakeFiles/pmpl_core.dir/core/prm_driver.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/prm_driver.cpp.o.d"
  "CMakeFiles/pmpl_core.dir/core/radial_regions.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/radial_regions.cpp.o.d"
  "CMakeFiles/pmpl_core.dir/core/region_grid.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/region_grid.cpp.o.d"
  "CMakeFiles/pmpl_core.dir/core/region_weight.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/region_weight.cpp.o.d"
  "CMakeFiles/pmpl_core.dir/core/rrt_driver.cpp.o"
  "CMakeFiles/pmpl_core.dir/core/rrt_driver.cpp.o.d"
  "libpmpl_core.a"
  "libpmpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
