file(REMOVE_RECURSE
  "libpmpl_core.a"
)
