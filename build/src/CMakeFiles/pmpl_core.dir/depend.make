# Empty dependencies file for pmpl_core.
# This may be replaced when dependencies are built.
