
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cspace/space.cpp" "src/CMakeFiles/pmpl_cspace.dir/cspace/space.cpp.o" "gcc" "src/CMakeFiles/pmpl_cspace.dir/cspace/space.cpp.o.d"
  "/root/repo/src/cspace/validity.cpp" "src/CMakeFiles/pmpl_cspace.dir/cspace/validity.cpp.o" "gcc" "src/CMakeFiles/pmpl_cspace.dir/cspace/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmpl_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
