file(REMOVE_RECURSE
  "CMakeFiles/pmpl_cspace.dir/cspace/space.cpp.o"
  "CMakeFiles/pmpl_cspace.dir/cspace/space.cpp.o.d"
  "CMakeFiles/pmpl_cspace.dir/cspace/validity.cpp.o"
  "CMakeFiles/pmpl_cspace.dir/cspace/validity.cpp.o.d"
  "libpmpl_cspace.a"
  "libpmpl_cspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_cspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
