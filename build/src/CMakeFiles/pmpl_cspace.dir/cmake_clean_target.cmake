file(REMOVE_RECURSE
  "libpmpl_cspace.a"
)
