# Empty compiler generated dependencies file for pmpl_cspace.
# This may be replaced when dependencies are built.
