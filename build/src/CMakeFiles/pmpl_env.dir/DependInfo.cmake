
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/builders.cpp" "src/CMakeFiles/pmpl_env.dir/env/builders.cpp.o" "gcc" "src/CMakeFiles/pmpl_env.dir/env/builders.cpp.o.d"
  "/root/repo/src/env/env_io.cpp" "src/CMakeFiles/pmpl_env.dir/env/env_io.cpp.o" "gcc" "src/CMakeFiles/pmpl_env.dir/env/env_io.cpp.o.d"
  "/root/repo/src/env/environment.cpp" "src/CMakeFiles/pmpl_env.dir/env/environment.cpp.o" "gcc" "src/CMakeFiles/pmpl_env.dir/env/environment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmpl_cspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
