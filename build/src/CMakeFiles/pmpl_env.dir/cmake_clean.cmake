file(REMOVE_RECURSE
  "CMakeFiles/pmpl_env.dir/env/builders.cpp.o"
  "CMakeFiles/pmpl_env.dir/env/builders.cpp.o.d"
  "CMakeFiles/pmpl_env.dir/env/env_io.cpp.o"
  "CMakeFiles/pmpl_env.dir/env/env_io.cpp.o.d"
  "CMakeFiles/pmpl_env.dir/env/environment.cpp.o"
  "CMakeFiles/pmpl_env.dir/env/environment.cpp.o.d"
  "libpmpl_env.a"
  "libpmpl_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
