file(REMOVE_RECURSE
  "libpmpl_env.a"
)
