# Empty dependencies file for pmpl_env.
# This may be replaced when dependencies are built.
