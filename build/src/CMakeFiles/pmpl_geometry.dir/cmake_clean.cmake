file(REMOVE_RECURSE
  "CMakeFiles/pmpl_geometry.dir/geometry/intersect.cpp.o"
  "CMakeFiles/pmpl_geometry.dir/geometry/intersect.cpp.o.d"
  "libpmpl_geometry.a"
  "libpmpl_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
