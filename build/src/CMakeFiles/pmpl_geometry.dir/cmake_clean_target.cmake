file(REMOVE_RECURSE
  "libpmpl_geometry.a"
)
