# Empty dependencies file for pmpl_geometry.
# This may be replaced when dependencies are built.
