file(REMOVE_RECURSE
  "CMakeFiles/pmpl_graph.dir/graph/components.cpp.o"
  "CMakeFiles/pmpl_graph.dir/graph/components.cpp.o.d"
  "libpmpl_graph.a"
  "libpmpl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
