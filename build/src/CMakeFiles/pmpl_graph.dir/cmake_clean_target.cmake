file(REMOVE_RECURSE
  "libpmpl_graph.a"
)
