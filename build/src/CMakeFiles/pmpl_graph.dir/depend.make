# Empty dependencies file for pmpl_graph.
# This may be replaced when dependencies are built.
