
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadbal/bulk_sync.cpp" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/bulk_sync.cpp.o" "gcc" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/bulk_sync.cpp.o.d"
  "/root/repo/src/loadbal/metrics.cpp" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/metrics.cpp.o" "gcc" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/metrics.cpp.o.d"
  "/root/repo/src/loadbal/partition.cpp" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/partition.cpp.o" "gcc" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/partition.cpp.o.d"
  "/root/repo/src/loadbal/steal_policy.cpp" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/steal_policy.cpp.o" "gcc" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/steal_policy.cpp.o.d"
  "/root/repo/src/loadbal/ws_engine.cpp" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/ws_engine.cpp.o" "gcc" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/ws_engine.cpp.o.d"
  "/root/repo/src/loadbal/ws_threaded.cpp" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/ws_threaded.cpp.o" "gcc" "src/CMakeFiles/pmpl_loadbal.dir/loadbal/ws_threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmpl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
