file(REMOVE_RECURSE
  "CMakeFiles/pmpl_loadbal.dir/loadbal/bulk_sync.cpp.o"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/bulk_sync.cpp.o.d"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/metrics.cpp.o"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/metrics.cpp.o.d"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/partition.cpp.o"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/partition.cpp.o.d"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/steal_policy.cpp.o"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/steal_policy.cpp.o.d"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/ws_engine.cpp.o"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/ws_engine.cpp.o.d"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/ws_threaded.cpp.o"
  "CMakeFiles/pmpl_loadbal.dir/loadbal/ws_threaded.cpp.o.d"
  "libpmpl_loadbal.a"
  "libpmpl_loadbal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_loadbal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
