file(REMOVE_RECURSE
  "libpmpl_loadbal.a"
)
