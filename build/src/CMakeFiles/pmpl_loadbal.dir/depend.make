# Empty dependencies file for pmpl_loadbal.
# This may be replaced when dependencies are built.
