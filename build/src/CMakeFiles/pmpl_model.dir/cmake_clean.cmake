file(REMOVE_RECURSE
  "CMakeFiles/pmpl_model.dir/model/model_env.cpp.o"
  "CMakeFiles/pmpl_model.dir/model/model_env.cpp.o.d"
  "libpmpl_model.a"
  "libpmpl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
