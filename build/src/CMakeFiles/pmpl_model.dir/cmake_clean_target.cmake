file(REMOVE_RECURSE
  "libpmpl_model.a"
)
