# Empty dependencies file for pmpl_model.
# This may be replaced when dependencies are built.
