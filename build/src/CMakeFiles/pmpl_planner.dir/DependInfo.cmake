
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/knn.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/knn.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/knn.cpp.o.d"
  "/root/repo/src/planner/prm.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/prm.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/prm.cpp.o.d"
  "/root/repo/src/planner/query.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/query.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/query.cpp.o.d"
  "/root/repo/src/planner/roadmap_io.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/roadmap_io.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/roadmap_io.cpp.o.d"
  "/root/repo/src/planner/rrt.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/rrt.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/rrt.cpp.o.d"
  "/root/repo/src/planner/samplers.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/samplers.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/samplers.cpp.o.d"
  "/root/repo/src/planner/smoothing.cpp" "src/CMakeFiles/pmpl_planner.dir/planner/smoothing.cpp.o" "gcc" "src/CMakeFiles/pmpl_planner.dir/planner/smoothing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmpl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_cspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
