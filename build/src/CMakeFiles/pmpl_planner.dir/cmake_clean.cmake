file(REMOVE_RECURSE
  "CMakeFiles/pmpl_planner.dir/planner/knn.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/knn.cpp.o.d"
  "CMakeFiles/pmpl_planner.dir/planner/prm.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/prm.cpp.o.d"
  "CMakeFiles/pmpl_planner.dir/planner/query.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/query.cpp.o.d"
  "CMakeFiles/pmpl_planner.dir/planner/roadmap_io.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/roadmap_io.cpp.o.d"
  "CMakeFiles/pmpl_planner.dir/planner/rrt.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/rrt.cpp.o.d"
  "CMakeFiles/pmpl_planner.dir/planner/samplers.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/samplers.cpp.o.d"
  "CMakeFiles/pmpl_planner.dir/planner/smoothing.cpp.o"
  "CMakeFiles/pmpl_planner.dir/planner/smoothing.cpp.o.d"
  "libpmpl_planner.a"
  "libpmpl_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
