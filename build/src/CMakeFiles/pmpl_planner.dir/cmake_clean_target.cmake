file(REMOVE_RECURSE
  "libpmpl_planner.a"
)
