# Empty dependencies file for pmpl_planner.
# This may be replaced when dependencies are built.
