file(REMOVE_RECURSE
  "CMakeFiles/pmpl_runtime.dir/runtime/thread_pool.cpp.o"
  "CMakeFiles/pmpl_runtime.dir/runtime/thread_pool.cpp.o.d"
  "CMakeFiles/pmpl_runtime.dir/runtime/topology.cpp.o"
  "CMakeFiles/pmpl_runtime.dir/runtime/topology.cpp.o.d"
  "libpmpl_runtime.a"
  "libpmpl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
