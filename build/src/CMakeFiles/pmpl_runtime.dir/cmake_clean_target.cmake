file(REMOVE_RECURSE
  "libpmpl_runtime.a"
)
