# Empty compiler generated dependencies file for pmpl_runtime.
# This may be replaced when dependencies are built.
