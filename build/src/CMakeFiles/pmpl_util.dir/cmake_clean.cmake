file(REMOVE_RECURSE
  "CMakeFiles/pmpl_util.dir/util/rng.cpp.o"
  "CMakeFiles/pmpl_util.dir/util/rng.cpp.o.d"
  "libpmpl_util.a"
  "libpmpl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
