file(REMOVE_RECURSE
  "libpmpl_util.a"
)
