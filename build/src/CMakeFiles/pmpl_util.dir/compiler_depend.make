# Empty compiler generated dependencies file for pmpl_util.
# This may be replaced when dependencies are built.
