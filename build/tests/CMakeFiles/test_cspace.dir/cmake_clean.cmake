file(REMOVE_RECURSE
  "CMakeFiles/test_cspace.dir/test_cspace.cpp.o"
  "CMakeFiles/test_cspace.dir/test_cspace.cpp.o.d"
  "test_cspace"
  "test_cspace.pdb"
  "test_cspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
