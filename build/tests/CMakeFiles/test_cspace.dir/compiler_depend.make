# Empty compiler generated dependencies file for test_cspace.
# This may be replaced when dependencies are built.
