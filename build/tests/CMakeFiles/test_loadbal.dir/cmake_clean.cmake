file(REMOVE_RECURSE
  "CMakeFiles/test_loadbal.dir/test_loadbal.cpp.o"
  "CMakeFiles/test_loadbal.dir/test_loadbal.cpp.o.d"
  "test_loadbal"
  "test_loadbal.pdb"
  "test_loadbal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadbal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
