# Empty dependencies file for test_loadbal.
# This may be replaced when dependencies are built.
