# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_collision[1]_include.cmake")
include("/root/repo/build/tests/test_cspace[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_loadbal[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
