// Cluster what-if tool: measure a parallel-PRM workload once, then explore
// how it schedules across machines, processor counts and load-balancing
// strategies — the library's DES replay used interactively.
//
//   $ cluster_simulation [--env med-cube|small-cube|free|walls|mixed]
//                        [--procs P] [--regions N] [--attempts N]
//                        [--machine hopper|opteron]
//
// Fault injection (all optional; any of them switches the run to a second,
// faulty pass so the fault-free baseline is always printed too):
//   --crashes N          crash N ranks (evenly spread) mid-run
//   --crash-frac F       crash F of the ranks instead of a fixed count
//   --straggle R         make R ranks stragglers (evenly spread)
//   --straggle-factor X  slowdown factor of each straggler (default 4)
//   --drop P             drop every message with probability P
//   --token-drop P       drop termination tokens with probability P
//   --fault-seed S       dedicated seed for the drop rolls
//   --faults FILE        JSON fault plan (runtime/fault_io.hpp format);
//                        validated up front — a malformed plan exits 2
//                        naming the offending field — and replaces the
//                        ad-hoc fault flags above
//
// Transport (optional):
//   --transport des|socket  des (default) replays everything through the
//                        simulator only; socket additionally runs the
//                        measured HybridWS workload on real forked
//                        processes over Unix-domain sockets (ranks capped
//                        at 16) and gates the result against the DES
//                        (identical roadmap hash, DESIGN.md §5h)
//   --time-scale K       wall seconds per simulated second for the socket
//                        pass (default: auto, sized for a ~2 s run)
//   --restart            supervise the forked ranks: re-fork planned-crash
//                        victims from their durable checkpoints as
//                        generation+1 (DESIGN.md §5i) instead of leaving
//                        them dead; the gate must still MATCH
//   --max-restarts N     per-rank restart budget (default 3)
//
// Anytime execution (all optional):
//   --deadline-ms D      stop the real planning work (anytime build and
//                        workload measurement) after D ms; partial results
//                        are reported and the process exits 3
//
// Observability (all optional):
//   --trace FILE         write a Chrome/Perfetto trace of the fault-free
//                        replays: one "phases" track per strategy plus one
//                        virtual-time track per simulated processor for the
//                        HybridWS replay (region spans, steal traffic)
//   --metrics FILE       write a flat metrics JSON snapshot (per-strategy
//                        DES counters, fault metrics, phase gauges)
//   --checkpoint FILE    run a real shared-memory anytime PRM build first,
//                        snapshotting completed regions to FILE
//   --checkpoint-every N snapshot every N completed regions (default 8)
//   --resume             restore completed regions from FILE before building
//   --workers W          threads for the anytime build (default 4)
//
// Prints the phase breakdown, load statistics and communication counters
// for every strategy at the chosen scale; with faults, adds recovery
// metrics and the makespan degradation vs the fault-free run. If any DES
// replay hits its event limit the run exits non-zero.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/parallel_build.hpp"
#include "core/prm_driver.hpp"
#include "env/builders.hpp"
#include "loadbal/ws_cluster.hpp"
#include "runtime/fault_io.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/trace.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pmpl;

namespace {

std::unique_ptr<env::Environment> make_env(const std::string& name) {
  if (name == "small-cube") return env::small_cube();
  if (name == "free") return env::free_env();
  if (name == "walls") return env::walls(false);
  if (name == "walls-45") return env::walls(true);
  if (name == "mixed") return env::mixed(0.60);
  return env::med_cube();
}

/// Victim ranks spread evenly across [0, p): rank i*p/n for i in [0, n).
std::vector<std::uint32_t> spread_ranks(std::uint32_t p, std::uint32_t n) {
  std::vector<std::uint32_t> out;
  n = std::min(n, p);
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * p) / std::max(1u, n)));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto e = make_env(args.get("env", "med-cube"));
  const auto procs = static_cast<std::uint32_t>(args.get_i64("procs", 128));
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 8000));
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 1 << 17));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  const auto cluster = args.get("machine", "hopper") == "opteron"
                           ? runtime::ClusterSpec::opteron_cluster()
                           : runtime::ClusterSpec::hopper();

  // Up-front validation of anything that would otherwise fail mid-run,
  // after minutes of real planning work: the fault-plan file and the
  // transport choice. A malformed plan exits 2 naming the offending field.
  runtime::FaultPlan file_plan;
  bool have_file_plan = false;
  if (const std::string faults_path = args.get("faults", "");
      !faults_path.empty()) {
    std::string err;
    if (!runtime::load_fault_plan(faults_path, file_plan, err)) {
      std::fprintf(stderr, "error: --faults: %s\n", err.c_str());
      return 2;
    }
    have_file_plan = true;
  }
  const std::string transport = args.get("transport", "des");
  if (transport != "des" && transport != "socket") {
    std::fprintf(stderr,
                 "error: --transport: expected 'des' or 'socket', got '%s'\n",
                 transport.c_str());
    return 2;
  }

  // Anytime controls: one token covers the real planning work (the
  // optional anytime build and the workload measurement).
  const double deadline_ms = args.get_f64("deadline-ms", 0.0, 0.0);
  const std::string checkpoint_path = args.get("checkpoint", "");
  const bool resume = args.get_bool("resume", false);
  const auto checkpoint_every =
      static_cast<std::size_t>(args.get_i64("checkpoint-every", 8, 1));
  const runtime::CancelToken token(deadline_ms > 0.0
                                       ? runtime::Deadline::after_ms(deadline_ms)
                                       : runtime::Deadline::never());

  // Observability sinks. The tracer is passed into the fault-free replays;
  // per-rank virtual-time tracks are created only for the HybridWS replay
  // (one track per simulated processor adds up fast at p=1024).
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  runtime::Tracer tracer;
  runtime::MetricsRegistry metrics;

  std::printf("what-if: %s on %s, p=%u, %u regions, %zu attempts\n",
              e->name().c_str(), cluster.name.c_str(), procs, regions,
              attempts);
  const core::RegionGrid grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), regions, false);

  // Optional real anytime build: the shared-memory pipeline with
  // checkpoint/resume, exercised before the DES what-if replays.
  if (!checkpoint_path.empty() || resume) {
    core::ParallelPrmConfig bcfg;
    bcfg.total_attempts = attempts;
    bcfg.seed = seed;
    bcfg.workers = static_cast<std::uint32_t>(
        args.get_i64("workers", 4, 1, 256));
    bcfg.anytime.cancel = &token;
    bcfg.anytime.checkpoint_path = checkpoint_path;
    bcfg.anytime.checkpoint_every = checkpoint_every;
    bcfg.anytime.resume = resume;
    const auto b = core::parallel_build_prm(*e, grid, bcfg);
    const auto& d = b.degradation;
    std::printf("anytime build: %zu/%zu regions (%zu restored), |V|=%zu "
                "|E|=%zu, %zu components%s\n",
                d.regions_completed, d.regions_total, d.regions_restored,
                b.roadmap.num_vertices(), b.roadmap.num_edges(),
                d.connected_components,
                d.checkpoint_written ? ", checkpoint written" : "");
    if (resume && d.resume_status != IoStatus::kOk)
      std::fprintf(stderr, "warning: resume: %s — built from scratch\n",
                   to_string(d.resume_status));
    if (!d.complete()) {
      std::fprintf(stderr,
                   "deadline: anytime build stopped early; partial roadmap "
                   "above, resume with --resume to finish\n");
      return 3;
    }
  }

  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = attempts;
  wcfg.seed = seed;
  wcfg.cancel = &token;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  if (w.measurement_cancelled) {
    std::fprintf(stderr,
                 "deadline: workload measurement stopped after %zu/%zu "
                 "regions; nothing to replay\n",
                 w.regions_measured, grid.size());
    return 3;
  }
  std::printf("measured workload: |V|=%zu |E|=%zu, total work %.1f sim-s\n\n",
              w.roadmap.num_vertices(), w.roadmap.num_edges(),
              w.total_sampling_s() + w.total_build_s() + w.total_edge_s());

  // Fault-free pass: run every strategy, remember its total for the
  // degradation column of an optional faulty pass. A DES replay that hits
  // its event limit produced a truncated schedule — the numbers would be
  // silently wrong, so it is surfaced and the run exits non-zero.
  bool des_event_limit = false;
  std::vector<double> fault_free_total;
  TextTable table({"strategy", "total", "sampling", "redistr.", "node conn",
                   "region conn", "CV after", "regions moved/stolen",
                   "remote roadmap"});
  const core::Strategy strategies[] = {
      core::Strategy::kNoLB, core::Strategy::kRepartition,
      core::Strategy::kHybridWS, core::Strategy::kRand8WS,
      core::Strategy::kDiffusiveWS};
  for (const auto s : strategies) {
    core::PrmRunConfig cfg;
    cfg.procs = procs;
    cfg.strategy = s;
    cfg.cluster = cluster;
    cfg.seed = seed;
    if (!trace_path.empty()) {
      cfg.tracer = &tracer;
      cfg.trace_prefix = core::to_string(s) + "/";
      // Rank-level detail for one representative work-stealing strategy.
      cfg.trace_ranks = s == core::Strategy::kHybridWS;
      cfg.trace_rank_capacity = 1 << 12;
    }
    const auto r = core::simulate_prm_run(w, cfg);
    if (!metrics_path.empty()) {
      const std::string prefix = core::to_string(s) + "/";
      metrics.set(prefix + "total_s", r.total_s);
      metrics.set(prefix + "sampling_s", r.phases.sampling_s);
      metrics.set(prefix + "redistribution_s", r.phases.redistribution_s);
      metrics.set(prefix + "node_connection_s", r.phases.node_connection_s);
      metrics.set(prefix + "region_connection_s",
                  r.phases.region_connection_s);
      metrics.set(prefix + "cv_nodes_after", r.cv_nodes_after);
      metrics.add(prefix + "remote_roadmap", r.remote_roadmap);
      if (core::is_work_stealing(s)) publish(metrics, r.ws, prefix);
    }
    if (r.ws.hit_event_limit) {
      std::fprintf(stderr,
                   "warning: %s hit the DES event limit — its replay is "
                   "truncated and its numbers untrustworthy\n",
                   core::to_string(s).c_str());
      des_event_limit = true;
    }
    fault_free_total.push_back(r.total_s);
    std::uint64_t moved = r.ws.regions_migrated;
    if (s == core::Strategy::kRepartition) {
      moved = 0;
      const auto naive = core::naive_assignment(grid.size(), procs);
      for (std::size_t i = 0; i < naive.size(); ++i)
        if (naive[i] != r.assignment[i]) ++moved;
    }
    table.row()
        .cell(core::to_string(s))
        .num(r.total_s, 3)
        .num(r.phases.sampling_s, 3)
        .num(r.phases.redistribution_s, 3)
        .num(r.phases.node_connection_s, 3)
        .num(r.phases.region_connection_s, 3)
        .num(r.cv_nodes_after, 3)
        .num(moved)
        .num(r.remote_roadmap);
  }
  table.print();

  // Optional faulty pass.
  auto crashes = static_cast<std::uint32_t>(args.get_i64("crashes", 0));
  const double crash_frac = args.get_f64("crash-frac", 0.0);
  if (crash_frac > 0.0)
    crashes = std::max(crashes, static_cast<std::uint32_t>(
                                    crash_frac * static_cast<double>(procs)));
  const auto stragglers =
      static_cast<std::uint32_t>(args.get_i64("straggle", 0));
  const double straggle_factor = args.get_f64("straggle-factor", 4.0);
  const double drop = args.get_f64("drop", 0.0);
  const double token_drop = args.get_f64("token-drop", 0.0);
  const auto fault_seed = static_cast<std::uint64_t>(
      args.get_i64("fault-seed", 0xfa17ed5eedLL));

  runtime::FaultPlan plan;
  plan.seed = fault_seed;
  // Crash victims halfway into the (fault-free NoLB) schedule so there is
  // both completed (durable) and pending (recoverable) work.
  const double mid = 0.5 * fault_free_total[0];
  for (const std::uint32_t r : spread_ranks(procs, crashes))
    plan.crash(r, mid);
  for (const std::uint32_t r : spread_ranks(procs, stragglers))
    if (std::find_if(plan.crashes.begin(), plan.crashes.end(),
                     [r](const auto& c) { return c.rank == r; }) ==
        plan.crashes.end())
      plan.straggler(r, straggle_factor, 0.0, fault_free_total[0]);
  if (drop > 0.0) plan.lossy_links(drop);
  if (token_drop > 0.0) plan.lose_tokens(token_drop);
  // A --faults file wholly replaces the ad-hoc flags above.
  if (have_file_plan) plan = file_plan;

  // Observability output covers the fault-free replays (the faulty pass
  // below re-runs the same strategies; tracing it too would double every
  // track). Write the files as soon as those replays are done.
  int observability_failed = 0;
  if (!trace_path.empty()) {
    if (runtime::export_chrome_trace(tracer, trace_path)) {
      std::printf("\ntrace: %s (%llu events, %llu dropped) — load in "
                  "https://ui.perfetto.dev\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(tracer.total_events()),
                  static_cast<unsigned long long>(tracer.total_dropped()));
    } else {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_path.c_str());
      observability_failed = 1;
    }
  }
  if (!metrics_path.empty()) {
    // Tracer health rides along in the snapshot: drop counts and per-track
    // high-water marks expose an undersized ring without opening the trace.
    if (!trace_path.empty()) runtime::publish_trace_metrics(metrics, tracer);
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf) {
      const std::string j = metrics.to_json();
      std::fwrite(j.data(), 1, j.size(), mf);
      std::fputc('\n', mf);
      std::fclose(mf);
      std::printf("metrics: %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   metrics_path.c_str());
      observability_failed = 1;
    }
  }

  // Optional real-transport pass: the measured HybridWS workload on forked
  // processes over Unix-domain sockets, held to the sim-vs-real gate
  // (DESIGN.md §5h) against a DES replay of the very same inputs.
  int socket_failed = 0;
  if (transport == "socket") {
    const auto p_sock = std::min<std::uint32_t>(procs, 16u);
    const std::size_t nr = w.regions.size();
    std::vector<loadbal::WsItem> items(nr);
    double total_service = 0.0;
    for (std::size_t r = 0; r < nr; ++r) {
      items[r] = {w.regions[r].service_s(), w.regions[r].bytes};
      total_service += items[r].service_s;
    }
    const auto initial = core::naive_assignment(nr, p_sock);

    loadbal::WsConfig des_cfg;
    des_cfg.seed = seed;
    des_cfg.faults = plan;
    const auto des =
        loadbal::simulate_work_stealing(items, initial, p_sock, des_cfg);
    const auto des_hash =
        loadbal::roadmap_hash(seed, loadbal::completed_set(des));

    loadbal::ClusterConfig ccfg;
    ccfg.ranks = p_sock;
    ccfg.rank.items = items;
    ccfg.rank.initial = initial;
    ccfg.rank.seed = seed;
    ccfg.faults = plan;
    ccfg.timeout_s = 120.0;
    ccfg.restart.enabled = args.get_bool("restart", false);
    ccfg.restart.max_restarts =
        static_cast<std::uint32_t>(args.get_i64("max-restarts", 3, 0, 1000));
    // Auto time scale: aim the busy portion of the run at ~2 wall seconds
    // spread across the ranks; never stretch beyond real time.
    double tscale = args.get_f64("time-scale", 0.0);
    if (tscale <= 0.0)
      tscale = std::min(1.0, 2.0 * p_sock / std::max(1e-9, total_service));
    ccfg.rank.time_scale = tscale;
    std::printf("\nsocket transport: %u forked rank(s), %zu regions, "
                "time-scale %.4g\n",
                p_sock, nr, tscale);
    const auto real = loadbal::run_ws_cluster(ccfg);
    if (!real.ok)
      std::fprintf(stderr, "socket harness error: %s\n", real.error.c_str());
    std::uint32_t reported = 0, killed = 0;
    double wall = 0.0;
    for (std::uint32_t r = 0; r < p_sock; ++r) {
      if (real.killed[r]) ++killed;
      if (!real.reported[r]) continue;
      ++reported;
      wall = std::max(wall, real.ranks[r].finish_s);
    }
    std::printf("socket run: %u/%u rank(s) reported (%u killed), wall %.3f s, "
                "%llu grant(s), %llu retransmit(s), %llu recovered\n",
                reported, p_sock, killed, wall,
                static_cast<unsigned long long>(real.steal_grants),
                static_cast<unsigned long long>(real.grant_retransmits),
                static_cast<unsigned long long>(real.regions_recovered));
    if (ccfg.restart.enabled) {
      std::uint32_t restarts = 0;
      for (std::uint32_t r = 0; r < p_sock; ++r) restarts += real.restarts[r];
      std::printf("supervisor: restarts=%u zombies_fenced=%llu\n", restarts,
                  static_cast<unsigned long long>(real.zombies_fenced));
    }
    const bool match =
        real.ok && real.terminated_all && des_hash == real.roadmap;
    std::printf("gate: des=%016llx real=%016llx -> %s\n",
                static_cast<unsigned long long>(des_hash),
                static_cast<unsigned long long>(real.roadmap),
                match ? "MATCH" : "MISMATCH");
    if (!match) socket_failed = 1;
  }

  if (plan.empty()) {
    std::printf("\nload profile is in simulated seconds; the workload itself\n"
                "is real planning work measured once on this machine.\n");
    return (des_event_limit || observability_failed || socket_failed) ? 1 : 0;
  }

  if (have_file_plan)
    std::printf("\nfault plan (file): %zu crash(es), %zu straggler(s), "
                "%zu link fault(s), %zu token fault(s), seed=%llu\n",
                plan.crashes.size(), plan.stragglers.size(), plan.links.size(),
                plan.tokens.size(),
                static_cast<unsigned long long>(plan.seed));
  else
    std::printf("\nfault plan: %zu crash(es) at t=%.3f, %u straggler(s) "
                "x%.1f, drop=%.2f, token-drop=%.2f, seed=%llu\n",
                plan.crashes.size(), mid, stragglers, straggle_factor, drop,
                token_drop, static_cast<unsigned long long>(plan.seed));
  TextTable ftable({"strategy", "total", "degradation", "recovered", "re-exec",
                    "re-exec s", "retries", "retransmits", "tokens regen",
                    "recovery lat"});
  std::size_t idx = 0;
  for (const auto s : strategies) {
    core::PrmRunConfig cfg;
    cfg.procs = procs;
    cfg.strategy = s;
    cfg.cluster = cluster;
    cfg.seed = seed;
    cfg.faults = plan;
    const auto r = core::simulate_prm_run(w, cfg);
    if (r.ws.hit_event_limit) {
      std::fprintf(stderr, "FATAL: %s hit the DES event limit under faults\n",
                   core::to_string(s).c_str());
      return 1;
    }
    const double base = fault_free_total[idx++];
    ftable.row()
        .cell(core::to_string(s))
        .num(r.total_s, 3)
        .num(base > 0.0 ? r.total_s / base : 1.0, 3)
        .num(r.ws.faults.regions_recovered)
        .num(r.ws.faults.regions_reexecuted)
        .num(r.ws.faults.reexecuted_service_s, 3)
        .num(r.ws.faults.steal_retries)
        .num(r.ws.faults.grant_retransmits)
        .num(r.ws.faults.tokens_regenerated)
        .num(r.ws.faults.recovery_latency_max_s, 4);
  }
  ftable.print();
  std::printf("\nbulk-synchronous rows model stragglers only (no recovery\n"
              "protocol to simulate); work-stealing rows inject the full\n"
              "plan: crashes, lossy links and token loss.\n");
  return (des_event_limit || observability_failed || socket_failed) ? 1 : 0;
}
