// Cluster what-if tool: measure a parallel-PRM workload once, then explore
// how it schedules across machines, processor counts and load-balancing
// strategies — the library's DES replay used interactively.
//
//   $ cluster_simulation [--env med-cube|small-cube|free|walls|mixed]
//                        [--procs P] [--regions N] [--attempts N]
//                        [--machine hopper|opteron]
//
// Prints the phase breakdown, load statistics and communication counters
// for every strategy at the chosen scale.

#include <cstdio>
#include <memory>

#include "core/prm_driver.hpp"
#include "env/builders.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pmpl;

namespace {

std::unique_ptr<env::Environment> make_env(const std::string& name) {
  if (name == "small-cube") return env::small_cube();
  if (name == "free") return env::free_env();
  if (name == "walls") return env::walls(false);
  if (name == "walls-45") return env::walls(true);
  if (name == "mixed") return env::mixed(0.60);
  return env::med_cube();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto e = make_env(args.get("env", "med-cube"));
  const auto procs = static_cast<std::uint32_t>(args.get_i64("procs", 128));
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 8000));
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 1 << 17));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 1));
  const auto cluster = args.get("machine", "hopper") == "opteron"
                           ? runtime::ClusterSpec::opteron_cluster()
                           : runtime::ClusterSpec::hopper();

  std::printf("what-if: %s on %s, p=%u, %u regions, %zu attempts\n",
              e->name().c_str(), cluster.name.c_str(), procs, regions,
              attempts);
  const core::RegionGrid grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), regions, false);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = attempts;
  wcfg.seed = seed;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  std::printf("measured workload: |V|=%zu |E|=%zu, total work %.1f sim-s\n\n",
              w.roadmap.num_vertices(), w.roadmap.num_edges(),
              w.total_sampling_s() + w.total_build_s() + w.total_edge_s());

  TextTable table({"strategy", "total", "sampling", "redistr.", "node conn",
                   "region conn", "CV after", "regions moved/stolen",
                   "remote roadmap"});
  for (const auto s :
       {core::Strategy::kNoLB, core::Strategy::kRepartition,
        core::Strategy::kHybridWS, core::Strategy::kRand8WS,
        core::Strategy::kDiffusiveWS}) {
    core::PrmRunConfig cfg;
    cfg.procs = procs;
    cfg.strategy = s;
    cfg.cluster = cluster;
    cfg.seed = seed;
    const auto r = core::simulate_prm_run(w, cfg);
    std::uint64_t moved = r.ws.regions_migrated;
    if (s == core::Strategy::kRepartition) {
      moved = 0;
      const auto naive = core::naive_assignment(grid.size(), procs);
      for (std::size_t i = 0; i < naive.size(); ++i)
        if (naive[i] != r.assignment[i]) ++moved;
    }
    table.row()
        .cell(core::to_string(s))
        .num(r.total_s, 3)
        .num(r.phases.sampling_s, 3)
        .num(r.phases.redistribution_s, 3)
        .num(r.phases.node_connection_s, 3)
        .num(r.phases.region_connection_s, 3)
        .num(r.cv_nodes_after, 3)
        .num(moved)
        .num(r.remote_roadmap);
  }
  table.print();
  std::printf("\nload profile is in simulated seconds; the workload itself\n"
              "is real planning work measured once on this machine.\n");
  return 0;
}
