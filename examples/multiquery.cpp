// Multi-query workflow: build once, persist, reload, answer many queries,
// smooth the answers.
//
//   $ multiquery [--attempts N] [--queries Q] [--roadmap FILE]
//
// Demonstrates roadmap serialization (planner/roadmap_io.hpp) and shortcut
// smoothing (planner/smoothing.hpp) on top of the maze environment: the
// roadmap is saved to disk, reloaded as a fresh object, and used for a
// batch of random queries whose raw PRM paths are then shortened.

#include <cstdio>

#include "env/builders.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "planner/roadmap_io.hpp"
#include "planner/smoothing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 6000));
  const auto queries = static_cast<std::size_t>(args.get_i64("queries", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 23));
  const std::string file = args.get("roadmap", "/tmp/pmpl_maze.roadmap");

  const auto e = env::maze_2d();
  planner::PrmParams params;
  params.k_neighbors = 10;
  params.resolution = 0.5;
  planner::Prm prm(*e, params);
  prm.build(attempts, seed);
  std::printf("built maze roadmap: %zu vertices, %zu edges\n",
              prm.roadmap().num_vertices(), prm.roadmap().num_edges());

  if (!planner::save_roadmap_file(prm.roadmap(), file)) {
    std::printf("could not write %s\n", file.c_str());
    return 1;
  }
  auto loaded = planner::load_roadmap_file(file);
  if (!loaded) {
    std::printf("could not reload %s\n", file.c_str());
    return 1;
  }
  std::printf("saved and reloaded via %s\n", file.c_str());

  // Random free start/goal pairs across the maze.
  Xoshiro256ss rng(seed + 1);
  TextTable table({"query", "waypoints", "raw length", "smoothed",
                   "shortcuts", "status"});
  std::size_t solved = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    cspace::Config start, goal;
    auto draw_free = [&](cspace::Config& c) {
      for (int tries = 0; tries < 200; ++tries) {
        c = e->space().sample(rng);
        if (e->validity().valid(c)) return true;
      }
      return false;
    };
    if (!draw_free(start) || !draw_free(goal)) continue;

    auto working = *loaded;  // query appends temporaries; keep master clean
    const auto path = planner::query_roadmap(*e, working, start, goal,
                                             params.k_neighbors,
                                             params.resolution);
    if (!path) {
      table.row().num(static_cast<int>(q)).cell("-").cell("-").cell("-")
          .cell("-").cell("unreachable");
      continue;
    }
    const auto smoothed =
        planner::shortcut_path(*e, *path, 150, params.resolution, seed + q);
    ++solved;
    table.row()
        .num(static_cast<int>(q))
        .num(static_cast<std::uint64_t>(path->size()))
        .num(smoothed.length_before, 1)
        .num(smoothed.length_after, 1)
        .num(static_cast<std::uint64_t>(smoothed.shortcuts_applied))
        .cell(planner::path_valid(*e, smoothed.path, params.resolution)
                  ? "ok"
                  : "INVALID");
  }
  table.print();
  std::printf("%zu/%zu queries solved through the reloaded roadmap\n",
              solved, queries);
  return solved > 0 ? 0 : 1;
}
