// Multi-query service workflow: publish a roadmap snapshot, submit a batch
// of queries with mixed deadlines through the long-lived query engine,
// densify + publish a new epoch mid-stream, and print the engine's own
// latency metrics.
//
//   $ multiquery [--attempts N] [--queries Q] [--workers W]
//                [--deadline-ms D] [--roadmap FILE]
//
// Demonstrates the planning-as-a-service path (service/snapshot.hpp +
// service/query_engine.hpp): the roadmap is still saved/reloaded through
// planner/roadmap_io.hpp to show persistence, the reloaded copy is
// published into a SnapshotPool, and every query runs against a pinned
// immutable epoch — batched k-NN, cross-query edge validation, per-query
// deadlines, and shortcut smoothing on the answers.

#include <cstdio>

#include "env/builders.hpp"
#include "planner/prm.hpp"
#include "planner/roadmap_io.hpp"
#include "planner/smoothing.hpp"
#include "service/query_engine.hpp"
#include "service/snapshot.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 6000));
  const auto queries = static_cast<std::size_t>(args.get_i64("queries", 8));
  const auto workers = static_cast<std::size_t>(args.get_i64("workers", 4));
  const double deadline_ms = args.get_f64("deadline-ms", 250.0);
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 23));
  const std::string file = args.get("roadmap", "/tmp/pmpl_maze.roadmap");

  const auto e = env::maze_2d();
  planner::PrmParams params;
  params.k_neighbors = 10;
  params.resolution = 0.5;
  planner::Prm prm(*e, params);
  prm.build(attempts, seed);
  std::printf("built maze roadmap: %zu vertices, %zu edges\n",
              prm.roadmap().num_vertices(), prm.roadmap().num_edges());

  if (!planner::save_roadmap_file(prm.roadmap(), file)) {
    std::printf("could not write %s\n", file.c_str());
    return 1;
  }
  auto loaded = planner::load_roadmap_file(file);
  if (!loaded) {
    std::printf("could not reload %s\n", file.c_str());
    return 1;
  }
  std::printf("saved and reloaded via %s\n", file.c_str());

  // Publish the reloaded roadmap as epoch 1 and stand the engine up on it.
  service::SnapshotPool pool;
  pool.publish(std::move(*loaded));
  runtime::MetricsRegistry metrics;
  service::QueryEngineConfig cfg;
  cfg.workers = workers;
  cfg.resolution = params.resolution;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  // Submit a wave of random free start/goal pairs with mixed deadlines:
  // even queries get a generous budget, odd ones a tight (maybe-missed)
  // one — deadline misses come back marked degraded, never wedge a worker.
  Xoshiro256ss rng(seed + 1);
  const auto draw_free = [&](cspace::Config& c) {
    for (int tries = 0; tries < 200; ++tries) {
      c = e->space().sample(rng);
      if (e->validity().valid(c)) return true;
    }
    return false;
  };
  std::size_t submitted = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    service::QueryRequest req;
    if (!draw_free(req.start) || !draw_free(req.goal)) continue;
    req.k = params.k_neighbors;
    req.deadline = runtime::Deadline::after_ms(
        q % 2 == 0 ? deadline_ms : deadline_ms / 50.0);
    engine.submit(std::move(req));
    ++submitted;
  }

  // Serve the first half, densify + publish epoch 2 (queries never block
  // on the rebuild), then serve the rest against whichever epoch is
  // current when their batch runs.
  auto first = engine.drain();
  service::densify_and_publish(pool, *e, params, attempts / 4, seed + 2);
  std::printf("densified + published epoch %llu (live snapshots: %llu)\n",
              static_cast<unsigned long long>(pool.current_epoch()),
              static_cast<unsigned long long>(pool.live_slots()));

  TextTable table({"id", "epoch", "status", "latency ms", "waypoints",
                   "raw length", "smoothed", "valid"});
  std::size_t solved = 0;
  const auto show = [&](std::uint64_t id, const service::QueryResult& r) {
    table.row().num(id).num(r.epoch);
    if (r.status != service::QueryStatus::kSolved) {
      table.cell(service::to_string(r.status))
          .num(r.latency_s * 1e3, 2)
          .cell("-")
          .cell("-")
          .cell("-")
          .cell(r.degraded ? "degraded" : "-");
      return;
    }
    ++solved;
    const auto smoothed =
        planner::shortcut_path(*e, r.path, 150, params.resolution, seed + id);
    table.cell(r.degraded ? "solved (late)" : "solved")
        .num(r.latency_s * 1e3, 2)
        .num(static_cast<std::uint64_t>(r.path.size()))
        .num(smoothed.length_before, 1)
        .num(smoothed.length_after, 1)
        .cell(planner::path_valid(*e, smoothed.path, params.resolution)
                  ? "ok"
                  : "INVALID");
  };
  for (const auto& [id, r] : first) show(id, r);
  for (const auto& [id, r] : engine.drain()) show(id, r);
  table.print();

  const auto lat = engine.latency();
  std::printf(
      "%zu/%zu queries solved; latency p50 <= %.1f us, p99 <= %.1f us "
      "(%llu samples)\n",
      solved, submitted, lat.p50_us, lat.p99_us,
      static_cast<unsigned long long>(lat.count));
  std::printf("engine metrics snapshot:\n%s\n", metrics.to_json().c_str());
  return solved > 0 ? 0 : 1;
}
