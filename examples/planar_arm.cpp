// Planar articulated arm: PRM in a 4-dimensional joint space.
//
//   $ planar_arm [--links N] [--attempts N]
//
// A fixed-base arm with N revolute joints must move its end effector from
// one side of a wall slit to the other. Demonstrates the R^n configuration
// space, the articulated-arm validity checker (forward kinematics +
// per-link collision + self-collision), and that the same PRM machinery
// used for rigid bodies applies unchanged.

#include <cmath>
#include <cstdio>
#include <vector>

#include "cspace/validity.hpp"
#include "env/environment.hpp"
#include "graph/shortest_path.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "util/args.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto links = static_cast<std::size_t>(args.get_i64("links", 4));
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 6000));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 21));
  constexpr double kPi = 3.14159265358979323846;

  // Joint space: first joint free, later joints limited (avoids foldback).
  std::vector<std::pair<double, double>> bounds;
  bounds.emplace_back(-kPi, kPi);
  for (std::size_t i = 1; i < links; ++i)
    bounds.emplace_back(-0.8 * kPi, 0.8 * kPi);
  auto space = cspace::CSpace::euclidean(bounds);

  // Workspace: a wall in front of the arm with a slit at mid height.
  std::vector<collision::ObstacleShape> obstacles{
      geo::Aabb{{8, -30, -2}, {11, -4, 2}},  // wall below the slit
      geo::Aabb{{8, 4, -2}, {11, 30, 2}},    // wall above the slit
  };
  env::Environment e("arm-wall", std::move(space), std::move(obstacles),
                     collision::RigidBody::sphere(0.1));

  // The environment's default validity is for its robot model; the arm
  // needs forward kinematics, so plug in the articulated checker.
  std::vector<double> lengths(links, 16.0 / static_cast<double>(links));
  const cspace::PlanarArmValidity arm(e.space(), {0, 0, 0}, lengths, 0.8,
                                      e.checker());

  // PRM over joint space using the arm checker directly.
  planner::Roadmap roadmap;
  planner::PlannerStats stats;
  Xoshiro256ss rng(seed);
  std::vector<graph::VertexId> ids;
  for (std::size_t i = 0; i < attempts; ++i) {
    ++stats.samples_attempted;
    const auto c = e.space().sample(rng);
    if (arm.valid(c, &stats.cd)) ids.push_back(roadmap.add_vertex({c, 0}));
  }
  std::printf("%zu-link arm: %zu of %zu joint samples valid\n", links,
              ids.size(), attempts);

  const cspace::LocalPlanner lp(e.space(), arm, 0.05);
  auto finder = planner::make_neighbor_finder(e.space());
  for (const auto id : ids) finder->insert(id, roadmap.vertex(id).cfg);
  graph::UnionFind cc(roadmap.num_vertices());
  for (const auto id : ids) {
    for (const auto& n : finder->nearest(roadmap.vertex(id).cfg, 10, &stats)) {
      if (n.id == id || roadmap.has_edge(id, n.id)) continue;
      if (cc.connected(id, n.id)) continue;
      const auto r = lp.plan(roadmap.vertex(id).cfg,
                             roadmap.vertex(n.id).cfg, &stats.cd);
      if (r.success) {
        roadmap.add_edge(id, n.id, {r.length});
        cc.unite(id, n.id);
      }
    }
  }
  std::printf("joint-space roadmap: %zu vertices, %zu edges\n",
              roadmap.num_vertices(), roadmap.num_edges());

  // Query: arm pointing below the slit -> arm threading through the slit.
  cspace::Config start, goal;
  start.push_back(-0.5 * kPi);  // hanging down
  goal.push_back(0.0);          // toward the wall (through the slit)
  for (std::size_t i = 1; i < links; ++i) {
    start.push_back(0.0);
    goal.push_back(0.0);
  }
  if (!arm.valid(start) || !arm.valid(goal)) {
    std::printf("endpoint configuration invalid — adjust the scene\n");
    return 1;
  }

  // Attach endpoints and search (mirrors planner::query_roadmap, which is
  // tied to the environment's own validity checker).
  const auto s_id = roadmap.add_vertex({start, 0});
  const auto g_id = roadmap.add_vertex({goal, 0});
  for (const auto [vid, c] : {std::pair{s_id, start}, std::pair{g_id, goal}})
    for (const auto& n : finder->nearest(c, 12, &stats))
      if (const auto r = lp.plan(c, roadmap.vertex(n.id).cfg, &stats.cd);
          r.success)
        roadmap.add_edge(vid, n.id, {r.length});

  const auto path = graph::dijkstra<planner::RoadmapVertex,
                                    planner::RoadmapEdge>(
      roadmap, s_id, g_id,
      [](const planner::RoadmapEdge& edge) { return edge.length; });
  if (!path) {
    std::printf("no joint-space path found — increase --attempts\n");
    return 1;
  }
  std::printf("joint-space path: %zu waypoints, cost %.2f rad\n",
              path->vertices.size(), path->cost);
  const auto tip_start = arm.forward_kinematics(start).back();
  const auto tip_goal = arm.forward_kinematics(goal).back();
  std::printf("end effector moves (%.1f, %.1f) -> (%.1f, %.1f) through the "
              "slit\n", tip_start.x, tip_start.y, tip_goal.x, tip_goal.y);
  return 0;
}
