// Quickstart: build a probabilistic roadmap for a rigid-body robot in the
// med-cube environment and answer a motion-planning query.
//
//   $ quickstart [--attempts N] [--seed S]
//
// This is the smallest end-to-end use of the library: environment builder,
// sequential PRM, and query extraction.

#include <cstdio>

#include "env/builders.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 3000));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 17));

  // 1. An environment: a 100^3 workspace with a central cube obstacle and
  //    a box-shaped rigid-body robot (6-DOF SE(3) planning).
  const auto e = env::med_cube();
  std::printf("environment: %s (%.0f%% of the workspace blocked)\n",
              e->name().c_str(), 100.0 * e->blocked_fraction());

  // 2. Build the roadmap.
  planner::PrmParams params;
  params.k_neighbors = 8;
  planner::Prm prm(*e, params);
  WallTimer timer;
  prm.build(attempts, seed);
  std::printf("roadmap: %zu vertices, %zu edges (built in %.2fs)\n",
              prm.roadmap().num_vertices(), prm.roadmap().num_edges(),
              timer.elapsed_s());
  std::printf("planner work: %llu collision queries, %llu local plans\n",
              static_cast<unsigned long long>(prm.stats().cd.queries),
              static_cast<unsigned long long>(prm.stats().lp_attempts));

  // 3. Query: from one corner of the workspace to the opposite one — the
  //    straight line passes through the obstacle, so the path must detour.
  Xoshiro256ss rng(seed + 1);
  const auto start = e->space().at_position({8, 8, 8}, rng);
  const auto goal = e->space().at_position({92, 92, 92}, rng);
  const auto path = prm.query(start, goal);
  if (!path) {
    std::printf("no path found — increase --attempts\n");
    return 1;
  }
  std::printf("path found: %zu waypoints, metric length %.1f\n",
              path->size(), planner::path_length(*e, *path));
  for (std::size_t i = 0; i < path->size(); ++i) {
    const geo::Vec3 p = e->space().position((*path)[i]);
    std::printf("  waypoint %2zu: (%6.2f, %6.2f, %6.2f)\n", i, p.x, p.y, p.z);
  }
  std::printf("path valid: %s\n",
              planner::path_valid(*e, *path, 1.0) ? "yes" : "NO");
  return 0;
}
