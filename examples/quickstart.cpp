// Quickstart: build a probabilistic roadmap for a rigid-body robot in the
// med-cube environment and answer a motion-planning query.
//
//   $ quickstart [--attempts N] [--seed S]
//
// Anytime/parallel mode (any of these flags switches to the shared-memory
// parallel builder):
//   --workers W       build with W threads over a region grid
//   --deadline-ms D   stop building after D ms and answer from whatever
//                     roadmap exists by then (graceful degradation)
//   --checkpoint FILE snapshot completed regions to FILE as the build runs
//   --resume          restore completed regions from FILE first; a resumed
//                     build finishes bit-identically to an uninterrupted one
//   --trace FILE      write a Chrome/Perfetto trace of the build (one track
//                     per worker thread: region > sample/connect spans)
//   --metrics FILE    write a flat metrics JSON snapshot (worker stats,
//                     planner work counts)
//
// --trace and --metrics imply the parallel builder (there is nothing to
// put on a per-worker track in the sequential path).
//
// Planner selection:
//   --planner prm|rrtc  PRM (default) or bidirectional RRT-Connect
//   --width W           RRT-Connect wavefront width (targets per batch;
//                       1 = classic single-sample, wider keeps the SIMD
//                       validity lanes full)
//
// This is the smallest end-to-end use of the library: environment builder,
// PRM (sequential or anytime-parallel) or RRT-Connect, and query/path
// extraction.

#include <cstdio>

#include "core/parallel_build.hpp"
#include "core/profile.hpp"
#include "env/builders.hpp"
#include "loadbal/metrics.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "planner/rrt_connect.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/trace.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 3000, 1));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 17));
  const double deadline_ms = args.get_f64("deadline-ms", 0.0, 0.0);
  const std::string checkpoint_path = args.get("checkpoint", "");
  const bool resume = args.get_bool("resume", false);
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  const bool anytime = args.has("workers") || deadline_ms > 0.0 ||
                       !checkpoint_path.empty() || resume ||
                       !trace_path.empty() || !metrics_path.empty();

  // 1. An environment: a 100^3 workspace with a central cube obstacle and
  //    a box-shaped rigid-body robot (6-DOF SE(3) planning).
  const auto e = env::med_cube();
  std::printf("environment: %s (%.0f%% of the workspace blocked)\n",
              e->name().c_str(), 100.0 * e->blocked_fraction());

  // Bidirectional RRT-Connect path: grow start and goal trees toward each
  // other with wavefront-batched extension, no roadmap construction.
  if (args.get("planner", "prm") == "rrtc") {
    planner::RrtConnectParams rc;
    rc.max_nodes = attempts;
    rc.batch_width =
        static_cast<std::size_t>(args.get_i64("width", 4, 1, 32));
    planner::RrtConnect rrtc(*e, rc);
    Xoshiro256ss qrng(seed + 1);
    const auto start = e->space().at_position({8, 8, 8}, qrng);
    const auto goal = e->space().at_position({92, 92, 92}, qrng);
    WallTimer rrtc_timer;
    const auto path = rrtc.plan(start, goal, seed);
    std::printf("rrt-connect: %zu tree nodes, wave width %zu (%.2fs)\n",
                rrtc.tree().num_vertices(), rc.batch_width,
                rrtc_timer.elapsed_s());
    const auto& st = rrtc.stats();
    std::printf("planner work: %llu collision queries, %llu local plans, "
                "%llu extends\n",
                static_cast<unsigned long long>(st.cd.queries),
                static_cast<unsigned long long>(st.lp_attempts),
                static_cast<unsigned long long>(st.rrt_extends));
    if (!path) {
      std::printf("no path found — increase --attempts\n");
      return 1;
    }
    std::printf("path found: %zu waypoints, metric length %.1f\n",
                path->size(), planner::path_length(*e, *path));
    std::printf("path valid: %s\n",
                planner::path_valid(*e, *path, 1.0) ? "yes" : "NO");
    return 0;
  }

  // 2. Build the roadmap.
  planner::PrmParams params;
  params.k_neighbors = 8;
  planner::Roadmap roadmap;
  planner::PlannerStats stats;
  runtime::Tracer tracer;
  WallTimer timer;
  if (anytime) {
    const runtime::CancelToken token(
        deadline_ms > 0.0 ? runtime::Deadline::after_ms(deadline_ms)
                          : runtime::Deadline::never());
    const core::RegionGrid grid =
        core::RegionGrid::make_auto(e->space().position_bounds(), 64, false);
    core::ParallelPrmConfig cfg;
    cfg.total_attempts = attempts;
    cfg.prm = params;
    cfg.seed = seed;
    cfg.workers = static_cast<std::uint32_t>(args.get_i64("workers", 4, 1,
                                                          256));
    cfg.anytime.cancel = &token;
    cfg.anytime.checkpoint_path = checkpoint_path;
    cfg.anytime.checkpoint_every = 8;
    cfg.anytime.resume = resume;
    if (!trace_path.empty()) cfg.tracer = &tracer;
    auto built = core::parallel_build_prm(*e, grid, cfg);
    const auto& d = built.degradation;
    std::printf("anytime build: %zu/%zu regions done (%zu restored from "
                "checkpoint), %zu components%s%s\n",
                d.regions_completed, d.regions_total, d.regions_restored,
                d.connected_components, d.cancelled ? ", DEADLINE HIT" : "",
                d.checkpoint_written ? ", checkpoint written" : "");
    if (resume && d.resume_status != IoStatus::kOk)
      std::fprintf(stderr, "warning: resume: %s — built from scratch\n",
                   to_string(d.resume_status));
    roadmap = std::move(built.roadmap);
    stats = built.stats;

    // Workers are joined, so the trace buffers are quiescent.
    if (!trace_path.empty()) {
      if (runtime::export_chrome_trace(tracer, trace_path))
        std::printf("trace: %s (%llu events, %llu dropped) — load in "
                    "https://ui.perfetto.dev\n",
                    trace_path.c_str(),
                    static_cast<unsigned long long>(tracer.total_events()),
                    static_cast<unsigned long long>(tracer.total_dropped()));
      else
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      runtime::MetricsRegistry reg;
      publish(reg, built.workers, "workers/");
      publish(reg, core::to_work_counts(stats), "work/");
      reg.set("build_wall_s", built.build_wall_s);
      reg.set("connect_wall_s", built.connect_wall_s);
      std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
      if (mf) {
        const std::string j = reg.to_json();
        std::fwrite(j.data(), 1, j.size(), mf);
        std::fputc('\n', mf);
        std::fclose(mf);
        std::printf("metrics: %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write metrics to %s\n",
                     metrics_path.c_str());
      }
    }
  } else {
    planner::Prm prm(*e, params);
    prm.build(attempts, seed);
    roadmap = std::move(prm.roadmap());
    stats = prm.stats();
  }
  std::printf("roadmap: %zu vertices, %zu edges (built in %.2fs)\n",
              roadmap.num_vertices(), roadmap.num_edges(),
              timer.elapsed_s());
  std::printf("planner work: %llu collision queries, %llu local plans\n",
              static_cast<unsigned long long>(stats.cd.queries),
              static_cast<unsigned long long>(stats.lp_attempts));

  // 3. Query: from one corner of the workspace to the opposite one — the
  //    straight line passes through the obstacle, so the path must detour.
  //    After a deadline-cut build this still works on whatever roadmap
  //    exists; a sparse partial roadmap simply may not reach.
  Xoshiro256ss rng(seed + 1);
  const auto start = e->space().at_position({8, 8, 8}, rng);
  const auto goal = e->space().at_position({92, 92, 92}, rng);
  const auto path = planner::query_roadmap(*e, roadmap, start, goal,
                                           params.k_neighbors,
                                           params.resolution);
  if (!path) {
    std::printf("no path found — increase --attempts%s\n",
                anytime ? " or the deadline" : "");
    return 1;
  }
  std::printf("path found: %zu waypoints, metric length %.1f\n",
              path->size(), planner::path_length(*e, *path));
  for (std::size_t i = 0; i < path->size(); ++i) {
    const geo::Vec3 p = e->space().position((*path)[i]);
    std::printf("  waypoint %2zu: (%6.2f, %6.2f, %6.2f)\n", i, p.x, p.y, p.z);
  }
  std::printf("path valid: %s\n",
              planner::path_valid(*e, *path, 1.0) ? "yes" : "NO");
  return 0;
}
