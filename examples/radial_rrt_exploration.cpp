// Radial-subdivision RRT exploration (Algorithm 2) in a cluttered
// environment, with the paper's load-balancing strategies compared on the
// measured workload.
//
//   $ radial_rrt_exploration [--regions N] [--nodes N] [--procs P]
//
// Builds the radial region graph, grows one biased RRT branch per region,
// connects adjacent branches (pruning cycles), and reports how the
// branch-growth load would schedule across a cluster under no LB, work
// stealing, and k-rays repartitioning.

#include <algorithm>
#include <cstdio>

#include "core/rrt_driver.hpp"
#include "env/builders.hpp"
#include "graph/tree_utils.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 512));
  const auto nodes = static_cast<std::size_t>(args.get_i64("nodes", 10000));
  const auto procs = static_cast<std::uint32_t>(args.get_i64("procs", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 3));

  const auto e = env::mixed(0.60);
  std::printf("environment: %s (%.0f%% blocked), %u radial regions\n",
              e->name().c_str(), 100.0 * e->blocked_fraction(), regions);

  const geo::Vec3 root_pos{50, 50, 50};
  const core::RadialRegions radial(root_pos, 45.0, regions, 4, seed, false);
  Xoshiro256ss rng(seed);
  const auto root = e->space().at_position(root_pos, rng);

  core::RrtWorkloadConfig wcfg;
  wcfg.total_nodes = nodes;
  wcfg.seed = seed;
  const auto w = core::build_rrt_workload(*e, radial, root, wcfg);
  std::printf("tree: %zu nodes, %zu edges, forest: %s\n",
              w.roadmap.num_vertices(), w.roadmap.num_edges(),
              graph::is_forest(w.roadmap) ? "yes" : "NO");

  // Branch size distribution shows the obstacle-driven heterogeneity.
  auto sizes = w.sample_counts();
  std::sort(sizes.rbegin(), sizes.rend());
  const auto times = w.build_times();
  std::printf("branch nodes: max=%u median=%u min=%u; branch work CV=%.2f\n",
              sizes.front(), sizes[sizes.size() / 2], sizes.back(),
              summarize(times).cv());

  TextTable table({"strategy", "makespan (sim s)", "speedup", "CV after"});
  double base = 0.0;
  for (const auto s :
       {core::Strategy::kNoLB, core::Strategy::kDiffusiveWS,
        core::Strategy::kHybridWS, core::Strategy::kRand8WS,
        core::Strategy::kRepartition}) {
    core::RrtRunConfig cfg;
    cfg.procs = procs;
    cfg.strategy = s;
    cfg.seed = seed;
    const auto r = core::simulate_rrt_run(w, *e, radial, cfg);
    if (s == core::Strategy::kNoLB) base = r.total_s;
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", base / r.total_s);
    table.row()
        .cell(s == core::Strategy::kRepartition ? "Repart (k-rays)"
                                                : core::to_string(s))
        .num(r.total_s, 3)
        .cell(speedup)
        .num(r.cv_nodes_after, 3);
  }
  table.print();
  std::printf(
      "\nNote the k-rays repartitioning row: its weight probe correlates\n"
      "poorly with true branch cost, so it can lose to no LB entirely —\n"
      "the paper's argument for work stealing on RRT workloads.\n");
  return 0;
}
