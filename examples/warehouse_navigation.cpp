// Warehouse navigation: the paper's Algorithm 1 + Algorithm 3 running for
// real on host threads.
//
//   $ warehouse_navigation [--workers W] [--attempts N] [--regions R]
//
// The workspace is subdivided into regions; worker threads build regional
// roadmaps with genuine work stealing (steal-from-the-back, ownership
// transfer); regional roadmaps are then connected, and a query is answered
// through the merged roadmap. The per-worker steal statistics show the
// executor balancing the uneven shelf/aisle workload.

#include <cstdio>
#include <thread>

#include "core/parallel_build.hpp"
#include "env/builders.hpp"
#include "planner/query.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  core::ParallelPrmConfig cfg;
  cfg.workers = static_cast<std::uint32_t>(args.get_i64(
      "workers",
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()))));
  cfg.total_attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 12000));
  cfg.prm.k_neighbors = 8;
  cfg.seed = static_cast<std::uint64_t>(args.get_i64("seed", 5));
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 216));

  const auto e = env::warehouse();
  const core::RegionGrid grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), regions, false);
  std::printf("warehouse: %zu obstacles, %zu regions, %u workers\n",
              e->checker().obstacle_count(), grid.size(), cfg.workers);

  const auto result = core::parallel_build_prm(*e, grid, cfg);
  std::printf("roadmap: %zu vertices, %zu edges\n",
              result.roadmap.num_vertices(), result.roadmap.num_edges());
  std::printf("regional build: %.2fs wall, region connection: %.2fs wall\n",
              result.build_wall_s, result.connect_wall_s);

  TextTable workers({"worker", "regions built (own)", "regions built "
                     "(stolen)", "steal attempts"});
  for (std::size_t w = 0; w < result.workers.size(); ++w) {
    workers.row()
        .num(static_cast<int>(w))
        .num(result.workers[w].executed_local)
        .num(result.workers[w].executed_stolen)
        .num(result.workers[w].steal_attempts);
  }
  workers.print();

  // Drive the forklift from the receiving dock to the far corner shelf.
  // Queries attach through an overlay, so the roadmap is shared read-only.
  Xoshiro256ss rng(cfg.seed + 99);
  const auto start = e->space().at_position({5, 5, 10}, rng);
  const auto goal = e->space().at_position({95, 50, 10}, rng);
  const auto path =
      planner::query_roadmap(*e, result.roadmap, start, goal, 8, 1.0);
  if (!path) {
    std::printf("no path found — increase --attempts\n");
    return 1;
  }
  std::printf("dock -> east cross-aisle: %zu waypoints, length %.1f, valid: %s\n",
              path->size(), planner::path_length(*e, *path),
              planner::path_valid(*e, *path, 1.0) ? "yes" : "NO");
  return 0;
}
