#include "collision/bvh.hpp"

#include <algorithm>
#include <numeric>

namespace pmpl::collision {

void Bvh::build(std::span<const ObstacleShape> shapes, std::size_t leaf_size) {
  nodes_.clear();
  prim_index_.clear();
  prim_bounds_.clear();
  if (shapes.empty()) return;

  prim_bounds_.clear();
  prim_bounds_.reserve(shapes.size());
  for (const auto& s : shapes) prim_bounds_.push_back(bounds_of(s));

  prim_index_.resize(shapes.size());
  std::iota(prim_index_.begin(), prim_index_.end(), 0u);

  nodes_.reserve(2 * shapes.size());
  build_node(std::span<std::uint32_t>(prim_index_), prim_bounds_, leaf_size);
}

std::uint32_t Bvh::build_node(std::span<std::uint32_t> items,
                              std::span<const Aabb> prim_bounds,
                              std::size_t leaf_size) {
  const auto node_idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();

  Aabb bounds = Aabb::empty();
  for (std::uint32_t i : items) bounds = bounds.merged(prim_bounds[i]);
  nodes_[node_idx].bounds = bounds;

  if (items.size() <= leaf_size) {
    nodes_[node_idx].first =
        static_cast<std::uint32_t>(items.data() - prim_index_.data());
    nodes_[node_idx].count = static_cast<std::uint32_t>(items.size());
    return node_idx;
  }

  // Split on the longest axis at the median of centroid order.
  const geo::Vec3 size = bounds.size();
  std::size_t axis = 0;
  if (size.y > size.x) axis = 1;
  if (size.z > size[axis]) axis = 2;

  const std::size_t mid = items.size() / 2;
  std::nth_element(items.begin(), items.begin() + static_cast<long>(mid),
                   items.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return prim_bounds[a].center()[axis] <
                            prim_bounds[b].center()[axis];
                   });

  build_node(items.subspan(0, mid), prim_bounds, leaf_size);
  const std::uint32_t right =
      build_node(items.subspan(mid), prim_bounds, leaf_size);
  nodes_[node_idx].right = right;
  return node_idx;
}

}  // namespace pmpl::collision
