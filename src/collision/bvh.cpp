#include "collision/bvh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace pmpl::collision {

void Bvh::build(std::span<const ObstacleShape> shapes, std::size_t leaf_size) {
  nodes_.clear();
  prim_index_.clear();
  prim_bounds_.clear();
  if (shapes.empty()) return;

  prim_bounds_.clear();
  prim_bounds_.reserve(shapes.size());
  for (const auto& s : shapes) prim_bounds_.push_back(bounds_of(s));

  prim_index_.resize(shapes.size());
  std::iota(prim_index_.begin(), prim_index_.end(), 0u);

  nodes_.reserve(2 * shapes.size());
  build_node(std::span<std::uint32_t>(prim_index_), prim_bounds_, leaf_size);
}

std::uint32_t Bvh::build_node(std::span<std::uint32_t> items,
                              std::span<const Aabb> prim_bounds,
                              std::size_t leaf_size) {
  const auto node_idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();

  Aabb bounds = Aabb::empty();
  for (std::uint32_t i : items) bounds = bounds.merged(prim_bounds[i]);
  nodes_[node_idx].bounds = bounds;

  if (items.size() <= leaf_size) {
    nodes_[node_idx].first =
        static_cast<std::uint32_t>(items.data() - prim_index_.data());
    nodes_[node_idx].count = static_cast<std::uint32_t>(items.size());
    return node_idx;
  }

  // Split on the longest axis at the median of centroid order.
  const geo::Vec3 size = bounds.size();
  std::size_t axis = 0;
  if (size.y > size.x) axis = 1;
  if (size.z > size[axis]) axis = 2;

  const std::size_t mid = items.size() / 2;
  std::nth_element(items.begin(), items.begin() + static_cast<long>(mid),
                   items.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return prim_bounds[a].center()[axis] <
                            prim_bounds[b].center()[axis];
                   });

  build_node(items.subspan(0, mid), prim_bounds, leaf_size);
  const std::uint32_t right =
      build_node(items.subspan(mid), prim_bounds, leaf_size);
  nodes_[node_idx].right = right;
  return node_idx;
}

bool Bvh::for_overlaps(const Aabb& query,
                       const std::function<bool(std::uint32_t)>& fn,
                       TraversalStats* stats) const {
  if (nodes_.empty()) return false;
  // Explicit stack: collision queries are hot and recursion-depth-bounded
  // traversal with a fixed stack avoids per-call allocation.
  std::uint32_t stack[64];
  std::size_t top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (stats) ++stats->nodes_visited;
    if (!node.bounds.overlaps(query)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t i = 0; i < node.count; ++i) {
        const std::uint32_t prim = prim_index_[node.first + i];
        if (!prim_bounds_[prim].overlaps(query)) continue;
        if (stats) ++stats->leaves_tested;
        if (fn(prim)) return true;
      }
    } else {
      const auto self =
          static_cast<std::uint32_t>(&node - nodes_.data());
      stack[top++] = node.right;
      stack[top++] = self + 1;
    }
  }
  return false;
}

std::optional<double> Bvh::raycast(
    const Ray& ray,
    const std::function<std::optional<double>(std::uint32_t)>& hit_fn,
    TraversalStats* stats) const {
  if (nodes_.empty()) return std::nullopt;
  double best = std::numeric_limits<double>::infinity();
  std::uint32_t stack[64];
  std::size_t top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (stats) ++stats->nodes_visited;
    const auto entry = geo::ray_hit(ray, node.bounds);
    if (!entry || *entry >= best) continue;
    if (node.is_leaf()) {
      for (std::uint32_t i = 0; i < node.count; ++i) {
        if (stats) ++stats->leaves_tested;
        if (const auto t = hit_fn(prim_index_[node.first + i]);
            t && *t < best)
          best = *t;
      }
    } else {
      const auto self =
          static_cast<std::uint32_t>(&node - nodes_.data());
      stack[top++] = node.right;
      stack[top++] = self + 1;
    }
  }
  if (std::isinf(best)) return std::nullopt;
  return best;
}

}  // namespace pmpl::collision
