#pragma once
/// \file bvh.hpp
/// Bounding volume hierarchy over obstacle shapes (broad phase).
///
/// Built once per environment with median splits on the longest axis.
/// Queries visit nodes whose bounds overlap the query volume and invoke a
/// callback per candidate obstacle; the callback returns true to stop early
/// (first-hit semantics for boolean collision checks).
///
/// Traversal is iterative with an explicit fixed stack, and the hot entry
/// points are templates over the callback type: the per-check callable is
/// inlined instead of going through `std::function` (whose capture list
/// exceeds the small-buffer size and heap-allocates on every query). The
/// `std::function` overloads remain as convenience wrappers.

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "collision/shape.hpp"

namespace pmpl::collision {

/// Statistics from a single BVH traversal; accumulated by callers into their
/// work-unit profiles.
struct TraversalStats {
  std::uint32_t nodes_visited = 0;
  std::uint32_t leaves_tested = 0;
};

/// Static BVH. Indices returned by queries refer to the *original* shape
/// ordering passed to `build`.
class Bvh {
 public:
  Bvh() = default;

  /// Build over `shapes` (copies bounds only; shape storage stays with the
  /// caller — the Environment owns the shapes).
  void build(std::span<const ObstacleShape> shapes, std::size_t leaf_size = 2);

  bool empty() const noexcept { return nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Bounds of the whole tree (empty Aabb if no shapes).
  Aabb bounds() const noexcept {
    return nodes_.empty() ? Aabb::empty() : nodes_[0].bounds;
  }

  /// Visit every shape whose own bounds overlap `query`. `fn(index)`
  /// returns true to stop the traversal (hit found). Returns whether it
  /// stopped. The callable is a template parameter so the compiler can
  /// inline it — this is the allocation-free hot path.
  template <typename Fn>
  bool for_each_overlap(const Aabb& query, Fn&& fn,
                        TraversalStats* stats = nullptr) const {
    if (nodes_.empty()) return false;
    // Explicit stack: collision queries are hot and recursion-depth-bounded
    // traversal with a fixed stack avoids per-call allocation.
    std::uint32_t stack[64];
    std::size_t top = 0;
    stack[top++] = 0;
    while (top > 0) {
      const Node& node = nodes_[stack[--top]];
      if (stats) ++stats->nodes_visited;
      if (!node.bounds.overlaps(query)) continue;
      if (node.is_leaf()) {
        for (std::uint32_t i = 0; i < node.count; ++i) {
          const std::uint32_t prim = prim_index_[node.first + i];
          if (!prim_bounds_[prim].overlaps(query)) continue;
          if (stats) ++stats->leaves_tested;
          if (fn(prim)) return true;
        }
      } else {
        const auto self = static_cast<std::uint32_t>(&node - nodes_.data());
        stack[top++] = node.right;
        stack[top++] = self + 1;
      }
    }
    return false;
  }

  /// Type-erased wrapper over `for_each_overlap` for non-hot callers.
  bool for_overlaps(const Aabb& query,
                    const std::function<bool(std::uint32_t)>& fn,
                    TraversalStats* stats = nullptr) const {
    return for_each_overlap(query, fn, stats);
  }

  /// Nearest ray hit over leaf candidates: returns the smallest entry
  /// distance produced by `hit_fn(index)`, or nullopt. Template for the
  /// same inlining/allocation reasons as `for_each_overlap`.
  template <typename Fn>
  std::optional<double> raycast_with(const Ray& ray, Fn&& hit_fn,
                                     TraversalStats* stats = nullptr) const {
    if (nodes_.empty()) return std::nullopt;
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t stack[64];
    std::size_t top = 0;
    stack[top++] = 0;
    while (top > 0) {
      const Node& node = nodes_[stack[--top]];
      if (stats) ++stats->nodes_visited;
      const auto entry = geo::ray_hit(ray, node.bounds);
      if (!entry || *entry >= best) continue;
      if (node.is_leaf()) {
        for (std::uint32_t i = 0; i < node.count; ++i) {
          if (stats) ++stats->leaves_tested;
          if (const auto t = hit_fn(prim_index_[node.first + i]);
              t && *t < best)
            best = *t;
        }
      } else {
        const auto self = static_cast<std::uint32_t>(&node - nodes_.data());
        stack[top++] = node.right;
        stack[top++] = self + 1;
      }
    }
    if (std::isinf(best)) return std::nullopt;
    return best;
  }

  /// Type-erased wrapper over `raycast_with`.
  std::optional<double> raycast(
      const Ray& ray,
      const std::function<std::optional<double>(std::uint32_t)>& hit_fn,
      TraversalStats* stats = nullptr) const {
    return raycast_with(ray, hit_fn, stats);
  }

 private:
  struct Node {
    Aabb bounds;
    // Internal: left child is index+1, right child is `right`.
    // Leaf: right == 0, [first, first+count) index into prim_index_.
    std::uint32_t right = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    bool is_leaf() const noexcept { return count > 0; }
  };

  std::uint32_t build_node(std::span<std::uint32_t> items,
                           std::span<const Aabb> prim_bounds,
                           std::size_t leaf_size);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> prim_index_;
  std::vector<Aabb> prim_bounds_;  ///< per original-shape bounds (leaf filter)
};

}  // namespace pmpl::collision
