#pragma once
/// \file bvh.hpp
/// Bounding volume hierarchy over obstacle shapes (broad phase).
///
/// Built once per environment with median splits on the longest axis.
/// Queries visit nodes whose bounds overlap the query volume and invoke a
/// callback per candidate obstacle; the callback returns true to stop early
/// (first-hit semantics for boolean collision checks).

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "collision/shape.hpp"

namespace pmpl::collision {

/// Statistics from a single BVH traversal; accumulated by callers into their
/// work-unit profiles.
struct TraversalStats {
  std::uint32_t nodes_visited = 0;
  std::uint32_t leaves_tested = 0;
};

/// Static BVH. Indices returned by queries refer to the *original* shape
/// ordering passed to `build`.
class Bvh {
 public:
  Bvh() = default;

  /// Build over `shapes` (copies bounds only; shape storage stays with the
  /// caller — the Environment owns the shapes).
  void build(std::span<const ObstacleShape> shapes, std::size_t leaf_size = 2);

  bool empty() const noexcept { return nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Bounds of the whole tree (empty Aabb if no shapes).
  Aabb bounds() const noexcept {
    return nodes_.empty() ? Aabb::empty() : nodes_[0].bounds;
  }

  /// Visit every shape whose own bounds overlap `query`. `fn(index)`
  /// returns true to stop the traversal (hit found). Returns whether it
  /// stopped.
  bool for_overlaps(const Aabb& query,
                    const std::function<bool(std::uint32_t)>& fn,
                    TraversalStats* stats = nullptr) const;

  /// Nearest ray hit over leaf candidates: returns the smallest entry
  /// distance produced by `hit_fn(index, ray)`, or nullopt.
  std::optional<double> raycast(
      const Ray& ray,
      const std::function<std::optional<double>(std::uint32_t)>& hit_fn,
      TraversalStats* stats = nullptr) const;

 private:
  struct Node {
    Aabb bounds;
    // Internal: left child is index+1, right child is `right`.
    // Leaf: right == 0, [first, first+count) index into prim_index_.
    std::uint32_t right = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    bool is_leaf() const noexcept { return count > 0; }
  };

  std::uint32_t build_node(std::span<std::uint32_t> items,
                           std::span<const Aabb> prim_bounds,
                           std::size_t leaf_size);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> prim_index_;
  std::vector<Aabb> prim_bounds_;  ///< per original-shape bounds (leaf filter)
};

}  // namespace pmpl::collision
