#include "collision/checker.hpp"

#include <bit>
#include <type_traits>

namespace pmpl::collision {

CollisionChecker::CollisionChecker(std::vector<ObstacleShape> obstacles)
    : obstacles_(std::move(obstacles)) {
  bvh_.build(obstacles_);
}

template <typename Body>
bool CollisionChecker::body_hits_any(const Body& body, const Aabb& query,
                                     CollisionStats* stats) const {
  TraversalStats ts;
  // Template callback: inlined by the compiler — no std::function, and no
  // per-query heap allocation for its captures (this used to be the single
  // hottest allocation site in edge validation).
  const bool hit = bvh_.for_each_overlap(
      query,
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return hits(body, obstacles_[idx]);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return hit;
}

bool CollisionChecker::in_collision(const RigidBody& robot,
                                    const geo::Transform& pose,
                                    CollisionStats* stats) const {
  if (stats) ++stats->queries;
  for (const auto& box : robot.boxes) {
    const Obb world = pose.apply(box);
    if (body_hits_any(world, world.bounds(), stats)) return true;
  }
  for (const auto& sphere : robot.spheres) {
    const Sphere world = pose.apply(sphere);
    if (body_hits_any(world, world.bounds(), stats)) return true;
  }
  return false;
}

std::size_t CollisionChecker::first_collision_sequential(
    const RigidBody& robot, std::span<const geo::Transform> poses,
    CollisionStats* stats) const {
  for (std::size_t i = 0; i < poses.size(); ++i)
    if (in_collision(robot, poses[i], stats)) return i;
  return poses.size();
}

namespace {

// Wide verdicts for one robot body against one obstacle: the SIMD kernels
// for volume obstacles, the shipping scalar test per lane for triangles
// (too rare in the paper's environments to deserve a wide path).
template <typename Lanes>
std::uint32_t body_group_hits(const Lanes& lanes, std::size_t g,
                              const ObstacleShape& obstacle) noexcept {
  return std::visit(
      [&](const auto& obs) -> std::uint32_t {
        using S = std::decay_t<decltype(obs)>;
        if constexpr (std::is_same_v<S, Triangle>) {
          std::uint32_t m = 0;
          for (std::size_t i = 0; i < g; ++i) {
            if constexpr (std::is_same_v<Lanes, geo::ObbLanes4>) {
              if (hits(geo::lane_obb(lanes, i), obstacle)) m |= 1u << i;
            } else {
              if (hits(geo::lane_sphere(lanes, i), obstacle)) m |= 1u << i;
            }
          }
          return m;
        } else {
          return geo::hit_mask(lanes, g, obs);
        }
      },
      obstacle);
}

}  // namespace

std::uint32_t CollisionChecker::group_collision_mask(
    const RigidBody& robot, const geo::PoseBlock& poses, std::size_t base,
    std::size_t g, CollisionStats* stats) const {
  const std::uint32_t full = (1u << g) - 1u;
  std::uint32_t collide = 0;

  const auto run_body = [&](const auto& body, auto& lanes, auto place) {
    const Aabb query =
        place(poses.tx + base, poses.ty + base, poses.tz + base,
              poses.qw + base, poses.qx + base, poses.qy + base,
              poses.qz + base, g, body, lanes);
    TraversalStats ts;
    bvh_.for_each_overlap(
        query,
        [&](std::uint32_t idx) {
          if (stats) stats->narrow_tests += g;
          collide |= body_group_hits(lanes, g, obstacles_[idx]);
          return collide == full;
        },
        stats ? &ts : nullptr);
    if (stats) stats->bvh_nodes += ts.nodes_visited;
    return collide == full;
  };

  geo::ObbLanes4 obb_lanes;
  for (const auto& box : robot.boxes)
    if (run_body(box, obb_lanes, geo::place_box_lanes_bounded)) return collide;
  geo::SphereLanes4 sphere_lanes;
  for (const auto& sphere : robot.spheres)
    if (run_body(sphere, sphere_lanes, geo::place_sphere_lanes_bounded))
      return collide;
  return collide;
}

std::size_t CollisionChecker::first_collision(
    const RigidBody& robot, const geo::PoseBlock& poses,
    CollisionStats* stats) const {
  for (std::size_t base = 0; base < poses.count; base += geo::kWideLanes) {
    const std::size_t g = poses.count - base < geo::kWideLanes
                              ? poses.count - base
                              : geo::kWideLanes;
    const std::uint32_t mask =
        group_collision_mask(robot, poses, base, g, stats);
    if (mask != 0) {
      // The first colliding lane ends the batch: only poses up to and
      // including it had their verdict consumed.
      const std::size_t first = std::countr_zero(mask);
      if (stats) stats->queries += first + 1;
      return base + first;
    }
    if (stats) stats->queries += g;
  }
  return poses.count;
}

std::size_t CollisionChecker::first_collision(
    const RigidBody& robot, std::span<const geo::Transform> poses,
    CollisionStats* stats) const {
  geo::PoseBlock block;
  std::size_t done = 0;
  while (done < poses.size()) {
    block.clear();
    while (done + block.count < poses.size() && !block.full())
      block.push(poses[done + block.count]);
    const std::size_t first = first_collision(robot, block, stats);
    if (first < block.count) return done + first;
    done += block.count;
  }
  return poses.size();
}

std::uint32_t CollisionChecker::collision_mask(const RigidBody& robot,
                                               const geo::PoseBlock& poses,
                                               CollisionStats* stats) const {
  std::uint32_t mask = 0;
  for (std::size_t base = 0; base < poses.count; base += geo::kWideLanes) {
    const std::size_t g = poses.count - base < geo::kWideLanes
                              ? poses.count - base
                              : geo::kWideLanes;
    mask |= group_collision_mask(robot, poses, base, g, stats) << base;
  }
  if (stats) stats->queries += poses.count;
  return mask;
}

bool CollisionChecker::point_in_collision(Vec3 p,
                                          CollisionStats* stats) const {
  if (stats) ++stats->queries;
  TraversalStats ts;
  const bool hit = bvh_.for_each_overlap(
      Aabb{p, p},
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return contains(obstacles_[idx], p);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return hit;
}

bool CollisionChecker::segment_in_collision(const Segment& seg,
                                            CollisionStats* stats) const {
  if (stats) ++stats->queries;
  const Aabb query{geo::min(seg.a, seg.b), geo::max(seg.a, seg.b)};
  TraversalStats ts;
  const bool hit = bvh_.for_each_overlap(
      query,
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return hits(seg, obstacles_[idx]);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return hit;
}

std::optional<double> CollisionChecker::raycast(const Ray& ray,
                                                CollisionStats* stats) const {
  if (stats) ++stats->ray_casts;
  TraversalStats ts;
  const auto t = bvh_.raycast_with(
      ray,
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return ray_distance(ray, obstacles_[idx]);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return t;
}

}  // namespace pmpl::collision
