#include "collision/checker.hpp"

namespace pmpl::collision {

CollisionChecker::CollisionChecker(std::vector<ObstacleShape> obstacles)
    : obstacles_(std::move(obstacles)) {
  bvh_.build(obstacles_);
}

template <typename Body>
bool CollisionChecker::body_hits_any(const Body& body, const Aabb& query,
                                     CollisionStats* stats) const {
  TraversalStats ts;
  // Template callback: inlined by the compiler — no std::function, and no
  // per-query heap allocation for its captures (this used to be the single
  // hottest allocation site in edge validation).
  const bool hit = bvh_.for_each_overlap(
      query,
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return hits(body, obstacles_[idx]);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return hit;
}

bool CollisionChecker::in_collision(const RigidBody& robot,
                                    const geo::Transform& pose,
                                    CollisionStats* stats) const {
  if (stats) ++stats->queries;
  for (const auto& box : robot.boxes) {
    const Obb world = pose.apply(box);
    if (body_hits_any(world, world.bounds(), stats)) return true;
  }
  for (const auto& sphere : robot.spheres) {
    const Sphere world = pose.apply(sphere);
    if (body_hits_any(world, world.bounds(), stats)) return true;
  }
  return false;
}

std::size_t CollisionChecker::first_collision(
    const RigidBody& robot, std::span<const geo::Transform> poses,
    CollisionStats* stats) const {
  for (std::size_t i = 0; i < poses.size(); ++i)
    if (in_collision(robot, poses[i], stats)) return i;
  return poses.size();
}

bool CollisionChecker::point_in_collision(Vec3 p,
                                          CollisionStats* stats) const {
  if (stats) ++stats->queries;
  TraversalStats ts;
  const bool hit = bvh_.for_each_overlap(
      Aabb{p, p},
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return contains(obstacles_[idx], p);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return hit;
}

bool CollisionChecker::segment_in_collision(const Segment& seg,
                                            CollisionStats* stats) const {
  if (stats) ++stats->queries;
  const Aabb query{geo::min(seg.a, seg.b), geo::max(seg.a, seg.b)};
  TraversalStats ts;
  const bool hit = bvh_.for_each_overlap(
      query,
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return hits(seg, obstacles_[idx]);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return hit;
}

std::optional<double> CollisionChecker::raycast(const Ray& ray,
                                                CollisionStats* stats) const {
  if (stats) ++stats->ray_casts;
  TraversalStats ts;
  const auto t = bvh_.raycast_with(
      ray,
      [&](std::uint32_t idx) {
        if (stats) ++stats->narrow_tests;
        return ray_distance(ray, obstacles_[idx]);
      },
      stats ? &ts : nullptr);
  if (stats) stats->bvh_nodes += ts.nodes_visited;
  return t;
}

}  // namespace pmpl::collision
