#pragma once
/// \file checker.hpp
/// Environment-level collision queries (the narrow+broad phase combined).
///
/// `CollisionChecker` is immutable after construction and safe to share
/// across threads; callers pass their own `CollisionStats` so op counting
/// (which feeds the work-unit model) stays race-free.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "collision/bvh.hpp"
#include "collision/shape.hpp"
#include "geometry/intersect_wide.hpp"
#include "geometry/pose_block.hpp"
#include "geometry/transform.hpp"

namespace pmpl::collision {

/// Counters for collision work performed by one caller. These are the raw
/// inputs to the DES work-unit model (runtime/work_units.hpp).
///
/// Accounting contract (DESIGN.md §5g): `queries` counts poses whose
/// verdict was consumed — identical on every path (sequential, blocked,
/// any SIMD level) because verdicts are bit-identical. `narrow_tests` and
/// `bvh_nodes` count work at the granularity the path actually performs it
/// (per pose sequentially, per 4-lane group on the block path); they are
/// deterministic and identical across SIMD levels, but the block path's
/// counts differ from the sequential path's by design (one union-box BVH
/// walk per group, one wide test per candidate).
struct CollisionStats {
  std::uint64_t queries = 0;       ///< full robot-vs-environment checks
  std::uint64_t narrow_tests = 0;  ///< primitive-vs-primitive tests
  std::uint64_t bvh_nodes = 0;     ///< BVH nodes visited
  std::uint64_t ray_casts = 0;

  CollisionStats& operator+=(const CollisionStats& o) noexcept {
    queries += o.queries;
    narrow_tests += o.narrow_tests;
    bvh_nodes += o.bvh_nodes;
    ray_casts += o.ray_casts;
    return *this;
  }
};

/// Broad-phase (BVH) + narrow-phase queries against a fixed obstacle set.
class CollisionChecker {
 public:
  CollisionChecker() = default;

  /// Takes ownership of the obstacle set and builds the BVH.
  explicit CollisionChecker(std::vector<ObstacleShape> obstacles);

  std::span<const ObstacleShape> obstacles() const noexcept {
    return obstacles_;
  }

  std::size_t obstacle_count() const noexcept { return obstacles_.size(); }

  /// Is the world-placed robot in collision with any obstacle?
  bool in_collision(const RigidBody& robot, const geo::Transform& pose,
                    CollisionStats* stats = nullptr) const;

  /// Batched robot placement query for edge validation: checks `poses` in
  /// order and returns the index of the first colliding pose, or
  /// `poses.size()` when all are free. Verdicts (and therefore roadmaps)
  /// are bit-identical to calling `in_collision` sequentially and stopping
  /// at the first hit; work runs through the wide SoA kernels in groups of
  /// 4 poses, with stats under the block contract (see CollisionStats).
  std::size_t first_collision(const RigidBody& robot,
                              std::span<const geo::Transform> poses,
                              CollisionStats* stats = nullptr) const;

  /// SoA variant of the above — the wide hot path. `poses.count <= 16`.
  std::size_t first_collision(const RigidBody& robot,
                              const geo::PoseBlock& poses,
                              CollisionStats* stats = nullptr) const;

  /// Per-pose verdicts for *independent* poses (cross-edge batching,
  /// wavefront extension): bit i set = pose i collides. Every pose is
  /// evaluated (no first-hit early exit); `queries` advances by
  /// `poses.count`.
  std::uint32_t collision_mask(const RigidBody& robot,
                               const geo::PoseBlock& poses,
                               CollisionStats* stats = nullptr) const;

  /// The pre-wide reference: a plain per-pose `in_collision` sweep with
  /// per-pose broad phase and early exit. Kept as the bench baseline and
  /// the semantic ground truth the block path is tested against.
  std::size_t first_collision_sequential(const RigidBody& robot,
                                         std::span<const geo::Transform> poses,
                                         CollisionStats* stats = nullptr)
      const;

  /// Is a bare point inside any obstacle? (point robots, V_free estimation)
  bool point_in_collision(Vec3 p, CollisionStats* stats = nullptr) const;

  /// Does a segment pass through any obstacle? (swept-point local plans)
  bool segment_in_collision(const Segment& seg,
                            CollisionStats* stats = nullptr) const;

  /// Distance along `ray` to the nearest obstacle, or nullopt for a clear
  /// ray. Used by the k-random-rays RRT work estimator.
  std::optional<double> raycast(const Ray& ray,
                                CollisionStats* stats = nullptr) const;

 private:
  template <typename Body>
  bool body_hits_any(const Body& body, const Aabb& query,
                     CollisionStats* stats) const;

  /// Collide verdicts for lanes [base, base+g) of `poses` (g <= 4): one
  /// union-box BVH walk per robot body, wide narrow tests per candidate.
  std::uint32_t group_collision_mask(const RigidBody& robot,
                                     const geo::PoseBlock& poses,
                                     std::size_t base, std::size_t g,
                                     CollisionStats* stats) const;

  std::vector<ObstacleShape> obstacles_;
  Bvh bvh_;
};

}  // namespace pmpl::collision
