#include "collision/shape.hpp"

namespace pmpl::collision {

namespace {

/// Triangle vs volume tests: approximate by testing the triangle's three
/// edges as segments plus containment of a vertex. Exact for the convex
/// volumes we use whenever the triangle is not entirely inside (vertex
/// containment covers that case).
template <typename Volume>
bool tri_hits_volume(const Triangle& t, const Volume& vol) noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    const Segment e{t.v[i], t.v[(i + 1) % 3]};
    if (geo::intersects(e, vol)) return true;
  }
  return false;
}

}  // namespace

bool hits(const Obb& body, const ObstacleShape& obstacle) noexcept {
  return std::visit(
      [&](const auto& shape) -> bool {
        using S = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<S, Aabb>)
          return geo::intersects(body, shape);
        else if constexpr (std::is_same_v<S, Obb>)
          return geo::intersects(body, shape);
        else if constexpr (std::is_same_v<S, Sphere>)
          return geo::intersects(shape, body);
        else  // Triangle
          return tri_hits_volume(shape, body) || body.contains(shape.v[0]);
      },
      obstacle);
}

bool hits(const Sphere& body, const ObstacleShape& obstacle) noexcept {
  return std::visit(
      [&](const auto& shape) -> bool {
        using S = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<S, Aabb>)
          return geo::intersects(body, shape);
        else if constexpr (std::is_same_v<S, Obb>)
          return geo::intersects(body, shape);
        else if constexpr (std::is_same_v<S, Sphere>)
          return geo::intersects(body, shape);
        else  // Triangle
          return tri_hits_volume(shape, body) || body.contains(shape.v[0]);
      },
      obstacle);
}

bool contains(const ObstacleShape& obstacle, Vec3 p) noexcept {
  return std::visit(
      [&](const auto& shape) -> bool {
        using S = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<S, Triangle>)
          return false;  // zero volume
        else
          return shape.contains(p);
      },
      obstacle);
}

bool hits(const Segment& seg, const ObstacleShape& obstacle) noexcept {
  return std::visit(
      [&](const auto& shape) -> bool {
        using S = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<S, Triangle>) {
          const Vec3 d = seg.dir();
          const double len = d.norm();
          if (len <= 0.0) return false;
          const auto t = geo::ray_hit(Ray{seg.a, d / len}, shape);
          return t.has_value() && *t <= len;
        } else {
          return geo::intersects(seg, shape);
        }
      },
      obstacle);
}

std::optional<double> ray_distance(const Ray& r,
                                   const ObstacleShape& obstacle) noexcept {
  return std::visit(
      [&](const auto& shape) { return geo::ray_hit(r, shape); }, obstacle);
}

}  // namespace pmpl::collision
