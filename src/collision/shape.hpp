#pragma once
/// \file shape.hpp
/// Obstacle shape variant and robot body description.
///
/// Environments are collections of `ObstacleShape`s; a robot is a small set
/// of body-frame primitives placed in the world by a rigid transform.

#include <optional>
#include <variant>

#include "geometry/intersect.hpp"
#include "geometry/shapes.hpp"
#include "geometry/transform.hpp"
#include "util/inline_vector.hpp"

namespace pmpl::collision {

using geo::Aabb;
using geo::Obb;
using geo::Ray;
using geo::Segment;
using geo::Sphere;
using geo::Triangle;
using geo::Vec3;

/// One obstacle primitive.
using ObstacleShape = std::variant<Aabb, Obb, Sphere, Triangle>;

/// World-space bounds of any obstacle shape.
inline Aabb bounds_of(const ObstacleShape& s) noexcept {
  return std::visit(
      [](const auto& shape) -> Aabb {
        using S = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<S, Aabb>)
          return shape;
        else
          return shape.bounds();
      },
      s);
}

/// Does a world-placed OBB (robot body) hit this obstacle?
bool hits(const Obb& body, const ObstacleShape& obstacle) noexcept;

/// Does a world-placed sphere (robot body) hit this obstacle?
bool hits(const Sphere& body, const ObstacleShape& obstacle) noexcept;

/// Does a point lie inside this obstacle? (Triangles are treated as
/// zero-volume: always false.)
bool contains(const ObstacleShape& obstacle, Vec3 p) noexcept;

/// Does a segment pass through this obstacle?
bool hits(const Segment& seg, const ObstacleShape& obstacle) noexcept;

/// Ray entry distance, or nullopt on miss.
std::optional<double> ray_distance(const Ray& r,
                                   const ObstacleShape& obstacle) noexcept;

/// A rigid robot: a union of body-frame boxes and spheres.
/// Placed in the world with `placed_boxes` / `placed_spheres`.
struct RigidBody {
  InlineVector<Obb, 4> boxes;
  InlineVector<Sphere, 4> spheres;

  /// A single axis-aligned box robot with the given half-extents (the
  /// rigid-body robot used throughout the paper's experiments).
  static RigidBody box(Vec3 half) {
    RigidBody r;
    r.boxes.push_back(Obb{{0, 0, 0}, half, geo::Mat3::identity()});
    return r;
  }

  static RigidBody sphere(double radius) {
    RigidBody r;
    r.spheres.push_back(Sphere{{0, 0, 0}, radius});
    return r;
  }

  /// Conservative bound on the robot's circumscribed radius: used for
  /// broad-phase query boxes.
  double bounding_radius() const noexcept {
    double r = 0.0;
    for (const auto& b : boxes) {
      const double d = (b.center.norm() + b.half.norm());
      r = r < d ? d : r;
    }
    for (const auto& s : spheres) {
      const double d = s.center.norm() + s.radius;
      r = r < d ? d : r;
    }
    return r;
  }
};

}  // namespace pmpl::collision
