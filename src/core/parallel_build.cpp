#include "core/parallel_build.hpp"

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/union_find.hpp"
#include "loadbal/partition.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pmpl::core {

namespace {

/// Build one region into region-local storage (thread-confined). With a
/// fired cancel token the returned snapshot is partial — the caller must
/// discard it (regions are all-or-nothing).
RegionSnapshot build_region(const env::Environment& e, const geo::Aabb& box,
                            std::size_t attempts,
                            const planner::PrmParams& params,
                            std::uint64_t seed,
                            const runtime::CancelToken* cancel,
                            runtime::Tracer* tracer) {
  RegionSnapshot out;
  Xoshiro256ss rng(seed);
  runtime::TraceBuffer* tb = tracer ? tracer->thread_track() : nullptr;
  {
    runtime::TraceSpan span(tracer, tb, "sample");
    out.configs = planner::sample_region(e, box, attempts, rng, out.stats,
                                         cancel);
  }

  // Region-local roadmap to reuse connect_within, then lift its edges.
  runtime::TraceSpan span(tracer, tb, "connect");
  planner::Roadmap local;
  std::vector<graph::VertexId> ids;
  ids.reserve(out.configs.size());
  for (const auto& c : out.configs) ids.push_back(local.add_vertex({c, 0}));
  graph::UnionFind cc(local.num_vertices());
  planner::connect_within(e, local, ids, params, out.stats, &cc, cancel);
  for (graph::VertexId u = 0; u < local.num_vertices(); ++u)
    for (const auto& he : local.edges_of(u))
      if (he.to > u) out.edges.push_back({u, he.to, he.prop.length});
  return out;
}

/// Everything that affects the roadmap (worker count and stealing policy
/// excluded: the result is placement-independent by construction).
std::uint64_t prm_fingerprint(const env::Environment& e,
                              const RegionGrid& grid,
                              const ParallelPrmConfig& config) {
  std::uint64_t h = kFnvOffset;
  h = fp_mix(h, std::string_view(e.name()));
  const auto& b = e.space().position_bounds();
  h = fp_mix(h, b.lo.x);
  h = fp_mix(h, b.lo.y);
  h = fp_mix(h, b.lo.z);
  h = fp_mix(h, b.hi.x);
  h = fp_mix(h, b.hi.y);
  h = fp_mix(h, b.hi.z);
  h = fp_mix(h, static_cast<std::uint64_t>(grid.size()));
  h = fp_mix(h, static_cast<std::uint64_t>(config.total_attempts));
  h = fp_mix(h, config.seed);
  h = fp_mix(h, static_cast<std::uint64_t>(config.prm.k_neighbors));
  h = fp_mix(h, config.prm.resolution);
  h = fp_mix(h, static_cast<std::uint64_t>(config.prm.skip_same_component));
  h = fp_mix(h, static_cast<std::uint64_t>(config.prm.exact_knn));
  h = fp_mix(h, static_cast<std::uint64_t>(config.prm.sampler));
  h = fp_mix(h, config.prm.sampler_scale);
  h = fp_mix(h, static_cast<std::uint64_t>(config.max_boundary_attempts));
  return h;
}

}  // namespace

ParallelPrmResult parallel_build_prm(const env::Environment& e,
                                     const RegionGrid& grid,
                                     const ParallelPrmConfig& config) {
  ParallelPrmResult result;
  const std::size_t nr = grid.size();
  const std::size_t base = config.total_attempts / nr;
  const std::size_t extra = config.total_attempts % nr;
  const AnytimeOptions& any = config.anytime;
  const runtime::CancelToken* cancel = any.cancel;
  auto& report = result.degradation;
  report.regions_total = nr;

  const std::uint64_t fingerprint = prm_fingerprint(e, grid, config);
  std::vector<RegionSnapshot> outputs(nr);
  std::unique_ptr<std::atomic<bool>[]> done(new std::atomic<bool>[nr]);
  for (std::size_t r = 0; r < nr; ++r)
    done[r].store(false, std::memory_order_relaxed);

  // Restore completed regions from a previous run's checkpoint. Any
  // problem — absent, corrupt, or from a different build — degrades to a
  // fresh build, recorded in resume_status.
  if (any.resume && !any.checkpoint_path.empty()) {
    IoStatus st = IoStatus::kOk;
    auto ckpt = load_checkpoint_file(any.checkpoint_path, &st);
    if (ckpt) {
      if (ckpt->kind != kCheckpointKindPrm ||
          ckpt->fingerprint != fingerprint || ckpt->num_regions != nr) {
        st = IoStatus::kFingerprintMismatch;
      } else {
        for (auto& reg : ckpt->regions) {
          const std::uint32_t r = reg.region;
          outputs[r] = std::move(reg);
          done[r].store(true, std::memory_order_relaxed);
          ++report.regions_restored;
        }
      }
    }
    report.resume_status = st;
  }

  std::mutex checkpoint_mutex;
  std::atomic<bool> checkpoint_written{false};
  auto write_snapshot = [&] {
    Checkpoint snap;
    snap.kind = kCheckpointKindPrm;
    snap.fingerprint = fingerprint;
    snap.seed = config.seed;
    snap.num_regions = static_cast<std::uint32_t>(nr);
    for (std::size_t r = 0; r < nr; ++r)
      if (done[r].load(std::memory_order_acquire))
        snap.regions.push_back(outputs[r]);
    if (save_checkpoint_file(snap, any.checkpoint_path))
      checkpoint_written.store(true, std::memory_order_release);
  };

  std::atomic<std::size_t> completed{report.regions_restored};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(nr);
  for (std::uint32_t r = 0; r < nr; ++r) {
    tasks.push_back([&, r] {
      if (done[r].load(std::memory_order_acquire)) return;  // restored
      if (runtime::stop_requested(cancel)) return;
      runtime::TraceBuffer* tb =
          config.tracer ? config.tracer->thread_track() : nullptr;
      runtime::TraceSpan region_span(config.tracer, tb, "region", r);
      RegionSnapshot out =
          build_region(e, grid.sampling_box(r), base + (r < extra),
                       config.prm, derive_seed(config.seed, r), cancel,
                       config.tracer);
      // All-or-nothing: a token fired mid-region means `out` is partial
      // and must not be kept, or resume equivalence would break.
      if (runtime::stop_requested(cancel)) return;
      out.region = r;
      outputs[r] = std::move(out);
      done[r].store(true, std::memory_order_release);
      const std::size_t c =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (any.checkpoint_every != 0 && !any.checkpoint_path.empty() &&
          c % any.checkpoint_every == 0) {
        std::lock_guard<std::mutex> lock(checkpoint_mutex);
        write_snapshot();
      }
    });
  }

  // Region tasks go straight onto the work-stealing scheduler with their
  // block placement; static mode is the same substrate with stealing off,
  // so each worker drains exactly its own block. Tasks always execute and
  // poll the token themselves (a cancelled task is a cheap no-op), keeping
  // the executor's accounting intact.
  const auto initial =
      loadbal::partition_block(nr, config.workers);
  runtime::SchedulerOptions options;
  options.steal = config.work_stealing;
  options.seed = config.seed;
  options.tracer = config.tracer;
  runtime::Scheduler scheduler(config.workers, options);
  WallTimer build_timer;
  result.workers = loadbal::run_on_scheduler(scheduler, tasks, initial);
  result.build_wall_s = build_timer.elapsed_s();

  for (std::size_t r = 0; r < nr; ++r)
    if (done[r].load(std::memory_order_acquire)) ++report.regions_completed;
  report.cancelled = runtime::stop_requested(cancel);

  // Merge regional roadmaps in region-id order (serial; bookkeeping only).
  // Only completed regions contribute — this is what makes the partial
  // result a prefix-equivalent of the full build.
  result.region_vertices.resize(nr);
  for (std::uint32_t r = 0; r < nr; ++r) {
    if (!done[r].load(std::memory_order_acquire)) continue;
    auto& ids = result.region_vertices[r];
    ids.reserve(outputs[r].configs.size());
    for (auto& c : outputs[r].configs)
      ids.push_back(result.roadmap.add_vertex({std::move(c), r}));
    for (const auto& edge : outputs[r].edges)
      result.roadmap.add_edge(ids[edge.u], ids[edge.v], {edge.length});
    result.stats += outputs[r].stats;
  }

  // Region connection along the grid adjacency, between completed regions
  // only. Connection edges are derived state — a resumed build redoes this
  // phase from the restored regional outputs.
  WallTimer connect_timer;
  bool connect_ran_to_end = true;
  runtime::TraceBuffer* connect_tb =
      config.tracer ? config.tracer->thread_track("region-connect") : nullptr;
  for (const auto& [a, b] : grid.adjacency_edges()) {
    if (runtime::stop_requested(cancel)) {
      connect_ran_to_end = false;
      break;
    }
    if (!done[a].load(std::memory_order_acquire) ||
        !done[b].load(std::memory_order_acquire))
      continue;
    runtime::TraceSpan span(config.tracer, connect_tb, "edge_connect", a);
    planner::connect_between(e, result.roadmap, result.region_vertices[a],
                             result.region_vertices[b], config.prm,
                             result.stats, nullptr,
                             config.max_boundary_attempts, cancel);
  }
  result.connect_wall_s = connect_timer.elapsed_s();
  report.connect_completed =
      connect_ran_to_end && !runtime::stop_requested(cancel);

  {
    graph::UnionFind cc(result.roadmap.num_vertices());
    for (graph::VertexId v = 0; v < result.roadmap.num_vertices(); ++v)
      for (const auto& he : result.roadmap.edges_of(v)) cc.unite(v, he.to);
    report.connected_components = cc.num_components();
  }

  if (!any.checkpoint_path.empty()) {
    if (!report.complete()) {
      // Final snapshot of whatever completed, so the build can resume.
      std::lock_guard<std::mutex> lock(checkpoint_mutex);
      write_snapshot();
    } else {
      // Build finished: a stale checkpoint would only confuse later runs.
      std::remove(any.checkpoint_path.c_str());
      checkpoint_written.store(false, std::memory_order_release);
    }
  }
  report.checkpoint_written =
      checkpoint_written.load(std::memory_order_acquire);
  return result;
}

}  // namespace pmpl::core
