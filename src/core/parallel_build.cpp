#include "core/parallel_build.hpp"

#include <functional>
#include <utility>

#include "loadbal/partition.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pmpl::core {

namespace {

/// Region-local construction output, merged after the parallel phase.
struct RegionOutput {
  std::vector<cspace::Config> configs;
  struct LocalEdge {
    std::uint32_t u, v;  ///< indices into configs
    double length;
  };
  std::vector<LocalEdge> edges;
  planner::PlannerStats stats;
};

/// Build one region into region-local storage (thread-confined).
RegionOutput build_region(const env::Environment& e, const geo::Aabb& box,
                          std::size_t attempts,
                          const planner::PrmParams& params,
                          std::uint64_t seed) {
  RegionOutput out;
  Xoshiro256ss rng(seed);
  out.configs = planner::sample_region(e, box, attempts, rng, out.stats);

  // Region-local roadmap to reuse connect_within, then lift its edges.
  planner::Roadmap local;
  std::vector<graph::VertexId> ids;
  ids.reserve(out.configs.size());
  for (const auto& c : out.configs) ids.push_back(local.add_vertex({c, 0}));
  graph::UnionFind cc(local.num_vertices());
  planner::connect_within(e, local, ids, params, out.stats, &cc);
  for (graph::VertexId u = 0; u < local.num_vertices(); ++u)
    for (const auto& he : local.edges_of(u))
      if (he.to > u) out.edges.push_back({u, he.to, he.prop.length});
  return out;
}

}  // namespace

ParallelPrmResult parallel_build_prm(const env::Environment& e,
                                     const RegionGrid& grid,
                                     const ParallelPrmConfig& config) {
  ParallelPrmResult result;
  const std::size_t nr = grid.size();
  const std::size_t base = config.total_attempts / nr;
  const std::size_t extra = config.total_attempts % nr;

  std::vector<RegionOutput> outputs(nr);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(nr);
  for (std::uint32_t r = 0; r < nr; ++r) {
    tasks.push_back([&, r] {
      outputs[r] = build_region(e, grid.sampling_box(r), base + (r < extra),
                                config.prm, derive_seed(config.seed, r));
    });
  }

  // Region tasks go straight onto the work-stealing scheduler with their
  // block placement; static mode is the same substrate with stealing off,
  // so each worker drains exactly its own block.
  const auto initial =
      loadbal::partition_block(nr, config.workers);
  runtime::SchedulerOptions options;
  options.steal = config.work_stealing;
  options.seed = config.seed;
  runtime::Scheduler scheduler(config.workers, options);
  WallTimer build_timer;
  result.workers = loadbal::run_on_scheduler(scheduler, tasks, initial);
  result.build_wall_s = build_timer.elapsed_s();

  // Merge regional roadmaps (serial; bookkeeping only).
  result.region_vertices.resize(nr);
  for (std::uint32_t r = 0; r < nr; ++r) {
    auto& ids = result.region_vertices[r];
    ids.reserve(outputs[r].configs.size());
    for (auto& c : outputs[r].configs)
      ids.push_back(result.roadmap.add_vertex({std::move(c), r}));
    for (const auto& edge : outputs[r].edges)
      result.roadmap.add_edge(ids[edge.u], ids[edge.v], {edge.length});
    result.stats += outputs[r].stats;
  }

  // Region connection along the grid adjacency.
  WallTimer connect_timer;
  for (const auto& [a, b] : grid.adjacency_edges()) {
    planner::connect_between(e, result.roadmap, result.region_vertices[a],
                             result.region_vertices[b], config.prm,
                             result.stats, nullptr,
                             config.max_boundary_attempts);
  }
  result.connect_wall_s = connect_timer.elapsed_s();
  return result;
}

}  // namespace pmpl::core
