#pragma once
/// \file parallel_build.hpp
/// Shared-memory parallel uniform-subdivision PRM: the same Algorithm 1 +
/// Algorithm 3 pipeline executed for real on host threads (not simulated).
///
/// Regions are independent tasks (sample + connect-within on region-local
/// storage) executed by the work-stealing executor; the regional roadmaps
/// are then merged and adjacent regions connected. Used by the examples
/// and the threaded integration tests; produces bitwise the same roadmap
/// as a sequential run thanks to per-region RNG streams.

#include <cstdint>
#include <vector>

#include "core/anytime.hpp"
#include "core/region_grid.hpp"
#include "env/environment.hpp"
#include "loadbal/ws_threaded.hpp"
#include "planner/prm.hpp"
#include "runtime/trace.hpp"

namespace pmpl::core {

struct ParallelPrmConfig {
  std::size_t total_attempts = 1 << 14;
  planner::PrmParams prm;
  std::uint32_t workers = 4;
  bool work_stealing = true;  ///< false: static block assignment only
  std::size_t max_boundary_attempts = 16;
  std::uint64_t seed = 1;
  AnytimeOptions anytime;  ///< deadline/cancel + checkpoint/resume
  /// Tracing sink; nullptr disables. When set, scheduler workers record
  /// task/steal/park events and each region task nests region > sample /
  /// connect spans on its worker's wall-time track; the serial
  /// region-connection phase records edge_connect spans on the caller's
  /// track. The roadmap is bit-identical with tracing on or off.
  runtime::Tracer* tracer = nullptr;
};

struct ParallelPrmResult {
  planner::Roadmap roadmap;
  std::vector<loadbal::WorkerStats> workers;  ///< per-thread steal stats
  std::vector<std::vector<graph::VertexId>> region_vertices;
  double build_wall_s = 0.0;    ///< regional construction (parallel part)
  double connect_wall_s = 0.0;  ///< region-connection phase
  planner::PlannerStats stats;  ///< aggregated over completed regions
  DegradationReport degradation;  ///< what was actually delivered
};

/// Build the roadmap for `e` over `grid` with `config.workers` threads.
///
/// Anytime semantics (config.anytime): a fired cancel token stops the
/// build cooperatively and the function still returns a well-formed
/// partial result — the merge keeps exactly the regions that completed
/// (all-or-nothing; a region interrupted mid-build is discarded), the
/// report says how far the build got, and, when a checkpoint path is set,
/// the completed subset is snapshotted so a later resumed run finishes
/// the build bit-identically to an uninterrupted one.
ParallelPrmResult parallel_build_prm(const env::Environment& e,
                                     const RegionGrid& grid,
                                     const ParallelPrmConfig& config);

}  // namespace pmpl::core
