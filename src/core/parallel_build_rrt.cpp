#include "core/parallel_build_rrt.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/union_find.hpp"
#include "loadbal/partition.hpp"
#include "planner/prm.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pmpl::core {

namespace {

/// Grow one branch into branch-local storage (thread-confined); configs[0]
/// is the root. With a fired cancel token the snapshot is partial and must
/// be discarded by the caller (branches are all-or-nothing).
RegionSnapshot grow_branch(const env::Environment& e,
                           const RadialRegions& regions, std::uint32_t region,
                           const cspace::Config& root,
                           const ParallelRrtConfig& config,
                           const runtime::CancelToken* cancel) {
  RegionSnapshot out;
  planner::Roadmap local;
  planner::RrtParams params = config.rrt;
  params.max_nodes =
      std::max<std::size_t>(2, config.total_nodes / regions.size());
  params.max_iterations = config.iteration_factor * params.max_nodes;

  runtime::TraceBuffer* tb =
      config.tracer ? config.tracer->thread_track() : nullptr;
  runtime::TraceSpan span(config.tracer, tb, "grow", region);
  planner::RrtBranch branch(e, local, root, region, params);
  Xoshiro256ss rng(derive_seed(config.seed, region));
  branch.grow(
      [&](Xoshiro256ss& g) {
        const geo::Vec3 p =
            regions.sample_in_cone(region, g, config.cone_overlap);
        return e.space().at_position(p, g);
      },
      rng, out.stats, cancel);

  out.configs.reserve(local.num_vertices());
  for (graph::VertexId v = 0; v < local.num_vertices(); ++v)
    out.configs.push_back(local.vertex(v).cfg);
  for (graph::VertexId u = 0; u < local.num_vertices(); ++u)
    for (const auto& he : local.edges_of(u))
      if (he.to > u) out.edges.push_back({u, he.to, he.prop.length});
  return out;
}

/// Everything that affects the forest (worker count excluded: the result
/// is placement-independent by construction).
std::uint64_t rrt_fingerprint(const env::Environment& e,
                              const RadialRegions& regions,
                              const cspace::Config& root,
                              const ParallelRrtConfig& config) {
  std::uint64_t h = kFnvOffset;
  h = fp_mix(h, std::string_view(e.name()));
  const auto& b = e.space().position_bounds();
  h = fp_mix(h, b.lo.x);
  h = fp_mix(h, b.lo.y);
  h = fp_mix(h, b.lo.z);
  h = fp_mix(h, b.hi.x);
  h = fp_mix(h, b.hi.y);
  h = fp_mix(h, b.hi.z);
  h = fp_mix(h, static_cast<std::uint64_t>(regions.size()));
  h = fp_mix(h, static_cast<std::uint64_t>(config.total_nodes));
  h = fp_mix(h, config.seed);
  h = fp_mix(h, config.rrt.step);
  h = fp_mix(h, config.rrt.resolution);
  h = fp_mix(h, static_cast<std::uint64_t>(config.rrt.max_nodes));
  h = fp_mix(h, static_cast<std::uint64_t>(config.rrt.max_iterations));
  h = fp_mix(h, static_cast<std::uint64_t>(config.rrt.exact_knn));
  h = fp_mix(h, static_cast<std::uint64_t>(config.iteration_factor));
  h = fp_mix(h, static_cast<std::uint64_t>(config.max_boundary_attempts));
  h = fp_mix(h, config.cone_overlap);
  for (std::size_t i = 0; i < root.size(); ++i) h = fp_mix(h, root[i]);
  return h;
}

}  // namespace

ParallelRrtResult parallel_build_rrt(const env::Environment& e,
                                     const RadialRegions& regions,
                                     const cspace::Config& root,
                                     const ParallelRrtConfig& config) {
  ParallelRrtResult result;
  const std::size_t nr = regions.size();
  const AnytimeOptions& any = config.anytime;
  const runtime::CancelToken* cancel = any.cancel;
  auto& report = result.degradation;
  report.regions_total = nr;

  const std::uint64_t fingerprint =
      rrt_fingerprint(e, regions, root, config);
  std::vector<RegionSnapshot> outputs(nr);
  std::unique_ptr<std::atomic<bool>[]> done(new std::atomic<bool>[nr]);
  for (std::size_t r = 0; r < nr; ++r)
    done[r].store(false, std::memory_order_relaxed);

  if (any.resume && !any.checkpoint_path.empty()) {
    IoStatus st = IoStatus::kOk;
    auto ckpt = load_checkpoint_file(any.checkpoint_path, &st);
    if (ckpt) {
      if (ckpt->kind != kCheckpointKindRrt ||
          ckpt->fingerprint != fingerprint || ckpt->num_regions != nr) {
        st = IoStatus::kFingerprintMismatch;
      } else {
        for (auto& reg : ckpt->regions) {
          const std::uint32_t r = reg.region;
          outputs[r] = std::move(reg);
          done[r].store(true, std::memory_order_relaxed);
          ++report.regions_restored;
        }
      }
    }
    report.resume_status = st;
  }

  std::mutex checkpoint_mutex;
  std::atomic<bool> checkpoint_written{false};
  auto write_snapshot = [&] {
    Checkpoint snap;
    snap.kind = kCheckpointKindRrt;
    snap.fingerprint = fingerprint;
    snap.seed = config.seed;
    snap.num_regions = static_cast<std::uint32_t>(nr);
    for (std::size_t r = 0; r < nr; ++r)
      if (done[r].load(std::memory_order_acquire))
        snap.regions.push_back(outputs[r]);
    if (save_checkpoint_file(snap, any.checkpoint_path))
      checkpoint_written.store(true, std::memory_order_release);
  };

  std::atomic<std::size_t> completed{report.regions_restored};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(nr);
  for (std::uint32_t r = 0; r < nr; ++r)
    tasks.push_back([&, r] {
      if (done[r].load(std::memory_order_acquire)) return;  // restored
      if (runtime::stop_requested(cancel)) return;
      runtime::TraceBuffer* tb =
          config.tracer ? config.tracer->thread_track() : nullptr;
      runtime::TraceSpan branch_span(config.tracer, tb, "branch", r);
      RegionSnapshot out = grow_branch(e, regions, r, root, config, cancel);
      // All-or-nothing: discard a branch interrupted mid-growth.
      if (runtime::stop_requested(cancel)) return;
      out.region = r;
      outputs[r] = std::move(out);
      done[r].store(true, std::memory_order_release);
      const std::size_t c =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (any.checkpoint_every != 0 && !any.checkpoint_path.empty() &&
          c % any.checkpoint_every == 0) {
        std::lock_guard<std::mutex> lock(checkpoint_mutex);
        write_snapshot();
      }
    });

  // Branch tasks go straight onto the work-stealing scheduler with their
  // block placement (thin stats adapter keeps the WorkerStats contract).
  const auto initial = loadbal::partition_block(nr, config.workers);
  runtime::SchedulerOptions options;
  options.seed = config.seed;
  options.tracer = config.tracer;
  runtime::Scheduler scheduler(config.workers, options);
  WallTimer grow_timer;
  result.workers = loadbal::run_on_scheduler(scheduler, tasks, initial);
  result.grow_wall_s = grow_timer.elapsed_s();

  for (std::size_t r = 0; r < nr; ++r)
    if (done[r].load(std::memory_order_acquire)) ++report.regions_completed;
  report.cancelled = runtime::stop_requested(cancel);

  // Merge completed branches in region-id order.
  result.region_vertices.resize(nr);
  for (std::uint32_t r = 0; r < nr; ++r) {
    if (!done[r].load(std::memory_order_acquire)) continue;
    auto& ids = result.region_vertices[r];
    ids.reserve(outputs[r].configs.size());
    for (auto& c : outputs[r].configs)
      ids.push_back(result.tree.add_vertex({std::move(c), r}));
    for (const auto& edge : outputs[r].edges)
      result.tree.add_edge(ids[edge.u], ids[edge.v], {edge.length});
    result.stats += outputs[r].stats;
  }

  // Connect adjacent completed branches, pruning cycles via component
  // skipping. Derived state — a resumed build redoes this phase.
  WallTimer connect_timer;
  planner::PrmParams connect_params;
  connect_params.resolution = config.rrt.resolution;
  connect_params.skip_same_component = true;
  graph::UnionFind cc(result.tree.num_vertices());
  for (graph::VertexId v = 0; v < result.tree.num_vertices(); ++v)
    for (const auto& he : result.tree.edges_of(v)) cc.unite(v, he.to);
  bool connect_ran_to_end = true;
  runtime::TraceBuffer* connect_tb =
      config.tracer ? config.tracer->thread_track("branch-connect") : nullptr;
  for (const auto& [a, b] : regions.adjacency_edges()) {
    if (runtime::stop_requested(cancel)) {
      connect_ran_to_end = false;
      break;
    }
    if (!done[a].load(std::memory_order_acquire) ||
        !done[b].load(std::memory_order_acquire))
      continue;
    runtime::TraceSpan span(config.tracer, connect_tb, "edge_connect", a);
    planner::connect_between(e, result.tree, result.region_vertices[a],
                             result.region_vertices[b], connect_params,
                             result.stats, &cc,
                             config.max_boundary_attempts, cancel);
  }
  result.connect_wall_s = connect_timer.elapsed_s();
  report.connect_completed =
      connect_ran_to_end && !runtime::stop_requested(cancel);

  {
    graph::UnionFind final_cc(result.tree.num_vertices());
    for (graph::VertexId v = 0; v < result.tree.num_vertices(); ++v)
      for (const auto& he : result.tree.edges_of(v)) final_cc.unite(v, he.to);
    report.connected_components = final_cc.num_components();
  }

  if (!any.checkpoint_path.empty()) {
    if (!report.complete()) {
      std::lock_guard<std::mutex> lock(checkpoint_mutex);
      write_snapshot();
    } else {
      std::remove(any.checkpoint_path.c_str());
      checkpoint_written.store(false, std::memory_order_release);
    }
  }
  report.checkpoint_written =
      checkpoint_written.load(std::memory_order_acquire);
  return result;
}

}  // namespace pmpl::core
