#include "core/parallel_build_rrt.hpp"

#include <algorithm>
#include <functional>

#include "graph/union_find.hpp"
#include "loadbal/partition.hpp"
#include "planner/prm.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pmpl::core {

namespace {

/// One branch grown into branch-local storage (thread-confined).
struct BranchOutput {
  std::vector<cspace::Config> configs;  ///< [0] is the root
  struct LocalEdge {
    std::uint32_t u, v;
    double length;
  };
  std::vector<LocalEdge> edges;
  planner::PlannerStats stats;
};

BranchOutput grow_branch(const env::Environment& e,
                         const RadialRegions& regions, std::uint32_t region,
                         const cspace::Config& root,
                         const ParallelRrtConfig& config) {
  BranchOutput out;
  planner::Roadmap local;
  planner::RrtParams params = config.rrt;
  params.max_nodes =
      std::max<std::size_t>(2, config.total_nodes / regions.size());
  params.max_iterations = config.iteration_factor * params.max_nodes;

  planner::RrtBranch branch(e, local, root, region, params);
  Xoshiro256ss rng(derive_seed(config.seed, region));
  branch.grow(
      [&](Xoshiro256ss& g) {
        const geo::Vec3 p =
            regions.sample_in_cone(region, g, config.cone_overlap);
        return e.space().at_position(p, g);
      },
      rng, out.stats);

  out.configs.reserve(local.num_vertices());
  for (graph::VertexId v = 0; v < local.num_vertices(); ++v)
    out.configs.push_back(local.vertex(v).cfg);
  for (graph::VertexId u = 0; u < local.num_vertices(); ++u)
    for (const auto& he : local.edges_of(u))
      if (he.to > u) out.edges.push_back({u, he.to, he.prop.length});
  return out;
}

}  // namespace

ParallelRrtResult parallel_build_rrt(const env::Environment& e,
                                     const RadialRegions& regions,
                                     const cspace::Config& root,
                                     const ParallelRrtConfig& config) {
  ParallelRrtResult result;
  const std::size_t nr = regions.size();
  std::vector<BranchOutput> outputs(nr);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(nr);
  for (std::uint32_t r = 0; r < nr; ++r)
    tasks.push_back([&, r] {
      outputs[r] = grow_branch(e, regions, r, root, config);
    });

  // Branch tasks go straight onto the work-stealing scheduler with their
  // block placement (thin stats adapter keeps the WorkerStats contract).
  const auto initial = loadbal::partition_block(nr, config.workers);
  runtime::SchedulerOptions options;
  options.seed = config.seed;
  runtime::Scheduler scheduler(config.workers, options);
  WallTimer grow_timer;
  result.workers = loadbal::run_on_scheduler(scheduler, tasks, initial);
  result.grow_wall_s = grow_timer.elapsed_s();

  // Merge branches.
  result.region_vertices.resize(nr);
  for (std::uint32_t r = 0; r < nr; ++r) {
    auto& ids = result.region_vertices[r];
    ids.reserve(outputs[r].configs.size());
    for (auto& c : outputs[r].configs)
      ids.push_back(result.tree.add_vertex({std::move(c), r}));
    for (const auto& edge : outputs[r].edges)
      result.tree.add_edge(ids[edge.u], ids[edge.v], {edge.length});
    result.stats += outputs[r].stats;
  }

  // Connect adjacent branches, pruning cycles via component skipping.
  WallTimer connect_timer;
  planner::PrmParams connect_params;
  connect_params.resolution = config.rrt.resolution;
  connect_params.skip_same_component = true;
  graph::UnionFind cc(result.tree.num_vertices());
  for (graph::VertexId v = 0; v < result.tree.num_vertices(); ++v)
    for (const auto& he : result.tree.edges_of(v)) cc.unite(v, he.to);
  for (const auto& [a, b] : regions.adjacency_edges()) {
    planner::connect_between(e, result.tree, result.region_vertices[a],
                             result.region_vertices[b], connect_params,
                             result.stats, &cc,
                             config.max_boundary_attempts);
  }
  result.connect_wall_s = connect_timer.elapsed_s();
  return result;
}

}  // namespace pmpl::core
