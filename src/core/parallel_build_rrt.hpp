#pragma once
/// \file parallel_build_rrt.hpp
/// Shared-memory parallel radial-subdivision RRT: Algorithm 2 + Algorithm 3
/// executed for real on host threads.
///
/// Each radial region grows its branch as one task under the work-stealing
/// executor (per-region RNG streams keep the forest identical to a
/// sequential build); branches are then merged and connected acyclically.

#include <cstdint>

#include "core/anytime.hpp"
#include "core/radial_regions.hpp"
#include "env/environment.hpp"
#include "loadbal/ws_threaded.hpp"
#include "planner/rrt.hpp"
#include "runtime/trace.hpp"

namespace pmpl::core {

struct ParallelRrtConfig {
  std::size_t total_nodes = 1 << 13;
  planner::RrtParams rrt;
  std::size_t iteration_factor = 8;
  std::size_t max_boundary_attempts = 8;
  double cone_overlap = 1.5;
  std::uint32_t workers = 4;
  std::uint64_t seed = 1;
  AnytimeOptions anytime;  ///< deadline/cancel + checkpoint/resume
  /// Tracing sink; nullptr disables (see ParallelPrmConfig::tracer).
  /// Branch tasks record branch > grow spans; the connection phase records
  /// edge_connect spans. The forest is bit-identical with tracing on/off.
  runtime::Tracer* tracer = nullptr;
};

struct ParallelRrtResult {
  planner::Roadmap tree;  ///< a forest: regional branches + connections
  std::vector<loadbal::WorkerStats> workers;
  std::vector<std::vector<graph::VertexId>> region_vertices;
  double grow_wall_s = 0.0;
  double connect_wall_s = 0.0;
  planner::PlannerStats stats;
  DegradationReport degradation;  ///< what was actually delivered
};

/// Grow all regional branches of `regions` from `root` with
/// `config.workers` threads and connect adjacent branches.
///
/// Anytime semantics match parallel_build_prm: a fired cancel token yields
/// a well-formed partial forest of the branches that completed
/// (all-or-nothing per branch), an optional checkpoint of that subset,
/// and a report; a resumed run finishes bit-identically to an
/// uninterrupted one.
ParallelRrtResult parallel_build_rrt(const env::Environment& e,
                                     const RadialRegions& regions,
                                     const cspace::Config& root,
                                     const ParallelRrtConfig& config);

}  // namespace pmpl::core
