#include "core/prm_driver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "core/region_weight.hpp"
#include "cspace/config.hpp"
#include "geometry/intersect.hpp"
#include "loadbal/partition.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pmpl::core {

namespace {

/// Serialized size of a region's roadmap payload for migration.
std::uint64_t region_payload_bytes(const planner::Roadmap& g,
                                   std::span<const graph::VertexId> ids) {
  std::uint64_t bytes = 64;  // region descriptor
  for (const graph::VertexId v : ids) {
    bytes += cspace::config_bytes(g.vertex(v).cfg) + 8;  // cfg + id
    bytes += g.degree(v) * 12;                           // edge records
  }
  return bytes;
}

/// Vertices of region `r` lying within `band` of region `other`'s box —
/// the only candidates region connection considers (and the only data
/// fetched remotely when the neighbor lives on another location).
std::vector<graph::VertexId> boundary_vertices(
    const planner::Roadmap& g, const cspace::CSpace& space,
    std::span<const graph::VertexId> ids, const geo::Aabb& other_box,
    double band) {
  std::vector<graph::VertexId> out;
  const double band2 = band * band;
  for (const graph::VertexId v : ids) {
    const geo::Vec3 p = space.position(g.vertex(v).cfg);
    if (geo::distance2(p, other_box) <= band2) out.push_back(v);
  }
  return out;
}

}  // namespace

Workload build_prm_workload(const env::Environment& e, const RegionGrid& grid,
                            const PrmWorkloadConfig& config) {
  Workload w;
  const std::size_t nr = grid.size();
  w.regions.resize(nr);
  w.region_vertices.resize(nr);
  w.region_edges = grid.adjacency_edges();
  w.bounds = grid.bounds();

  const std::size_t base = config.total_attempts / nr;
  const std::size_t extra = config.total_attempts % nr;
  const auto sampler = planner::make_sampler(
      config.prm.sampler, e.space(), e.validity(), config.prm.sampler_scale);

  // Phase 1+2 per region: sample, then connect within the region.
  // Per-region RNG streams make the result independent of execution order.
  // A fired cancel token stops measurement after the current granule
  // (sample attempt / vertex connection); the interrupted region's profile
  // stays zero-initialized and its samples are discarded.
  for (std::uint32_t r = 0; r < nr; ++r) {
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;
    }
    RegionProfile& profile = w.regions[r];
    profile.centroid = grid.centroid(r);

    Xoshiro256ss rng(derive_seed(config.seed, r));
    planner::PlannerStats sampling_stats;
    const auto samples = planner::sample_region_with(
        *sampler, grid.sampling_box(r), base + (r < extra), rng,
        sampling_stats, config.cancel);
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;  // partial sample set: discard before committing vertices
    }

    auto& ids = w.region_vertices[r];
    ids.reserve(samples.size());
    for (const auto& c : samples) ids.push_back(w.roadmap.add_vertex({c, r}));

    planner::PlannerStats build_stats;
    graph::UnionFind cc(w.roadmap.num_vertices());
    planner::connect_within(e, w.roadmap, ids, config.prm, build_stats, &cc,
                            config.cancel);
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;  // region partially connected: its profile stays unmeasured
    }
    profile.sampling_ops = to_work_counts(sampling_stats);
    profile.sampling_s = config.costs.seconds(profile.sampling_ops);
    profile.samples = static_cast<std::uint32_t>(samples.size());
    profile.build_ops = to_work_counts(build_stats);
    profile.build_s = config.costs.seconds(profile.build_ops);
    profile.bytes = region_payload_bytes(w.roadmap, ids);
    ++w.regions_measured;
  }

  // Phase 3: region connection along region-graph edges (measured in fixed
  // edge order; the attempts touch the global roadmap). A global component
  // tracker skips attempts between already-merged regions, so — as in real
  // PRM — the bulk of this phase's work happens on the first few edges of
  // each component and the phase stays well below node connection.
  graph::UnionFind components(w.roadmap.num_vertices());
  for (graph::VertexId v = 0; v < w.roadmap.num_vertices(); ++v)
    for (const auto& he : w.roadmap.edges_of(v)) components.unite(v, he.to);
  w.edge_profiles.reserve(w.region_edges.size());
  // Candidate band: a third of a cell — only samples this close to the
  // shared face participate in boundary connection.
  const geo::Vec3 cell = grid.cell_box(0).size();
  const double band =
      std::max({cell.x, cell.y, cell.z}) / 3.0;
  for (const auto& [a, b] : w.region_edges) {
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;  // edge_profiles stays a measured prefix of region_edges
    }
    EdgeProfile ep;
    ep.a = a;
    ep.b = b;
    const auto near_a = boundary_vertices(w.roadmap, e.space(),
                                          w.region_vertices[a],
                                          grid.cell_box(b), band);
    const auto near_b = boundary_vertices(w.roadmap, e.space(),
                                          w.region_vertices[b],
                                          grid.cell_box(a), band);
    planner::PlannerStats stats;
    ep.edges_added = static_cast<std::uint32_t>(planner::connect_between(
        e, w.roadmap, near_a, near_b, config.prm, stats, &components,
        config.max_boundary_attempts));
    ep.service_s = config.costs.seconds(to_work_counts(stats));
    // The executor fetches the neighbor region's boundary candidates.
    ep.vertex_reads = static_cast<std::uint32_t>(near_b.size());
    std::uint64_t bytes = 0;
    for (const graph::VertexId v : near_b)
      bytes += cspace::config_bytes(w.roadmap.vertex(v).cfg);
    ep.bytes_touched = bytes;
    w.edge_profiles.push_back(ep);
  }
  return w;
}

loadbal::Assignment naive_assignment(std::size_t regions,
                                     std::uint32_t procs) {
  return loadbal::partition_block(regions, procs);
}

namespace {

/// Region-connection phase: each region-graph edge is executed by the owner
/// of its first endpoint; edges whose endpoints live on different locations
/// pay remote-access costs (region-graph lookup + roadmap vertex fetches).
struct RegionConnectionOutcome {
  double time_s = 0.0;
  std::uint64_t remote_region_graph = 0;
  std::uint64_t remote_roadmap = 0;
};

RegionConnectionOutcome region_connection_phase(
    const Workload& w, const loadbal::Assignment& owner,
    const PrmRunConfig& config) {
  RegionConnectionOutcome out;
  std::vector<double> busy(config.procs, 0.0);
  // edge_profiles can be a prefix of region_edges for a cancelled
  // workload; iterate what was actually measured.
  for (std::size_t i = 0; i < w.edge_profiles.size(); ++i) {
    const EdgeProfile& ep = w.edge_profiles[i];
    const std::uint32_t pa = owner[ep.a];
    const std::uint32_t pb = owner[ep.b];
    double t = ep.service_s;
    if (pa != pb) {
      // Remote adjacency lookup + bulk fetch of the neighbor's candidates.
      ++out.remote_region_graph;
      out.remote_roadmap += ep.vertex_reads;
      t += config.cluster.latency(pa, pb) +
           static_cast<double>(ep.bytes_touched) / config.cluster.bandwidth_bps;
    }
    busy[pa] += t;
  }
  double max_busy = 0.0;
  for (const double b : busy) max_busy = std::max(max_busy, b);
  const double barrier =
      config.procs > 1 ? config.cluster.remote_latency_s *
                             std::ceil(std::log2(double(config.procs)))
                       : 0.0;
  out.time_s = max_busy + barrier;
  return out;
}

std::vector<std::uint64_t> nodes_per_processor(
    const Workload& w, const loadbal::Assignment& owner, std::uint32_t p) {
  std::vector<std::uint64_t> nodes(p, 0);
  for (std::size_t r = 0; r < w.regions.size(); ++r)
    nodes[owner[r]] += w.regions[r].samples;
  return nodes;
}

double cv_of_counts(const std::vector<std::uint64_t>& counts) {
  std::vector<double> d(counts.begin(), counts.end());
  return summarize(d).cv();
}

}  // namespace

PrmRunResult simulate_prm_run(const Workload& w, const PrmRunConfig& config) {
  assert(config.procs > 0);
  const std::size_t nr = w.regions.size();
  PrmRunResult out;

  const loadbal::Assignment initial = naive_assignment(nr, config.procs);
  out.cv_nodes_before = cv_of_counts(nodes_per_processor(w, initial,
                                                         config.procs));
  out.edge_cut_before = loadbal::edge_cut(w.region_edges, initial);

  // Setup: region-graph construction, O(regions/p) with a collective.
  const double barrier =
      config.procs > 1 ? config.cluster.remote_latency_s *
                             std::ceil(std::log2(double(config.procs)))
                       : 0.0;
  out.phases.setup_s =
      1e-7 * (static_cast<double>(nr) / config.procs) + barrier;

  if (is_work_stealing(config.strategy)) {
    // Algorithm 3: regions are tasks covering sampling + node connection.
    std::vector<loadbal::WsItem> items(nr);
    for (std::size_t r = 0; r < nr; ++r)
      items[r] = {w.regions[r].service_s(), w.regions[r].bytes};
    loadbal::WsConfig ws_cfg;
    ws_cfg.policy = steal_policy_of(config.strategy);
    ws_cfg.cluster = config.cluster;
    ws_cfg.seed = config.seed;
    ws_cfg.faults = config.faults;
    if (config.tracer && config.trace_ranks) {
      ws_cfg.tracer = config.tracer;
      ws_cfg.trace_prefix = config.trace_prefix;
      ws_cfg.trace_capacity = config.trace_rank_capacity;
    }
    out.ws = loadbal::simulate_work_stealing(items, initial, config.procs,
                                             ws_cfg);
    out.straggler_delay_s = out.ws.faults.straggler_delay_s;
    out.assignment = out.ws.final_owner;
    // Attribute the combined makespan to the sampling / node-connection
    // phases proportionally to their global shares (reporting only).
    const double sampling = w.total_sampling_s();
    const double build = w.total_build_s();
    const double share =
        sampling + build > 0.0 ? sampling / (sampling + build) : 0.0;
    out.phases.sampling_s = out.ws.makespan_s * share;
    out.phases.node_connection_s = out.ws.makespan_s * (1.0 - share);
    out.load_profile_s = out.ws.busy_s;
  } else {
    // Bulk-synchronous pipeline: sample on the naive map first. Straggler
    // windows stretch each phase from its wall-clock start; there is no
    // stealing to absorb them, so the closing barrier pays in full.
    const runtime::FaultInjector inject(config.faults);
    std::vector<double> sampling_times(nr);
    for (std::size_t r = 0; r < nr; ++r)
      sampling_times[r] = w.regions[r].sampling_s;
    const auto sampling_phase =
        loadbal::static_phase(sampling_times, initial, config.procs,
                              config.cluster, inject, out.phases.setup_s);
    out.phases.sampling_s = sampling_phase.time_s;
    out.straggler_delay_s += sampling_phase.straggler_delay_s;

    loadbal::Assignment assignment = initial;
    if (config.strategy == Strategy::kRepartition) {
      // Algorithm 4: weight by sample count, repartition, migrate.
      const auto weights = weights_from_sample_counts(w.sample_counts());
      const auto centroids = w.centroids();
      const loadbal::PartitionProblem problem{weights, centroids,
                                              w.region_edges, w.bounds,
                                              config.procs};
      switch (config.partitioner) {
        case PrmRunConfig::Partitioner::kRcb:
          assignment = loadbal::partition_rcb(problem);
          break;
        case PrmRunConfig::Partitioner::kSfc:
          assignment = loadbal::partition_sfc(problem);
          break;
        case PrmRunConfig::Partitioner::kGreedyLpt:
          assignment = loadbal::partition_greedy_lpt(problem);
          break;
      }
      if (config.refine_cut)
        loadbal::refine_edge_cut(problem, assignment);
      const double redistribution = loadbal::redistribution_time(
          w.region_bytes(), initial, assignment, config.procs,
          config.cluster);
      if (config.adaptive) {
        // Estimate the phase-time saving with the weights the partitioner
        // itself used: max weighted load before vs after, scaled to the
        // measured total build time.
        const double total_weight =
            std::accumulate(weights.begin(), weights.end(), 0.0);
        const double scale =
            total_weight > 0.0 ? w.total_build_s() / total_weight : 0.0;
        const double saving =
            scale * (loadbal::makespan(weights, initial, config.procs) -
                     loadbal::makespan(weights, assignment, config.procs));
        if (saving <= redistribution) {
          assignment = initial;  // not worth migrating
          out.repartition_skipped = true;
        } else {
          out.phases.redistribution_s = redistribution;
        }
      } else {
        out.phases.redistribution_s = redistribution;
      }
    }

    const double build_start = out.phases.setup_s + out.phases.sampling_s +
                               out.phases.redistribution_s;
    const auto phase =
        loadbal::static_phase(w.build_times(), assignment, config.procs,
                              config.cluster, inject, build_start);
    out.phases.node_connection_s = phase.time_s;
    out.load_profile_s = phase.busy_s;
    out.straggler_delay_s += phase.straggler_delay_s;
    out.assignment = std::move(assignment);
  }

  const auto rc = region_connection_phase(w, out.assignment, config);
  out.phases.region_connection_s = rc.time_s;
  out.remote_region_graph = rc.remote_region_graph;
  out.remote_roadmap = rc.remote_roadmap;

  out.nodes_per_proc = nodes_per_processor(w, out.assignment, config.procs);
  out.cv_nodes_after = cv_of_counts(out.nodes_per_proc);
  out.edge_cut_after = loadbal::edge_cut(w.region_edges, out.assignment);
  out.total_s = out.phases.total();

  if (config.tracer) {
    // Lay the reported breakdown end-to-end on a virtual-time track: each
    // phase is one span, so per-phase span sums in the exported trace equal
    // the PhaseBreakdown fields exactly.
    runtime::TraceBuffer* t =
        config.tracer->track(config.trace_prefix + "phases", 16);
    double at = 0.0;
    const auto phase_span = [&](const char* name, double dur) {
      t->begin_at(name, at);
      at += dur;
      t->end_at(name, at);
    };
    phase_span("setup", out.phases.setup_s);
    phase_span("sampling", out.phases.sampling_s);
    phase_span("redistribution", out.phases.redistribution_s);
    phase_span("node_connection", out.phases.node_connection_s);
    phase_span("region_connection", out.phases.region_connection_s);
  }
  return out;
}

}  // namespace pmpl::core
