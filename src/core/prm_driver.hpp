#pragma once
/// \file prm_driver.hpp
/// Uniform-subdivision parallel PRM (Algorithm 1) with load balancing
/// (Algorithms 3 & 4): workload measurement and schedule replay.
///
/// `build_prm_workload` executes the real computation once (deterministic
/// per-region seeds). `simulate_prm_run` replays the measured costs under a
/// strategy, processor count and cluster, producing the phase times, load
/// profiles, CVs and remote-access counts the paper's figures report.

#include "core/profile.hpp"
#include "core/region_grid.hpp"
#include "core/strategies.hpp"
#include "env/environment.hpp"
#include "loadbal/bulk_sync.hpp"
#include "loadbal/ws_engine.hpp"
#include "planner/prm.hpp"

namespace pmpl::core {

/// Workload-construction parameters.
struct PrmWorkloadConfig {
  std::size_t total_attempts = 1 << 15;  ///< N sampling attempts overall
  planner::PrmParams prm;                ///< k, resolution, ...
  std::size_t max_boundary_attempts = 4; ///< per region-graph edge
  std::uint64_t seed = 1;
  /// Work-unit costs (paper_fidelity reproduces the paper's regime).
  runtime::CostModel costs = runtime::CostModel::paper_fidelity();
  /// Cooperative stop: measurement ends after the current granule and the
  /// workload comes back partial (see Workload::regions_measured).
  const runtime::CancelToken* cancel = nullptr;
};

/// Execute Algorithm 1's computation over `grid`, measuring every region
/// and region-edge. The returned workload contains the full roadmap.
Workload build_prm_workload(const env::Environment& e, const RegionGrid& grid,
                            const PrmWorkloadConfig& config);

/// Simulated phase breakdown (Fig 7a's bars).
struct PhaseBreakdown {
  double setup_s = 0.0;           ///< region graph construction
  double sampling_s = 0.0;        ///< node generation
  double redistribution_s = 0.0;  ///< weighting + partition + migration
  double node_connection_s = 0.0; ///< dominant phase (~90% at baseline)
  double region_connection_s = 0.0;
  double total() const noexcept {
    return setup_s + sampling_s + redistribution_s + node_connection_s +
           region_connection_s;
  }
};

/// Replay parameters.
struct PrmRunConfig {
  std::uint32_t procs = 16;
  runtime::ClusterSpec cluster = runtime::ClusterSpec::hopper();
  Strategy strategy = Strategy::kNoLB;
  std::uint64_t seed = 1;
  /// Partitioner for kRepartition (RCB preserves spatial geometry).
  enum class Partitioner { kRcb, kSfc, kGreedyLpt } partitioner =
      Partitioner::kRcb;
  bool refine_cut = true;  ///< boundary refinement after repartitioning
  /// Adaptive gating (extension): before migrating, estimate the node-
  /// connection time saved by the new partition (using the same per-region
  /// weights the partitioner used) and skip redistribution when the
  /// estimated saving does not cover its cost. Protects balanced
  /// workloads (e.g. the free environment) from paying for nothing.
  bool adaptive = false;
  /// Failure scenario for the replay. Work-stealing strategies get the
  /// full treatment (crashes, lossy links, token loss, stragglers) through
  /// the DES engine; the bulk-synchronous strategies — which have no
  /// recovery protocol to model — apply the straggler windows to their
  /// phase timing, showing how a barrier amplifies one slow rank.
  runtime::FaultPlan faults;
  /// Tracing sink; nullptr disables. When set, the replay emits a
  /// "<trace_prefix>phases" virtual track whose spans lay the reported
  /// PhaseBreakdown end-to-end on the simulated timeline (span sums match
  /// the phase totals exactly). With `trace_ranks` additionally set and a
  /// work-stealing strategy, the DES engine gets one virtual-time track
  /// per simulated processor (region spans, steal traffic, fault markers)
  /// — sized by `trace_rank_capacity` (0 = tracer default); mind the
  /// memory at large `procs`. Tracing never perturbs the replay.
  runtime::Tracer* tracer = nullptr;
  std::string trace_prefix;
  bool trace_ranks = false;
  std::size_t trace_rank_capacity = 0;
};

/// Replay outcome: everything the figures plot.
struct PrmRunResult {
  PhaseBreakdown phases;
  double total_s = 0.0;

  loadbal::Assignment assignment;  ///< region owner during node connection
  std::vector<double> load_profile_s;        ///< per-proc node-connection busy
  std::vector<std::uint64_t> nodes_per_proc; ///< roadmap nodes (Fig 5c)
  double cv_nodes_before = 0.0;  ///< CV of roadmap nodes per proc, naive map
  double cv_nodes_after = 0.0;   ///< ... under the final assignment (Fig 5b)

  std::uint64_t edge_cut_before = 0;
  std::uint64_t edge_cut_after = 0;
  bool repartition_skipped = false;  ///< adaptive gate declined to migrate
  std::uint64_t remote_region_graph = 0;  ///< region-graph remote accesses
  std::uint64_t remote_roadmap = 0;       ///< roadmap remote accesses (Fig 7b)

  loadbal::WsResult ws;  ///< populated for work-stealing strategies
  /// Extra wall seconds lost to straggler windows (ws.faults has the full
  /// fault metrics for work-stealing strategies; bulk-synchronous
  /// strategies report their stretched phases here).
  double straggler_delay_s = 0.0;
};

/// Replay `workload` under `config`.
PrmRunResult simulate_prm_run(const Workload& workload,
                              const PrmRunConfig& config);

/// The naive mapping of Algorithm 1: contiguous blocks of the x-major
/// region ordering, i.e. balanced columns of the region mesh.
loadbal::Assignment naive_assignment(std::size_t regions, std::uint32_t procs);

}  // namespace pmpl::core
