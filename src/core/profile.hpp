#pragma once
/// \file profile.hpp
/// Measured per-region and per-region-edge work profiles.
///
/// A *workload* is the result of actually executing the parallel planner's
/// computation once with deterministic per-region seeds: the roadmap/tree
/// it built plus, for every region and region-graph edge, the operation
/// counts the planner performed. Replaying a workload under a strategy and
/// processor count (prm_driver / rrt_driver) never re-runs the planner —
/// it schedules these measured costs.

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/vec.hpp"
#include "planner/roadmap.hpp"
#include "planner/stats.hpp"
#include "runtime/work_units.hpp"

namespace pmpl::core {

/// Convert planner op counts to the runtime's schedulable work counts.
inline runtime::WorkCounts to_work_counts(const planner::PlannerStats& s) {
  return {s.cd.queries,  s.cd.narrow_tests, s.cd.bvh_nodes,
          s.knn_candidates, s.rrt_extends,  s.cd.ray_casts};
}

/// Measured cost of one region.
struct RegionProfile {
  double sampling_s = 0.0;  ///< node generation (PRM) — 0 for RRT
  double build_s = 0.0;     ///< node connection (PRM) / tree growth (RRT)
  runtime::WorkCounts sampling_ops;
  runtime::WorkCounts build_ops;
  std::uint32_t samples = 0;   ///< roadmap nodes generated in this region
  std::uint64_t bytes = 0;     ///< migration payload (region + roadmap data)
  geo::Vec3 centroid;

  double service_s() const noexcept { return sampling_s + build_s; }
};

/// Measured cost of connecting one pair of adjacent regions.
struct EdgeProfile {
  std::uint32_t a = 0, b = 0;     ///< region ids (a < b)
  double service_s = 0.0;         ///< compute cost of the attempts
  std::uint32_t vertex_reads = 0; ///< neighbor-side vertices fetched
  std::uint64_t bytes_touched = 0;///< payload of those fetches
  std::uint32_t edges_added = 0;  ///< successful inter-region connections
};

/// A fully measured parallel-planning computation.
struct Workload {
  std::vector<RegionProfile> regions;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> region_edges;
  std::vector<EdgeProfile> edge_profiles;  ///< parallel to region_edges
  planner::Roadmap roadmap;
  std::vector<std::vector<graph::VertexId>> region_vertices;
  geo::Aabb bounds;  ///< centroid bounds (partitioner input)

  /// Anytime measurement progress: regions [0, regions_measured) carry
  /// real profiles; with a fired cancel token the remainder are
  /// zero-initialized and `measurement_cancelled` is set. A cancelled
  /// workload is a valid partial measurement (edge_profiles may be a
  /// prefix of region_edges) but must not be replayed as if complete.
  std::size_t regions_measured = 0;
  bool measurement_cancelled = false;

  double total_sampling_s() const noexcept {
    double t = 0.0;
    for (const auto& r : regions) t += r.sampling_s;
    return t;
  }
  double total_build_s() const noexcept {
    double t = 0.0;
    for (const auto& r : regions) t += r.build_s;
    return t;
  }
  double total_edge_s() const noexcept {
    double t = 0.0;
    for (const auto& e : edge_profiles) t += e.service_s;
    return t;
  }

  std::vector<double> build_times() const {
    std::vector<double> t;
    t.reserve(regions.size());
    for (const auto& r : regions) t.push_back(r.build_s);
    return t;
  }
  std::vector<double> service_times() const {
    std::vector<double> t;
    t.reserve(regions.size());
    for (const auto& r : regions) t.push_back(r.service_s());
    return t;
  }
  std::vector<geo::Vec3> centroids() const {
    std::vector<geo::Vec3> c;
    c.reserve(regions.size());
    for (const auto& r : regions) c.push_back(r.centroid);
    return c;
  }
  std::vector<std::uint64_t> region_bytes() const {
    std::vector<std::uint64_t> b;
    b.reserve(regions.size());
    for (const auto& r : regions) b.push_back(r.bytes);
    return b;
  }
  std::vector<std::uint32_t> sample_counts() const {
    std::vector<std::uint32_t> s;
    s.reserve(regions.size());
    for (const auto& r : regions) s.push_back(r.samples);
    return s;
  }
};

}  // namespace pmpl::core
