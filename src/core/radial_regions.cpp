#include "core/radial_regions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geometry/morton.hpp"

namespace pmpl::core {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Uniform direction on the unit sphere (or circle for two_d).
geo::Vec3 random_direction(Xoshiro256ss& rng, bool two_d) {
  if (two_d) {
    const double a = rng.uniform(0.0, 2.0 * kPi);
    return {std::cos(a), std::sin(a), 0.0};
  }
  const double z = rng.uniform(-1.0, 1.0);
  const double a = rng.uniform(0.0, 2.0 * kPi);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(a), r * std::sin(a), z};
}

/// Any unit vector orthogonal to `d`.
geo::Vec3 orthogonal(geo::Vec3 d) {
  const geo::Vec3 other =
      std::fabs(d.x) < 0.9 ? geo::Vec3{1, 0, 0} : geo::Vec3{0, 1, 0};
  return d.cross(other).normalized();
}

}  // namespace

RadialRegions::RadialRegions(geo::Vec3 root, double radius,
                             std::uint32_t count, std::uint32_t k_adjacent,
                             std::uint64_t seed, bool two_d)
    : root_(root), radius_(radius), two_d_(two_d), k_adjacent_(k_adjacent) {
  assert(count > 0 && radius > 0.0);
  Xoshiro256ss rng(seed);
  dirs_.reserve(count);
  if (two_d) {
    // Evenly spaced with a random phase: uniform coverage of the circle,
    // still seed-dependent.
    const double phase = rng.uniform(0.0, 2.0 * kPi);
    for (std::uint32_t i = 0; i < count; ++i) {
      const double a = phase + 2.0 * kPi * i / count;
      dirs_.push_back({std::cos(a), std::sin(a), 0.0});
    }
  } else {
    for (std::uint32_t i = 0; i < count; ++i)
      dirs_.push_back(random_direction(rng, false));
    // Order directions spatially (Morton over the unit cube) so that
    // consecutive region ids are neighboring cones: the naive block
    // mapping then assigns contiguous sectors per processor, exactly as
    // the grid subdivision's x-major ordering does for PRM.
    std::sort(dirs_.begin(), dirs_.end(), [](geo::Vec3 a, geo::Vec3 b) {
      const geo::Aabb unit{{-1, -1, -1}, {1, 1, 1}};
      return geo::morton_key(a, unit) < geo::morton_key(b, unit);
    });
  }
}

double RadialRegions::cone_half_angle(double overlap) const noexcept {
  const auto n = static_cast<double>(dirs_.size());
  if (two_d_) return std::min(kPi, overlap * kPi / n);
  // Solid angle per cone = 4*pi/n = 2*pi*(1-cos(theta)).
  const double c = 1.0 - 2.0 / n;
  const double theta = std::acos(std::clamp(c, -1.0, 1.0));
  return std::min(kPi, overlap * theta);
}

geo::Vec3 RadialRegions::sample_in_cone(std::uint32_t id, Xoshiro256ss& rng,
                                        double overlap) const {
  const geo::Vec3 axis = dirs_[id];
  const double half = cone_half_angle(overlap);
  // Radius weighted toward the rim (u^{1/2}): biases growth outward.
  const double r = radius_ * std::sqrt(rng.uniform());

  if (two_d_) {
    const double a = rng.uniform(-half, half);
    const double base = std::atan2(axis.y, axis.x);
    return root_ + geo::Vec3{std::cos(base + a), std::sin(base + a), 0.0} * r;
  }
  // Uniform direction within the spherical cap of half-angle `half`.
  const double cos_half = std::cos(half);
  const double z = rng.uniform(cos_half, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * kPi);
  const double s = std::sqrt(std::max(0.0, 1.0 - z * z));
  const geo::Vec3 u = orthogonal(axis);
  const geo::Vec3 v = axis.cross(u);
  const geo::Vec3 dir =
      axis * z + u * (s * std::cos(phi)) + v * (s * std::sin(phi));
  return root_ + dir * r;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
RadialRegions::adjacency_edges() const {
  // k nearest by angular distance; O(n^2) is fine for region counts here.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t n = static_cast<std::uint32_t>(dirs_.size());
  const std::uint32_t k = std::min(k_adjacent_, n > 0 ? n - 1 : 0);
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) order[j] = j;
    std::partial_sort(order.begin(), order.begin() + k + 1, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        // Larger dot product = closer direction; the region
                        // itself (dot = 1) sorts first and is skipped.
                        return dirs_[i].dot(dirs_[a]) >
                               dirs_[i].dot(dirs_[b]);
                      });
    for (std::uint32_t j = 1; j <= k; ++j) {
      const std::uint32_t other = order[j];
      const auto lo = std::min(i, other);
      const auto hi = std::max(i, other);
      if (lo != hi) edges.emplace_back(lo, hi);
    }
  }
  // De-duplicate symmetric pairs.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<geo::Vec3> RadialRegions::centroids() const {
  std::vector<geo::Vec3> out;
  out.reserve(dirs_.size());
  for (std::uint32_t i = 0; i < dirs_.size(); ++i)
    out.push_back(centroid(i));
  return out;
}

}  // namespace pmpl::core
