#pragma once
/// \file radial_regions.hpp
/// Uniform radial subdivision for parallel RRT (Algorithm 2, lines 1–9).
///
/// Nr points are sampled on the surface of a hypersphere rooted at qroot;
/// each point defines a conical region around the ray root->point, and the
/// region graph connects each region to its k nearest neighbors on the
/// sphere. Subtree growth in a region is biased toward its target ray.

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/shapes.hpp"
#include "util/rng.hpp"

namespace pmpl::core {

/// Immutable radial region set.
class RadialRegions {
 public:
  /// Sample `count` directions on the sphere of `radius` about `root`
  /// (circle when `two_d`); each region is adjacent to its `k_adjacent`
  /// nearest sibling directions. Deterministic per seed.
  RadialRegions(geo::Vec3 root, double radius, std::uint32_t count,
                std::uint32_t k_adjacent, std::uint64_t seed, bool two_d);

  std::size_t size() const noexcept { return dirs_.size(); }
  geo::Vec3 root() const noexcept { return root_; }
  double radius() const noexcept { return radius_; }
  bool two_d() const noexcept { return two_d_; }

  /// Unit direction of region `id`'s target ray.
  geo::Vec3 direction(std::uint32_t id) const noexcept { return dirs_[id]; }

  /// Target point on the sphere surface (growth bias target).
  geo::Vec3 target(std::uint32_t id) const noexcept {
    return root_ + dirs_[id] * radius_;
  }

  /// Representative point for partitioners (mid-ray).
  geo::Vec3 centroid(std::uint32_t id) const noexcept {
    return root_ + dirs_[id] * (0.5 * radius_);
  }

  /// Cone half-angle: sized so the Nr cones cover the sphere with the
  /// requested multiplicative `overlap` (>1 overlaps neighbors).
  double cone_half_angle(double overlap = 1.5) const noexcept;

  /// Random point inside region `id`'s cone (biased sampling for subtree
  /// growth): a direction within the cone, at a radius weighted toward
  /// the surface so branches push outward.
  geo::Vec3 sample_in_cone(std::uint32_t id, Xoshiro256ss& rng,
                           double overlap = 1.5) const;

  /// Region-graph edges: each region to its k nearest (each pair once).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> adjacency_edges()
      const;

  /// All centroids (partitioner input).
  std::vector<geo::Vec3> centroids() const;

 private:
  geo::Vec3 root_;
  double radius_;
  bool two_d_;
  std::uint32_t k_adjacent_;
  std::vector<geo::Vec3> dirs_;
};

}  // namespace pmpl::core
