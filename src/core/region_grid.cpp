#include "core/region_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmpl::core {

RegionGrid::RegionGrid(geo::Aabb bounds, std::uint32_t nx, std::uint32_t ny,
                       std::uint32_t nz, double overlap)
    : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz), overlap_(overlap) {
  assert(nx_ > 0 && ny_ > 0 && nz_ > 0);
  const geo::Vec3 size = bounds_.size();
  cell_size_ = {size.x / nx_, size.y / ny_, nz_ > 0 ? size.z / nz_ : 0.0};
}

RegionGrid RegionGrid::make_auto(const geo::Aabb& bounds,
                                 std::uint32_t target_regions, bool two_d,
                                 double overlap) {
  assert(target_regions > 0);
  if (two_d) {
    const auto side = static_cast<std::uint32_t>(std::max(
        1.0, std::round(std::sqrt(static_cast<double>(target_regions)))));
    return RegionGrid(bounds, side, side, 1, overlap);
  }
  const auto side = static_cast<std::uint32_t>(std::max(
      1.0, std::round(std::cbrt(static_cast<double>(target_regions)))));
  return RegionGrid(bounds, side, side, side, overlap);
}

geo::Aabb RegionGrid::cell_box(std::uint32_t id) const noexcept {
  std::uint32_t ix, iy, iz;
  coords_of(id, ix, iy, iz);
  const geo::Vec3 lo{bounds_.lo.x + ix * cell_size_.x,
                     bounds_.lo.y + iy * cell_size_.y,
                     bounds_.lo.z + iz * cell_size_.z};
  return {lo, lo + cell_size_};
}

geo::Aabb RegionGrid::sampling_box(std::uint32_t id) const noexcept {
  const geo::Aabb expanded = cell_box(id).expanded(overlap_);
  return {geo::max(expanded.lo, bounds_.lo), geo::min(expanded.hi, bounds_.hi)};
}

std::uint32_t RegionGrid::cell_of(geo::Vec3 p) const noexcept {
  auto clamp_idx = [](double v, double lo, double cell,
                      std::uint32_t n) -> std::uint32_t {
    if (cell <= 0.0) return 0;
    const double t = (v - lo) / cell;
    if (t <= 0.0) return 0;
    const auto i = static_cast<std::uint32_t>(t);
    return i >= n ? n - 1 : i;
  };
  const std::uint32_t ix = clamp_idx(p.x, bounds_.lo.x, cell_size_.x, nx_);
  const std::uint32_t iy = clamp_idx(p.y, bounds_.lo.y, cell_size_.y, ny_);
  const std::uint32_t iz = clamp_idx(p.z, bounds_.lo.z, cell_size_.z, nz_);
  return id_of(ix, iy, iz);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
RegionGrid::adjacency_edges() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(size() * 3);
  for (std::uint32_t ix = 0; ix < nx_; ++ix)
    for (std::uint32_t iy = 0; iy < ny_; ++iy)
      for (std::uint32_t iz = 0; iz < nz_; ++iz) {
        const std::uint32_t id = id_of(ix, iy, iz);
        if (ix + 1 < nx_) edges.emplace_back(id, id_of(ix + 1, iy, iz));
        if (iy + 1 < ny_) edges.emplace_back(id, id_of(ix, iy + 1, iz));
        if (iz + 1 < nz_) edges.emplace_back(id, id_of(ix, iy, iz + 1));
      }
  return edges;
}

std::vector<geo::Vec3> RegionGrid::centroids() const {
  std::vector<geo::Vec3> out;
  out.reserve(size());
  for (std::uint32_t id = 0; id < size(); ++id) out.push_back(centroid(id));
  return out;
}

}  // namespace pmpl::core
