#pragma once
/// \file region_grid.hpp
/// Uniform C-space subdivision into a grid of box regions (Algorithm 1,
/// lines 1–6): the region graph's vertices are grid cells, its edges are
/// face adjacencies. Cells are ordered x-major (x slowest) so that the
/// naive block partition of ids reproduces the paper's "1D partitioning of
/// the region mesh [into] region columns".

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/shapes.hpp"

namespace pmpl::core {

/// Immutable uniform grid over a position bounding box.
class RegionGrid {
 public:
  /// Subdivide `bounds` into nx*ny*nz cells; each cell's sampling box is
  /// expanded by `overlap` (paper: "some user-defined overlap is allowed
  /// between regions") and clipped to `bounds`.
  RegionGrid(geo::Aabb bounds, std::uint32_t nx, std::uint32_t ny,
             std::uint32_t nz, double overlap = 0.0);

  /// Near-cubic grid with about `target_regions` cells; `two_d` keeps
  /// nz = 1 (planar environments).
  static RegionGrid make_auto(const geo::Aabb& bounds,
                              std::uint32_t target_regions, bool two_d,
                              double overlap = 0.0);

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  std::uint32_t nx() const noexcept { return nx_; }
  std::uint32_t ny() const noexcept { return ny_; }
  std::uint32_t nz() const noexcept { return nz_; }
  const geo::Aabb& bounds() const noexcept { return bounds_; }

  /// Exact (non-overlapping) cell box.
  geo::Aabb cell_box(std::uint32_t id) const noexcept;

  /// Sampling box: cell expanded by the overlap, clipped to the bounds.
  geo::Aabb sampling_box(std::uint32_t id) const noexcept;

  geo::Vec3 centroid(std::uint32_t id) const noexcept {
    return cell_box(id).center();
  }

  /// Cell containing `p` (clamped to the grid).
  std::uint32_t cell_of(geo::Vec3 p) const noexcept;

  /// id <-> (ix, iy, iz); x-major ordering: id = ix*ny*nz + iy*nz + iz.
  std::uint32_t id_of(std::uint32_t ix, std::uint32_t iy,
                      std::uint32_t iz) const noexcept {
    return (ix * ny_ + iy) * nz_ + iz;
  }
  void coords_of(std::uint32_t id, std::uint32_t& ix, std::uint32_t& iy,
                 std::uint32_t& iz) const noexcept {
    iz = id % nz_;
    iy = (id / nz_) % ny_;
    ix = id / (ny_ * nz_);
  }

  /// Region-graph edges: face-adjacent cell pairs (each pair once, a < b).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> adjacency_edges()
      const;

  /// All centroids (partitioner input).
  std::vector<geo::Vec3> centroids() const;

 private:
  geo::Aabb bounds_;
  std::uint32_t nx_, ny_, nz_;
  geo::Vec3 cell_size_;
  double overlap_;
};

}  // namespace pmpl::core
