#include "core/region_weight.hpp"

#include <algorithm>

namespace pmpl::core {

std::vector<double> weights_from_sample_counts(
    const std::vector<std::uint32_t>& samples_per_region) {
  std::vector<double> w;
  w.reserve(samples_per_region.size());
  // +1 smooths empty regions: moving an empty region is nearly free but
  // not worthless (its later region-connection bookkeeping is not zero).
  for (const std::uint32_t c : samples_per_region)
    w.push_back(static_cast<double>(c) + 1.0);
  return w;
}

std::vector<double> weights_free_volume(const env::Environment& e,
                                        const RegionGrid& grid,
                                        std::size_t mc_samples_per_region,
                                        std::uint64_t seed) {
  std::vector<double> w(grid.size(), 0.0);
  for (std::uint32_t id = 0; id < grid.size(); ++id) {
    const geo::Aabb box = grid.cell_box(id);
    const double frac =
        e.free_fraction_in(box, mc_samples_per_region, derive_seed(seed, id));
    const geo::Vec3 size = box.size();
    const double vol =
        size.z > 0.0 ? box.volume() : size.x * size.y;  // 2D: area
    w[id] = frac * vol + 1e-9;
  }
  return w;
}

std::vector<double> weights_k_rays(const env::Environment& e,
                                   const RadialRegions& regions,
                                   std::size_t k_rays, std::uint64_t seed,
                                   std::uint64_t* ray_casts) {
  std::vector<double> w(regions.size(), 0.0);
  collision::CollisionStats stats;
  for (std::uint32_t id = 0; id < regions.size(); ++id) {
    Xoshiro256ss rng(derive_seed(seed, id));
    double total = 0.0;
    for (std::size_t i = 0; i < k_rays; ++i) {
      // Direction toward a random point in the cone.
      const geo::Vec3 target = regions.sample_in_cone(id, rng);
      const geo::Vec3 d = target - regions.root();
      const double len = d.norm();
      if (len <= 0.0) continue;
      const geo::Ray ray{regions.root(), d / len};
      const auto hit = e.checker().raycast(ray, &stats);
      const double reach =
          hit ? std::min(*hit, regions.radius()) : regions.radius();
      total += reach;
    }
    w[id] = total / static_cast<double>(std::max<std::size_t>(1, k_rays)) +
            1e-9;
  }
  if (ray_casts != nullptr) *ray_casts = stats.ray_casts;
  return w;
}

}  // namespace pmpl::core
