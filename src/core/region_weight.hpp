#pragma once
/// \file region_weight.hpp
/// Per-region work estimators (paper §III-B).
///
/// PRM: "a good metric for approximating the amount of work that a region
/// will generate is the number of samples in the roadmap that lie within
/// that region" — `weights_from_sample_counts`. The analytic alternative
/// for the model environment is the region's free volume —
/// `weights_free_volume` (Monte Carlo here, exact in model/model_env.hpp).
///
/// RRT: the k-random-rays probe — cast k rays from the region origin and
/// average the distance to the first obstacle — which the paper shows is a
/// *poor* estimator (Fig 10b) unless k is made expensively large.

#include <cstdint>
#include <vector>

#include "core/radial_regions.hpp"
#include "core/region_grid.hpp"
#include "env/environment.hpp"

namespace pmpl::core {

/// PRM weight: samples generated per region (measured during the cheap
/// sampling phase).
std::vector<double> weights_from_sample_counts(
    const std::vector<std::uint32_t>& samples_per_region);

/// Free-volume weight: Monte-Carlo free fraction x cell volume per region.
std::vector<double> weights_free_volume(const env::Environment& e,
                                        const RegionGrid& grid,
                                        std::size_t mc_samples_per_region,
                                        std::uint64_t seed);

/// RRT k-random-rays weight: for each radial region, cast `k_rays` rays
/// from the root in directions inside the region's cone and average
/// min(distance-to-obstacle, radius). Returns the per-ray count of
/// collision ray casts in `ray_casts` when non-null (the probe's cost,
/// which the paper notes makes a high-k probe expensive).
std::vector<double> weights_k_rays(const env::Environment& e,
                                   const RadialRegions& regions,
                                   std::size_t k_rays, std::uint64_t seed,
                                   std::uint64_t* ray_casts = nullptr);

}  // namespace pmpl::core
