#include "core/rrt_driver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/region_weight.hpp"
#include "cspace/config.hpp"
#include "graph/union_find.hpp"
#include "loadbal/bulk_sync.hpp"
#include "loadbal/partition.hpp"
#include "planner/prm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pmpl::core {

namespace {

std::uint64_t branch_payload_bytes(const planner::Roadmap& g,
                                   std::span<const graph::VertexId> ids) {
  std::uint64_t bytes = 64;
  for (const graph::VertexId v : ids)
    bytes += cspace::config_bytes(g.vertex(v).cfg) + 20;
  return bytes;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

Workload build_rrt_workload(const env::Environment& e,
                            const RadialRegions& regions,
                            const cspace::Config& root,
                            const RrtWorkloadConfig& config) {
  Workload w;
  const std::size_t nr = regions.size();
  w.regions.resize(nr);
  w.region_vertices.resize(nr);
  w.region_edges = regions.adjacency_edges();
  const geo::Vec3 r3{regions.radius(), regions.radius(), regions.radius()};
  w.bounds = {regions.root() - r3, regions.root() + r3};

  const std::size_t quota = std::max<std::size_t>(2, config.total_nodes / nr);

  // Grow one branch per region (deterministic per-region streams). A fired
  // cancel token stops between iterations; the interrupted branch's
  // profile stays zero-initialized (its partial tree keeps the roadmap
  // valid but is not counted as measured).
  for (std::uint32_t r = 0; r < nr; ++r) {
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;
    }
    RegionProfile& profile = w.regions[r];
    profile.centroid = regions.centroid(r);

    planner::RrtParams params = config.rrt;
    params.max_nodes = quota;
    params.max_iterations = config.iteration_factor * quota;

    planner::PlannerStats stats;
    planner::RrtBranch branch(e, w.roadmap, root, r, params);
    Xoshiro256ss rng(derive_seed(config.seed, r));
    branch.grow_wave(
        [&](Xoshiro256ss& g) {
          const geo::Vec3 p = regions.sample_in_cone(r, g, config.cone_overlap);
          return e.space().at_position(p, g);
        },
        rng, config.wavefront_width, stats, config.cancel);
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;
    }

    profile.build_ops = to_work_counts(stats);
    profile.build_s = config.costs.seconds(profile.build_ops);
    profile.samples = static_cast<std::uint32_t>(branch.num_nodes());
    w.region_vertices[r] = branch.node_ids();
    profile.bytes = branch_payload_bytes(w.roadmap, branch.node_ids());
    ++w.regions_measured;
  }

  // Branch connection along the region graph; new edges must not close
  // cycles (Algorithm 2 lines 13-18).
  planner::PrmParams connect_params;
  connect_params.resolution = config.rrt.resolution;
  // Cycle pruning: branches are trees, so an inter-branch edge closes a
  // cycle exactly when its endpoints are already in one connected
  // component. Skipping same-component attempts keeps the result a forest
  // (the "prune" of Algorithm 2 realized as prune-before-insert).
  connect_params.skip_same_component = true;
  graph::UnionFind cc(w.roadmap.num_vertices());
  for (graph::VertexId v = 0; v < w.roadmap.num_vertices(); ++v)
    for (const auto& he : w.roadmap.edges_of(v)) cc.unite(v, he.to);
  w.edge_profiles.reserve(w.region_edges.size());
  for (const auto& [a, b] : w.region_edges) {
    if (runtime::stop_requested(config.cancel)) {
      w.measurement_cancelled = true;
      break;  // edge_profiles stays a measured prefix of region_edges
    }
    EdgeProfile ep;
    ep.a = a;
    ep.b = b;
    planner::PlannerStats stats;
    planner::Roadmap& g = w.roadmap;
    const auto added = planner::connect_between(
        e, g, w.region_vertices[a], w.region_vertices[b], connect_params,
        stats, &cc, config.max_boundary_attempts);
    ep.edges_added = static_cast<std::uint32_t>(added);
    ep.service_s = config.costs.seconds(to_work_counts(stats));
    const auto& remote_side = w.region_vertices[b];
    ep.vertex_reads = static_cast<std::uint32_t>(remote_side.size());
    std::uint64_t bytes = 0;
    for (const graph::VertexId v : remote_side)
      bytes += cspace::config_bytes(g.vertex(v).cfg);
    ep.bytes_touched = bytes;
    w.edge_profiles.push_back(ep);
  }
  return w;
}

RrtRunResult simulate_rrt_run(const Workload& w, const env::Environment& e,
                              const RadialRegions& regions,
                              const RrtRunConfig& config) {
  assert(config.procs > 0);
  const std::size_t nr = w.regions.size();
  RrtRunResult out;

  const loadbal::Assignment initial =
      loadbal::partition_block(nr, config.procs);
  {
    std::vector<double> nodes(config.procs, 0.0);
    for (std::size_t r = 0; r < nr; ++r)
      nodes[initial[r]] += w.regions[r].samples;
    out.cv_nodes_before = summarize(nodes).cv();
  }

  if (is_work_stealing(config.strategy)) {
    std::vector<loadbal::WsItem> items(nr);
    for (std::size_t r = 0; r < nr; ++r)
      items[r] = {w.regions[r].build_s, w.regions[r].bytes};
    loadbal::WsConfig ws_cfg;
    ws_cfg.policy = steal_policy_of(config.strategy);
    ws_cfg.cluster = config.cluster;
    ws_cfg.seed = config.seed;
    out.ws = loadbal::simulate_work_stealing(items, initial, config.procs,
                                             ws_cfg);
    out.assignment = out.ws.final_owner;
    out.growth_s = out.ws.makespan_s;
    out.load_profile_s = out.ws.busy_s;
  } else {
    loadbal::Assignment assignment = initial;
    if (config.strategy == Strategy::kRepartition) {
      // Probe with k random rays — both the probe cost and the (poorly
      // correlated) weights it yields are charged to this strategy.
      std::uint64_t ray_casts = 0;
      const auto weights = weights_k_rays(e, regions, config.k_rays,
                                          config.seed, &ray_casts);
      out.weight_correlation = pearson(weights, w.build_times());

      const auto centroids = w.centroids();
      const loadbal::PartitionProblem problem{weights, centroids,
                                              w.region_edges, w.bounds,
                                              config.procs};
      assignment = loadbal::partition_rcb(problem);

      runtime::WorkCounts probe;
      probe.ray_casts = ray_casts;
      const double probe_s =
          config.costs.seconds(probe) / config.procs;  // probes run in parallel
      out.redistribution_s =
          probe_s + loadbal::redistribution_time(w.region_bytes(), initial,
                                                 assignment, config.procs,
                                                 config.cluster);
    }
    const auto phase = loadbal::static_phase(w.build_times(), assignment,
                                             config.procs, config.cluster);
    out.growth_s = phase.time_s;
    out.load_profile_s = phase.busy_s;
    out.assignment = std::move(assignment);
  }

  // Branch-connection phase (same accounting as PRM region connection).
  {
    std::vector<double> busy(config.procs, 0.0);
    // edge_profiles can be a prefix of region_edges for a cancelled
    // workload; iterate what was actually measured.
    for (std::size_t i = 0; i < w.edge_profiles.size(); ++i) {
      const EdgeProfile& ep = w.edge_profiles[i];
      const std::uint32_t pa = out.assignment[ep.a];
      const std::uint32_t pb = out.assignment[ep.b];
      double t = ep.service_s;
      if (pa != pb)
        t += config.cluster.latency(pa, pb) +
             static_cast<double>(ep.bytes_touched) /
                 config.cluster.bandwidth_bps;
      busy[pa] += t;
    }
    double max_busy = 0.0;
    for (const double b : busy) max_busy = std::max(max_busy, b);
    const double barrier =
        config.procs > 1 ? config.cluster.remote_latency_s *
                               std::ceil(std::log2(double(config.procs)))
                         : 0.0;
    out.branch_connection_s = max_busy + barrier;
  }

  {
    std::vector<double> nodes(config.procs, 0.0);
    for (std::size_t r = 0; r < nr; ++r)
      nodes[out.assignment[r]] += w.regions[r].samples;
    out.cv_nodes_after = summarize(nodes).cv();
  }

  out.total_s = out.redistribution_s + out.growth_s + out.branch_connection_s;
  return out;
}

}  // namespace pmpl::core
