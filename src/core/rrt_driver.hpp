#pragma once
/// \file rrt_driver.hpp
/// Uniform-radial-subdivision parallel RRT (Algorithm 2) with load
/// balancing: workload measurement and schedule replay.
///
/// Each radial region grows one subtree biased toward its target ray;
/// branches of adjacent regions are then connected (cycles pruned). Work
/// stealing moves whole regions between locations (Algorithm 3); the
/// repartitioning variant weights regions with the k-random-rays probe —
/// the estimator the paper shows to be poor (Fig 10b).

#include "core/profile.hpp"
#include "core/radial_regions.hpp"
#include "core/strategies.hpp"
#include "env/environment.hpp"
#include "loadbal/ws_engine.hpp"
#include "planner/rrt.hpp"

namespace pmpl::core {

/// Workload-construction parameters.
struct RrtWorkloadConfig {
  std::size_t total_nodes = 1 << 13;  ///< N tree nodes overall
  planner::RrtParams rrt;
  std::size_t iteration_factor = 8;   ///< max_iters = factor * quota
  std::size_t max_boundary_attempts = 8;
  double cone_overlap = 1.5;
  std::uint64_t seed = 1;
  /// Growth targets extended per batch inside each region. 1 (default)
  /// replays the classic per-iteration loop bit-identically; wider waves
  /// run the branch growth through `RrtBranch::extend_wave` so the wide
  /// validity kernels see full lanes (deterministic per width).
  std::size_t wavefront_width = 1;
  /// Work-unit costs (paper_fidelity reproduces the paper's regime).
  runtime::CostModel costs = runtime::CostModel::paper_fidelity();
  /// Cooperative stop: measurement ends after the current granule and the
  /// workload comes back partial (see Workload::regions_measured).
  const runtime::CancelToken* cancel = nullptr;
};

/// Execute Algorithm 2's computation: grow every regional branch from the
/// shared root, then connect adjacent branches (pruning cycles so the
/// result stays a tree).
Workload build_rrt_workload(const env::Environment& e,
                            const RadialRegions& regions,
                            const cspace::Config& root,
                            const RrtWorkloadConfig& config);

/// Replay parameters. Strategy kRepartition here means "repartition using
/// the k-random-rays weight estimate" (there is no cheap exact weight for
/// RRT — paper §III-B).
struct RrtRunConfig {
  std::uint32_t procs = 16;
  runtime::ClusterSpec cluster = runtime::ClusterSpec::opteron_cluster();
  Strategy strategy = Strategy::kNoLB;
  std::uint64_t seed = 1;
  std::size_t k_rays = 16;  ///< probe rays per region for kRepartition
  /// Cost of the k-rays probe (must match the workload's model).
  runtime::CostModel costs = runtime::CostModel::paper_fidelity();
};

/// Replay outcome.
struct RrtRunResult {
  double total_s = 0.0;
  double redistribution_s = 0.0;  ///< probe + partition + migration
  double growth_s = 0.0;          ///< branch-growth phase
  double branch_connection_s = 0.0;
  loadbal::Assignment assignment;
  std::vector<double> load_profile_s;
  double cv_nodes_before = 0.0;
  double cv_nodes_after = 0.0;
  loadbal::WsResult ws;
  /// Pearson correlation between the k-rays weight and true branch cost
  /// (reported to show why the estimator fails); 0 when not computed.
  double weight_correlation = 0.0;
};

/// Replay `workload` under `config`. The environment is needed again only
/// for the k-rays probe (kRepartition).
RrtRunResult simulate_rrt_run(const Workload& workload,
                              const env::Environment& e,
                              const RadialRegions& regions,
                              const RrtRunConfig& config);

}  // namespace pmpl::core
