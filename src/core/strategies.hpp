#pragma once
/// \file strategies.hpp
/// The load-balancing strategies compared throughout the evaluation.

#include <string>

#include "loadbal/steal_policy.hpp"

namespace pmpl::core {

/// One bar/curve in the paper's figures.
enum class Strategy {
  kNoLB,           ///< uniform subdivision, naive block mapping (baseline)
  kRepartition,    ///< Algorithm 4: weighted geometric repartitioning
  kHybridWS,       ///< Algorithm 3 with HYBRID victim selection
  kRand8WS,        ///< Algorithm 3 with RAND-K (k = 8)
  kDiffusiveWS,    ///< Algorithm 3 with DIFFUSIVE victim selection
  kLifelineWS,     ///< extension: X10-style hypercube lifelines
};

inline std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kNoLB:
      return "Without LB";
    case Strategy::kRepartition:
      return "Repartitioning";
    case Strategy::kHybridWS:
      return "Hybrid WS";
    case Strategy::kRand8WS:
      return "Rand-8 WS";
    case Strategy::kDiffusiveWS:
      return "Diff WS";
    case Strategy::kLifelineWS:
      return "Lifeline WS";
  }
  return "?";
}

inline bool is_work_stealing(Strategy s) {
  return s == Strategy::kHybridWS || s == Strategy::kRand8WS ||
         s == Strategy::kDiffusiveWS || s == Strategy::kLifelineWS;
}

inline loadbal::StealPolicyKind steal_policy_of(Strategy s) {
  switch (s) {
    case Strategy::kRand8WS:
      return loadbal::StealPolicyKind::kRandK;
    case Strategy::kDiffusiveWS:
      return loadbal::StealPolicyKind::kDiffusive;
    case Strategy::kLifelineWS:
      return loadbal::StealPolicyKind::kLifeline;
    default:
      return loadbal::StealPolicyKind::kHybrid;
  }
}

}  // namespace pmpl::core
