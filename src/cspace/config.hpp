#pragma once
/// \file config.hpp
/// A configuration: the movable object's d independent parameters.
///
/// Stored inline (max 16 values) — SE(2) uses 3 values, SE(3) uses 7
/// (position + unit quaternion), R^n up to 16. Interpretation of the values
/// belongs to `CSpace`, not to the container.

#include <cstdint>
#include <ostream>

#include "util/inline_vector.hpp"

namespace pmpl::cspace {

/// Maximum number of stored values per configuration.
inline constexpr std::size_t kMaxConfigValues = 16;

/// Raw configuration value vector.
using Config = InlineVector<double, kMaxConfigValues>;

inline std::ostream& operator<<(std::ostream& os, const Config& c) {
  os << '(';
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << ", ";
    os << c[i];
  }
  return os << ')';
}

/// Approximate serialized size of a configuration in bytes; used by the
/// communication model to cost roadmap/region migration.
inline constexpr std::size_t config_bytes(const Config& c) noexcept {
  return sizeof(double) * c.size() + sizeof(std::uint32_t);
}

}  // namespace pmpl::cspace
