#include "cspace/local_planner.hpp"

#include <cassert>
#include <cmath>

namespace pmpl::cspace {

EdgeBatchPlanner::EdgeBatchPlanner(const CSpace& space,
                                   const ValidityChecker& validity,
                                   double resolution, std::size_t window)
    : space_(&space),
      validity_(&validity),
      resolution_(resolution),
      slots_(window == 0 ? 1 : window) {}

void EdgeBatchPlanner::reset() noexcept {
  head_ = 0;
  size_ = 0;
}

void EdgeBatchPlanner::admit(const Config& a, const Config& b,
                             std::uint64_t tag) {
  assert(can_admit());
  Slot& s = slots_[(head_ + size_) % slots_.size()];
  ++size_;
  s.tag = tag;
  s.decided = false;
  s.first_bad = kNone;
  s.emitted = 0;
  s.seg_head = 0;
  s.segs.clear();
  s.result = {};
  // Same distance/step-count derivation as LocalPlanner::plan.
  s.result.length = space_->distance(a, b);
  const auto n =
      static_cast<std::size_t>(std::ceil(s.result.length / resolution_));
  if (n <= 1) {  // no interior points to check
    s.total = 0;
    s.result.success = true;
    s.decided = true;
    return;
  }
  s.total = n - 1;
  s.dn = static_cast<double>(n);
  s.interp.reset(*space_, a, b);
  s.segs.push_back({0, static_cast<std::uint32_t>(n)});
}

void EdgeBatchPlanner::emit_step(Slot& s, Config& out) {
  while (s.seg_head < s.segs.size()) {
    const auto [lo, hi] = s.segs[s.seg_head++];
    if (hi - lo < 2) continue;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    s.interp.at(static_cast<double>(mid) / s.dn, out);
    s.segs.push_back({lo, mid});
    s.segs.push_back({mid, hi});
    ++s.emitted;
    return;
  }
  assert(false && "emit_step called on an exhausted slot");
}

void EdgeBatchPlanner::run_round(collision::CollisionStats* stats) {
  // Fill the block round-robin over undecided in-flight edges, oldest
  // first, one step per edge per pass, so every edge makes progress and
  // lanes stay full.
  std::size_t m = 0;
  bool progressed = true;
  while (m < kBatch && progressed) {
    progressed = false;
    for (std::size_t k = 0; k < size_ && m < kBatch; ++k) {
      const std::size_t idx = (head_ + k) % slots_.size();
      Slot& s = slots_[idx];
      if (s.decided || s.emitted >= s.total) continue;
      rank_[m] = s.emitted;
      emit_step(s, block_[m]);
      owner_[m] = idx;
      ++m;
      progressed = true;
    }
  }

  if (m > 0) {
    // Queries are dropped from the merged stats: speculative steps past an
    // edge's first failure must not count, and the caller reconstructs the
    // exact sequential count from steps_checked per committed edge.
    collision::CollisionStats scratch;
    const std::uint32_t vmask =
        validity_->valid_mask({block_.data(), m}, stats ? &scratch : nullptr);
    if (stats) {
      stats->narrow_tests += scratch.narrow_tests;
      stats->bvh_nodes += scratch.bvh_nodes;
      stats->ray_casts += scratch.ray_casts;
    }
    // Entries for one edge appear in increasing rank order, so the first
    // invalid seen here is the edge's first invalid in visit order.
    for (std::size_t j = 0; j < m; ++j) {
      Slot& s = slots_[owner_[j]];
      if (s.first_bad == kNone && !(vmask >> j & 1u)) s.first_bad = rank_[j];
    }
  }

  // Every emitted step now has its verdict: decide finished edges.
  for (std::size_t k = 0; k < size_; ++k) {
    Slot& s = slots_[(head_ + k) % slots_.size()];
    if (s.decided) continue;
    if (s.first_bad != kNone) {
      s.result.success = false;
      s.result.steps_checked = s.first_bad + 1;
      s.decided = true;
    } else if (s.emitted >= s.total) {
      s.result.success = true;
      s.result.steps_checked = s.total;
      s.decided = true;
    }
  }
}

EdgeBatchPlanner::Outcome EdgeBatchPlanner::next(
    collision::CollisionStats* stats) {
  assert(pending());
  while (!slots_[head_].decided) run_round(stats);
  Slot& s = slots_[head_];
  head_ = (head_ + 1) % slots_.size();
  --size_;
  return {s.tag, s.result};
}

}  // namespace pmpl::cspace
