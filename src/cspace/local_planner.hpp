#pragma once
/// \file local_planner.hpp
/// Discretized straight-line local planner.
///
/// Connecting samples is the dominant cost of PRM ("the most time consuming
/// phase of the entire computation" — paper §III-B); every step of the
/// discretized edge is a full validity (collision) check, so the op counts
/// recorded here drive the load model.

#include "collision/checker.hpp"
#include "cspace/space.hpp"
#include "cspace/validity.hpp"

namespace pmpl::cspace {

/// Result of one local-plan attempt.
struct LocalPlanResult {
  bool success = false;
  std::size_t steps_checked = 0;  ///< validity checks performed
  double length = 0.0;            ///< metric length of the edge
};

/// Straight-line (geodesic) local planner with fixed step resolution.
class LocalPlanner {
 public:
  LocalPlanner(const CSpace& space, const ValidityChecker& validity,
               double resolution)
      : space_(&space), validity_(&validity), resolution_(resolution) {}

  double resolution() const noexcept { return resolution_; }

  /// Check the straight-line path a -> b. Endpoints are assumed already
  /// validated (PRM checks samples before connecting); intermediate
  /// configurations are checked at `resolution` spacing, interleaved from
  /// the midpoint outward-ish (sequential here: cheap edges dominate).
  LocalPlanResult plan(const Config& a, const Config& b,
                       collision::CollisionStats* stats = nullptr) const {
    LocalPlanResult r;
    r.length = space_->distance(a, b);
    const std::size_t n = space_->step_count(a, b, resolution_);
    // Interior points only: i in [1, n-1].
    for (std::size_t i = 1; i < n; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(n);
      ++r.steps_checked;
      if (!validity_->valid(space_->interpolate(a, b, t), stats)) {
        r.success = false;
        return r;
      }
    }
    r.success = true;
    return r;
  }

 private:
  const CSpace* space_;
  const ValidityChecker* validity_;
  double resolution_;
};

}  // namespace pmpl::cspace
