#pragma once
/// \file local_planner.hpp
/// Discretized straight-line local planner.
///
/// Connecting samples is the dominant cost of PRM ("the most time consuming
/// phase of the entire computation" — paper §III-B); every step of the
/// discretized edge is a full validity (collision) check, so the op counts
/// recorded here drive the load model.

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "collision/checker.hpp"
#include "cspace/space.hpp"
#include "cspace/validity.hpp"

namespace pmpl::cspace {

/// Result of one local-plan attempt.
struct LocalPlanResult {
  bool success = false;
  std::size_t steps_checked = 0;  ///< validity checks performed
  double length = 0.0;            ///< metric length of the edge
};

/// Straight-line (geodesic) local planner with fixed step resolution.
///
/// An instance owns mutable per-edge scratch (interpolator, step ordering,
/// config blocks), so `plan()` is allocation-free once warm but concurrent
/// `plan()` calls on ONE instance race. Construct one planner per worker —
/// every current call site already builds its own local instance.
class LocalPlanner {
 public:
  LocalPlanner(const CSpace& space, const ValidityChecker& validity,
               double resolution)
      : space_(&space), validity_(&validity), resolution_(resolution) {}

  double resolution() const noexcept { return resolution_; }

  /// Check the straight-line path a -> b. Endpoints are assumed already
  /// validated (PRM checks samples before connecting); intermediate
  /// configurations are checked at `resolution` spacing.
  ///
  /// Interior steps are visited midpoint-out: breadth-first bisection of
  /// [0, n] emits the edge midpoint first, then the quarter points, and so
  /// on — colliding edges usually fail near the middle, so rejection comes
  /// after far fewer checks than a sweep from one end. The ordering is a
  /// pure function of the step count, each step's parameter is the same
  /// t = i/n the sequential sweep used, and the edge is accepted iff every
  /// interior step is valid — so accept/reject decisions (and therefore
  /// roadmaps) are bit-identical to the sequential scan; only
  /// `steps_checked` on *rejected* edges shrinks.
  LocalPlanResult plan(const Config& a, const Config& b,
                       collision::CollisionStats* stats = nullptr) const {
    LocalPlanResult r;
    r.length = space_->distance(a, b);
    // Same value step_count() would produce — it computes ceil(d/res) from
    // the same distance — without paying the metric a second time.
    const auto n =
        static_cast<std::size_t>(std::ceil(r.length / resolution_));
    if (n <= 1) {  // no interior points to check
      r.success = true;
      return r;
    }
    interp_.reset(*space_, a, b);
    segs_.clear();
    segs_.push_back({0, static_cast<std::uint32_t>(n)});
    seg_head_ = 0;
    const double dn = static_cast<double>(n);
    const std::size_t total = n - 1;
    std::size_t checked = 0;
    // A small first block keeps the wasted interpolation work minimal for
    // the common case — blocked edges usually fail at the very first
    // midpoint checks; block boundaries never affect the visit order.
    std::size_t want = kFirstBlock;
    while (checked < total) {
      const std::size_t m = fill_block(want, dn);
      want = kBlock;
      const std::size_t bad = validity_->valid_batch({block_.data(), m}, stats);
      if (bad < m) {
        r.steps_checked = checked + bad + 1;
        r.success = false;
        return r;
      }
      checked += m;
    }
    r.steps_checked = checked;
    r.success = true;
    return r;
  }

 private:
  static constexpr std::size_t kFirstBlock = 4;
  static constexpr std::size_t kBlock = 16;

  /// Produce up to `want` more interior steps in midpoint-out order,
  /// interpolating each into block_. The order is a BFS over bisected
  /// segments of [0, n], emitting each segment's midpoint — the van der
  /// Corput sequence for power-of-two n, deterministic for any n. The
  /// segment queue is consumed lazily so a rejected edge only generates
  /// the steps it actually checked.
  std::size_t fill_block(std::size_t want, double dn) const {
    std::size_t j = 0;
    while (j < want && seg_head_ < segs_.size()) {
      const auto [lo, hi] = segs_[seg_head_++];
      if (hi - lo < 2) continue;
      const std::uint32_t mid = lo + (hi - lo) / 2;
      interp_.at(static_cast<double>(mid) / dn, block_[j]);
      ++j;
      segs_.push_back({lo, mid});
      segs_.push_back({mid, hi});
    }
    return j;
  }

  const CSpace* space_;
  const ValidityChecker* validity_;
  double resolution_;

  // Per-edge scratch (see class comment for the thread-safety contract).
  mutable EdgeInterpolator interp_;
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> segs_;
  mutable std::size_t seg_head_ = 0;
  mutable std::array<Config, kBlock> block_;
};

/// Local planner that validates a *window* of edges concurrently, filling
/// each wide validity block with steps drawn round-robin across all
/// in-flight edges — so the SIMD lanes stay full even when individual
/// edges are short or reject early.
///
/// Per-edge results are bit-identical to `LocalPlanner::plan` on the same
/// edge: each edge's steps are emitted in the same midpoint-out order, and
/// its outcome is decided by the first invalid step in that order
/// (`steps_checked` = that rank + 1 on rejection, the full interior count
/// on success). Steps evaluated past an edge's first failure are
/// speculation; they cost narrow-phase work (reported via `stats`) but
/// never change a verdict.
///
/// Stats contract: `next()` merges narrow_tests/bvh_nodes/ray_casts — the
/// work actually performed, speculation included — into `stats`, but NOT
/// `queries`: the caller re-adds the semantic per-edge count
/// (`steps_checked`, which equals the sequential path's query count for
/// in-bounds edge interiors) for each edge it commits, keeping `queries`
/// identical to sequential planning even when speculative edges are
/// discarded.
class EdgeBatchPlanner {
 public:
  /// Outcome of one admitted edge, FIFO with respect to `admit` order.
  struct Outcome {
    std::uint64_t tag = 0;
    LocalPlanResult result;
  };

  EdgeBatchPlanner(const CSpace& space, const ValidityChecker& validity,
                   double resolution, std::size_t window = 8);

  double resolution() const noexcept { return resolution_; }
  std::size_t window() const noexcept { return slots_.size(); }
  std::size_t in_flight() const noexcept { return size_; }
  bool can_admit() const noexcept { return size_ < slots_.size(); }
  bool pending() const noexcept { return size_ > 0; }

  /// Drop all in-flight edges (between connection phases).
  void reset() noexcept;

  /// Enqueue edge a -> b. Requires `can_admit()`. Endpoints are assumed
  /// already validated, exactly as in `LocalPlanner::plan`.
  void admit(const Config& a, const Config& b, std::uint64_t tag);

  /// Deliver the oldest admitted edge's outcome, running wide validity
  /// rounds until it is decided. Requires `pending()`.
  Outcome next(collision::CollisionStats* stats = nullptr);

 private:
  static constexpr std::size_t kBatch = 16;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Slot {
    EdgeInterpolator interp;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segs;
    std::size_t seg_head = 0;
    double dn = 0.0;
    std::size_t total = 0;      ///< interior steps on this edge
    std::size_t emitted = 0;    ///< steps produced so far (visit order)
    std::size_t first_bad = kNone;  ///< rank of first invalid step
    bool decided = false;
    std::uint64_t tag = 0;
    LocalPlanResult result;
  };

  /// Emit the slot's next midpoint-out step into `out` (same bisection as
  /// LocalPlanner::fill_block). Requires emitted < total.
  void emit_step(Slot& s, Config& out);

  /// One fill + wide-validate + decide cycle over the window.
  void run_round(collision::CollisionStats* stats);

  const CSpace* space_;
  const ValidityChecker* validity_;
  double resolution_;

  std::vector<Slot> slots_;  // ring buffer: head_ is the oldest in flight
  std::size_t head_ = 0;
  std::size_t size_ = 0;

  std::array<Config, kBatch> block_;
  std::array<std::size_t, kBatch> owner_;
  std::array<std::size_t, kBatch> rank_;
};

}  // namespace pmpl::cspace
