#include "cspace/space.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmpl::cspace {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Shortest signed angular difference b - a in (-pi, pi].
double angle_diff(double a, double b) noexcept {
  double d = std::fmod(b - a, 2.0 * kPi);
  if (d > kPi) d -= 2.0 * kPi;
  if (d <= -kPi) d += 2.0 * kPi;
  return d;
}

geo::Quat quat_of(const Config& c) noexcept {
  return geo::Quat{c[3], c[4], c[5], c[6]};
}

}  // namespace

CSpace CSpace::euclidean(std::vector<std::pair<double, double>> bounds) {
  assert(!bounds.empty() && bounds.size() <= kMaxConfigValues);
  CSpace s;
  s.kind_ = SpaceKind::Euclidean;
  s.value_count_ = bounds.size();
  s.dof_ = bounds.size();
  s.euclid_bounds_ = std::move(bounds);
  geo::Aabb box{{0, 0, 0}, {0, 0, 0}};
  for (std::size_t i = 0; i < std::min<std::size_t>(3, s.value_count_); ++i) {
    box.lo[i] = s.euclid_bounds_[i].first;
    box.hi[i] = s.euclid_bounds_[i].second;
  }
  s.pos_bounds_ = box;
  return s;
}

CSpace CSpace::se2(geo::Aabb pos, double rot_weight) {
  CSpace s;
  s.kind_ = SpaceKind::SE2;
  s.value_count_ = 3;
  s.dof_ = 3;
  pos.lo.z = 0.0;
  pos.hi.z = 0.0;
  s.pos_bounds_ = pos;
  s.rot_weight_ = rot_weight;
  return s;
}

CSpace CSpace::se3(geo::Aabb pos, double rot_weight) {
  CSpace s;
  s.kind_ = SpaceKind::SE3;
  s.value_count_ = 7;
  s.dof_ = 6;
  s.pos_bounds_ = pos;
  s.rot_weight_ = rot_weight;
  return s;
}

geo::Vec3 CSpace::position(const Config& c) const noexcept {
  geo::Vec3 p{0, 0, 0};
  const std::size_t n =
      kind_ == SpaceKind::SE2 ? 2 : std::min<std::size_t>(3, c.size());
  for (std::size_t i = 0; i < n; ++i) p[i] = c[i];
  return p;
}

geo::Transform CSpace::pose(const Config& c) const noexcept {
  switch (kind_) {
    case SpaceKind::SE2:
      return {geo::Quat::from_axis_angle({0, 0, 1}, c[2]),
              {c[0], c[1], 0.0}};
    case SpaceKind::SE3:
      return {quat_of(c).normalized(), {c[0], c[1], c[2]}};
    case SpaceKind::Euclidean:
      return {geo::Quat::identity(), position(c)};
  }
  return geo::Transform::identity();
}

Config CSpace::sample(Xoshiro256ss& rng) const {
  return sample_in(pos_bounds_, rng);
}

Config CSpace::sample_in(const geo::Aabb& box, Xoshiro256ss& rng) const {
  Config c;
  switch (kind_) {
    case SpaceKind::Euclidean: {
      for (std::size_t i = 0; i < value_count_; ++i) {
        double lo = euclid_bounds_[i].first;
        double hi = euclid_bounds_[i].second;
        // Restrict the first <=3 dims to the region box.
        if (i < 3) {
          lo = std::max(lo, box.lo[i]);
          hi = std::min(hi, box.hi[i]);
        }
        c.push_back(rng.uniform(lo, hi));
      }
      return c;
    }
    case SpaceKind::SE2: {
      c.push_back(rng.uniform(box.lo.x, box.hi.x));
      c.push_back(rng.uniform(box.lo.y, box.hi.y));
      c.push_back(rng.uniform(-kPi, kPi));
      return c;
    }
    case SpaceKind::SE3: {
      c.push_back(rng.uniform(box.lo.x, box.hi.x));
      c.push_back(rng.uniform(box.lo.y, box.hi.y));
      c.push_back(rng.uniform(box.lo.z, box.hi.z));
      const geo::Quat q =
          geo::Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform());
      c.push_back(q.w);
      c.push_back(q.x);
      c.push_back(q.y);
      c.push_back(q.z);
      return c;
    }
  }
  return c;
}

Config CSpace::at_position(geo::Vec3 p, Xoshiro256ss& rng) const {
  Config c = sample(rng);
  const std::size_t n =
      kind_ == SpaceKind::SE2 ? 2 : std::min<std::size_t>(3, c.size());
  for (std::size_t i = 0; i < n; ++i) c[i] = p[i];
  return c;
}

double CSpace::distance(const Config& a, const Config& b) const noexcept {
  switch (kind_) {
    case SpaceKind::Euclidean: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < value_count_; ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
      }
      return std::sqrt(d2);
    }
    case SpaceKind::SE2: {
      const double dx = a[0] - b[0];
      const double dy = a[1] - b[1];
      const double da = angle_diff(a[2], b[2]);
      return std::sqrt(dx * dx + dy * dy) + rot_weight_ * std::fabs(da);
    }
    case SpaceKind::SE3: {
      const geo::Vec3 dp = position(a) - position(b);
      const double ang = quat_of(a).angle_to(quat_of(b));
      return dp.norm() + rot_weight_ * ang;
    }
  }
  return 0.0;
}

Config CSpace::interpolate(const Config& a, const Config& b,
                           double t) const noexcept {
  Config c;
  switch (kind_) {
    case SpaceKind::Euclidean: {
      for (std::size_t i = 0; i < value_count_; ++i)
        c.push_back(a[i] + t * (b[i] - a[i]));
      return c;
    }
    case SpaceKind::SE2: {
      c.push_back(a[0] + t * (b[0] - a[0]));
      c.push_back(a[1] + t * (b[1] - a[1]));
      c.push_back(a[2] + t * angle_diff(a[2], b[2]));
      return c;
    }
    case SpaceKind::SE3: {
      for (std::size_t i = 0; i < 3; ++i) c.push_back(a[i] + t * (b[i] - a[i]));
      const geo::Quat q = quat_of(a).slerp(quat_of(b), t);
      c.push_back(q.w);
      c.push_back(q.x);
      c.push_back(q.y);
      c.push_back(q.z);
      return c;
    }
  }
  return c;
}

std::size_t CSpace::step_count(const Config& a, const Config& b,
                               double resolution) const noexcept {
  assert(resolution > 0.0);
  const double d = distance(a, b);
  return static_cast<std::size_t>(std::ceil(d / resolution));
}

void EdgeInterpolator::reset(const CSpace& space, const Config& a,
                             const Config& b) noexcept {
  kind_ = space.kind();
  count_ = a.size();
  has_rot_ = false;
  switch (kind_) {
    case SpaceKind::Euclidean:
      lerp_count_ = count_;
      for (std::size_t i = 0; i < count_; ++i) {
        base_[i] = a[i];
        delta_[i] = b[i] - a[i];
      }
      return;
    case SpaceKind::SE2:
      lerp_count_ = 2;
      base_[0] = a[0];
      delta_[0] = b[0] - a[0];
      base_[1] = a[1];
      delta_[1] = b[1] - a[1];
      base_[2] = a[2];
      delta_[2] = angle_diff(a[2], b[2]);
      return;
    case SpaceKind::SE3: {
      lerp_count_ = 3;
      for (std::size_t i = 0; i < 3; ++i) {
        base_[i] = a[i];
        delta_[i] = b[i] - a[i];
      }
      has_rot_ = true;
      qa_ = quat_of(a);
      const geo::Quat qb = quat_of(b);
      // Invariant hoisting of Quat::slerp(qa, qb, t): sign flip, the
      // near-parallel branch choice, theta and sin(theta) do not depend
      // on t. The per-t expressions in at() are kept identical to slerp's.
      double d = qa_.dot(qb);
      qt_ = qb;
      if (d < 0.0) {
        d = -d;
        qt_ = {-qb.w, -qb.x, -qb.y, -qb.z};
      }
      nlerp_ = d > 0.9995;
      if (nlerp_) {
        qd_ = {qt_.w - qa_.w, qt_.x - qa_.x, qt_.y - qa_.y, qt_.z - qa_.z};
      } else {
        theta_ = std::acos(d);
        sin_theta_ = std::sin(theta_);
      }
      return;
    }
  }
}

void EdgeInterpolator::at(double t, Config& out) const noexcept {
  out.clear();
  for (std::size_t i = 0; i < lerp_count_; ++i)
    out.push_back(base_[i] + t * delta_[i]);
  if (kind_ == SpaceKind::SE2) {
    out.push_back(base_[2] + t * delta_[2]);
    return;
  }
  if (!has_rot_) return;
  geo::Quat q;
  if (nlerp_) {
    const geo::Quat r{qa_.w + t * qd_.w, qa_.x + t * qd_.x,
                      qa_.y + t * qd_.y, qa_.z + t * qd_.z};
    q = r.normalized();
  } else {
    const double sa = std::sin((1.0 - t) * theta_) / sin_theta_;
    const double sb = std::sin(t * theta_) / sin_theta_;
    q = {sa * qa_.w + sb * qt_.w, sa * qa_.x + sb * qt_.x,
         sa * qa_.y + sb * qt_.y, sa * qa_.z + sb * qt_.z};
  }
  out.push_back(q.w);
  out.push_back(q.x);
  out.push_back(q.y);
  out.push_back(q.z);
}

bool CSpace::in_bounds(const Config& c) const noexcept {
  switch (kind_) {
    case SpaceKind::Euclidean: {
      for (std::size_t i = 0; i < value_count_; ++i)
        if (c[i] < euclid_bounds_[i].first || c[i] > euclid_bounds_[i].second)
          return false;
      return true;
    }
    case SpaceKind::SE2:
      return c[0] >= pos_bounds_.lo.x && c[0] <= pos_bounds_.hi.x &&
             c[1] >= pos_bounds_.lo.y && c[1] <= pos_bounds_.hi.y;
    case SpaceKind::SE3:
      return pos_bounds_.contains(position(c));
  }
  return false;
}

}  // namespace pmpl::cspace
