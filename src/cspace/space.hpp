#pragma once
/// \file space.hpp
/// Configuration-space descriptors: topology, bounds, sampling, metric,
/// interpolation.
///
/// Three topologies cover the paper's experiments and the examples:
///  - `Euclidean` — R^n with per-dimension interval bounds (articulated arm);
///  - `SE2`      — (x, y, theta) planar rigid body;
///  - `SE3`      — (x, y, z, qw, qx, qy, qz) spatial rigid body, the space
///                 used in all of the paper's PRM/RRT experiments.

#include <array>
#include <utility>
#include <vector>

#include "cspace/config.hpp"
#include "geometry/pose_block.hpp"
#include "geometry/quat.hpp"
#include "geometry/shapes.hpp"
#include "geometry/transform.hpp"
#include "util/rng.hpp"

namespace pmpl::cspace {

enum class SpaceKind { Euclidean, SE2, SE3 };

/// Immutable C-space descriptor. All sampling takes the caller's RNG so
/// streams stay owned by regions (determinism; see DESIGN.md §2).
class CSpace {
 public:
  /// R^n with explicit per-dimension bounds.
  static CSpace euclidean(std::vector<std::pair<double, double>> bounds);

  /// Planar rigid body: position bounded by `pos`, free rotation.
  /// `rot_weight` scales rotational distance against translation.
  static CSpace se2(geo::Aabb pos, double rot_weight = 0.5);

  /// Spatial rigid body: position bounded by `pos`, free 3D rotation.
  static CSpace se3(geo::Aabb pos, double rot_weight = 0.5);

  SpaceKind kind() const noexcept { return kind_; }

  /// Number of stored values per configuration (3 for SE2, 7 for SE3, n
  /// for R^n).
  std::size_t value_count() const noexcept { return value_count_; }

  /// Degrees of freedom (3 for SE2, 6 for SE3, n for R^n).
  std::size_t dof() const noexcept { return dof_; }

  /// Positional bounding box (x, y[, z]); R^n maps its first <=3 dims.
  const geo::Aabb& position_bounds() const noexcept { return pos_bounds_; }

  double rotation_weight() const noexcept { return rot_weight_; }

  /// Workspace position of a configuration (first <=3 values).
  geo::Vec3 position(const Config& c) const noexcept;

  /// Rigid transform of a configuration (identity rotation for Euclidean).
  geo::Transform pose(const Config& c) const noexcept;

  /// Append the configuration's pose to a SoA block — the wide validity
  /// kernels consume the block's flat lanes directly. Same bits as
  /// `pose(c)` split into components.
  void pose_into(const Config& c, geo::PoseBlock& out) const noexcept {
    out.push(pose(c));
  }

  /// Uniform sample over the whole space.
  Config sample(Xoshiro256ss& rng) const;

  /// Uniform sample with the *position* restricted to `box` (region-based
  /// subdivision); non-positional dimensions sample their full range.
  Config sample_in(const geo::Aabb& box, Xoshiro256ss& rng) const;

  /// Configuration at the given workspace position with random remaining
  /// dimensions (radial RRT region targets).
  Config at_position(geo::Vec3 p, Xoshiro256ss& rng) const;

  /// Metric distance (positional Euclidean + weighted geodesic rotation).
  double distance(const Config& a, const Config& b) const noexcept;

  /// Interpolate from `a` toward `b`; t in [0,1]. Rotations slerp.
  Config interpolate(const Config& a, const Config& b,
                     double t) const noexcept;

  /// Number of local-planner steps needed between a and b at `resolution`.
  std::size_t step_count(const Config& a, const Config& b,
                         double resolution) const noexcept;

  /// Is `c` within bounds (positions inside the box, R^n dims in range)?
  bool in_bounds(const Config& c) const noexcept;

 private:
  CSpace() = default;

  SpaceKind kind_ = SpaceKind::SE3;
  std::size_t value_count_ = 0;
  std::size_t dof_ = 0;
  geo::Aabb pos_bounds_;
  double rot_weight_ = 0.5;
  std::vector<std::pair<double, double>> euclid_bounds_;
};

/// Precomputed straight-line edge a -> b for the local planner's hot loop.
///
/// `at(t, out)` produces exactly the same bits as
/// `CSpace::interpolate(a, b, t)` — the t-independent work (per-dimension
/// deltas, the SE2 angular difference, the slerp sign flip / angle /
/// 1/sin(theta) invariants) is hoisted into `reset()`, but every remaining
/// per-step expression is kept operation-for-operation identical. That
/// bit-identity is load-bearing: edge accept/reject decisions must not
/// change under the reordered local planner, or anytime checkpoints and
/// fault replays would diverge.
///
/// `reset()` may be called repeatedly; the interpolator holds no heap
/// storage, so reuse is allocation-free.
class EdgeInterpolator {
 public:
  EdgeInterpolator() = default;

  /// Rebind to the edge a -> b of `space`.
  void reset(const CSpace& space, const Config& a, const Config& b) noexcept;

  /// Write interpolate(a, b, t) into `out` (cleared first).
  void at(double t, Config& out) const noexcept;

 private:
  SpaceKind kind_ = SpaceKind::Euclidean;
  std::size_t count_ = 0;                          ///< values to emit
  std::size_t lerp_count_ = 0;                     ///< plain-lerp prefix
  std::array<double, kMaxConfigValues> base_{};    ///< a[i]
  std::array<double, kMaxConfigValues> delta_{};   ///< b[i] - a[i]
  // SE3 rotation invariants (see CSpace::interpolate / Quat::slerp).
  geo::Quat qa_{};      ///< start rotation
  geo::Quat qt_{};      ///< sign-corrected target rotation
  geo::Quat qd_{};      ///< qt_ - qa_ componentwise (nlerp fast path)
  double theta_ = 0.0;  ///< acos(|dot|)
  double sin_theta_ = 1.0;
  bool nlerp_ = false;  ///< rotations nearly parallel: lerp + renormalize
  bool has_rot_ = false;
};

}  // namespace pmpl::cspace
