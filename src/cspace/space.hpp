#pragma once
/// \file space.hpp
/// Configuration-space descriptors: topology, bounds, sampling, metric,
/// interpolation.
///
/// Three topologies cover the paper's experiments and the examples:
///  - `Euclidean` — R^n with per-dimension interval bounds (articulated arm);
///  - `SE2`      — (x, y, theta) planar rigid body;
///  - `SE3`      — (x, y, z, qw, qx, qy, qz) spatial rigid body, the space
///                 used in all of the paper's PRM/RRT experiments.

#include <utility>
#include <vector>

#include "cspace/config.hpp"
#include "geometry/quat.hpp"
#include "geometry/shapes.hpp"
#include "geometry/transform.hpp"
#include "util/rng.hpp"

namespace pmpl::cspace {

enum class SpaceKind { Euclidean, SE2, SE3 };

/// Immutable C-space descriptor. All sampling takes the caller's RNG so
/// streams stay owned by regions (determinism; see DESIGN.md §2).
class CSpace {
 public:
  /// R^n with explicit per-dimension bounds.
  static CSpace euclidean(std::vector<std::pair<double, double>> bounds);

  /// Planar rigid body: position bounded by `pos`, free rotation.
  /// `rot_weight` scales rotational distance against translation.
  static CSpace se2(geo::Aabb pos, double rot_weight = 0.5);

  /// Spatial rigid body: position bounded by `pos`, free 3D rotation.
  static CSpace se3(geo::Aabb pos, double rot_weight = 0.5);

  SpaceKind kind() const noexcept { return kind_; }

  /// Number of stored values per configuration (3 for SE2, 7 for SE3, n
  /// for R^n).
  std::size_t value_count() const noexcept { return value_count_; }

  /// Degrees of freedom (3 for SE2, 6 for SE3, n for R^n).
  std::size_t dof() const noexcept { return dof_; }

  /// Positional bounding box (x, y[, z]); R^n maps its first <=3 dims.
  const geo::Aabb& position_bounds() const noexcept { return pos_bounds_; }

  double rotation_weight() const noexcept { return rot_weight_; }

  /// Workspace position of a configuration (first <=3 values).
  geo::Vec3 position(const Config& c) const noexcept;

  /// Rigid transform of a configuration (identity rotation for Euclidean).
  geo::Transform pose(const Config& c) const noexcept;

  /// Uniform sample over the whole space.
  Config sample(Xoshiro256ss& rng) const;

  /// Uniform sample with the *position* restricted to `box` (region-based
  /// subdivision); non-positional dimensions sample their full range.
  Config sample_in(const geo::Aabb& box, Xoshiro256ss& rng) const;

  /// Configuration at the given workspace position with random remaining
  /// dimensions (radial RRT region targets).
  Config at_position(geo::Vec3 p, Xoshiro256ss& rng) const;

  /// Metric distance (positional Euclidean + weighted geodesic rotation).
  double distance(const Config& a, const Config& b) const noexcept;

  /// Interpolate from `a` toward `b`; t in [0,1]. Rotations slerp.
  Config interpolate(const Config& a, const Config& b,
                     double t) const noexcept;

  /// Number of local-planner steps needed between a and b at `resolution`.
  std::size_t step_count(const Config& a, const Config& b,
                         double resolution) const noexcept;

  /// Is `c` within bounds (positions inside the box, R^n dims in range)?
  bool in_bounds(const Config& c) const noexcept;

 private:
  CSpace() = default;

  SpaceKind kind_ = SpaceKind::SE3;
  std::size_t value_count_ = 0;
  std::size_t dof_ = 0;
  geo::Aabb pos_bounds_;
  double rot_weight_ = 0.5;
  std::vector<std::pair<double, double>> euclid_bounds_;
};

}  // namespace pmpl::cspace
