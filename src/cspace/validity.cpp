#include "cspace/validity.hpp"

#include <cmath>

namespace pmpl::cspace {

std::size_t RigidBodyValidity::valid_batch(
    std::span<const Config> cs, collision::CollisionStats* stats) const {
  geo::PoseBlock block;
  std::size_t i = 0;
  while (i < cs.size()) {
    // Collect a run of in-bounds configs, transforming to SoA pose lanes.
    block.clear();
    while (!block.full() && i + block.count < cs.size()) {
      if (!space_->in_bounds(cs[i + block.count])) break;
      space_->pose_into(cs[i + block.count], block);
    }
    const std::size_t m = block.count;
    if (m > 0) {
      const std::size_t hit = checker_->first_collision(robot_, block, stats);
      if (hit < m) return i + hit;
      i += m;
    }
    // The run ended before the block filled: either we consumed all of
    // `cs` (loop exits) or cs[i] is out of bounds — the first invalid one.
    if (m < geo::PoseBlock::kCapacity && i < cs.size()) return i;
  }
  return cs.size();
}

std::uint32_t RigidBodyValidity::valid_mask(
    std::span<const Config> cs, collision::CollisionStats* stats) const {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  while (i < cs.size()) {
    geo::PoseBlock block;
    std::size_t owner[geo::PoseBlock::kCapacity];
    // Out-of-bounds configs are invalid without a collision query (exactly
    // like `valid()`): they simply never enter the block.
    std::size_t consumed = 0;
    while (i + consumed < cs.size() && !block.full()) {
      const Config& c = cs[i + consumed];
      if (space_->in_bounds(c)) {
        owner[block.count] = i + consumed;
        space_->pose_into(c, block);
      }
      ++consumed;
    }
    const std::uint32_t collide =
        checker_->collision_mask(robot_, block, stats);
    for (std::size_t j = 0; j < block.count; ++j)
      if (!(collide >> j & 1u)) mask |= 1u << owner[j];
    i += consumed;
  }
  return mask;
}

std::vector<geo::Vec3> PlanarArmValidity::forward_kinematics(
    const Config& c) const {
  std::vector<geo::Vec3> joints;
  joints.reserve(link_lengths_.size() + 1);
  joints.push_back(base_);
  double angle = 0.0;
  geo::Vec3 p = base_;
  for (std::size_t i = 0; i < link_lengths_.size(); ++i) {
    angle += c[i];  // cumulative joint angles
    p = p + geo::Vec3{std::cos(angle), std::sin(angle), 0.0} *
                link_lengths_[i];
    joints.push_back(p);
  }
  return joints;
}

bool PlanarArmValidity::valid(const Config& c,
                              collision::CollisionStats* stats) const {
  if (!space_->in_bounds(c)) return false;
  const auto joints = forward_kinematics(c);
  // Each link is an OBB: centered on the segment midpoint, oriented along
  // the link, half-extents (len/2, width/2, width/2).
  for (std::size_t i = 0; i + 1 < joints.size(); ++i) {
    const geo::Vec3 a = joints[i];
    const geo::Vec3 b = joints[i + 1];
    const geo::Vec3 mid = (a + b) * 0.5;
    const geo::Vec3 d = b - a;
    const double len = d.norm();
    if (len <= 0.0) continue;
    const double angle = std::atan2(d.y, d.x);
    const geo::Obb link{mid,
                        {0.5 * len, 0.5 * link_width_, 0.5 * link_width_},
                        geo::Mat3::rot_z(angle)};
    const collision::RigidBody body = [&] {
      collision::RigidBody rb;
      rb.boxes.push_back(
          geo::Obb{{0, 0, 0}, link.half, geo::Mat3::identity()});
      return rb;
    }();
    geo::Transform pose{geo::Quat::from_axis_angle({0, 0, 1}, angle), mid};
    if (checker_->in_collision(body, pose, stats)) return false;
  }
  // Self-collision between non-adjacent links (segment distance test).
  for (std::size_t i = 0; i + 1 < joints.size(); ++i) {
    for (std::size_t j = i + 2; j + 1 < joints.size(); ++j) {
      const geo::Segment si{joints[i], joints[i + 1]};
      const geo::Segment sj{joints[j], joints[j + 1]};
      // Conservative: closest point of sj's endpoints to si.
      const double d =
          std::min((geo::closest_point(si, sj.a) - sj.a).norm(),
                   (geo::closest_point(si, sj.b) - sj.b).norm());
      if (d < link_width_ && !(i == 0 && j + 2 == joints.size())) {
        // Allow near-touch between the very first and last link tips.
        if (stats) ++stats->narrow_tests;
        return false;
      }
    }
  }
  return true;
}

}  // namespace pmpl::cspace
