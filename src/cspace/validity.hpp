#pragma once
/// \file validity.hpp
/// Configuration validity: the bridge from C-space to workspace collision.
///
/// `ValidityChecker` is the single abstraction the planners see; concrete
/// checkers cover the paper's rigid-body robot, a fast point robot (model
/// environment), and a planar articulated arm (examples).

#include <memory>
#include <span>
#include <vector>

#include "collision/checker.hpp"
#include "cspace/config.hpp"
#include "cspace/space.hpp"

namespace pmpl::cspace {

/// Validity-level counters, one layer above CollisionStats: every batch
/// entry point advances these the same way regardless of execution path
/// (sequential, blocked, cross-edge, any SIMD level), because verdicts —
/// and therefore first-invalid indices — are bit-identical everywhere.
struct ValidityStats {
  std::uint64_t checks = 0;  ///< configuration verdicts consumed
  std::uint64_t hits = 0;    ///< batches terminated by an invalid config

  ValidityStats& operator+=(const ValidityStats& o) noexcept {
    checks += o.checks;
    hits += o.hits;
    return *this;
  }
};

/// Abstract validity test. Implementations must be thread-safe for
/// concurrent `valid()` calls (they are shared across planner threads);
/// per-caller op counts go through the `stats` out-parameter.
class ValidityChecker {
 public:
  virtual ~ValidityChecker() = default;

  /// Is `c` collision-free (and within bounds)?
  virtual bool valid(const Config& c,
                     collision::CollisionStats* stats = nullptr) const = 0;

  /// Batched validity over an edge's interpolated steps: checks `cs` in
  /// order and returns the index of the first invalid configuration, or
  /// `cs.size()` when all are valid. Results are identical to calling
  /// `valid()` sequentially and stopping at the first failure; overrides
  /// exist to amortize per-call setup (virtual dispatch, robot pose
  /// transforms) across the batch and to run wide kernels.
  virtual std::size_t valid_batch(
      std::span<const Config> cs,
      collision::CollisionStats* stats = nullptr) const {
    for (std::size_t i = 0; i < cs.size(); ++i)
      if (!valid(cs[i], stats)) return i;
    return cs.size();
  }

  /// Independent per-config verdicts (bit i set = cs[i] valid), for
  /// callers batching *across* edges or tree extensions where there is no
  /// first-invalid early exit. `cs.size() <= 32`. Verdicts are identical
  /// to `valid()` per config at every dispatch level.
  virtual std::uint32_t valid_mask(
      std::span<const Config> cs,
      collision::CollisionStats* stats = nullptr) const {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < cs.size(); ++i)
      if (valid(cs[i], stats)) mask |= 1u << i;
    return mask;
  }

  /// `valid_batch` plus the ValidityStats accounting every caller must
  /// apply: one check per verdict consumed (first + 1 when the batch ends
  /// early), one hit per terminated batch. Non-virtual on purpose — the
  /// counts derive only from the verdict, so no override can skew them.
  std::size_t valid_batch_counted(std::span<const Config> cs,
                                  ValidityStats& vstats,
                                  collision::CollisionStats* stats =
                                      nullptr) const {
    const std::size_t first = valid_batch(cs, stats);
    if (first < cs.size()) {
      vstats.checks += first + 1;
      vstats.hits += 1;
    } else {
      vstats.checks += cs.size();
    }
    return first;
  }
};

/// Rigid-body robot placed by the configuration's pose.
class RigidBodyValidity final : public ValidityChecker {
 public:
  RigidBodyValidity(const CSpace& space, collision::RigidBody robot,
                    const collision::CollisionChecker& checker)
      : space_(&space), robot_(std::move(robot)), checker_(&checker) {}

  bool valid(const Config& c,
             collision::CollisionStats* stats = nullptr) const override {
    if (!space_->in_bounds(c)) return false;
    return !checker_->in_collision(robot_, space_->pose(c), stats);
  }

  /// Batches pose transforms into SoA PoseBlocks and hands them to the
  /// wide `CollisionChecker::first_collision`; verdicts are identical to
  /// the sequential default, stats follow the block contract.
  std::size_t valid_batch(
      std::span<const Config> cs,
      collision::CollisionStats* stats = nullptr) const override;

  /// Gathers in-bounds configs into PoseBlocks and scatters the wide
  /// `collision_mask` verdicts back to the callers' indices.
  std::uint32_t valid_mask(
      std::span<const Config> cs,
      collision::CollisionStats* stats = nullptr) const override;

  const collision::RigidBody& robot() const noexcept { return robot_; }

 private:
  const CSpace* space_;
  collision::RigidBody robot_;
  const collision::CollisionChecker* checker_;
};

/// Point robot: the configuration's position must be outside all obstacles.
/// Matches the paper's analytic model environment where load ∝ V_free.
class PointValidity final : public ValidityChecker {
 public:
  PointValidity(const CSpace& space, const collision::CollisionChecker& checker)
      : space_(&space), checker_(&checker) {}

  bool valid(const Config& c,
             collision::CollisionStats* stats = nullptr) const override {
    if (!space_->in_bounds(c)) return false;
    return !checker_->point_in_collision(space_->position(c), stats);
  }

 private:
  const CSpace* space_;
  const collision::CollisionChecker* checker_;
};

/// Planar n-link arm anchored at `base`; configuration values are joint
/// angles. Each link is a thin OBB checked against the environment.
class PlanarArmValidity final : public ValidityChecker {
 public:
  PlanarArmValidity(const CSpace& space, geo::Vec3 base,
                    std::vector<double> link_lengths, double link_width,
                    const collision::CollisionChecker& checker)
      : space_(&space),
        base_(base),
        link_lengths_(std::move(link_lengths)),
        link_width_(link_width),
        checker_(&checker) {}

  bool valid(const Config& c,
             collision::CollisionStats* stats = nullptr) const override;

  /// Joint positions under forward kinematics (size = links + 1, starting
  /// at the base).
  std::vector<geo::Vec3> forward_kinematics(const Config& c) const;

 private:
  const CSpace* space_;
  geo::Vec3 base_;
  std::vector<double> link_lengths_;
  double link_width_;
  const collision::CollisionChecker* checker_;
};

}  // namespace pmpl::cspace
