#pragma once
/// \file validity.hpp
/// Configuration validity: the bridge from C-space to workspace collision.
///
/// `ValidityChecker` is the single abstraction the planners see; concrete
/// checkers cover the paper's rigid-body robot, a fast point robot (model
/// environment), and a planar articulated arm (examples).

#include <memory>
#include <span>
#include <vector>

#include "collision/checker.hpp"
#include "cspace/config.hpp"
#include "cspace/space.hpp"

namespace pmpl::cspace {

/// Abstract validity test. Implementations must be thread-safe for
/// concurrent `valid()` calls (they are shared across planner threads);
/// per-caller op counts go through the `stats` out-parameter.
class ValidityChecker {
 public:
  virtual ~ValidityChecker() = default;

  /// Is `c` collision-free (and within bounds)?
  virtual bool valid(const Config& c,
                     collision::CollisionStats* stats = nullptr) const = 0;

  /// Batched validity over an edge's interpolated steps: checks `cs` in
  /// order and returns the index of the first invalid configuration, or
  /// `cs.size()` when all are valid. Results and per-config stats are
  /// identical to calling `valid()` sequentially and stopping at the first
  /// failure; overrides exist to amortize per-call setup (virtual dispatch,
  /// robot pose transforms) across the batch.
  virtual std::size_t valid_batch(
      std::span<const Config> cs,
      collision::CollisionStats* stats = nullptr) const {
    for (std::size_t i = 0; i < cs.size(); ++i)
      if (!valid(cs[i], stats)) return i;
    return cs.size();
  }
};

/// Rigid-body robot placed by the configuration's pose.
class RigidBodyValidity final : public ValidityChecker {
 public:
  RigidBodyValidity(const CSpace& space, collision::RigidBody robot,
                    const collision::CollisionChecker& checker)
      : space_(&space), robot_(std::move(robot)), checker_(&checker) {}

  bool valid(const Config& c,
             collision::CollisionStats* stats = nullptr) const override {
    if (!space_->in_bounds(c)) return false;
    return !checker_->in_collision(robot_, space_->pose(c), stats);
  }

  /// Batches pose transforms in fixed-size blocks and hands them to
  /// `CollisionChecker::first_collision`; verdict and stats are identical
  /// to the sequential default.
  std::size_t valid_batch(
      std::span<const Config> cs,
      collision::CollisionStats* stats = nullptr) const override;

  const collision::RigidBody& robot() const noexcept { return robot_; }

 private:
  const CSpace* space_;
  collision::RigidBody robot_;
  const collision::CollisionChecker* checker_;
};

/// Point robot: the configuration's position must be outside all obstacles.
/// Matches the paper's analytic model environment where load ∝ V_free.
class PointValidity final : public ValidityChecker {
 public:
  PointValidity(const CSpace& space, const collision::CollisionChecker& checker)
      : space_(&space), checker_(&checker) {}

  bool valid(const Config& c,
             collision::CollisionStats* stats = nullptr) const override {
    if (!space_->in_bounds(c)) return false;
    return !checker_->point_in_collision(space_->position(c), stats);
  }

 private:
  const CSpace* space_;
  const collision::CollisionChecker* checker_;
};

/// Planar n-link arm anchored at `base`; configuration values are joint
/// angles. Each link is a thin OBB checked against the environment.
class PlanarArmValidity final : public ValidityChecker {
 public:
  PlanarArmValidity(const CSpace& space, geo::Vec3 base,
                    std::vector<double> link_lengths, double link_width,
                    const collision::CollisionChecker& checker)
      : space_(&space),
        base_(base),
        link_lengths_(std::move(link_lengths)),
        link_width_(link_width),
        checker_(&checker) {}

  bool valid(const Config& c,
             collision::CollisionStats* stats = nullptr) const override;

  /// Joint positions under forward kinematics (size = links + 1, starting
  /// at the base).
  std::vector<geo::Vec3> forward_kinematics(const Config& c) const;

 private:
  const CSpace* space_;
  geo::Vec3 base_;
  std::vector<double> link_lengths_;
  double link_width_;
  const collision::CollisionChecker* checker_;
};

}  // namespace pmpl::cspace
