#include "env/builders.hpp"

#include <cmath>

#include "geometry/intersect.hpp"
#include "util/rng.hpp"

namespace pmpl::env {

namespace {

using collision::ObstacleShape;
using geo::Aabb;
using geo::Obb;
using geo::Vec3;

Aabb workspace3d() { return {{0, 0, 0}, {kExtent, kExtent, kExtent}}; }

collision::RigidBody default_robot() {
  return collision::RigidBody::box({kRobotHalf, kRobotHalf, kRobotHalf});
}

std::unique_ptr<Environment> make3d(std::string name,
                                    std::vector<ObstacleShape> obstacles) {
  return std::make_unique<Environment>(
      std::move(name), cspace::CSpace::se3(workspace3d()),
      std::move(obstacles), default_robot());
}

/// A 2D obstacle: a box spanning z in [-1, 1] so point queries at z=0 and
/// planar robots at z=0 interact with it.
Aabb box2d(double x0, double y0, double x1, double y1) {
  return {{x0, y0, -1.0}, {x1, y1, 1.0}};
}

}  // namespace

std::unique_ptr<Environment> free_env() {
  return make3d("free", {});
}

namespace {

std::unique_ptr<Environment> cube_env(std::string name,
                                      double blocked_fraction) {
  // One cube centered in the workspace whose volume is the requested
  // fraction of the total (paper: ~24% med-cube, ~6% small-cube).
  const double side = kExtent * std::cbrt(blocked_fraction);
  const double lo = 0.5 * (kExtent - side);
  const double hi = lo + side;
  std::vector<ObstacleShape> obs;
  obs.push_back(Aabb{{lo, lo, lo}, {hi, hi, hi}});
  return make3d(std::move(name), std::move(obs));
}

}  // namespace

std::unique_ptr<Environment> med_cube() { return cube_env("med-cube", 0.24); }

std::unique_ptr<Environment> small_cube() {
  return cube_env("small-cube", 0.06);
}

std::unique_ptr<Environment> mixed(double blocked_fraction) {
  // Random boxes with placement density increasing along +x: the -x half
  // stays relatively open while the +x half is heavily cluttered, giving
  // the spatially skewed load the paper's mixed environments produce.
  // We add boxes until the accumulated obstacle volume (ignoring overlap,
  // overlaps stay modest at these densities) reaches the target fraction.
  // Boxes are large relative to the robot so the C-space inflation does
  // not seal the environment, and a clearance ball around the workspace
  // center keeps the radial-RRT root valid.
  Xoshiro256ss rng(0xC0FFEEULL);
  std::vector<ObstacleShape> obs;
  const double total = kExtent * kExtent * kExtent;
  const Vec3 center{0.5 * kExtent, 0.5 * kExtent, 0.5 * kExtent};
  constexpr double kRootClearance = 14.0;
  double placed = 0.0;
  while (placed < blocked_fraction * total) {
    // Bias placement toward +x: x ~ max of two uniforms.
    const double xa = rng.uniform(0.0, kExtent);
    const double xb = rng.uniform(0.0, kExtent);
    const double x = xa > xb ? xa : xb;
    const double y = rng.uniform(0.0, kExtent);
    const double z = rng.uniform(0.0, kExtent);
    const Vec3 half{rng.uniform(6.0, 16.0), rng.uniform(6.0, 16.0),
                    rng.uniform(6.0, 16.0)};
    Aabb box = Aabb::from_center({x, y, z}, half);
    // Clip to the workspace so volume accounting stays meaningful.
    box = box.intersection(workspace3d());
    if (box.volume() <= 0.0) continue;
    if (geo::distance2(center, box) < kRootClearance * kRootClearance)
      continue;
    placed += box.volume();
    obs.push_back(box);
  }
  const int pct = static_cast<int>(std::lround(blocked_fraction * 100.0));
  // A compact robot: the RRT experiments need passable clutter.
  return std::make_unique<Environment>(
      pct == 60 ? "mixed" : "mixed-" + std::to_string(pct),
      cspace::CSpace::se3(workspace3d()), std::move(obs),
      collision::RigidBody::box({2.5, 2.5, 2.5}));
}

std::unique_ptr<Environment> walls(bool rotated) {
  // Five walls across x, each with one rectangular passage; passages
  // alternate between low and high corners so paths must weave.
  std::vector<ObstacleShape> obs;
  constexpr int kWalls = 5;
  const double thick = 2.5;
  const double gap = 6.0 * kRobotHalf;  // passage side
  for (int w = 0; w < kWalls; ++w) {
    const double x =
        kExtent * (static_cast<double>(w + 1) / (kWalls + 1));
    const bool low = (w % 2 == 0);
    const double gy = low ? 0.15 * kExtent : 0.85 * kExtent;
    const double gz = low ? 0.2 * kExtent : 0.8 * kExtent;
    // Wall = full slab minus a gap: emit 4 boxes around the hole.
    const double y0 = gy - 0.5 * gap, y1 = gy + 0.5 * gap;
    const double z0 = gz - 0.5 * gap, z1 = gz + 0.5 * gap;
    auto emit = [&](double ylo, double yhi, double zlo, double zhi) {
      if (yhi <= ylo || zhi <= zlo) return;
      if (!rotated) {
        obs.push_back(Aabb{{x - thick, ylo, zlo}, {x + thick, yhi, zhi}});
      } else {
        const Vec3 c{x, 0.5 * (ylo + yhi), 0.5 * (zlo + zhi)};
        const Vec3 half{thick, 0.5 * (yhi - ylo), 0.5 * (zhi - zlo)};
        obs.push_back(Obb{c, half, geo::Mat3::rot_z(0.25 * 3.14159265358979)});
      }
    };
    emit(0.0, y0, 0.0, kExtent);        // below gap in y
    emit(y1, kExtent, 0.0, kExtent);    // above gap in y
    emit(y0, y1, 0.0, z0);              // beside gap in z
    emit(y0, y1, z1, kExtent);
  }
  return make3d(rotated ? "walls-45" : "walls", std::move(obs));
}

std::unique_ptr<Environment> model_2d(double blocked_fraction) {
  // Unit square workspace, one centered square obstacle, point robot.
  const double side = std::sqrt(blocked_fraction);
  const double lo = 0.5 * (1.0 - side);
  const double hi = lo + side;
  std::vector<ObstacleShape> obs;
  obs.push_back(box2d(lo, lo, hi, hi));
  auto space = cspace::CSpace::euclidean({{0.0, 1.0}, {0.0, 1.0}});
  return std::make_unique<Environment>(
      "model-2d", std::move(space), std::move(obs),
      collision::RigidBody::sphere(0.0), RobotModel::kPoint);
}

std::unique_ptr<Environment> imbalanced_2d() {
  // Obstacles crowd the right half and the lower-left quadrant; the upper
  // left quadrant (Fig 3's R0) is open and generates most of the roadmap.
  std::vector<ObstacleShape> obs;
  obs.push_back(box2d(55, 5, 95, 45));
  obs.push_back(box2d(55, 55, 95, 95));
  obs.push_back(box2d(58, 46, 92, 54));
  obs.push_back(box2d(5, 5, 45, 40));
  obs.push_back(box2d(10, 42, 40, 48));
  auto space = cspace::CSpace::se2(
      Aabb{{0, 0, 0}, {kExtent, kExtent, 0}});
  return std::make_unique<Environment>(
      "imbalanced-2d", std::move(space), std::move(obs),
      collision::RigidBody::box({kRobotHalf, kRobotHalf, 0.5}));
}

std::unique_ptr<Environment> maze_2d() {
  // 8x8 cell maze from a fixed wall pattern (1 = wall cell).
  constexpr int kN = 8;
  constexpr int kPattern[kN][kN] = {
      {0, 0, 1, 0, 0, 0, 1, 0}, {1, 0, 1, 0, 1, 0, 1, 0},
      {0, 0, 0, 0, 1, 0, 0, 0}, {0, 1, 1, 1, 1, 1, 1, 0},
      {0, 0, 0, 1, 0, 0, 0, 0}, {1, 1, 0, 1, 0, 1, 1, 0},
      {0, 0, 0, 0, 0, 0, 1, 0}, {0, 1, 1, 1, 1, 0, 1, 0}};
  const double cell = kExtent / kN;
  std::vector<ObstacleShape> obs;
  for (int r = 0; r < kN; ++r)
    for (int c = 0; c < kN; ++c)
      if (kPattern[r][c] != 0)
        obs.push_back(box2d(c * cell, r * cell, (c + 1) * cell,
                            (r + 1) * cell));
  auto space = cspace::CSpace::se2(
      Aabb{{0, 0, 0}, {kExtent, kExtent, 0}});
  return std::make_unique<Environment>(
      "maze-2d", std::move(space), std::move(obs),
      collision::RigidBody::box({1.5, 1.5, 0.5}));
}

std::unique_ptr<Environment> warehouse() {
  // Shelf rows along y with aisles between them; a cross aisle at mid-y.
  // The robot is forklift-sized (half-extent 3) so the 10-unit aisles are
  // navigable in any orientation.
  std::vector<ObstacleShape> obs;
  const double shelf_w = 6.0;
  const double aisle = 10.0;
  const double shelf_h = 30.0;
  for (double x = 12.0; x + shelf_w < kExtent - 6.0; x += shelf_w + aisle) {
    // Two shelf segments split by the cross aisle.
    obs.push_back(Aabb{{x, 5.0, 0.0}, {x + shelf_w, 42.0, shelf_h}});
    obs.push_back(Aabb{{x, 58.0, 0.0}, {x + shelf_w, 95.0, shelf_h}});
  }
  return std::make_unique<Environment>(
      "warehouse", cspace::CSpace::se3(workspace3d()), std::move(obs),
      collision::RigidBody::box({3.0, 3.0, 3.0}));
}

}  // namespace pmpl::env
