#pragma once
/// \file builders.hpp
/// Named constructors for every environment in the paper's evaluation plus
/// the example scenarios.
///
/// Paper environments (blocked volume fractions from §IV):
///  - `free_env()`        — 0% blocked (LB-overhead control, Fig 8c / 10c)
///  - `med_cube()`        — ~24% blocked single central cube (Figs 5–9)
///  - `small_cube()`      — ~6% blocked
///  - `mixed(0.60)`       — 60% blocked clutter (RRT, Fig 10a)
///  - `mixed(0.30)`       — 30% blocked clutter (RRT, Fig 10b)
///  - `walls()` / `walls45()` — wall sequences with offset passages (the
///    alternate captions of Fig 8)
///  - `model_2d(f)`       — the §IV-B analytic model environment: unit square
///    with one centered square obstacle of area fraction f, point robot
///  - `imbalanced_2d()`   — Fig 3's qualitative 4-region imbalance demo
///
/// Example scenarios: `maze_2d()`, `warehouse()`.
///
/// All environments use a fixed workspace extent `kExtent` and the paper's
/// rigid-body (box) robot unless stated otherwise. Builders are
/// deterministic: randomized clutter uses a fixed internal seed.

#include <memory>

#include "env/environment.hpp"

namespace pmpl::env {

/// Workspace edge length shared by the 3D environments.
inline constexpr double kExtent = 100.0;

/// Half-extent of the default rigid-body box robot. Sized so the C-space
/// obstacle inflation is significant (a ~10-unit body on a 100-unit
/// workspace): the blocked *configuration-space* fraction of med-cube is
/// therefore well above its 24% workspace fraction, which is what produces
/// the strong regional load imbalance the paper observes.
inline constexpr double kRobotHalf = 7.0;

std::unique_ptr<Environment> free_env();
std::unique_ptr<Environment> med_cube();
std::unique_ptr<Environment> small_cube();

/// Cluttered heterogeneous environment with approximately `blocked_fraction`
/// of the workspace volume inside obstacles, concentrated toward +x so the
/// subdivision load is spatially skewed (the paper's "mixed" RRT workloads).
std::unique_ptr<Environment> mixed(double blocked_fraction);

/// Sequence of walls spanning the workspace with offset rectangular
/// passages; `rotated` tilts each wall 45 degrees about z (the "Walls-45"
/// variant named in Fig 8's subplot captions).
std::unique_ptr<Environment> walls(bool rotated = false);

/// §IV-B model: unit 2D workspace, single centered square obstacle of area
/// fraction `blocked_fraction`, point robot. Load per region is provably
/// proportional to region V_free.
std::unique_ptr<Environment> model_2d(double blocked_fraction = 0.25);

/// Fig 3's qualitative setup: a 2D workspace where obstacles crowd three
/// of four quadrants, overloading the processor that owns the open one.
std::unique_ptr<Environment> imbalanced_2d();

/// Example: 2D grid maze for an SE(2) rigid robot.
std::unique_ptr<Environment> maze_2d();

/// Example: warehouse floor with shelf rows and aisles (SE(3) box robot).
std::unique_ptr<Environment> warehouse();

}  // namespace pmpl::env
