#include "env/env_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace pmpl::env {

namespace {
constexpr const char* kMagic = "pmpl-env";
constexpr int kVersion = 1;

/// Recover the z-rotation of an OBB whose rotation is rot_z(a); nullopt
/// for any other orientation.
std::optional<double> z_rotation_of(const geo::Mat3& m) {
  // rot_z has r2 == (0,0,1) and the upper-left block a 2D rotation.
  if (std::fabs(m.r2.x) > 1e-9 || std::fabs(m.r2.y) > 1e-9 ||
      std::fabs(m.r2.z - 1.0) > 1e-9 || std::fabs(m.r0.z) > 1e-9 ||
      std::fabs(m.r1.z) > 1e-9)
    return std::nullopt;
  return std::atan2(m.r1.x, m.r0.x);
}

}  // namespace

std::optional<std::unique_ptr<Environment>> load_environment(
    std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != kMagic ||
        version != kVersion)
      return std::nullopt;
  }

  std::string name = "unnamed";
  std::optional<cspace::CSpace> space;
  collision::RigidBody robot = collision::RigidBody::box({1, 1, 1});
  RobotModel model = RobotModel::kRigidBody;
  std::vector<collision::ObstacleShape> obstacles;

  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') continue;
    if (tag == "name") {
      if (!(ls >> name)) return std::nullopt;
    } else if (tag == "space") {
      std::string kind;
      geo::Vec3 lo, hi;
      if (!(ls >> kind >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z))
        return std::nullopt;
      if (kind == "se3")
        space = cspace::CSpace::se3({lo, hi});
      else if (kind == "se2")
        space = cspace::CSpace::se2({lo, hi});
      else
        return std::nullopt;
    } else if (tag == "robot") {
      std::string kind;
      if (!(ls >> kind)) return std::nullopt;
      if (kind == "box") {
        geo::Vec3 h;
        if (!(ls >> h.x >> h.y >> h.z)) return std::nullopt;
        robot = collision::RigidBody::box(h);
        model = RobotModel::kRigidBody;
      } else if (kind == "sphere") {
        double r = 0.0;
        if (!(ls >> r)) return std::nullopt;
        robot = collision::RigidBody::sphere(r);
        model = RobotModel::kRigidBody;
      } else if (kind == "point") {
        robot = collision::RigidBody::sphere(0.0);
        model = RobotModel::kPoint;
      } else {
        return std::nullopt;
      }
    } else if (tag == "aabb") {
      geo::Vec3 lo, hi;
      if (!(ls >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z))
        return std::nullopt;
      obstacles.push_back(geo::Aabb{lo, hi});
    } else if (tag == "obb") {
      geo::Vec3 c, h;
      double angle = 0.0;
      if (!(ls >> c.x >> c.y >> c.z >> h.x >> h.y >> h.z >> angle))
        return std::nullopt;
      obstacles.push_back(geo::Obb{c, h, geo::Mat3::rot_z(angle)});
    } else if (tag == "sphere") {
      geo::Vec3 c;
      double r = 0.0;
      if (!(ls >> c.x >> c.y >> c.z >> r)) return std::nullopt;
      obstacles.push_back(geo::Sphere{c, r});
    } else {
      return std::nullopt;  // unknown record
    }
  }
  if (!space) return std::nullopt;
  return std::make_unique<Environment>(name, *space, std::move(obstacles),
                                       std::move(robot), model);
}

bool save_environment(const Environment& e, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << std::setprecision(17);
  os << "name " << e.name() << '\n';
  const auto& b = e.space().position_bounds();
  const char* kind =
      e.space().kind() == cspace::SpaceKind::SE2 ? "se2" : "se3";
  if (e.space().kind() == cspace::SpaceKind::Euclidean) return false;
  os << "space " << kind << ' ' << b.lo.x << ' ' << b.lo.y << ' ' << b.lo.z
     << ' ' << b.hi.x << ' ' << b.hi.y << ' ' << b.hi.z << '\n';

  if (e.robot_model() == RobotModel::kPoint) {
    os << "robot point\n";
  } else if (!e.robot().boxes.empty()) {
    const auto& h = e.robot().boxes[0].half;
    os << "robot box " << h.x << ' ' << h.y << ' ' << h.z << '\n';
  } else if (!e.robot().spheres.empty()) {
    os << "robot sphere " << e.robot().spheres[0].radius << '\n';
  } else {
    return false;
  }

  for (const auto& shape : e.checker().obstacles()) {
    if (const auto* box = std::get_if<geo::Aabb>(&shape)) {
      os << "aabb " << box->lo.x << ' ' << box->lo.y << ' ' << box->lo.z
         << ' ' << box->hi.x << ' ' << box->hi.y << ' ' << box->hi.z << '\n';
    } else if (const auto* obb = std::get_if<geo::Obb>(&shape)) {
      const auto angle = z_rotation_of(obb->rot);
      if (!angle) return false;
      os << "obb " << obb->center.x << ' ' << obb->center.y << ' '
         << obb->center.z << ' ' << obb->half.x << ' ' << obb->half.y << ' '
         << obb->half.z << ' ' << *angle << '\n';
    } else if (const auto* sph = std::get_if<geo::Sphere>(&shape)) {
      os << "sphere " << sph->center.x << ' ' << sph->center.y << ' '
         << sph->center.z << ' ' << sph->radius << '\n';
    } else {
      return false;  // triangles not representable in v1
    }
  }
  return static_cast<bool>(os);
}

std::optional<std::unique_ptr<Environment>> load_environment_file(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_environment(is);
}

bool save_environment_file(const Environment& e, const std::string& path) {
  std::ofstream os(path);
  return os && save_environment(e, os);
}

}  // namespace pmpl::env
