#include "env/env_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace pmpl::env {

namespace {
constexpr const char* kMagic = "pmpl-env";
constexpr int kVersionLegacy = 1;  ///< no checksum, '#' comments (read-only)
constexpr int kVersion = 2;        ///< trailing checksum over record bytes

void fail(IoStatus* status, IoStatus s) {
  if (status) *status = s;
}

/// Recover the z-rotation of an OBB whose rotation is rot_z(a); nullopt
/// for any other orientation.
std::optional<double> z_rotation_of(const geo::Mat3& m) {
  // rot_z has r2 == (0,0,1) and the upper-left block a 2D rotation.
  if (std::fabs(m.r2.x) > 1e-9 || std::fabs(m.r2.y) > 1e-9 ||
      std::fabs(m.r2.z - 1.0) > 1e-9 || std::fabs(m.r0.z) > 1e-9 ||
      std::fabs(m.r1.z) > 1e-9)
    return std::nullopt;
  return std::atan2(m.r1.x, m.r0.x);
}

/// Serialize just the records (no header/footer) so save can checksum the
/// exact bytes written.
bool write_records(const Environment& e, std::ostream& os) {
  os << std::setprecision(17);
  os << "name " << e.name() << '\n';
  const auto& b = e.space().position_bounds();
  const char* kind =
      e.space().kind() == cspace::SpaceKind::SE2 ? "se2" : "se3";
  if (e.space().kind() == cspace::SpaceKind::Euclidean) return false;
  os << "space " << kind << ' ' << b.lo.x << ' ' << b.lo.y << ' ' << b.lo.z
     << ' ' << b.hi.x << ' ' << b.hi.y << ' ' << b.hi.z << '\n';

  if (e.robot_model() == RobotModel::kPoint) {
    os << "robot point\n";
  } else if (!e.robot().boxes.empty()) {
    const auto& h = e.robot().boxes[0].half;
    os << "robot box " << h.x << ' ' << h.y << ' ' << h.z << '\n';
  } else if (!e.robot().spheres.empty()) {
    os << "robot sphere " << e.robot().spheres[0].radius << '\n';
  } else {
    return false;
  }

  for (const auto& shape : e.checker().obstacles()) {
    if (const auto* box = std::get_if<geo::Aabb>(&shape)) {
      os << "aabb " << box->lo.x << ' ' << box->lo.y << ' ' << box->lo.z
         << ' ' << box->hi.x << ' ' << box->hi.y << ' ' << box->hi.z << '\n';
    } else if (const auto* obb = std::get_if<geo::Obb>(&shape)) {
      const auto angle = z_rotation_of(obb->rot);
      if (!angle) return false;
      os << "obb " << obb->center.x << ' ' << obb->center.y << ' '
         << obb->center.z << ' ' << obb->half.x << ' ' << obb->half.y << ' '
         << obb->half.z << ' ' << *angle << '\n';
    } else if (const auto* sph = std::get_if<geo::Sphere>(&shape)) {
      os << "sphere " << sph->center.x << ' ' << sph->center.y << ' '
         << sph->center.z << ' ' << sph->radius << '\n';
    } else {
      return false;  // triangles not representable in this format
    }
  }
  return static_cast<bool>(os);
}

}  // namespace

std::optional<std::unique_ptr<Environment>> load_environment(
    std::istream& is, IoStatus* status) {
  std::string line;
  if (!std::getline(is, line)) {
    fail(status, IoStatus::kTruncated);
    return std::nullopt;
  }
  bool strict = false;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version)) {
      fail(status, IoStatus::kMalformed);
      return std::nullopt;
    }
    if (magic != kMagic) {
      fail(status, IoStatus::kBadMagic);
      return std::nullopt;
    }
    if (version != kVersion && version != kVersionLegacy) {
      fail(status, IoStatus::kBadVersion);
      return std::nullopt;
    }
    strict = version == kVersion;
  }

  std::string name = "unnamed";
  std::optional<cspace::CSpace> space;
  collision::RigidBody robot = collision::RigidBody::box({1, 1, 1});
  RobotModel model = RobotModel::kRigidBody;
  std::vector<collision::ObstacleShape> obstacles;

  bool have_checksum = false;
  std::uint64_t claimed_checksum = 0;
  std::uint64_t running = kFnvOffset;

  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') {
      if (strict) {
        // v2 is machine-written: no blanks or comments, every byte counts
        // toward the checksum.
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      continue;
    }
    if (strict && tag == "checksum") {
      std::string junk;
      if (!(ls >> std::hex >> claimed_checksum) || (ls >> junk)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      have_checksum = true;
      break;  // footer: nothing may follow
    }
    if (strict) {
      running = fnv1a64(line.data(), line.size(), running);
      running = fnv1a64("\n", 1, running);
    }
    if (tag == "name") {
      if (!(ls >> name)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
    } else if (tag == "space") {
      std::string kind;
      geo::Vec3 lo, hi;
      if (!(ls >> kind >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      if (kind == "se3") {
        space = cspace::CSpace::se3({lo, hi});
      } else if (kind == "se2") {
        space = cspace::CSpace::se2({lo, hi});
      } else {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
    } else if (tag == "robot") {
      std::string kind;
      if (!(ls >> kind)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      if (kind == "box") {
        geo::Vec3 h;
        if (!(ls >> h.x >> h.y >> h.z)) {
          fail(status, IoStatus::kMalformed);
          return std::nullopt;
        }
        robot = collision::RigidBody::box(h);
        model = RobotModel::kRigidBody;
      } else if (kind == "sphere") {
        double r = 0.0;
        if (!(ls >> r)) {
          fail(status, IoStatus::kMalformed);
          return std::nullopt;
        }
        robot = collision::RigidBody::sphere(r);
        model = RobotModel::kRigidBody;
      } else if (kind == "point") {
        robot = collision::RigidBody::sphere(0.0);
        model = RobotModel::kPoint;
      } else {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
    } else if (tag == "aabb") {
      geo::Vec3 lo, hi;
      if (!(ls >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      obstacles.push_back(geo::Aabb{lo, hi});
    } else if (tag == "obb") {
      geo::Vec3 c, h;
      double angle = 0.0;
      if (!(ls >> c.x >> c.y >> c.z >> h.x >> h.y >> h.z >> angle)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      obstacles.push_back(geo::Obb{c, h, geo::Mat3::rot_z(angle)});
    } else if (tag == "sphere") {
      geo::Vec3 c;
      double r = 0.0;
      if (!(ls >> c.x >> c.y >> c.z >> r)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      obstacles.push_back(geo::Sphere{c, r});
    } else {
      fail(status, IoStatus::kMalformed);  // unknown record
      return std::nullopt;
    }
  }

  if (strict) {
    if (!have_checksum) {
      fail(status, IoStatus::kTruncated);
      return std::nullopt;
    }
    std::string rest;
    if (is >> rest) {
      fail(status, IoStatus::kMalformed);  // trailing junk after footer
      return std::nullopt;
    }
    if (running != claimed_checksum) {
      fail(status, IoStatus::kChecksumMismatch);
      return std::nullopt;
    }
  }
  if (!space) {
    fail(status, IoStatus::kMalformed);
    return std::nullopt;
  }
  if (status) *status = IoStatus::kOk;
  return std::make_unique<Environment>(name, *space, std::move(obstacles),
                                       std::move(robot), model);
}

bool save_environment(const Environment& e, std::ostream& os) {
  std::ostringstream body;
  if (!write_records(e, body)) return false;
  const std::string payload = body.str();
  os << kMagic << ' ' << kVersion << '\n';
  os << payload;
  os << "checksum " << std::hex << fnv1a64(payload.data(), payload.size())
     << std::dec << '\n';
  return static_cast<bool>(os);
}

std::optional<std::unique_ptr<Environment>> load_environment_file(
    const std::string& path, IoStatus* status) {
  std::ifstream is(path);
  if (!is) {
    fail(status, IoStatus::kOpenFailed);
    return std::nullopt;
  }
  return load_environment(is, status);
}

bool save_environment_file(const Environment& e, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os || !save_environment(e, os)) return false;
    os.flush();
    if (!os) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace pmpl::env
