#pragma once
/// \file env_io.hpp
/// Environment persistence: load user-defined scenes from a line-oriented
/// text format, and save built-in ones for editing.
///
/// Format (one record per line):
///
///   pmpl-env 2
///   name <string>
///   space se3|se2 <lo.x> <lo.y> <lo.z> <hi.x> <hi.y> <hi.z>
///   robot box <hx> <hy> <hz> | robot sphere <r> | robot point
///   aabb <lo.x> <lo.y> <lo.z> <hi.x> <hi.y> <hi.z>
///   obb <c.x> <c.y> <c.z> <h.x> <h.y> <h.z> <z-rotation-rad>
///   sphere <c.x> <c.y> <c.z> <r>
///   checksum <fnv1a64-hex>
///
/// Version 2 ends with an FNV-1a checksum over the record bytes, so
/// truncated or bit-flipped files are rejected with a status code instead
/// of silently loading a different scene. Version 1 files (no checksum,
/// '#' comments permitted) are still readable; new files are always
/// written as version 2.

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "env/environment.hpp"
#include "util/io_status.hpp"

namespace pmpl::env {

/// Parse an environment; nullopt (with no partial state) on malformed
/// input. When `status` is non-null it receives the precise failure (or
/// IoStatus::kOk).
std::optional<std::unique_ptr<Environment>> load_environment(
    std::istream& is, IoStatus* status = nullptr);

/// Serialize `e` (space bounds, robot, obstacles) as format version 2.
/// OBB orientations are saved as z-rotations only (the format's
/// limitation); other orientations are rejected with a false return.
bool save_environment(const Environment& e, std::ostream& os);

/// File convenience wrappers. Saving is atomic: written to `path + ".tmp"`
/// and renamed over `path` only once complete.
std::optional<std::unique_ptr<Environment>> load_environment_file(
    const std::string& path, IoStatus* status = nullptr);
bool save_environment_file(const Environment& e, const std::string& path);

}  // namespace pmpl::env
