#pragma once
/// \file env_io.hpp
/// Environment persistence: load user-defined scenes from a line-oriented
/// text format, and save built-in ones for editing.
///
/// Format (comments with '#', one record per line):
///
///   pmpl-env 1
///   name <string>
///   space se3|se2 <lo.x> <lo.y> <lo.z> <hi.x> <hi.y> <hi.z>
///   robot box <hx> <hy> <hz> | robot sphere <r> | robot point
///   aabb <lo.x> <lo.y> <lo.z> <hi.x> <hi.y> <hi.z>
///   obb <c.x> <c.y> <c.z> <h.x> <h.y> <h.z> <z-rotation-rad>
///   sphere <c.x> <c.y> <c.z> <r>

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "env/environment.hpp"

namespace pmpl::env {

/// Parse an environment; nullopt (with no partial state) on malformed
/// input.
std::optional<std::unique_ptr<Environment>> load_environment(
    std::istream& is);

/// Serialize `e` (space bounds, robot, obstacles). OBB orientations are
/// saved as z-rotations only (the format's limitation); other orientations
/// are rejected with a false return.
bool save_environment(const Environment& e, std::ostream& os);

std::optional<std::unique_ptr<Environment>> load_environment_file(
    const std::string& path);
bool save_environment_file(const Environment& e, const std::string& path);

}  // namespace pmpl::env
