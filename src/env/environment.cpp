#include "env/environment.hpp"

#include "util/rng.hpp"

namespace pmpl::env {

Environment::Environment(std::string name, cspace::CSpace space,
                         std::vector<collision::ObstacleShape> obstacles,
                         collision::RigidBody robot, RobotModel model)
    : name_(std::move(name)),
      space_(std::move(space)),
      checker_(std::move(obstacles)),
      robot_(std::move(robot)),
      model_(model) {
  switch (model_) {
    case RobotModel::kPoint:
      validity_ = std::make_unique<cspace::PointValidity>(space_, checker_);
      break;
    case RobotModel::kRigidBody:
      validity_ = std::make_unique<cspace::RigidBodyValidity>(space_, robot_,
                                                              checker_);
      break;
  }
}

double Environment::blocked_fraction(std::size_t samples,
                                     std::uint64_t seed) const {
  Xoshiro256ss rng(seed);
  const geo::Aabb& b = space_.position_bounds();
  std::size_t blocked = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const geo::Vec3 p{rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
                      rng.uniform(b.lo.z, b.hi.z)};
    if (checker_.point_in_collision(p)) ++blocked;
  }
  return static_cast<double>(blocked) / static_cast<double>(samples);
}

double Environment::free_fraction_in(const geo::Aabb& box, std::size_t samples,
                                     std::uint64_t seed) const {
  Xoshiro256ss rng(seed);
  std::size_t free = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const geo::Vec3 p{rng.uniform(box.lo.x, box.hi.x),
                      rng.uniform(box.lo.y, box.hi.y),
                      box.lo.z == box.hi.z ? box.lo.z
                                           : rng.uniform(box.lo.z, box.hi.z)};
    if (!checker_.point_in_collision(p)) ++free;
  }
  return static_cast<double>(free) / static_cast<double>(samples);
}

}  // namespace pmpl::env
