#pragma once
/// \file environment.hpp
/// A motion-planning problem instance: C-space + obstacles + robot.
///
/// Owns the collision checker and validity checker so planners only carry a
/// `const Environment&`. Immutable after construction; safe to share across
/// threads.

#include <memory>
#include <string>
#include <vector>

#include "collision/checker.hpp"
#include "cspace/local_planner.hpp"
#include "cspace/space.hpp"
#include "cspace/validity.hpp"

namespace pmpl::env {

/// Which validity model the environment uses.
enum class RobotModel {
  kPoint,      ///< point robot (model environment, V_free studies)
  kRigidBody,  ///< paper's rigid-body robot
};

/// Problem instance. Construct via the named builders in builders.hpp or
/// directly for custom setups.
class Environment {
 public:
  Environment(std::string name, cspace::CSpace space,
              std::vector<collision::ObstacleShape> obstacles,
              collision::RigidBody robot,
              RobotModel model = RobotModel::kRigidBody);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  const std::string& name() const noexcept { return name_; }
  const cspace::CSpace& space() const noexcept { return space_; }
  const collision::CollisionChecker& checker() const noexcept {
    return checker_;
  }
  const cspace::ValidityChecker& validity() const noexcept {
    return *validity_;
  }
  const collision::RigidBody& robot() const noexcept { return robot_; }
  RobotModel robot_model() const noexcept { return model_; }

  /// Monte-Carlo estimate of the blocked volume fraction (point samples).
  double blocked_fraction(std::size_t samples = 20000,
                          std::uint64_t seed = 12345) const;

  /// Monte-Carlo estimate of the free-space fraction of `box`.
  double free_fraction_in(const geo::Aabb& box, std::size_t samples = 256,
                          std::uint64_t seed = 12345) const;

 private:
  std::string name_;
  cspace::CSpace space_;
  collision::CollisionChecker checker_;
  collision::RigidBody robot_;
  RobotModel model_;
  std::unique_ptr<cspace::ValidityChecker> validity_;
};

}  // namespace pmpl::env
