#include "geometry/intersect.hpp"

#include <algorithm>
#include <cmath>

namespace pmpl::geo {

namespace {

/// Slab test in a frame where the box is axis-aligned at the origin.
/// Returns [tmin, tmax] clipped to [0, tcap], or nullopt if disjoint.
std::optional<std::pair<double, double>> slab_interval(Vec3 origin, Vec3 dir,
                                                       Vec3 half,
                                                       double tcap) noexcept {
  double tmin = 0.0;
  double tmax = tcap;
  for (std::size_t i = 0; i < 3; ++i) {
    const double o = origin[i];
    const double d = dir[i];
    const double h = half[i];
    if (std::fabs(d) < 1e-300) {
      if (o < -h || o > h) return std::nullopt;
      continue;
    }
    double t1 = (-h - o) / d;
    double t2 = (h - o) / d;
    if (t1 > t2) std::swap(t1, t2);
    tmin = std::max(tmin, t1);
    tmax = std::min(tmax, t2);
    if (tmin > tmax) return std::nullopt;
  }
  return std::make_pair(tmin, tmax);
}

}  // namespace

bool intersects(const Sphere& a, const Sphere& b) noexcept {
  const double r = a.radius + b.radius;
  return (a.center - b.center).norm2() <= r * r;
}

bool intersects(const Sphere& s, const Aabb& b) noexcept {
  return distance2(s.center, b) <= s.radius * s.radius;
}

bool intersects(const Aabb& a, const Aabb& b) noexcept {
  return a.overlaps(b);
}

bool intersects(const Sphere& s, const Obb& b) noexcept {
  const Vec3 local = b.to_local(s.center);
  const Vec3 clamped{std::clamp(local.x, -b.half.x, b.half.x),
                     std::clamp(local.y, -b.half.y, b.half.y),
                     std::clamp(local.z, -b.half.z, b.half.z)};
  return (local - clamped).norm2() <= s.radius * s.radius;
}

bool intersects(const Obb& a, const Obb& b) noexcept {
  // SAT following Gottschalk's OBBTree formulation. Work in a's frame.
  const Mat3 a_rot_t = a.rot.transposed();
  const Mat3 r = a_rot_t * b.rot;          // b axes in a's frame
  const Vec3 t = a_rot_t * (b.center - a.center);

  // |r| + epsilon guards near-parallel edge axes.
  Mat3 absr;
  constexpr double kEps = 1e-12;
  absr.r0 = {std::fabs(r.r0.x) + kEps, std::fabs(r.r0.y) + kEps,
             std::fabs(r.r0.z) + kEps};
  absr.r1 = {std::fabs(r.r1.x) + kEps, std::fabs(r.r1.y) + kEps,
             std::fabs(r.r1.z) + kEps};
  absr.r2 = {std::fabs(r.r2.x) + kEps, std::fabs(r.r2.y) + kEps,
             std::fabs(r.r2.z) + kEps};

  const Vec3& ea = a.half;
  const Vec3& eb = b.half;
  const Vec3 absr_rows[3] = {absr.r0, absr.r1, absr.r2};
  const Vec3 r_rows[3] = {r.r0, r.r1, r.r2};

  // Axes A0, A1, A2.
  for (std::size_t i = 0; i < 3; ++i) {
    const double ra = ea[i];
    const double rb = eb.dot(absr_rows[i]);
    if (std::fabs(t[i]) > ra + rb) return false;
  }

  // Axes B0, B1, B2.
  for (std::size_t j = 0; j < 3; ++j) {
    const double ra = ea.x * absr_rows[0][j] + ea.y * absr_rows[1][j] +
                      ea.z * absr_rows[2][j];
    const double rb = eb[j];
    const double tproj = t.x * r_rows[0][j] + t.y * r_rows[1][j] +
                         t.z * r_rows[2][j];
    if (std::fabs(tproj) > ra + rb) return false;
  }

  // Cross-product axes A_i x B_j.
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t i1 = (i + 1) % 3;
    const std::size_t i2 = (i + 2) % 3;
    for (std::size_t j = 0; j < 3; ++j) {
      const std::size_t j1 = (j + 1) % 3;
      const std::size_t j2 = (j + 2) % 3;
      const double ra = ea[i1] * absr_rows[i2][j] + ea[i2] * absr_rows[i1][j];
      const double rb = eb[j1] * absr_rows[i][j2] + eb[j2] * absr_rows[i][j1];
      const double tproj = t[i2] * r_rows[i1][j] - t[i1] * r_rows[i2][j];
      if (std::fabs(tproj) > ra + rb) return false;
    }
  }
  return true;
}

bool intersects(const Obb& a, const Aabb& b) noexcept {
  return intersects(a, Obb::from_aabb(b));
}

bool intersects(const Segment& seg, const Aabb& b) noexcept {
  const Vec3 d = seg.dir();
  const double len = d.norm();
  if (len <= 0.0) return b.contains(seg.a);
  return slab_interval(seg.a - b.center(), d / len, b.extents(), len)
      .has_value();
}

bool intersects(const Segment& seg, const Obb& b) noexcept {
  const Mat3 rt = b.rot.transposed();
  const Vec3 la = rt * (seg.a - b.center);
  const Vec3 lb = rt * (seg.b - b.center);
  const Vec3 d = lb - la;
  const double len = d.norm();
  if (len <= 0.0)
    return std::fabs(la.x) <= b.half.x && std::fabs(la.y) <= b.half.y &&
           std::fabs(la.z) <= b.half.z;
  return slab_interval(la, d / len, b.half, len).has_value();
}

bool intersects(const Segment& seg, const Sphere& s) noexcept {
  const Vec3 cp = closest_point(seg, s.center);
  return (cp - s.center).norm2() <= s.radius * s.radius;
}

std::optional<double> ray_hit(const Ray& r, const Aabb& b) noexcept {
  constexpr double kFar = 1e300;
  const auto iv = slab_interval(r.origin - b.center(), r.dir, b.extents(),
                                kFar);
  if (!iv) return std::nullopt;
  return iv->first;
}

std::optional<double> ray_hit(const Ray& r, const Obb& b) noexcept {
  const Mat3 rt = b.rot.transposed();
  const Vec3 lo = rt * (r.origin - b.center);
  const Vec3 ld = rt * r.dir;
  constexpr double kFar = 1e300;
  const auto iv = slab_interval(lo, ld, b.half, kFar);
  if (!iv) return std::nullopt;
  return iv->first;
}

std::optional<double> ray_hit(const Ray& r, const Sphere& s) noexcept {
  const Vec3 oc = r.origin - s.center;
  const double a = r.dir.norm2();
  const double half_b = oc.dot(r.dir);
  const double c = oc.norm2() - s.radius * s.radius;
  const double disc = half_b * half_b - a * c;
  if (disc < 0.0 || a <= 0.0) return std::nullopt;
  const double sq = std::sqrt(disc);
  double t = (-half_b - sq) / a;
  if (t < 0.0) t = (-half_b + sq) / a;
  if (t < 0.0) return std::nullopt;
  return t;
}

std::optional<double> ray_hit(const Ray& r, const Triangle& tri) noexcept {
  constexpr double kEps = 1e-12;
  const Vec3 e1 = tri.v[1] - tri.v[0];
  const Vec3 e2 = tri.v[2] - tri.v[0];
  const Vec3 p = r.dir.cross(e2);
  const double det = e1.dot(p);
  if (std::fabs(det) < kEps) return std::nullopt;  // parallel
  const double inv = 1.0 / det;
  const Vec3 s = r.origin - tri.v[0];
  const double u = s.dot(p) * inv;
  if (u < 0.0 || u > 1.0) return std::nullopt;
  const Vec3 q = s.cross(e1);
  const double v = r.dir.dot(q) * inv;
  if (v < 0.0 || u + v > 1.0) return std::nullopt;
  const double t = e2.dot(q) * inv;
  if (t < 0.0) return std::nullopt;
  return t;
}

double distance2(Vec3 p, const Aabb& b) noexcept {
  double d2 = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (p[i] < b.lo[i]) {
      const double d = b.lo[i] - p[i];
      d2 += d * d;
    } else if (p[i] > b.hi[i]) {
      const double d = p[i] - b.hi[i];
      d2 += d * d;
    }
  }
  return d2;
}

Vec3 closest_point(const Segment& seg, Vec3 p) noexcept {
  const Vec3 d = seg.dir();
  const double len2 = d.norm2();
  if (len2 <= 0.0) return seg.a;
  const double t = std::clamp((p - seg.a).dot(d) / len2, 0.0, 1.0);
  return seg.at(t);
}

}  // namespace pmpl::geo
