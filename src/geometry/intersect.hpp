#pragma once
/// \file intersect.hpp
/// Primitive intersection / distance queries.
///
/// Boolean overlap tests are exact up to floating point; ray queries return
/// the entry parameter t >= 0 (or a miss). These are the leaves of every
/// collision check the planners perform, so they are kept branch-lean.

#include <optional>

#include "geometry/shapes.hpp"

namespace pmpl::geo {

// --- boolean overlap tests ------------------------------------------------

bool intersects(const Sphere& a, const Sphere& b) noexcept;
bool intersects(const Sphere& s, const Aabb& b) noexcept;
bool intersects(const Aabb& a, const Aabb& b) noexcept;

/// Sphere vs oriented box (exact: closest point in the box's local frame).
bool intersects(const Sphere& s, const Obb& b) noexcept;

/// OBB vs OBB via the separating axis theorem (15 candidate axes).
bool intersects(const Obb& a, const Obb& b) noexcept;

/// OBB vs AABB (specialized SAT treating the AABB as identity-oriented).
bool intersects(const Obb& a, const Aabb& b) noexcept;

// --- segment (swept point) queries -----------------------------------------

/// Does the segment pass through the box? (slab test)
bool intersects(const Segment& seg, const Aabb& b) noexcept;

/// Segment vs oriented box: transform to local frame, then slab test.
bool intersects(const Segment& seg, const Obb& b) noexcept;

bool intersects(const Segment& seg, const Sphere& s) noexcept;

// --- ray queries ------------------------------------------------------------

/// Entry parameter of ray into AABB, or nullopt on miss. t may be 0 when the
/// origin is inside.
std::optional<double> ray_hit(const Ray& r, const Aabb& b) noexcept;
std::optional<double> ray_hit(const Ray& r, const Obb& b) noexcept;
std::optional<double> ray_hit(const Ray& r, const Sphere& s) noexcept;

/// Möller–Trumbore ray/triangle intersection.
std::optional<double> ray_hit(const Ray& r, const Triangle& t) noexcept;

// --- point / distance utilities ---------------------------------------------

/// Squared distance from point to AABB surface or 0 when inside.
double distance2(Vec3 p, const Aabb& b) noexcept;

/// Closest point on segment to `p`.
Vec3 closest_point(const Segment& seg, Vec3 p) noexcept;

}  // namespace pmpl::geo
