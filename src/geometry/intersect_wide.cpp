#include "geometry/intersect_wide.hpp"

#include "geometry/intersect.hpp"
#include "geometry/transform.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define PMPL_WIDE_HAVE_SSE2 1
#include <emmintrin.h>
#endif

#include "geometry/intersect_wide_impl.hpp"

namespace pmpl::geo {

// --- SSE2 pack: four lanes as two __m128d --------------------------------

#if PMPL_WIDE_HAVE_SSE2
namespace {

struct PackSse2 {
  __m128d a, b;

  static PackSse2 load(const double* p) noexcept {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  void store(double* p) const noexcept {
    _mm_storeu_pd(p, a);
    _mm_storeu_pd(p + 2, b);
  }
  static PackSse2 set1(double v) noexcept {
    const __m128d s = _mm_set1_pd(v);
    return {s, s};
  }
  static PackSse2 zero() noexcept {
    const __m128d z = _mm_setzero_pd();
    return {z, z};
  }
  static PackSse2 zero_mask() noexcept { return zero(); }

  friend PackSse2 operator+(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_add_pd(x.a, y.a), _mm_add_pd(x.b, y.b)};
  }
  friend PackSse2 operator-(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_sub_pd(x.a, y.a), _mm_sub_pd(x.b, y.b)};
  }
  friend PackSse2 operator*(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_mul_pd(x.a, y.a), _mm_mul_pd(x.b, y.b)};
  }
  static PackSse2 abs(PackSse2 x) noexcept {
    const __m128d sign = _mm_set1_pd(-0.0);
    return {_mm_andnot_pd(sign, x.a), _mm_andnot_pd(sign, x.b)};
  }
  static PackSse2 lt(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_cmplt_pd(x.a, y.a), _mm_cmplt_pd(x.b, y.b)};
  }
  static PackSse2 gt(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_cmpgt_pd(x.a, y.a), _mm_cmpgt_pd(x.b, y.b)};
  }
  static PackSse2 le(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_cmple_pd(x.a, y.a), _mm_cmple_pd(x.b, y.b)};
  }
  static PackSse2 or_(PackSse2 x, PackSse2 y) noexcept {
    return {_mm_or_pd(x.a, y.a), _mm_or_pd(x.b, y.b)};
  }
  /// mask ? x : y (SSE2 has no blendv; and/andnot is exact on full masks).
  static PackSse2 blend(PackSse2 mask, PackSse2 x, PackSse2 y) noexcept {
    return {_mm_or_pd(_mm_and_pd(mask.a, x.a), _mm_andnot_pd(mask.a, y.a)),
            _mm_or_pd(_mm_and_pd(mask.b, x.b), _mm_andnot_pd(mask.b, y.b))};
  }
  static unsigned movemask(PackSse2 m) noexcept {
    return static_cast<unsigned>(_mm_movemask_pd(m.a)) |
           (static_cast<unsigned>(_mm_movemask_pd(m.b)) << 2);
  }
};

}  // namespace

namespace wide_sse2 {

void place_box(const double* tx, const double* ty, const double* tz,
               const double* qw, const double* qx, const double* qy,
               const double* qz, const Obb& body, ObbLanes4& out) noexcept {
  wide_detail::place_box_t<PackSse2>(tx, ty, tz, qw, qx, qy, qz, body, out);
}
void place_sphere(const double* tx, const double* ty, const double* tz,
                  const double* qw, const double* qx, const double* qy,
                  const double* qz, const Sphere& body,
                  SphereLanes4& out) noexcept {
  wide_detail::place_sphere_t<PackSse2>(tx, ty, tz, qw, qx, qy, qz, body, out);
}
void place_box_bounded(const double* tx, const double* ty, const double* tz,
                       const double* qw, const double* qx, const double* qy,
                       const double* qz, const Obb& body, ObbLanes4& out,
                       double (&lo)[3][kWideLanes],
                       double (&hi)[3][kWideLanes]) noexcept {
  wide_detail::place_box_bounded_t<PackSse2>(tx, ty, tz, qw, qx, qy, qz, body,
                                             out, lo, hi);
}
void obb_bounds(const ObbLanes4& lanes, double (&lo)[3][kWideLanes],
                double (&hi)[3][kWideLanes]) noexcept {
  wide_detail::obb_bounds_t<PackSse2>(lanes, lo, hi);
}
std::uint32_t obb_hit_obb(const ObbLanes4& a, const Obb& b) noexcept {
  return wide_detail::obb_hit_obb_t<PackSse2>(a, b);
}
std::uint32_t obb_hit_sphere(const ObbLanes4& a, const Sphere& s) noexcept {
  return wide_detail::obb_hit_sphere_t<PackSse2>(a, s);
}
std::uint32_t sphere_hit_aabb(const SphereLanes4& s, const Aabb& b) noexcept {
  return wide_detail::sphere_hit_aabb_t<PackSse2>(s, b);
}
std::uint32_t sphere_hit_obb(const SphereLanes4& s, const Obb& b) noexcept {
  return wide_detail::sphere_hit_obb_t<PackSse2>(s, b);
}
std::uint32_t sphere_hit_sphere(const SphereLanes4& s,
                                const Sphere& b) noexcept {
  return wide_detail::sphere_hit_sphere_t<PackSse2>(s, b);
}

}  // namespace wide_sse2
#endif  // PMPL_WIDE_HAVE_SSE2

// --- scalar ground truth --------------------------------------------------
// Per-lane calls into the shipping Transform / intersect routines. This is
// the semantic reference the wide paths are tested against, and the
// fallback on targets without SSE2.

Obb lane_obb(const ObbLanes4& lanes, std::size_t i) noexcept {
  Obb o;
  o.center = {lanes.cx[i], lanes.cy[i], lanes.cz[i]};
  o.half = lanes.half;
  o.rot = {{lanes.m[0][i], lanes.m[1][i], lanes.m[2][i]},
           {lanes.m[3][i], lanes.m[4][i], lanes.m[5][i]},
           {lanes.m[6][i], lanes.m[7][i], lanes.m[8][i]}};
  return o;
}

Sphere lane_sphere(const SphereLanes4& lanes, std::size_t i) noexcept {
  return {{lanes.cx[i], lanes.cy[i], lanes.cz[i]}, lanes.radius};
}

namespace {

Transform lane_pose(const double* tx, const double* ty, const double* tz,
                    const double* qw, const double* qx, const double* qy,
                    const double* qz, std::size_t i) noexcept {
  return {{qw[i], qx[i], qy[i], qz[i]}, {tx[i], ty[i], tz[i]}};
}

void place_box_scalar(const double* tx, const double* ty, const double* tz,
                      const double* qw, const double* qx, const double* qy,
                      const double* qz, std::size_t n, const Obb& body,
                      ObbLanes4& out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const Obb w = lane_pose(tx, ty, tz, qw, qx, qy, qz, i).apply(body);
    out.cx[i] = w.center.x;
    out.cy[i] = w.center.y;
    out.cz[i] = w.center.z;
    const Vec3 rows[3] = {w.rot.r0, w.rot.r1, w.rot.r2};
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) out.m[3 * r + c][i] = rows[r][c];
  }
  // Stale tail lanes are fine: callers mask them, and the union bounds
  // reduction only reads the first n lanes.
  out.half = body.half;
}

void place_sphere_scalar(const double* tx, const double* ty, const double* tz,
                         const double* qw, const double* qx, const double* qy,
                         const double* qz, std::size_t n, const Sphere& body,
                         SphereLanes4& out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const Sphere w = lane_pose(tx, ty, tz, qw, qx, qy, qz, i).apply(body);
    out.cx[i] = w.center.x;
    out.cy[i] = w.center.y;
    out.cz[i] = w.center.z;
  }
  out.radius = body.radius;
}

Aabb obb_bounds_scalar(const ObbLanes4& lanes, std::size_t n) noexcept {
  Aabb box = lane_obb(lanes, 0).bounds();
  for (std::size_t i = 1; i < n; ++i)
    box = box.merged(lane_obb(lanes, i).bounds());
  return box;
}

// Argument-order shims matching shape.cpp's narrow-phase dispatch.
bool intersects_lane(const Obb& body, const Aabb& obstacle) noexcept {
  return intersects(body, obstacle);
}
bool intersects_lane(const Obb& body, const Obb& obstacle) noexcept {
  return intersects(body, obstacle);
}
bool intersects_lane(const Obb& body, const Sphere& obstacle) noexcept {
  return intersects(obstacle, body);
}
bool intersects_lane(const Sphere& body, const Aabb& obstacle) noexcept {
  return intersects(body, obstacle);
}
bool intersects_lane(const Sphere& body, const Obb& obstacle) noexcept {
  return intersects(body, obstacle);
}
bool intersects_lane(const Sphere& body, const Sphere& obstacle) noexcept {
  return intersects(body, obstacle);
}

template <typename Obstacle>
std::uint32_t obb_mask_scalar(const ObbLanes4& lanes, std::size_t n,
                              const Obstacle& obstacle) noexcept {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (intersects_lane(lane_obb(lanes, i), obstacle))
      mask |= 1u << i;
  return mask;
}

template <typename Obstacle>
std::uint32_t sphere_mask_scalar(const SphereLanes4& lanes, std::size_t n,
                                 const Obstacle& obstacle) noexcept {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (intersects_lane(lane_sphere(lanes, i), obstacle))
      mask |= 1u << i;
  return mask;
}

inline std::uint32_t lane_bits(std::size_t n) noexcept {
  return (1u << n) - 1u;
}

/// Reduce per-lane lo/hi components (from the wide bounds kernels) to the
/// union box over the first n lanes.
Aabb reduce_bounds(const double (&lo)[3][kWideLanes],
                   const double (&hi)[3][kWideLanes], std::size_t n) noexcept {
  Aabb box{{lo[0][0], lo[1][0], lo[2][0]}, {hi[0][0], hi[1][0], hi[2][0]}};
  for (std::size_t i = 1; i < n; ++i) {
    box.lo = geo::min(box.lo, Vec3{lo[0][i], lo[1][i], lo[2][i]});
    box.hi = geo::max(box.hi, Vec3{hi[0][i], hi[1][i], hi[2][i]});
  }
  return box;
}

}  // namespace

// --- dispatch -------------------------------------------------------------

void place_box_lanes(const double* tx, const double* ty, const double* tz,
                     const double* qw, const double* qx, const double* qy,
                     const double* qz, std::size_t n, const Obb& body,
                     ObbLanes4& out) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      wide_avx2::place_box(tx, ty, tz, qw, qx, qy, qz, body, out);
      return;
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      wide_sse2::place_box(tx, ty, tz, qw, qx, qy, qz, body, out);
      return;
#endif
    default:
      place_box_scalar(tx, ty, tz, qw, qx, qy, qz, n, body, out);
      return;
  }
}

void place_sphere_lanes(const double* tx, const double* ty, const double* tz,
                        const double* qw, const double* qx, const double* qy,
                        const double* qz, std::size_t n, const Sphere& body,
                        SphereLanes4& out) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      wide_avx2::place_sphere(tx, ty, tz, qw, qx, qy, qz, body, out);
      return;
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      wide_sse2::place_sphere(tx, ty, tz, qw, qx, qy, qz, body, out);
      return;
#endif
    default:
      place_sphere_scalar(tx, ty, tz, qw, qx, qy, qz, n, body, out);
      return;
  }
}

Aabb place_box_lanes_bounded(const double* tx, const double* ty,
                             const double* tz, const double* qw,
                             const double* qx, const double* qy,
                             const double* qz, std::size_t n, const Obb& body,
                             ObbLanes4& out) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2: {
      double lo[3][kWideLanes], hi[3][kWideLanes];
      wide_avx2::place_box_bounded(tx, ty, tz, qw, qx, qy, qz, body, out, lo,
                                   hi);
      return reduce_bounds(lo, hi, n);
    }
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2: {
      double lo[3][kWideLanes], hi[3][kWideLanes];
      wide_sse2::place_box_bounded(tx, ty, tz, qw, qx, qy, qz, body, out, lo,
                                   hi);
      return reduce_bounds(lo, hi, n);
    }
#endif
    default:
      place_box_scalar(tx, ty, tz, qw, qx, qy, qz, n, body, out);
      return obb_bounds_scalar(out, n);
  }
}

Aabb place_sphere_lanes_bounded(const double* tx, const double* ty,
                                const double* tz, const double* qw,
                                const double* qx, const double* qy,
                                const double* qz, std::size_t n,
                                const Sphere& body,
                                SphereLanes4& out) noexcept {
  // Sphere bounds are center -+ r; placing and merging in one pass is
  // already one dispatch, so this just composes the existing paths.
  place_sphere_lanes(tx, ty, tz, qw, qx, qy, qz, n, body, out);
  return lanes_bounds(out, n);
}

Aabb lanes_bounds(const ObbLanes4& lanes, std::size_t n) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2: {
      double lo[3][kWideLanes], hi[3][kWideLanes];
      wide_avx2::obb_bounds(lanes, lo, hi);
      return reduce_bounds(lo, hi, n);
    }
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2: {
      double lo[3][kWideLanes], hi[3][kWideLanes];
      wide_sse2::obb_bounds(lanes, lo, hi);
      return reduce_bounds(lo, hi, n);
    }
#endif
    default:
      return obb_bounds_scalar(lanes, n);
  }
}

Aabb lanes_bounds(const SphereLanes4& lanes, std::size_t n) noexcept {
  // Sphere bounds are center +- r; the per-lane merge is already cheap, so
  // every level shares this one path.
  Aabb box = lane_sphere(lanes, 0).bounds();
  for (std::size_t i = 1; i < n; ++i)
    box = box.merged(lane_sphere(lanes, i).bounds());
  return box;
}

std::uint32_t hit_mask(const ObbLanes4& lanes, std::size_t n,
                       const Aabb& obstacle) noexcept {
  // Matches intersects(Obb, Aabb): SAT against the axis-aligned box lifted
  // to an OBB. from_aabb's center/extent arithmetic is done scalar here,
  // exactly as the scalar path does it.
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      return wide_avx2::obb_hit_obb(lanes, Obb::from_aabb(obstacle)) &
             lane_bits(n);
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      return wide_sse2::obb_hit_obb(lanes, Obb::from_aabb(obstacle)) &
             lane_bits(n);
#endif
    default:
      return obb_mask_scalar(lanes, n, obstacle);
  }
}

std::uint32_t hit_mask(const ObbLanes4& lanes, std::size_t n,
                       const Obb& obstacle) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      return wide_avx2::obb_hit_obb(lanes, obstacle) & lane_bits(n);
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      return wide_sse2::obb_hit_obb(lanes, obstacle) & lane_bits(n);
#endif
    default:
      return obb_mask_scalar(lanes, n, obstacle);
  }
}

std::uint32_t hit_mask(const ObbLanes4& lanes, std::size_t n,
                       const Sphere& obstacle) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      return wide_avx2::obb_hit_sphere(lanes, obstacle) & lane_bits(n);
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      return wide_sse2::obb_hit_sphere(lanes, obstacle) & lane_bits(n);
#endif
    default:
      return obb_mask_scalar(lanes, n, obstacle);
  }
}

std::uint32_t hit_mask(const SphereLanes4& lanes, std::size_t n,
                       const Aabb& obstacle) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      return wide_avx2::sphere_hit_aabb(lanes, obstacle) & lane_bits(n);
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      return wide_sse2::sphere_hit_aabb(lanes, obstacle) & lane_bits(n);
#endif
    default:
      return sphere_mask_scalar(lanes, n, obstacle);
  }
}

std::uint32_t hit_mask(const SphereLanes4& lanes, std::size_t n,
                       const Obb& obstacle) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      return wide_avx2::sphere_hit_obb(lanes, obstacle) & lane_bits(n);
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      return wide_sse2::sphere_hit_obb(lanes, obstacle) & lane_bits(n);
#endif
    default:
      return sphere_mask_scalar(lanes, n, obstacle);
  }
}

std::uint32_t hit_mask(const SphereLanes4& lanes, std::size_t n,
                       const Sphere& obstacle) noexcept {
  switch (simd_level()) {
#if defined(PMPL_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      return wide_avx2::sphere_hit_sphere(lanes, obstacle) & lane_bits(n);
#endif
#if PMPL_WIDE_HAVE_SSE2
    case SimdLevel::kSse2:
      return wide_sse2::sphere_hit_sphere(lanes, obstacle) & lane_bits(n);
#endif
    default:
      return sphere_mask_scalar(lanes, n, obstacle);
  }
}

}  // namespace pmpl::geo
