#pragma once
/// \file intersect_wide.hpp
/// Wide (multi-pose) primitive tests over SoA lane groups.
///
/// A *lane group* is up to 4 world placements of one robot body primitive,
/// stored component-wise. The kernels here answer "which of these 4
/// placements hit obstacle X?" as a bitmask in one pass. Three
/// implementations sit behind `simd_level()` dispatch:
///
///  - scalar: reconstructs each lane and calls the shipping
///    `geo::intersects` / `Transform::apply` routines — the semantic
///    ground truth;
///  - sse2 / avx2: evaluate the *same expression tree* 2/4 lanes at a time
///    with explicit intrinsics, mirroring the scalar operation order
///    exactly (and avoiding FMA contraction), so every lane's verdict is
///    bit-identical to the scalar path.
///
/// Early-exit differences are verdict-neutral: the scalar SAT returns at
/// the first separating axis while the wide SAT accumulates a per-lane
/// "separated" mask over all 15 axes — the final boolean per lane is the
/// same either way.

#include <cstddef>
#include <cstdint>

#include "geometry/shapes.hpp"
#include "geometry/simd.hpp"

namespace pmpl::geo {

/// Lanes per wide group. All dispatch levels process groups of 4 (SSE2
/// uses two 2-lane registers) so grouping, stats accounting, and masks are
/// identical at every level.
inline constexpr std::size_t kWideLanes = 4;

/// Four world-placed OBBs sharing half-extents (one robot box body at four
/// poses). Rotation entries are row-major: `m[3*r + c][lane]`.
struct ObbLanes4 {
  alignas(32) double cx[kWideLanes];
  alignas(32) double cy[kWideLanes];
  alignas(32) double cz[kWideLanes];
  alignas(32) double m[9][kWideLanes];
  Vec3 half;
};

/// Four world-placed spheres sharing a radius.
struct SphereLanes4 {
  alignas(32) double cx[kWideLanes];
  alignas(32) double cy[kWideLanes];
  alignas(32) double cz[kWideLanes];
  double radius;
};

/// Reconstruct one lane as the scalar primitive (tests, scalar fallback).
Obb lane_obb(const ObbLanes4& lanes, std::size_t i) noexcept;
Sphere lane_sphere(const SphereLanes4& lanes, std::size_t i) noexcept;

/// Place the body-frame box/sphere at `n <= 4` poses read from SoA lane
/// arrays (PoseBlock columns at some offset). Every level writes the same
/// bits as `Transform::apply` per lane. Lanes in [n, 4) are computed from
/// whatever the arrays hold and must be ignored by the caller.
void place_box_lanes(const double* tx, const double* ty, const double* tz,
                     const double* qw, const double* qx, const double* qy,
                     const double* qz, std::size_t n, const Obb& body,
                     ObbLanes4& out) noexcept;
void place_sphere_lanes(const double* tx, const double* ty, const double* tz,
                        const double* qw, const double* qx, const double* qy,
                        const double* qz, std::size_t n, const Sphere& body,
                        SphereLanes4& out) noexcept;

/// Fused place + union bounds: identical bits to `place_*_lanes` followed
/// by `lanes_bounds`, but one dispatch and no lane reload — the world
/// rotation stays in registers between placement and the extent
/// reduction. This is what the checker's block path calls per group.
Aabb place_box_lanes_bounded(const double* tx, const double* ty,
                             const double* tz, const double* qw,
                             const double* qx, const double* qy,
                             const double* qz, std::size_t n, const Obb& body,
                             ObbLanes4& out) noexcept;
Aabb place_sphere_lanes_bounded(const double* tx, const double* ty,
                                const double* tz, const double* qw,
                                const double* qx, const double* qy,
                                const double* qz, std::size_t n,
                                const Sphere& body,
                                SphereLanes4& out) noexcept;

/// Union world AABB of the first `n` lanes; merges the same per-lane
/// `Obb::bounds()` / `Sphere::bounds()` values the sequential path uses,
/// so the broad-phase candidate set is a conservative superset of every
/// lane's own candidates.
Aabb lanes_bounds(const ObbLanes4& lanes, std::size_t n) noexcept;
Aabb lanes_bounds(const SphereLanes4& lanes, std::size_t n) noexcept;

/// Per-lane hit masks (bit i set = lane i intersects the obstacle).
/// Verdicts are bit-identical to `geo::intersects` on the reconstructed
/// lane primitive at every dispatch level.
std::uint32_t hit_mask(const ObbLanes4& lanes, std::size_t n,
                       const Aabb& obstacle) noexcept;
std::uint32_t hit_mask(const ObbLanes4& lanes, std::size_t n,
                       const Obb& obstacle) noexcept;
std::uint32_t hit_mask(const ObbLanes4& lanes, std::size_t n,
                       const Sphere& obstacle) noexcept;
std::uint32_t hit_mask(const SphereLanes4& lanes, std::size_t n,
                       const Aabb& obstacle) noexcept;
std::uint32_t hit_mask(const SphereLanes4& lanes, std::size_t n,
                       const Obb& obstacle) noexcept;
std::uint32_t hit_mask(const SphereLanes4& lanes, std::size_t n,
                       const Sphere& obstacle) noexcept;

}  // namespace pmpl::geo
