/// \file intersect_wide_avx2.cpp
/// AVX2 instantiations of the wide primitive kernels.
///
/// The only translation unit compiled with -mavx2 (and *only* -mavx2: FMA
/// stays off so a*b+c never contracts and results match the scalar and
/// SSE2 paths bit for bit). Compiled to an empty TU when the build
/// disables AVX2 kernels (PMPL_ENABLE_AVX2=OFF); runtime dispatch then
/// caps at SSE2.

#if defined(PMPL_HAVE_AVX2_KERNELS) && defined(__AVX2__)

#include <immintrin.h>

#include "geometry/intersect_wide.hpp"
#include "geometry/intersect_wide_impl.hpp"

namespace pmpl::geo {

namespace {

struct PackAvx2 {
  __m256d v;

  static PackAvx2 load(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  static PackAvx2 set1(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static PackAvx2 zero() noexcept { return {_mm256_setzero_pd()}; }
  static PackAvx2 zero_mask() noexcept { return zero(); }

  friend PackAvx2 operator+(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_add_pd(x.v, y.v)};
  }
  friend PackAvx2 operator-(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_sub_pd(x.v, y.v)};
  }
  friend PackAvx2 operator*(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_mul_pd(x.v, y.v)};
  }
  static PackAvx2 abs(PackAvx2 x) noexcept {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), x.v)};
  }
  // Ordered (quiet) comparisons: false on NaN, matching scalar <, >, <=.
  static PackAvx2 lt(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_cmp_pd(x.v, y.v, _CMP_LT_OQ)};
  }
  static PackAvx2 gt(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_cmp_pd(x.v, y.v, _CMP_GT_OQ)};
  }
  static PackAvx2 le(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_cmp_pd(x.v, y.v, _CMP_LE_OQ)};
  }
  static PackAvx2 or_(PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_or_pd(x.v, y.v)};
  }
  static PackAvx2 blend(PackAvx2 mask, PackAvx2 x, PackAvx2 y) noexcept {
    return {_mm256_blendv_pd(y.v, x.v, mask.v)};
  }
  static unsigned movemask(PackAvx2 m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_pd(m.v));
  }
};

}  // namespace

namespace wide_avx2 {

void place_box(const double* tx, const double* ty, const double* tz,
               const double* qw, const double* qx, const double* qy,
               const double* qz, const Obb& body, ObbLanes4& out) noexcept {
  wide_detail::place_box_t<PackAvx2>(tx, ty, tz, qw, qx, qy, qz, body, out);
}
void place_sphere(const double* tx, const double* ty, const double* tz,
                  const double* qw, const double* qx, const double* qy,
                  const double* qz, const Sphere& body,
                  SphereLanes4& out) noexcept {
  wide_detail::place_sphere_t<PackAvx2>(tx, ty, tz, qw, qx, qy, qz, body, out);
}
void place_box_bounded(const double* tx, const double* ty, const double* tz,
                       const double* qw, const double* qx, const double* qy,
                       const double* qz, const Obb& body, ObbLanes4& out,
                       double (&lo)[3][kWideLanes],
                       double (&hi)[3][kWideLanes]) noexcept {
  wide_detail::place_box_bounded_t<PackAvx2>(tx, ty, tz, qw, qx, qy, qz, body,
                                             out, lo, hi);
}
void obb_bounds(const ObbLanes4& lanes, double (&lo)[3][kWideLanes],
                double (&hi)[3][kWideLanes]) noexcept {
  wide_detail::obb_bounds_t<PackAvx2>(lanes, lo, hi);
}
std::uint32_t obb_hit_obb(const ObbLanes4& a, const Obb& b) noexcept {
  return wide_detail::obb_hit_obb_t<PackAvx2>(a, b);
}
std::uint32_t obb_hit_sphere(const ObbLanes4& a, const Sphere& s) noexcept {
  return wide_detail::obb_hit_sphere_t<PackAvx2>(a, s);
}
std::uint32_t sphere_hit_aabb(const SphereLanes4& s, const Aabb& b) noexcept {
  return wide_detail::sphere_hit_aabb_t<PackAvx2>(s, b);
}
std::uint32_t sphere_hit_obb(const SphereLanes4& s, const Obb& b) noexcept {
  return wide_detail::sphere_hit_obb_t<PackAvx2>(s, b);
}
std::uint32_t sphere_hit_sphere(const SphereLanes4& s,
                                const Sphere& b) noexcept {
  return wide_detail::sphere_hit_sphere_t<PackAvx2>(s, b);
}

}  // namespace wide_avx2

}  // namespace pmpl::geo

#endif  // PMPL_HAVE_AVX2_KERNELS && __AVX2__
