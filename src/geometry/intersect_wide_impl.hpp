#pragma once
/// \file intersect_wide_impl.hpp
/// Internal: lane-pack templates behind the wide primitive tests.
///
/// Each kernel is written once as a template over a 4-lane "pack" type and
/// instantiated with an SSE2 pack (two __m128d) and an AVX2 pack (one
/// __m256d). The expression trees mirror the scalar routines in
/// intersect.cpp / transform.hpp / quat.hpp *operation for operation* —
/// same association, same comparison direction, no FMA — which is what
/// makes every lane's result bit-identical to the scalar ground truth.
/// Do not "simplify" the arithmetic here without updating the scalar side
/// to match; the golden roadmap hashes pin this equivalence.
///
/// This header is included by intersect_wide.cpp (SSE2 instantiations) and
/// intersect_wide_avx2.cpp (AVX2 instantiations, compiled with -mavx2).
/// It must not be included anywhere else.

#include <cstdint>

#include "geometry/intersect_wide.hpp"
#include "geometry/shapes.hpp"

namespace pmpl::geo::wide_detail {

// Row-major accessors into the 3x3 lane matrices.
inline constexpr std::size_t idx(std::size_t r, std::size_t c) noexcept {
  return 3 * r + c;
}

/// Quaternion rotation of a constant body-frame point, lanes-wide.
/// Mirrors Quat::rotate: t = qv x v * 2;  v' = v + t*w + qv x t.
template <class P>
struct RotLanes {
  P qw, qx, qy, qz;

  void rotate(double vx, double vy, double vz, P& rx, P& ry, P& rz) const {
    const P cvx = P::set1(vx), cvy = P::set1(vy), cvz = P::set1(vz);
    // t = qv.cross(v) * 2.0
    const P two = P::set1(2.0);
    const P t0 = (qy * cvz - qz * cvy) * two;
    const P t1 = (qz * cvx - qx * cvz) * two;
    const P t2 = (qx * cvy - qy * cvx) * two;
    // v + t*w, then + qv.cross(t)
    const P sx = cvx + t0 * qw;
    const P sy = cvy + t1 * qw;
    const P sz = cvz + t2 * qw;
    rx = sx + (qy * t2 - qz * t1);
    ry = sy + (qz * t0 - qx * t2);
    rz = sz + (qx * t1 - qy * t0);
  }
};

/// Mirrors Transform::apply(const Obb&): world center = R(c) + t, world
/// rotation = to_matrix(q) * body.rot.
template <class P>
void place_box_t(const double* tx, const double* ty, const double* tz,
                 const double* qw, const double* qx, const double* qy,
                 const double* qz, const Obb& body, ObbLanes4& out) noexcept {
  const RotLanes<P> q{P::load(qw), P::load(qx), P::load(qy), P::load(qz)};

  P cx, cy, cz;
  q.rotate(body.center.x, body.center.y, body.center.z, cx, cy, cz);
  (cx + P::load(tx)).store(out.cx);
  (cy + P::load(ty)).store(out.cy);
  (cz + P::load(tz)).store(out.cz);

  // Quat::to_matrix, lanes-wide.
  const P xx = q.qx * q.qx, yy = q.qy * q.qy, zz = q.qz * q.qz;
  const P xy = q.qx * q.qy, xz = q.qx * q.qz, yz = q.qy * q.qz;
  const P wx = q.qw * q.qx, wy = q.qw * q.qy, wz = q.qw * q.qz;
  const P one = P::set1(1.0), two = P::set1(2.0);
  P rot[9];
  rot[idx(0, 0)] = one - two * (yy + zz);
  rot[idx(0, 1)] = two * (xy - wz);
  rot[idx(0, 2)] = two * (xz + wy);
  rot[idx(1, 0)] = two * (xy + wz);
  rot[idx(1, 1)] = one - two * (xx + zz);
  rot[idx(1, 2)] = two * (yz - wx);
  rot[idx(2, 0)] = two * (xz - wy);
  rot[idx(2, 1)] = two * (yz + wx);
  rot[idx(2, 2)] = one - two * (xx + yy);

  // Mat3 product to_matrix(q) * body.rot: out[i][j] = row_i . col_j, with
  // the dot's left-to-right association (x*x + y*y) + z*z.
  const Mat3& b = body.rot;
  const Vec3 brow[3] = {b.r0, b.r1, b.r2};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const P v = (rot[idx(i, 0)] * P::set1(brow[0][j]) +
                   rot[idx(i, 1)] * P::set1(brow[1][j])) +
                  rot[idx(i, 2)] * P::set1(brow[2][j]);
      v.store(out.m[idx(i, j)]);
    }
  }
  out.half = body.half;
}

/// Fused place_box_t + obb_bounds_t: the same two expression trees, but
/// the world rotation stays in registers between placement and bounds, so
/// a group costs one dispatch and no lane reload. Hot path of
/// CollisionChecker::group_collision_mask.
template <class P>
void place_box_bounded_t(const double* tx, const double* ty, const double* tz,
                         const double* qw, const double* qx, const double* qy,
                         const double* qz, const Obb& body, ObbLanes4& out,
                         double (&lo)[3][kWideLanes],
                         double (&hi)[3][kWideLanes]) noexcept {
  const RotLanes<P> q{P::load(qw), P::load(qx), P::load(qy), P::load(qz)};

  P c[3];
  q.rotate(body.center.x, body.center.y, body.center.z, c[0], c[1], c[2]);
  c[0] = c[0] + P::load(tx);
  c[1] = c[1] + P::load(ty);
  c[2] = c[2] + P::load(tz);
  c[0].store(out.cx);
  c[1].store(out.cy);
  c[2].store(out.cz);

  const P xx = q.qx * q.qx, yy = q.qy * q.qy, zz = q.qz * q.qz;
  const P xy = q.qx * q.qy, xz = q.qx * q.qz, yz = q.qy * q.qz;
  const P wx = q.qw * q.qx, wy = q.qw * q.qy, wz = q.qw * q.qz;
  const P one = P::set1(1.0), two = P::set1(2.0);
  P rot[9];
  rot[idx(0, 0)] = one - two * (yy + zz);
  rot[idx(0, 1)] = two * (xy - wz);
  rot[idx(0, 2)] = two * (xz + wy);
  rot[idx(1, 0)] = two * (xy + wz);
  rot[idx(1, 1)] = one - two * (xx + zz);
  rot[idx(1, 2)] = two * (yz - wx);
  rot[idx(2, 0)] = two * (xz - wy);
  rot[idx(2, 1)] = two * (yz + wx);
  rot[idx(2, 2)] = one - two * (xx + yy);

  const Mat3& b = body.rot;
  const Vec3 brow[3] = {b.r0, b.r1, b.r2};
  const P half[3] = {P::set1(body.half.x), P::set1(body.half.y),
                     P::set1(body.half.z)};
  for (std::size_t i = 0; i < 3; ++i) {
    P w[3];
    for (std::size_t j = 0; j < 3; ++j) {
      w[j] = (rot[idx(i, 0)] * P::set1(brow[0][j]) +
              rot[idx(i, 1)] * P::set1(brow[1][j])) +
             rot[idx(i, 2)] * P::set1(brow[2][j]);
      w[j].store(out.m[idx(i, j)]);
    }
    // Row extent in column order, exactly as obb_bounds_t reads it back.
    P e = P::abs(w[0]) * half[0];
    e = e + P::abs(w[1]) * half[1];
    e = e + P::abs(w[2]) * half[2];
    (c[i] - e).store(lo[i]);
    (c[i] + e).store(hi[i]);
  }
  out.half = body.half;
}

/// Mirrors Transform::apply(const Sphere&).
template <class P>
void place_sphere_t(const double* tx, const double* ty, const double* tz,
                    const double* qw, const double* qx, const double* qy,
                    const double* qz, const Sphere& body,
                    SphereLanes4& out) noexcept {
  const RotLanes<P> q{P::load(qw), P::load(qx), P::load(qy), P::load(qz)};
  P cx, cy, cz;
  q.rotate(body.center.x, body.center.y, body.center.z, cx, cy, cz);
  (cx + P::load(tx)).store(out.cx);
  (cy + P::load(ty)).store(out.cy);
  (cz + P::load(tz)).store(out.cz);
  out.radius = body.radius;
}

/// Mirrors Obb::bounds(): e = sum_i |col_i| * half_i, box = center -+ e.
/// Writes per-lane lo/hi components (reduced to the union by the caller).
template <class P>
void obb_bounds_t(const ObbLanes4& lanes, double (&lo)[3][kWideLanes],
                  double (&hi)[3][kWideLanes]) noexcept {
  const P c[3] = {P::load(lanes.cx), P::load(lanes.cy), P::load(lanes.cz)};
  for (std::size_t r = 0; r < 3; ++r) {
    // e_r accumulates |m[r][i]| * half[i] in column order, as the scalar
    // loop over columns does.
    P e = P::abs(P::load(lanes.m[idx(r, 0)])) * P::set1(lanes.half.x);
    e = e + P::abs(P::load(lanes.m[idx(r, 1)])) * P::set1(lanes.half.y);
    e = e + P::abs(P::load(lanes.m[idx(r, 2)])) * P::set1(lanes.half.z);
    (c[r] - e).store(lo[r]);
    (c[r] + e).store(hi[r]);
  }
}

/// Mirrors intersects(const Obb& a, const Obb& b) — Gottschalk SAT with
/// `a` as the lane body and `b` a fixed obstacle. The scalar routine
/// returns at the first separating axis; here a per-lane "separated" mask
/// accumulates over all 15 axes with a group early-exit when every lane is
/// separated — the final verdict per lane is identical either way.
template <class P>
std::uint32_t obb_hit_obb_t(const ObbLanes4& a, const Obb& b) noexcept {
  constexpr double kEps = 1e-12;
  const P eps = P::set1(kEps);

  // r = a_rot_t * b.rot; a_rot_t(i,k) = a.m[k][i].
  P r[9], absr[9];
  for (std::size_t i = 0; i < 3; ++i) {
    const P at0 = P::load(a.m[idx(0, i)]);
    const P at1 = P::load(a.m[idx(1, i)]);
    const P at2 = P::load(a.m[idx(2, i)]);
    for (std::size_t j = 0; j < 3; ++j) {
      const P v = (at0 * P::set1(b.rot.r0[j]) + at1 * P::set1(b.rot.r1[j])) +
                  at2 * P::set1(b.rot.r2[j]);
      r[idx(i, j)] = v;
      absr[idx(i, j)] = P::abs(v) + eps;
    }
  }

  // t = a_rot_t * (b.center - a.center).
  const P dx = P::set1(b.center.x) - P::load(a.cx);
  const P dy = P::set1(b.center.y) - P::load(a.cy);
  const P dz = P::set1(b.center.z) - P::load(a.cz);
  P t[3];
  for (std::size_t i = 0; i < 3; ++i) {
    t[i] = (P::load(a.m[idx(0, i)]) * dx + P::load(a.m[idx(1, i)]) * dy) +
           P::load(a.m[idx(2, i)]) * dz;
  }

  const Vec3& ea = a.half;
  const Vec3& eb = b.half;
  P sep = P::zero_mask();

  // Axes A0, A1, A2.
  for (std::size_t i = 0; i < 3; ++i) {
    const P rb = (P::set1(eb.x) * absr[idx(i, 0)] +
                  P::set1(eb.y) * absr[idx(i, 1)]) +
                 P::set1(eb.z) * absr[idx(i, 2)];
    sep = P::or_(sep, P::gt(P::abs(t[i]), P::set1(ea[i]) + rb));
  }
  if (P::movemask(sep) == 0xF) return 0;

  // Axes B0, B1, B2.
  for (std::size_t j = 0; j < 3; ++j) {
    const P ra = (P::set1(ea.x) * absr[idx(0, j)] +
                  P::set1(ea.y) * absr[idx(1, j)]) +
                 P::set1(ea.z) * absr[idx(2, j)];
    const P tproj =
        (t[0] * r[idx(0, j)] + t[1] * r[idx(1, j)]) + t[2] * r[idx(2, j)];
    sep = P::or_(sep, P::gt(P::abs(tproj), ra + P::set1(eb[j])));
  }
  if (P::movemask(sep) == 0xF) return 0;

  // Cross-product axes A_i x B_j.
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t i1 = (i + 1) % 3;
    const std::size_t i2 = (i + 2) % 3;
    for (std::size_t j = 0; j < 3; ++j) {
      const std::size_t j1 = (j + 1) % 3;
      const std::size_t j2 = (j + 2) % 3;
      const P ra = P::set1(ea[i1]) * absr[idx(i2, j)] +
                   P::set1(ea[i2]) * absr[idx(i1, j)];
      const P rb = P::set1(eb[j1]) * absr[idx(i, j2)] +
                   P::set1(eb[j2]) * absr[idx(i, j1)];
      const P tproj = t[i2] * r[idx(i1, j)] - t[i1] * r[idx(i2, j)];
      sep = P::or_(sep, P::gt(P::abs(tproj), ra + rb));
    }
    if (P::movemask(sep) == 0xF) return 0;
  }
  return (~P::movemask(sep)) & 0xFu;
}

/// Mirrors intersects(const Sphere& s, const Obb& b) with `b` as the lane
/// body and `s` a fixed sphere obstacle: closest point in the box's local
/// frame, then squared distance against r^2.
template <class P>
std::uint32_t obb_hit_sphere_t(const ObbLanes4& a, const Sphere& s) noexcept {
  const P dx = P::set1(s.center.x) - P::load(a.cx);
  const P dy = P::set1(s.center.y) - P::load(a.cy);
  const P dz = P::set1(s.center.z) - P::load(a.cz);

  P d2 = P::zero();
  P local[3];
  for (std::size_t i = 0; i < 3; ++i) {
    // to_local: rot^T row i = column i of rot.
    local[i] = (P::load(a.m[idx(0, i)]) * dx + P::load(a.m[idx(1, i)]) * dy) +
               P::load(a.m[idx(2, i)]) * dz;
  }
  // std::clamp(v, -h, h): v < -h ? -h : (h < v ? h : v).
  for (std::size_t i = 0; i < 3; ++i) {
    const double h = a.half[i];
    const P lo = P::set1(-h), hi = P::set1(h);
    const P v = local[i];
    const P clamped = P::blend(P::lt(v, lo), lo, P::blend(P::lt(hi, v), hi, v));
    const P d = v - clamped;
    d2 = d2 + d * d;
  }
  // (local - clamped).norm2() <= s.radius * s.radius — but norm2's dot
  // associates (x*x + y*y) + z*z; the loop above accumulates
  // ((0 + x*x) + y*y) + z*z, identical bits since 0 + a == a for the
  // non-negative squares involved.
  return P::movemask(P::le(d2, P::set1(s.radius * s.radius)));
}

/// Mirrors intersects(const Sphere& s, const Aabb& b) with the sphere as
/// the lane body: distance2(p, b) <= r^2.
template <class P>
std::uint32_t sphere_hit_aabb_t(const SphereLanes4& s, const Aabb& b) noexcept {
  const P p[3] = {P::load(s.cx), P::load(s.cy), P::load(s.cz)};
  P d2 = P::zero();
  for (std::size_t i = 0; i < 3; ++i) {
    const P lo = P::set1(b.lo[i]), hi = P::set1(b.hi[i]);
    const P dlo = lo - p[i];
    const P dhi = p[i] - hi;
    const P d =
        P::blend(P::lt(p[i], lo), dlo, P::blend(P::gt(p[i], hi), dhi, P::zero()));
    d2 = d2 + d * d;
  }
  return P::movemask(P::le(d2, P::set1(s.radius * s.radius)));
}

/// Mirrors intersects(const Sphere& s, const Obb& b) with the sphere as
/// the lane body and a fixed box obstacle.
template <class P>
std::uint32_t sphere_hit_obb_t(const SphereLanes4& s, const Obb& b) noexcept {
  const P dx = P::load(s.cx) - P::set1(b.center.x);
  const P dy = P::load(s.cy) - P::set1(b.center.y);
  const P dz = P::load(s.cz) - P::set1(b.center.z);
  const Mat3 rt = b.rot.transposed();
  const Vec3 rows[3] = {rt.r0, rt.r1, rt.r2};
  P d2 = P::zero();
  for (std::size_t i = 0; i < 3; ++i) {
    const P v = (P::set1(rows[i].x) * dx + P::set1(rows[i].y) * dy) +
                P::set1(rows[i].z) * dz;
    const double h = b.half[i];
    const P lo = P::set1(-h), hi = P::set1(h);
    const P clamped = P::blend(P::lt(v, lo), lo, P::blend(P::lt(hi, v), hi, v));
    const P d = v - clamped;
    d2 = d2 + d * d;
  }
  return P::movemask(P::le(d2, P::set1(s.radius * s.radius)));
}

/// Mirrors intersects(const Sphere& a, const Sphere& b).
template <class P>
std::uint32_t sphere_hit_sphere_t(const SphereLanes4& s,
                                  const Sphere& b) noexcept {
  const double r = s.radius + b.radius;
  const P dx = P::load(s.cx) - P::set1(b.center.x);
  const P dy = P::load(s.cy) - P::set1(b.center.y);
  const P dz = P::load(s.cz) - P::set1(b.center.z);
  const P n2 = (dx * dx + dy * dy) + dz * dz;
  return P::movemask(P::le(n2, P::set1(r * r)));
}

}  // namespace pmpl::geo::wide_detail

// Entry points of the per-ISA translation units. The AVX2 set exists only
// when the build compiles intersect_wide_avx2.cpp with kernels enabled
// (PMPL_HAVE_AVX2_KERNELS); dispatch never reaches it otherwise because
// detected_simd_level() caps at SSE2.
namespace pmpl::geo::wide_sse2 {
void place_box(const double*, const double*, const double*, const double*,
               const double*, const double*, const double*, const Obb&,
               ObbLanes4&) noexcept;
void place_sphere(const double*, const double*, const double*, const double*,
                  const double*, const double*, const double*, const Sphere&,
                  SphereLanes4&) noexcept;
void place_box_bounded(const double*, const double*, const double*,
                       const double*, const double*, const double*,
                       const double*, const Obb&, ObbLanes4&,
                       double (&)[3][kWideLanes],
                       double (&)[3][kWideLanes]) noexcept;
void obb_bounds(const ObbLanes4&, double (&)[3][kWideLanes],
                double (&)[3][kWideLanes]) noexcept;
std::uint32_t obb_hit_obb(const ObbLanes4&, const Obb&) noexcept;
std::uint32_t obb_hit_sphere(const ObbLanes4&, const Sphere&) noexcept;
std::uint32_t sphere_hit_aabb(const SphereLanes4&, const Aabb&) noexcept;
std::uint32_t sphere_hit_obb(const SphereLanes4&, const Obb&) noexcept;
std::uint32_t sphere_hit_sphere(const SphereLanes4&, const Sphere&) noexcept;
}  // namespace pmpl::geo::wide_sse2

namespace pmpl::geo::wide_avx2 {
void place_box(const double*, const double*, const double*, const double*,
               const double*, const double*, const double*, const Obb&,
               ObbLanes4&) noexcept;
void place_sphere(const double*, const double*, const double*, const double*,
                  const double*, const double*, const double*, const Sphere&,
                  SphereLanes4&) noexcept;
void place_box_bounded(const double*, const double*, const double*,
                       const double*, const double*, const double*,
                       const double*, const Obb&, ObbLanes4&,
                       double (&)[3][kWideLanes],
                       double (&)[3][kWideLanes]) noexcept;
void obb_bounds(const ObbLanes4&, double (&)[3][kWideLanes],
                double (&)[3][kWideLanes]) noexcept;
std::uint32_t obb_hit_obb(const ObbLanes4&, const Obb&) noexcept;
std::uint32_t obb_hit_sphere(const ObbLanes4&, const Sphere&) noexcept;
std::uint32_t sphere_hit_aabb(const SphereLanes4&, const Aabb&) noexcept;
std::uint32_t sphere_hit_obb(const SphereLanes4&, const Obb&) noexcept;
std::uint32_t sphere_hit_sphere(const SphereLanes4&, const Sphere&) noexcept;
}  // namespace pmpl::geo::wide_avx2
