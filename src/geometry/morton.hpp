#pragma once
/// \file morton.hpp
/// Morton (Z-order) codes for the space-filling-curve partitioner.
///
/// Regions are mapped to 1D by interleaving quantized centroid coordinates;
/// a weighted 1D split of the curve then yields geometry-preserving parts.

#include <cstdint>

#include "geometry/shapes.hpp"
#include "geometry/vec.hpp"

namespace pmpl::geo {

/// Spread the low 21 bits of x so there are two zero bits between each.
constexpr std::uint64_t morton_spread3(std::uint64_t x) noexcept {
  x &= 0x1fffffULL;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

/// 63-bit 3D Morton code from 21-bit quantized coordinates.
constexpr std::uint64_t morton3(std::uint64_t x, std::uint64_t y,
                                std::uint64_t z) noexcept {
  return morton_spread3(x) | (morton_spread3(y) << 1) |
         (morton_spread3(z) << 2);
}

/// Quantize a point within `bounds` to a 3D Morton key.
inline std::uint64_t morton_key(Vec3 p, const Aabb& bounds) noexcept {
  constexpr double kScale = static_cast<double>(1u << 21) - 1.0;
  const Vec3 size = bounds.size();
  auto q = [&](double v, double lo, double s) -> std::uint64_t {
    if (s <= 0.0) return 0;
    double t = (v - lo) / s;
    t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
    return static_cast<std::uint64_t>(t * kScale);
  };
  return morton3(q(p.x, bounds.lo.x, size.x), q(p.y, bounds.lo.y, size.y),
                 q(p.z, bounds.lo.z, size.z));
}

}  // namespace pmpl::geo
