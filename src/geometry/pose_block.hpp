#pragma once
/// \file pose_block.hpp
/// SoA layout for a block of rigid-body poses (the wide-kernel input).
///
/// Mirrors the kd-tree's bucketed SoA design: each pose component lives in
/// its own contiguous lane array so the wide collision kernels can load
/// 2/4 poses with one instruction instead of gathering from an AoS
/// `Transform[]`. Filled by `CSpace::pose_into` (bit-identical to
/// `CSpace::pose`); consumed by `CollisionChecker::first_collision` /
/// `collision_mask`.

#include <cstddef>

#include "geometry/transform.hpp"

namespace pmpl::geo {

/// Up to 16 poses, stored component-wise. Lanes past `count` hold stale
/// (but initialized) values; kernels mask them out.
struct PoseBlock {
  static constexpr std::size_t kCapacity = 16;

  alignas(32) double tx[kCapacity] = {};
  alignas(32) double ty[kCapacity] = {};
  alignas(32) double tz[kCapacity] = {};
  alignas(32) double qw[kCapacity] = {};
  alignas(32) double qx[kCapacity] = {};
  alignas(32) double qy[kCapacity] = {};
  alignas(32) double qz[kCapacity] = {};
  std::size_t count = 0;

  void clear() noexcept { count = 0; }
  bool full() const noexcept { return count == kCapacity; }

  void push(const Transform& t) noexcept {
    tx[count] = t.translation.x;
    ty[count] = t.translation.y;
    tz[count] = t.translation.z;
    qw[count] = t.rotation.w;
    qx[count] = t.rotation.x;
    qy[count] = t.rotation.y;
    qz[count] = t.rotation.z;
    ++count;
  }

  /// Reconstruct lane `i` (bit-identical to the pushed Transform).
  Transform get(std::size_t i) const noexcept {
    return {{qw[i], qx[i], qy[i], qz[i]}, {tx[i], ty[i], tz[i]}};
  }
};

}  // namespace pmpl::geo
