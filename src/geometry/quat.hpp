#pragma once
/// \file quat.hpp
/// Unit quaternions for SE(3) configuration orientations.

#include <cmath>

#include "geometry/vec.hpp"

namespace pmpl::geo {

/// Quaternion (w, x, y, z). Functions that assume unit length say so.
struct Quat {
  double w = 1.0, x = 0.0, y = 0.0, z = 0.0;

  static constexpr Quat identity() noexcept { return {}; }

  static Quat from_axis_angle(Vec3 axis, double angle) noexcept {
    const Vec3 u = axis.normalized();
    const double h = 0.5 * angle;
    const double s = std::sin(h);
    return {std::cos(h), u.x * s, u.y * s, u.z * s};
  }

  /// Uniform random rotation from three independent U[0,1) variates
  /// (Shoemake's subgroup algorithm).
  static Quat uniform(double u1, double u2, double u3) noexcept {
    constexpr double kTau = 6.283185307179586476925286766559;
    const double a = std::sqrt(1.0 - u1), b = std::sqrt(u1);
    return {a * std::sin(kTau * u2), a * std::cos(kTau * u2),
            b * std::sin(kTau * u3), b * std::cos(kTau * u3)};
  }

  constexpr double dot(Quat o) const noexcept {
    return w * o.w + x * o.x + y * o.y + z * o.z;
  }

  double norm() const noexcept { return std::sqrt(dot(*this)); }

  Quat normalized() const noexcept {
    const double n = norm();
    if (n <= 0.0) return identity();
    return {w / n, x / n, y / n, z / n};
  }

  constexpr Quat conjugate() const noexcept { return {w, -x, -y, -z}; }

  constexpr Quat operator*(Quat o) const noexcept {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
  }

  /// Rotate a vector (assumes unit quaternion).
  constexpr Vec3 rotate(Vec3 v) const noexcept {
    // v' = v + 2*q_vec x (q_vec x v + w*v)
    const Vec3 qv{x, y, z};
    const Vec3 t = qv.cross(v) * 2.0;
    return v + t * w + qv.cross(t);
  }

  /// Rotation matrix equivalent (assumes unit quaternion).
  constexpr Mat3 to_matrix() const noexcept {
    const double xx = x * x, yy = y * y, zz = z * z;
    const double xy = x * y, xz = x * z, yz = y * z;
    const double wx = w * x, wy = w * y, wz = w * z;
    return {{1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy)},
            {2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx)},
            {2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy)}};
  }

  /// Geodesic angle between two unit quaternions, in [0, pi].
  double angle_to(Quat o) const noexcept {
    const double d = std::fabs(dot(o));
    const double c = d > 1.0 ? 1.0 : d;
    return 2.0 * std::acos(c);
  }

  /// Spherical linear interpolation between unit quaternions, shortest arc.
  Quat slerp(Quat o, double t) const noexcept {
    double d = dot(o);
    Quat target = o;
    if (d < 0.0) {  // take the short way around
      d = -d;
      target = {-o.w, -o.x, -o.y, -o.z};
    }
    if (d > 0.9995) {  // nearly parallel: nlerp to avoid division blowup
      Quat r{w + t * (target.w - w), x + t * (target.x - x),
             y + t * (target.y - y), z + t * (target.z - z)};
      return r.normalized();
    }
    const double theta = std::acos(d);
    const double s = std::sin(theta);
    const double a = std::sin((1.0 - t) * theta) / s;
    const double b = std::sin(t * theta) / s;
    return {a * w + b * target.w, a * x + b * target.x, a * y + b * target.y,
            a * z + b * target.z};
  }

  friend constexpr bool operator==(Quat, Quat) = default;
};

}  // namespace pmpl::geo
