#pragma once
/// \file shapes.hpp
/// Geometric primitives: AABB, OBB, sphere, triangle, segment, ray.
///
/// Obstacles in the environments are AABBs, OBBs and spheres; triangles are
/// supported as a mesh-obstacle primitive. `Aabb` doubles as the bounding
/// volume for the BVH and the spatial extent of subdivision regions.

#include <array>

#include "geometry/quat.hpp"
#include "geometry/vec.hpp"

namespace pmpl::geo {

/// Axis-aligned bounding box [lo, hi] (closed; degenerate boxes allowed).
struct Aabb {
  Vec3 lo{0, 0, 0};
  Vec3 hi{0, 0, 0};

  /// An "empty" box that any point/box extends past.
  static constexpr Aabb empty() noexcept {
    constexpr double kInf = 1e300;
    return {{kInf, kInf, kInf}, {-kInf, -kInf, -kInf}};
  }

  static constexpr Aabb from_center(Vec3 center, Vec3 half) noexcept {
    return {center - half, center + half};
  }

  constexpr Vec3 center() const noexcept { return (lo + hi) * 0.5; }
  constexpr Vec3 extents() const noexcept { return (hi - lo) * 0.5; }
  constexpr Vec3 size() const noexcept { return hi - lo; }

  constexpr double volume() const noexcept {
    const Vec3 s = size();
    return s.x * s.y * s.z;
  }

  /// Surface area (SAH-style BVH heuristics).
  constexpr double surface_area() const noexcept {
    const Vec3 s = size();
    return 2.0 * (s.x * s.y + s.y * s.z + s.z * s.x);
  }

  constexpr bool contains(Vec3 p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  constexpr bool overlaps(const Aabb& o) const noexcept {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  constexpr Aabb merged(const Aabb& o) const noexcept {
    return {min(lo, o.lo), max(hi, o.hi)};
  }

  constexpr Aabb expanded(double eps) const noexcept {
    return {lo - Vec3{eps, eps, eps}, hi + Vec3{eps, eps, eps}};
  }

  /// Intersection box (may be inverted if disjoint; check overlaps() first).
  constexpr Aabb intersection(const Aabb& o) const noexcept {
    return {max(lo, o.lo), min(hi, o.hi)};
  }

  /// Volume of overlap with `o` (0 when disjoint). Used by the analytic
  /// model-environment V_free computation.
  constexpr double overlap_volume(const Aabb& o) const noexcept {
    const double dx = (hi.x < o.hi.x ? hi.x : o.hi.x) -
                      (lo.x > o.lo.x ? lo.x : o.lo.x);
    const double dy = (hi.y < o.hi.y ? hi.y : o.hi.y) -
                      (lo.y > o.lo.y ? lo.y : o.lo.y);
    const double dz = (hi.z < o.hi.z ? hi.z : o.hi.z) -
                      (lo.z > o.lo.z ? lo.z : o.lo.z);
    if (dx <= 0.0 || dy <= 0.0 || dz <= 0.0) return 0.0;
    return dx * dy * dz;
  }

  /// Closest point inside the box to `p`.
  constexpr Vec3 clamp(Vec3 p) const noexcept {
    const Vec3 a = max(lo, p);
    return min(hi, a);
  }

  friend constexpr bool operator==(const Aabb&, const Aabb&) = default;
};

/// Oriented bounding box: center, half-extents, rotation (body -> world).
struct Obb {
  Vec3 center{0, 0, 0};
  Vec3 half{1, 1, 1};
  Mat3 rot = Mat3::identity();

  static Obb from_aabb(const Aabb& b) noexcept {
    return {b.center(), b.extents(), Mat3::identity()};
  }

  /// World-space AABB enclosing this OBB.
  Aabb bounds() const noexcept {
    // |R| * half gives the world-axis extents.
    Vec3 e{0, 0, 0};
    for (std::size_t i = 0; i < 3; ++i) {
      const Vec3 axis = rot.col(i);
      e += Vec3{std::fabs(axis.x), std::fabs(axis.y), std::fabs(axis.z)} *
           half[i];
    }
    return {center - e, center + e};
  }

  constexpr double volume() const noexcept {
    return 8.0 * half.x * half.y * half.z;
  }

  /// Map a world point into the box's local frame.
  constexpr Vec3 to_local(Vec3 p) const noexcept {
    return rot.transposed() * (p - center);
  }

  constexpr bool contains(Vec3 p) const noexcept {
    const Vec3 q = to_local(p);
    return q.x >= -half.x && q.x <= half.x && q.y >= -half.y &&
           q.y <= half.y && q.z >= -half.z && q.z <= half.z;
  }
};

/// Sphere obstacle / robot body.
struct Sphere {
  Vec3 center{0, 0, 0};
  double radius = 1.0;

  constexpr bool contains(Vec3 p) const noexcept {
    return (p - center).norm2() <= radius * radius;
  }

  constexpr Aabb bounds() const noexcept {
    const Vec3 r{radius, radius, radius};
    return {center - r, center + r};
  }
};

/// Triangle (mesh-obstacle primitive).
struct Triangle {
  std::array<Vec3, 3> v;

  Vec3 normal() const noexcept {
    return (v[1] - v[0]).cross(v[2] - v[0]).normalized();
  }

  Aabb bounds() const noexcept {
    return {min(min(v[0], v[1]), v[2]), max(max(v[0], v[1]), v[2])};
  }

  double area() const noexcept {
    return 0.5 * (v[1] - v[0]).cross(v[2] - v[0]).norm();
  }
};

/// Line segment between two points.
struct Segment {
  Vec3 a, b;
  Vec3 dir() const noexcept { return b - a; }
  double length() const noexcept { return dir().norm(); }
  Vec3 at(double t) const noexcept { return a + dir() * t; }
};

/// Half-infinite ray (origin + unit direction); used by the k-random-rays
/// RRT work estimator and BVH traversal.
struct Ray {
  Vec3 origin;
  Vec3 dir;  ///< should be unit length for distance queries
  Vec3 at(double t) const noexcept { return origin + dir * t; }
};

}  // namespace pmpl::geo
