#include "geometry/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pmpl::geo {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_avx2() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
#endif

SimdLevel detect() noexcept {
#if defined(__x86_64__) || defined(__i386__)
#if defined(PMPL_HAVE_AVX2_KERNELS)
  if (cpu_has_avx2()) return SimdLevel::kAvx2;
#endif
  // SSE2 is part of the x86-64 baseline.
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel parse_level(const char* s, SimdLevel fallback) noexcept {
  if (s == nullptr) return fallback;
  if (std::strcmp(s, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(s, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(s, "avx2") == 0) return SimdLevel::kAvx2;
  return fallback;
}

SimdLevel clamp_to_detected(SimdLevel level) noexcept {
  const SimdLevel cap = detected_simd_level();
  return static_cast<std::uint8_t>(level) <= static_cast<std::uint8_t>(cap)
             ? level
             : cap;
}

std::atomic<SimdLevel>& active_level() noexcept {
  static std::atomic<SimdLevel> level{
      clamp_to_detected(parse_level(std::getenv("PMPL_SIMD"),
                                    detected_simd_level()))};
  return level;
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = detect();
  return detected;
}

SimdLevel simd_level() noexcept {
  return active_level().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) noexcept {
  const SimdLevel effective = clamp_to_detected(level);
  active_level().store(effective, std::memory_order_relaxed);
  return effective;
}

}  // namespace pmpl::geo
