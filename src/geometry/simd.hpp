#pragma once
/// \file simd.hpp
/// Runtime CPU-feature dispatch for the wide (SoA) geometry kernels.
///
/// The wide kernels in intersect_wide.hpp come in three implementations:
/// a scalar fallback (per-lane calls into the shipping intersect.cpp
/// routines — the semantic ground truth), an SSE2 path, and an AVX2 path.
/// All three produce bit-identical verdicts; dispatch only changes speed.
/// The active level is selected once from CPUID at startup, can be capped
/// with the PMPL_SIMD environment variable (`scalar`, `sse2`, `avx2`), and
/// can be overridden programmatically for tests and benches.

#include <cstdint>

namespace pmpl::geo {

/// Available wide-kernel implementations, weakest first.
enum class SimdLevel : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable name ("scalar", "sse2", "avx2").
const char* to_string(SimdLevel level) noexcept;

/// Best level supported by this CPU *and* this build (AVX2 kernels may be
/// compiled out with PMPL_ENABLE_AVX2=OFF). Constant for the process.
SimdLevel detected_simd_level() noexcept;

/// Currently active level. Defaults to `detected_simd_level()` clamped by
/// the PMPL_SIMD environment variable when set.
SimdLevel simd_level() noexcept;

/// Override the active level (clamped to `detected_simd_level()`); returns
/// the level actually in effect. Intended for tests and benches that sweep
/// scalar-vs-wide bit equality.
SimdLevel set_simd_level(SimdLevel level) noexcept;

}  // namespace pmpl::geo
