#pragma once
/// \file transform.hpp
/// Rigid-body transform (rotation + translation) used to place robot bodies
/// at a configuration's pose.

#include "geometry/quat.hpp"
#include "geometry/shapes.hpp"
#include "geometry/vec.hpp"

namespace pmpl::geo {

/// SE(3) rigid transform: p -> R*p + t.
struct Transform {
  Quat rotation = Quat::identity();
  Vec3 translation{0, 0, 0};

  static constexpr Transform identity() noexcept { return {}; }

  constexpr Vec3 apply(Vec3 p) const noexcept {
    return rotation.rotate(p) + translation;
  }

  /// Compose: (this ∘ other)(p) == this(other(p)).
  constexpr Transform operator*(const Transform& o) const noexcept {
    return {rotation * o.rotation, rotation.rotate(o.translation) + translation};
  }

  Transform inverse() const noexcept {
    const Quat inv = rotation.conjugate();
    return {inv, inv.rotate(-translation)};
  }

  /// Place a body-frame OBB in the world.
  Obb apply(const Obb& box) const noexcept {
    return {apply(box.center), box.half,
            (rotation.to_matrix() * box.rot)};
  }

  Sphere apply(const Sphere& s) const noexcept {
    return {apply(s.center), s.radius};
  }
};

}  // namespace pmpl::geo
