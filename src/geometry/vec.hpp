#pragma once
/// \file vec.hpp
/// Small fixed-size vectors (2D/3D) and a 3x3 matrix.
///
/// These are plain value types with the handful of operations the collision
/// and planning code needs; no expression templates, no SIMD — the hot loops
/// are dominated by branchy intersection logic, not vector arithmetic.

#include <cmath>
#include <cstddef>

namespace pmpl::geo {

/// 2D double vector (model environment, processor meshes, planar robots).
struct Vec2 {
  double x = 0.0, y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  constexpr double norm2() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm2()); }
  friend constexpr bool operator==(Vec2, Vec2) = default;
};

/// 3D double vector. The workhorse of the geometry layer.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr Vec3 operator/(double s) const noexcept {
    return {x / s, y / s, z / s};
  }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }
  constexpr Vec3& operator+=(Vec3 o) noexcept { return *this = *this + o; }
  constexpr Vec3& operator-=(Vec3 o) noexcept { return *this = *this - o; }
  constexpr Vec3& operator*=(double s) noexcept { return *this = *this * s; }

  constexpr double dot(Vec3 o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(Vec3 o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm2()); }

  /// Unit vector in this direction; returns +x for the zero vector.
  Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{1.0, 0.0, 0.0};
  }

  constexpr double operator[](std::size_t i) const noexcept {
    return i == 0 ? x : (i == 1 ? y : z);
  }
  constexpr double& operator[](std::size_t i) noexcept {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  friend constexpr bool operator==(Vec3, Vec3) = default;
};

constexpr Vec3 operator*(double s, Vec3 v) noexcept { return v * s; }
constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

/// Componentwise min/max (AABB construction).
constexpr Vec3 min(Vec3 a, Vec3 b) noexcept {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
          a.z < b.z ? a.z : b.z};
}
constexpr Vec3 max(Vec3 a, Vec3 b) noexcept {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
          a.z > b.z ? a.z : b.z};
}

/// Row-major 3x3 matrix; used for OBB orientations where repeated
/// vector rotation makes a matrix cheaper than quaternion application.
struct Mat3 {
  // Rows.
  Vec3 r0{1, 0, 0}, r1{0, 1, 0}, r2{0, 0, 1};

  static constexpr Mat3 identity() noexcept { return {}; }

  constexpr Vec3 operator*(Vec3 v) const noexcept {
    return {r0.dot(v), r1.dot(v), r2.dot(v)};
  }

  constexpr Mat3 operator*(const Mat3& o) const noexcept {
    const Mat3 t = o.transposed();
    return {{r0.dot(t.r0), r0.dot(t.r1), r0.dot(t.r2)},
            {r1.dot(t.r0), r1.dot(t.r1), r1.dot(t.r2)},
            {r2.dot(t.r0), r2.dot(t.r1), r2.dot(t.r2)}};
  }

  constexpr Mat3 transposed() const noexcept {
    return {{r0.x, r1.x, r2.x}, {r0.y, r1.y, r2.y}, {r0.z, r1.z, r2.z}};
  }

  /// Column i (basis axis i for a rotation matrix).
  constexpr Vec3 col(std::size_t i) const noexcept {
    return {r0[i], r1[i], r2[i]};
  }

  /// Rotation about +z by `angle` radians (planar robots, walls-45 env).
  static Mat3 rot_z(double angle) noexcept {
    const double c = std::cos(angle), s = std::sin(angle);
    return {{c, -s, 0}, {s, c, 0}, {0, 0, 1}};
  }
};

}  // namespace pmpl::geo
