#pragma once
/// \file adjacency_graph.hpp
/// Undirected adjacency-list graph template.
///
/// Used for both graphs in the paper's algorithms: the *region graph*
/// (vertices = subdivision regions, edges = adjacency) and the *roadmap*
/// (vertices = configurations, edges = validated local plans). This is the
/// sequential core of our STAPL pGraph substitute; distribution is layered
/// on top by the runtime (region -> location maps), matching the paper's
/// ownership-transfer model.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace pmpl::graph {

using VertexId = std::uint32_t;
inline constexpr VertexId kInvalidVertex = 0xffffffffu;

/// Undirected graph with vertex and edge payloads.
/// Vertices are dense ids; edges are stored per-endpoint.
template <typename VertexProp, typename EdgeProp>
class AdjacencyGraph {
 public:
  struct HalfEdge {
    VertexId to;
    EdgeProp prop;
  };

  VertexId add_vertex(VertexProp p = {}) {
    vertices_.push_back(std::move(p));
    adjacency_.emplace_back();
    return static_cast<VertexId>(vertices_.size() - 1);
  }

  std::size_t num_vertices() const noexcept { return vertices_.size(); }
  std::size_t num_edges() const noexcept { return edge_count_; }

  VertexProp& vertex(VertexId v) {
    assert(v < vertices_.size());
    return vertices_[v];
  }
  const VertexProp& vertex(VertexId v) const {
    assert(v < vertices_.size());
    return vertices_[v];
  }

  std::span<const HalfEdge> edges_of(VertexId v) const {
    assert(v < adjacency_.size());
    return adjacency_[v];
  }

  bool has_edge(VertexId a, VertexId b) const {
    for (const auto& e : adjacency_[a])
      if (e.to == b) return true;
    return false;
  }

  /// Add an undirected edge; returns false (no-op) if it already exists
  /// or is a self-loop.
  bool add_edge(VertexId a, VertexId b, EdgeProp p = {}) {
    assert(a < vertices_.size() && b < vertices_.size());
    if (a == b || has_edge(a, b)) return false;
    adjacency_[a].push_back({b, p});
    adjacency_[b].push_back({a, std::move(p)});
    ++edge_count_;
    return true;
  }

  /// Remove an undirected edge; returns false if absent.
  bool remove_edge(VertexId a, VertexId b) {
    const bool removed = remove_half(a, b);
    if (removed) {
      remove_half(b, a);
      --edge_count_;
    }
    return removed;
  }

  std::size_t degree(VertexId v) const { return adjacency_[v].size(); }

  void reserve_vertices(std::size_t n) {
    vertices_.reserve(n);
    adjacency_.reserve(n);
  }

 private:
  bool remove_half(VertexId from, VertexId to) {
    auto& adj = adjacency_[from];
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i].to == to) {
        adj[i] = adj.back();
        adj.pop_back();
        return true;
      }
    }
    return false;
  }

  std::vector<VertexProp> vertices_;
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace pmpl::graph
