#include "graph/components.hpp"

#include <unordered_map>

#include "graph/union_find.hpp"

namespace pmpl::graph {

std::vector<std::uint32_t> component_labels(
    std::size_t num_vertices,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  UnionFind uf(num_vertices);
  for (const auto& [a, b] : edges) uf.unite(a, b);
  std::vector<std::uint32_t> labels(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v)
    labels[v] = uf.find(static_cast<std::uint32_t>(v));
  return labels;
}

ComponentSummary summarize_components(std::span<const std::uint32_t> labels) {
  ComponentSummary s;
  if (labels.empty()) return s;
  std::unordered_map<std::uint32_t, std::size_t> sizes;
  for (std::uint32_t l : labels) ++sizes[l];
  s.count = sizes.size();
  for (const auto& [label, size] : sizes)
    if (size > s.largest) s.largest = size;
  s.largest_fraction =
      static_cast<double>(s.largest) / static_cast<double>(labels.size());
  return s;
}

}  // namespace pmpl::graph
