#pragma once
/// \file components.hpp
/// Connected-component labeling over plain edge lists.
///
/// Non-template companion to AdjacencyGraph used for roadmap analyses
/// (component counts, largest-component fraction) and the Fig 3 node
/// distribution bench.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pmpl::graph {

/// Component label per vertex (labels are root ids, not densified).
std::vector<std::uint32_t> component_labels(
    std::size_t num_vertices,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

/// Summary of a labeling.
struct ComponentSummary {
  std::size_t count = 0;         ///< number of components
  std::size_t largest = 0;       ///< size of the largest component
  double largest_fraction = 0.0; ///< largest / num_vertices
};

ComponentSummary summarize_components(
    std::span<const std::uint32_t> labels);

}  // namespace pmpl::graph
