#pragma once
/// \file shortest_path.hpp
/// Dijkstra / A* over an AdjacencyGraph (roadmap query extraction).

#include <algorithm>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "graph/adjacency_graph.hpp"

namespace pmpl::graph {

/// A found path: vertex sequence (src..dst) and its total cost.
struct PathResult {
  std::vector<VertexId> vertices;
  double cost = 0.0;
};

/// A* from `src` to `dst`. `edge_cost(prop)` maps an edge payload to a
/// non-negative weight; `heuristic(v)` must be admissible (pass a constant
/// 0 for plain Dijkstra).
template <typename VP, typename EP>
std::optional<PathResult> astar(
    const AdjacencyGraph<VP, EP>& g, VertexId src, VertexId dst,
    const std::function<double(const EP&)>& edge_cost,
    const std::function<double(VertexId)>& heuristic) {
  constexpr double kInf = 1e300;
  const std::size_t n = g.num_vertices();
  if (src >= n || dst >= n) return std::nullopt;

  std::vector<double> dist(n, kInf);
  std::vector<VertexId> prev(n, kInvalidVertex);
  using Entry = std::pair<double, VertexId>;  // (f = g + h, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;

  dist[src] = 0.0;
  open.emplace(heuristic(src), src);
  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (u == dst) break;
    if (f - heuristic(u) > dist[u] + 1e-12) continue;  // stale entry
    for (const auto& e : g.edges_of(u)) {
      const double w = edge_cost(e.prop);
      const double nd = dist[u] + w;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        prev[e.to] = u;
        open.emplace(nd + heuristic(e.to), e.to);
      }
    }
  }

  if (dist[dst] >= kInf) return std::nullopt;
  PathResult r;
  r.cost = dist[dst];
  for (VertexId v = dst; v != kInvalidVertex; v = prev[v])
    r.vertices.push_back(v);
  std::reverse(r.vertices.begin(), r.vertices.end());
  return r;
}

/// Dijkstra convenience wrapper.
template <typename VP, typename EP>
std::optional<PathResult> dijkstra(
    const AdjacencyGraph<VP, EP>& g, VertexId src, VertexId dst,
    const std::function<double(const EP&)>& edge_cost) {
  return astar<VP, EP>(g, src, dst, edge_cost,
                       [](VertexId) { return 0.0; });
}

/// Breadth-first path existence test (unweighted reachability).
template <typename VP, typename EP>
bool reachable(const AdjacencyGraph<VP, EP>& g, VertexId src, VertexId dst) {
  if (src >= g.num_vertices() || dst >= g.num_vertices()) return false;
  if (src == dst) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> queue{src};
  seen[src] = true;
  while (!queue.empty()) {
    const VertexId u = queue.back();
    queue.pop_back();
    for (const auto& e : g.edges_of(u)) {
      if (e.to == dst) return true;
      if (!seen[e.to]) {
        seen[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return false;
}

}  // namespace pmpl::graph
