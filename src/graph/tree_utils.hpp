#pragma once
/// \file tree_utils.hpp
/// Cycle detection and pruning for tree-structured roadmaps.
///
/// Radial-subdivision RRT connects regional subtrees; if a connection edge
/// closes a cycle, the cycle is pruned by removing its longest edge
/// (Algorithm 2, lines 15–17 of the paper).

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "graph/adjacency_graph.hpp"

namespace pmpl::graph {

/// Find the unique path a..b in what is assumed to be a forest (used before
/// adding edge (a,b): if a path exists the new edge would close a cycle).
/// Returns the path as vertex ids, or nullopt if disconnected.
template <typename VP, typename EP>
std::optional<std::vector<VertexId>> forest_path(
    const AdjacencyGraph<VP, EP>& g, VertexId a, VertexId b) {
  if (a >= g.num_vertices() || b >= g.num_vertices()) return std::nullopt;
  std::vector<VertexId> prev(g.num_vertices(), kInvalidVertex);
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{a};
  seen[a] = true;
  bool found = (a == b);
  while (!stack.empty() && !found) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (const auto& e : g.edges_of(u)) {
      if (seen[e.to]) continue;
      seen[e.to] = true;
      prev[e.to] = u;
      if (e.to == b) {
        found = true;
        break;
      }
      stack.push_back(e.to);
    }
  }
  if (!found) return std::nullopt;
  std::vector<VertexId> path;
  for (VertexId v = b; v != kInvalidVertex; v = prev[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  if (path.front() != a) return std::nullopt;  // a==b degenerate case
  return path;
}

/// Add edge (a,b) to a forest, keeping it acyclic: if a and b are already
/// connected, the would-be cycle's longest edge (by `edge_cost`, including
/// the new edge) is removed instead. Returns true if the graph changed.
template <typename VP, typename EP>
bool add_edge_acyclic(AdjacencyGraph<VP, EP>& g, VertexId a, VertexId b,
                      EP prop,
                      const std::function<double(const EP&)>& edge_cost) {
  const auto path = forest_path(g, a, b);
  if (!path) return g.add_edge(a, b, std::move(prop));

  // Cycle = path a..b plus the new edge. Find the max-cost edge on it.
  const double new_cost = edge_cost(prop);
  double worst = new_cost;
  VertexId worst_u = kInvalidVertex, worst_v = kInvalidVertex;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const VertexId u = (*path)[i], v = (*path)[i + 1];
    for (const auto& e : g.edges_of(u)) {
      if (e.to == v) {
        const double c = edge_cost(e.prop);
        if (c > worst) {
          worst = c;
          worst_u = u;
          worst_v = v;
        }
        break;
      }
    }
  }
  if (worst_u == kInvalidVertex) return false;  // new edge is the worst: skip
  g.remove_edge(worst_u, worst_v);
  g.add_edge(a, b, std::move(prop));
  return true;
}

/// Is the graph a forest (no cycles)? Checked by union-find over edges.
template <typename VP, typename EP>
bool is_forest(const AdjacencyGraph<VP, EP>& g) {
  std::vector<VertexId> parent(g.num_vertices());
  for (std::size_t i = 0; i < parent.size(); ++i)
    parent[i] = static_cast<VertexId>(i);
  std::function<VertexId(VertexId)> find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const auto& e : g.edges_of(u)) {
      if (e.to < u) continue;  // each undirected edge once
      const VertexId ru = find(u), rv = find(e.to);
      if (ru == rv) return false;
      parent[ru] = rv;
    }
  }
  return true;
}

}  // namespace pmpl::graph
