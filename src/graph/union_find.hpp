#pragma once
/// \file union_find.hpp
/// Disjoint-set forest with path halving and union by size.
///
/// PRM uses it to track roadmap connected components (skip connection
/// attempts within a component, report component counts).

#include <cstdint>
#include <numeric>
#include <vector>

namespace pmpl::graph {

/// Standard union-find over dense ids [0, n).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    size_.assign(n, 1);
    std::iota(parent_.begin(), parent_.end(), 0u);
    components_ = n;
  }

  /// Add one element in its own set; returns its id.
  std::uint32_t add() {
    parent_.push_back(static_cast<std::uint32_t>(parent_.size()));
    size_.push_back(1);
    ++components_;
    return parent_.back();
  }

  std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Union the sets of a and b; returns true if they were separate.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) {
      const auto t = a;
      a = b;
      b = t;
    }
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool connected(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }

  std::size_t component_size(std::uint32_t x) noexcept {
    return size_[find(x)];
  }

  std::size_t size() const noexcept { return parent_.size(); }
  std::size_t num_components() const noexcept { return components_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_ = 0;
};

}  // namespace pmpl::graph
