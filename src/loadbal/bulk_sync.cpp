#include "loadbal/bulk_sync.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmpl::loadbal {

namespace {

/// log2-tree collective latency (barrier / broadcast / allgather startup).
double collective_latency(std::uint32_t p,
                          const runtime::ClusterSpec& cluster) {
  if (p <= 1) return 0.0;
  return cluster.remote_latency_s *
         std::ceil(std::log2(static_cast<double>(p)));
}

}  // namespace

PhaseSchedule static_phase(std::span<const double> service_s,
                           std::span<const std::uint32_t> assignment,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster) {
  assert(service_s.size() == assignment.size());
  PhaseSchedule out;
  out.busy_s.assign(p, 0.0);
  for (std::size_t i = 0; i < service_s.size(); ++i)
    out.busy_s[assignment[i]] += service_s[i];
  double max_busy = 0.0;
  for (double b : out.busy_s) max_busy = std::max(max_busy, b);
  out.time_s = max_busy + collective_latency(p, cluster);  // closing barrier
  return out;
}

PhaseSchedule static_phase(std::span<const double> service_s,
                           std::span<const std::uint32_t> assignment,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster,
                           const runtime::FaultInjector& inject,
                           double phase_start_s) {
  assert(service_s.size() == assignment.size());
  // Nominal per-location loads first: each location executes its items
  // back-to-back, so only the *total* per-location service matters and it
  // can be stretched as one block starting at phase_start_s.
  PhaseSchedule out;
  out.busy_s.assign(p, 0.0);
  for (std::size_t i = 0; i < service_s.size(); ++i)
    out.busy_s[assignment[i]] += service_s[i];
  double max_busy = 0.0;
  for (std::uint32_t loc = 0; loc < p; ++loc) {
    const double nominal = out.busy_s[loc];
    const double stretched =
        inject.stretched_service(loc, phase_start_s, nominal);
    out.straggler_delay_s += stretched - nominal;
    out.busy_s[loc] = stretched;
    max_busy = std::max(max_busy, stretched);
  }
  out.time_s = max_busy + collective_latency(p, cluster);  // closing barrier
  return out;
}

double redistribution_time(std::span<const std::uint64_t> bytes,
                           std::span<const std::uint32_t> before,
                           std::span<const std::uint32_t> after,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster) {
  const std::size_t n = bytes.size();
  assert(before.size() == n && after.size() == n);

  // 1. Allgather per-region weights, then every location computes the
  //    partition redundantly: ~c * n log n with a small per-item constant.
  constexpr double kNsPerItemLogItem = 40.0;
  const double logn =
      n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
  const double compute =
      kNsPerItemLogItem * 1e-9 * static_cast<double>(n) * logn;

  // 2. Migration: each location serializes its sends and receives.
  const auto mv = migration_volume(bytes, before, after, p);
  double worst = 0.0;
  for (std::uint32_t part = 0; part < p; ++part) {
    const double io = static_cast<double>(mv.sent[part] + mv.received[part]) /
                      cluster.bandwidth_bps;
    worst = std::max(worst, io);
  }
  // Message startup: one latency per moved item on the critical location,
  // approximated by the average moved-items-per-location.
  const double startups =
      p > 0 ? cluster.remote_latency_s *
                  (static_cast<double>(mv.items_moved) / p)
            : 0.0;

  return 2.0 * collective_latency(p, cluster) + compute + worst + startups;
}

}  // namespace pmpl::loadbal
