#pragma once
/// \file bulk_sync.hpp
/// Bulk-synchronous phase timing for the repartitioning strategy
/// (Algorithm 4): static phases complete at the max per-location load;
/// redistribution pays partition computation plus data migration.

#include <cstdint>
#include <span>
#include <vector>

#include "loadbal/metrics.hpp"
#include "runtime/fault.hpp"
#include "runtime/topology.hpp"

namespace pmpl::loadbal {

/// Outcome of one bulk-synchronous phase.
struct PhaseSchedule {
  double time_s = 0.0;            ///< phase completion (max location)
  std::vector<double> busy_s;     ///< per-location busy time
  /// Extra wall seconds attributable to straggler windows (faulty runs
  /// only): sum over locations of (stretched - nominal) busy time. The
  /// barrier amplifies whatever the slowest straggler adds.
  double straggler_delay_s = 0.0;
};

/// A static owner-computes phase: every location runs its items
/// back-to-back; the phase ends at the slowest location (plus a barrier).
PhaseSchedule static_phase(std::span<const double> service_s,
                           std::span<const std::uint32_t> assignment,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster);

/// Straggler-aware variant: each location's run starts at `phase_start_s`
/// and its service time is stretched through the injector's slowdown
/// windows (a bulk-synchronous phase has no stealing, so a straggler
/// stretches the barrier directly — the contrast the resilience benchmark
/// measures against work stealing). Identical to the plain overload when
/// `inject` has no straggler windows.
PhaseSchedule static_phase(std::span<const double> service_s,
                           std::span<const std::uint32_t> assignment,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster,
                           const runtime::FaultInjector& inject,
                           double phase_start_s);

/// Time to repartition and migrate: computing the new partition (modeled
/// as an O(n log n) scan on every location over the gathered weights, after
/// an allgather of per-region weights) plus the slowest location's
/// send+receive payload.
double redistribution_time(std::span<const std::uint64_t> bytes,
                           std::span<const std::uint32_t> before,
                           std::span<const std::uint32_t> after,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster);

}  // namespace pmpl::loadbal
