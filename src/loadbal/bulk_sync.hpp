#pragma once
/// \file bulk_sync.hpp
/// Bulk-synchronous phase timing for the repartitioning strategy
/// (Algorithm 4): static phases complete at the max per-location load;
/// redistribution pays partition computation plus data migration.

#include <cstdint>
#include <span>
#include <vector>

#include "loadbal/metrics.hpp"
#include "runtime/topology.hpp"

namespace pmpl::loadbal {

/// Outcome of one bulk-synchronous phase.
struct PhaseSchedule {
  double time_s = 0.0;            ///< phase completion (max location)
  std::vector<double> busy_s;     ///< per-location busy time
};

/// A static owner-computes phase: every location runs its items
/// back-to-back; the phase ends at the slowest location (plus a barrier).
PhaseSchedule static_phase(std::span<const double> service_s,
                           std::span<const std::uint32_t> assignment,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster);

/// Time to repartition and migrate: computing the new partition (modeled
/// as an O(n log n) scan on every location over the gathered weights, after
/// an allgather of per-region weights) plus the slowest location's
/// send+receive payload.
double redistribution_time(std::span<const std::uint64_t> bytes,
                           std::span<const std::uint32_t> before,
                           std::span<const std::uint32_t> after,
                           std::uint32_t p,
                           const runtime::ClusterSpec& cluster);

}  // namespace pmpl::loadbal
