#include "loadbal/chaos.hpp"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pmpl::loadbal {

namespace {

// Entries in /proc/self/fd (minus . and ..) — the parent's open-fd count.
// The readdir fd itself is open during the scan on both sides of a
// before/after comparison, so it cancels out.
std::size_t count_open_fds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (!d) return 0;
  std::size_t n = 0;
  while (dirent* e = ::readdir(d)) {
    if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0)
      continue;
    ++n;
  }
  ::closedir(d);
  return n;
}

// /tmp entries left behind by the cluster harness (pmpl_ws_* dirs).
std::size_t count_tmp_residue() {
  DIR* d = ::opendir("/tmp");
  if (!d) return 0;
  std::size_t n = 0;
  while (dirent* e = ::readdir(d)) {
    if (std::strncmp(e->d_name, "pmpl_ws_", 8) == 0) ++n;
  }
  ::closedir(d);
  return n;
}

void append_json_plan(std::string& out, const runtime::FaultPlan& plan) {
  char buf[128];
  out += "{\"crashes\":[";
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"rank\":%u,\"at_s\":%.6f}",
                  i ? "," : "", plan.crashes[i].rank, plan.crashes[i].at_s);
    out += buf;
  }
  out += "],\"pauses\":[";
  for (std::size_t i = 0; i < plan.pauses.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"rank\":%u,\"from_s\":%.6f,\"until_s\":%.6f}",
                  i ? "," : "", plan.pauses[i].rank, plan.pauses[i].from_s,
                  plan.pauses[i].until_s);
    out += buf;
  }
  out += "],\"links\":[";
  for (std::size_t i = 0; i < plan.links.size(); ++i) {
    std::snprintf(
        buf, sizeof buf,
        "%s{\"drop_prob\":%.3f,\"extra_delay_s\":%.6f,\"until_s\":%.6f}",
        i ? "," : "", plan.links[i].drop_prob, plan.links[i].extra_delay_s,
        plan.links[i].until_s);
    out += buf;
  }
  out += "],\"tokens\":[";
  for (std::size_t i = 0; i < plan.tokens.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"drop_prob\":%.3f,\"until_s\":%.6f}",
                  i ? "," : "", plan.tokens[i].drop_prob,
                  plan.tokens[i].until_s);
    out += buf;
  }
  out += "],\"partitions\":[";
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    out += i ? "," : "";
    out += "{\"ranks\":[";
    for (std::size_t j = 0; j < plan.partitions[i].ranks.size(); ++j) {
      std::snprintf(buf, sizeof buf, "%s%u", j ? "," : "",
                    plan.partitions[i].ranks[j]);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "],\"from_s\":%.6f,\"until_s\":%.6f}",
                  plan.partitions[i].from_s, plan.partitions[i].until_s);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "],\"seed\":%llu}",
                static_cast<unsigned long long>(plan.seed));
  out += buf;
}

}  // namespace

runtime::FaultPlan make_chaos_plan(const ChaosConfig& config,
                                   std::uint64_t schedule_seed) {
  runtime::FaultPlan plan;
  plan.seed = derive_seed(schedule_seed, 0xfa17u);
  Xoshiro256ss rng(derive_seed(schedule_seed, 0xc4a05u));

  // Kills. Each becomes a SIGKILL at a supervisor-restartable instant;
  // per-rank count stays below the restart budget so a schedule can never
  // legitimately exhaust it (an exhausted budget would leave a rank down,
  // which is a different scenario than resurrection).
  std::vector<std::uint32_t> kills_per_rank(config.ranks, 0);
  const std::uint32_t n_kills =
      config.max_kills == 0
          ? 0
          : 1 + static_cast<std::uint32_t>(rng.uniform_u64(config.max_kills));
  for (std::uint32_t k = 0; k < n_kills; ++k) {
    const auto r = static_cast<std::uint32_t>(rng.uniform_u64(config.ranks));
    if (kills_per_rank[r] >= config.max_kills_per_rank) continue;
    ++kills_per_rank[r];
    plan.crash(r, rng.uniform(0.05, 1.0) * config.horizon_s);
  }

  // Pause window (the zombie precursor): wall-sized so that death
  // detection has time to fire while the rank is frozen. Never pause a
  // rank we also kill — SIGKILL on a stopped process still reaps, but the
  // overlap makes the schedule's intent ambiguous.
  if (rng.uniform() < config.pause_prob) {
    std::uint32_t r = static_cast<std::uint32_t>(rng.uniform_u64(config.ranks));
    if (kills_per_rank[r] == 0) {
      const double from = rng.uniform(0.1, 0.9) * config.horizon_s;
      const double dur =
          rng.uniform(0.3, 0.8) / std::max(config.time_scale, 1e-9);
      plan.pause(r, from, from + dur);
    }
  }

  // Link-level noise: drops and delays over all links, bounded windows so
  // the run always gets a clean tail to finish in.
  if (rng.uniform() < config.loss_prob)
    plan.lossy_links(rng.uniform(0.05, 0.35), 0.0, 0.0,
                     rng.uniform(0.3, 1.0) * config.horizon_s);
  if (rng.uniform() < config.delay_prob)
    plan.lossy_links(0.0, rng.uniform(0.5e-3, 3e-3), 0.0,
                     rng.uniform(0.3, 1.0) * config.horizon_s);
  if (rng.uniform() < config.token_loss_prob)
    plan.lose_tokens(rng.uniform(0.2, 0.8), 0.0,
                     rng.uniform(0.3, 1.0) * config.horizon_s);

  // One partition window: a random nonempty strict subset on side A.
  if (config.ranks >= 2 && rng.uniform() < config.partition_prob) {
    std::vector<std::uint32_t> side;
    for (std::uint32_t r = 0; r < config.ranks; ++r)
      if (rng.uniform() < 0.5) side.push_back(r);
    if (!side.empty() && side.size() < config.ranks) {
      const double from = rng.uniform(0.0, 0.5) * config.horizon_s;
      plan.partition(std::move(side), from,
                     from + rng.uniform(0.2, 0.5) * config.horizon_s);
    }
  }
  return plan;
}

ChaosScheduleResult run_chaos_schedule(const ChaosConfig& config,
                                       std::uint32_t index) {
  ChaosScheduleResult out;
  out.index = index;
  out.schedule_seed = derive_seed(config.seed, index);
  out.plan = make_chaos_plan(config, out.schedule_seed);

  const std::uint32_t p = config.ranks;
  const auto work = make_cluster_items(out.schedule_seed, config.regions, p);

  // Expected completed set: the fault-free DES run of the same workload.
  // Under faults the protocol may migrate and recover differently, but the
  // *completed set* (and so the roadmap hash) is invariant.
  WsConfig wcfg;
  wcfg.seed = out.schedule_seed;
  wcfg.rand_k = 2;
  const auto des = simulate_work_stealing(work.items, work.initial, p, wcfg);
  out.expected_roadmap = roadmap_hash(out.schedule_seed, completed_set(des));

  ClusterConfig cc;
  cc.ranks = p;
  cc.rank.items = work.items;
  cc.rank.initial = work.initial;
  cc.rank.seed = out.schedule_seed;
  cc.rank.rand_k = 2;
  cc.rank.time_scale = config.time_scale;
  // Short liveness backstop: a replacement forked after the termination
  // wave has passed can find nobody to talk to and must wedge out fast.
  cc.rank.run_timeout_s = config.child_run_timeout_s;
  cc.faults = out.plan;
  cc.restart = config.restart;
  cc.timeout_s = config.cluster_timeout_s;

  const auto res = run_ws_cluster(cc);

  out.harness_ok = res.ok;
  out.harness_error = res.error;
  out.terminated = res.terminated_all;
  out.all_done = res.all_done;
  out.roadmap = res.roadmap;
  out.hash_match = res.roadmap == out.expected_roadmap;
  out.zombies_fenced = res.zombies_fenced;
  for (std::uint32_t r : res.restarts) out.restarts_total += r;
  for (std::size_t r = 0; r < res.ranks.size(); ++r)
    if (r < res.reported.size() && res.reported[r])
      out.stale_frames_rejected += res.ranks[r].stale_frames_rejected;

  // No duplicated region execution across the final incarnations'
  // lineage-spanning executed lists. (A fenced zombie's post-resume work
  // never completes — it exits before finishing a region — so the final
  // incarnations' lists are the complete execution record.)
  std::vector<std::uint32_t> times(work.items.size(), 0);
  for (std::size_t r = 0; r < res.ranks.size(); ++r) {
    if (r < res.reported.size() && !res.reported[r]) continue;
    for (std::uint32_t item : res.ranks[r].executed)
      if (item < times.size()) ++times[item];
  }
  for (std::uint32_t t : times)
    if (t > 1) out.duplicates += t - 1;

  if (!out.harness_ok)
    out.error = "harness: " + out.harness_error;
  else if (!out.terminated)
    out.error = "termination not detected on every surviving rank";
  else if (!out.all_done)
    out.error = "union directory incomplete";
  else if (!out.hash_match)
    out.error = "roadmap hash mismatch vs fault-free DES";
  else if (out.duplicates != 0)
    out.error = "duplicated region execution";
  else
    out.ok = true;
  return out;
}

ChaosSoakResult run_chaos_soak(const ChaosConfig& config) {
  ChaosSoakResult soak;
  soak.fds_before = count_open_fds();
  soak.tmp_before = count_tmp_residue();

  for (std::uint32_t i = 0; i < config.schedules; ++i) {
    soak.schedules.push_back(run_chaos_schedule(config, i));
    soak.schedules.back().ok ? ++soak.passed : ++soak.failed;
  }

  soak.fds_after = count_open_fds();
  soak.tmp_after = count_tmp_residue();
  soak.no_leaks =
      soak.fds_after <= soak.fds_before && soak.tmp_after <= soak.tmp_before;
  soak.ok = soak.failed == 0 && soak.no_leaks;
  return soak;
}

bool write_chaos_report(const ChaosSoakResult& soak, const ChaosConfig& cfg,
                        const std::string& path) {
  std::string j;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n  \"seed\": %llu,\n  \"ranks\": %u,\n  \"regions\": %u,\n"
                "  \"schedules\": %u,\n  \"passed\": %u,\n  \"failed\": %u,\n",
                static_cast<unsigned long long>(cfg.seed), cfg.ranks,
                cfg.regions, cfg.schedules, soak.passed, soak.failed);
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"no_leaks\": %s,\n  \"fds_before\": %zu,\n"
                "  \"fds_after\": %zu,\n  \"tmp_before\": %zu,\n"
                "  \"tmp_after\": %zu,\n  \"ok\": %s,\n  \"runs\": [\n",
                soak.no_leaks ? "true" : "false", soak.fds_before,
                soak.fds_after, soak.tmp_before, soak.tmp_after,
                soak.ok ? "true" : "false");
  j += buf;
  for (std::size_t i = 0; i < soak.schedules.size(); ++i) {
    const auto& s = soak.schedules[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"index\": %u, \"schedule_seed\": %llu, \"ok\": %s,\n"
                  "     \"terminated\": %s, \"all_done\": %s, "
                  "\"hash_match\": %s,\n",
                  s.index, static_cast<unsigned long long>(s.schedule_seed),
                  s.ok ? "true" : "false", s.terminated ? "true" : "false",
                  s.all_done ? "true" : "false",
                  s.hash_match ? "true" : "false");
    j += buf;
    std::snprintf(
        buf, sizeof buf,
        "     \"duplicates\": %llu, \"restarts\": %u, "
        "\"zombies_fenced\": %llu, \"stale_frames_rejected\": %llu,\n",
        static_cast<unsigned long long>(s.duplicates), s.restarts_total,
        static_cast<unsigned long long>(s.zombies_fenced),
        static_cast<unsigned long long>(s.stale_frames_rejected));
    j += buf;
    std::snprintf(buf, sizeof buf,
                  "     \"roadmap\": \"%016llx\", \"expected\": \"%016llx\",\n",
                  static_cast<unsigned long long>(s.roadmap),
                  static_cast<unsigned long long>(s.expected_roadmap));
    j += buf;
    j += "     \"error\": \"" + s.error + "\",\n     \"plan\": ";
    append_json_plan(j, s.plan);
    j += i + 1 < soak.schedules.size() ? "},\n" : "}\n";
  }
  j += "  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace pmpl::loadbal
