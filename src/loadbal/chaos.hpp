#pragma once
/// \file chaos.hpp
/// Seeded chaos-schedule generator and soak driver (DESIGN.md §5i).
///
/// A chaos schedule is a randomized-but-reproducible FaultPlan — kills,
/// restarts (via the supervisor), pause windows, lossy links, delays,
/// token loss, partition cuts — drawn from a single seed. The soak driver
/// runs N schedules through the forked-process harness and holds every
/// run to the full invariant suite:
///
///  1. completeness — the union roadmap hash equals the fault-free DES
///     hash for the same workload (every region completed, correct
///     payloads, regardless of who executed what when);
///  2. no duplicated execution — across the final incarnations' lineage
///     `executed` lists, no region id appears twice;
///  3. termination — every surviving rank saw (or declared) the
///     termination wave;
///  4. no leaks — the soak leaves behind no file descriptors in the
///     parent, no /tmp/pmpl_ws_* directories, and no harness files.
///
/// Determinism caveat: the *plan* is a pure function of the seed; the
/// run's interleaving is real concurrency. The invariants are chosen to
/// hold under every interleaving, which is the point of the soak.

#include <cstdint>
#include <string>
#include <vector>

#include "loadbal/ws_cluster.hpp"
#include "runtime/fault.hpp"

namespace pmpl::loadbal {

struct ChaosConfig {
  std::uint64_t seed = 0xc4a05ULL;
  std::uint32_t schedules = 20;  ///< soak width

  std::uint32_t ranks = 4;
  std::uint32_t regions = 48;
  double time_scale = 1.0;  ///< wall seconds per simulated service second

  /// Fault instants are drawn inside [0, horizon_s) simulated seconds —
  /// roughly the active makespan of the workload above.
  double horizon_s = 0.12;

  std::uint32_t max_kills = 3;           ///< per schedule
  std::uint32_t max_kills_per_rank = 2;  ///< keep below restart budget
  double pause_prob = 0.35;      ///< SIGSTOP window (drawn in wall seconds)
  double loss_prob = 0.5;        ///< all-links drop sweep
  double delay_prob = 0.35;      ///< all-links extra delay
  double token_loss_prob = 0.35;
  double partition_prob = 0.3;   ///< one partition window

  double child_run_timeout_s = 4.0;  ///< per-rank liveness backstop
  double cluster_timeout_s = 30.0;   ///< parent watchdog per schedule

  RestartPolicy restart = {.enabled = true,
                           .max_restarts = 3,
                           .backoff_initial_s = 0.02,
                           .backoff_max_s = 0.5,
                           .suspect_after_s = 0.0};
};

/// Outcome of one schedule, with the plan that produced it (so a failure
/// reproduces from the report alone).
struct ChaosScheduleResult {
  std::uint32_t index = 0;
  std::uint64_t schedule_seed = 0;
  runtime::FaultPlan plan;

  bool ok = false;
  std::string error;  ///< first violated invariant when !ok

  bool harness_ok = false;
  std::string harness_error;
  bool terminated = false;
  bool all_done = false;
  bool hash_match = false;
  std::uint64_t roadmap = 0;
  std::uint64_t expected_roadmap = 0;  ///< fault-free DES hash
  std::uint64_t duplicates = 0;        ///< extra executions of any region
  std::uint32_t restarts_total = 0;
  std::uint64_t zombies_fenced = 0;
  std::uint64_t stale_frames_rejected = 0;
};

struct ChaosSoakResult {
  bool ok = false;
  std::uint32_t passed = 0;
  std::uint32_t failed = 0;
  bool no_leaks = false;
  std::size_t fds_before = 0, fds_after = 0;  ///< parent /proc/self/fd
  std::size_t tmp_before = 0, tmp_after = 0;  ///< /tmp/pmpl_ws_* entries
  std::vector<ChaosScheduleResult> schedules;
};

/// The schedule for `schedule_seed`: a pure function of the seed, no I/O.
runtime::FaultPlan make_chaos_plan(const ChaosConfig& config,
                                   std::uint64_t schedule_seed);

/// Run one schedule end to end (fault-free DES for the expected hash,
/// then the forked cluster under the plan) and evaluate the invariants.
ChaosScheduleResult run_chaos_schedule(const ChaosConfig& config,
                                       std::uint32_t index);

/// Run config.schedules schedules and the leak checks.
ChaosSoakResult run_chaos_soak(const ChaosConfig& config);

/// Per-schedule invariant report as JSON (the CI artifact). Returns false
/// on I/O failure.
bool write_chaos_report(const ChaosSoakResult& soak, const ChaosConfig& cfg,
                        const std::string& path);

}  // namespace pmpl::loadbal
