#include "loadbal/metrics.hpp"

#include <cassert>

#include "runtime/metrics_registry.hpp"

namespace pmpl::loadbal {

std::vector<double> per_part_load(std::span<const double> weights,
                                  std::span<const std::uint32_t> assignment,
                                  std::uint32_t parts) {
  assert(weights.size() == assignment.size());
  std::vector<double> load(parts, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    assert(assignment[i] < parts);
    load[assignment[i]] += weights[i];
  }
  return load;
}

double load_cv(std::span<const double> weights,
               std::span<const std::uint32_t> assignment,
               std::uint32_t parts) {
  const auto load = per_part_load(weights, assignment, parts);
  return summarize(load).cv();
}

double makespan(std::span<const double> weights,
                std::span<const std::uint32_t> assignment,
                std::uint32_t parts) {
  const auto load = per_part_load(weights, assignment, parts);
  return summarize(load).max;
}

std::uint64_t edge_cut(
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges,
    std::span<const std::uint32_t> assignment) {
  std::uint64_t cut = 0;
  for (const auto& [a, b] : edges)
    if (assignment[a] != assignment[b]) ++cut;
  return cut;
}

MigrationVolume migration_volume(std::span<const std::uint64_t> bytes,
                                 std::span<const std::uint32_t> before,
                                 std::span<const std::uint32_t> after,
                                 std::uint32_t parts) {
  assert(bytes.size() == before.size() && before.size() == after.size());
  MigrationVolume mv;
  mv.sent.assign(parts, 0);
  mv.received.assign(parts, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (before[i] == after[i]) continue;
    mv.sent[before[i]] += bytes[i];
    mv.received[after[i]] += bytes[i];
    mv.total += bytes[i];
    ++mv.items_moved;
  }
  return mv;
}

WorkerSummary summarize_workers(std::span<const WorkerStats> stats) {
  WorkerSummary s;
  std::vector<double> executed;
  executed.reserve(stats.size());
  std::uint64_t stolen = 0, attempts = 0, failures = 0;
  for (const auto& w : stats) {
    const std::uint64_t e = w.executed_local + w.executed_stolen;
    executed.push_back(static_cast<double>(e));
    s.total_executed += e;
    stolen += w.executed_stolen;
    attempts += w.steal_attempts;
    failures += w.steal_failures;
    s.total_park_s += w.park_s;
  }
  if (s.total_executed > 0)
    s.stolen_fraction =
        static_cast<double>(stolen) / static_cast<double>(s.total_executed);
  if (attempts > 0)
    s.steal_success_rate =
        static_cast<double>(attempts - failures) /
        static_cast<double>(attempts);
  if (!executed.empty()) s.executed_cv = summarize(executed).cv();
  return s;
}

void publish(runtime::MetricsRegistry& reg,
             std::span<const WorkerStats> stats, const std::string& prefix) {
  std::uint64_t local = 0, stolen = 0, attempts = 0, failures = 0;
  for (const auto& w : stats) {
    local += w.executed_local;
    stolen += w.executed_stolen;
    attempts += w.steal_attempts;
    failures += w.steal_failures;
  }
  reg.add(prefix + "executed_local", local);
  reg.add(prefix + "executed_stolen", stolen);
  reg.add(prefix + "steal_attempts", attempts);
  reg.add(prefix + "steal_failures", failures);
  const WorkerSummary s = summarize_workers(stats);
  reg.set(prefix + "stolen_fraction", s.stolen_fraction);
  reg.set(prefix + "steal_success_rate", s.steal_success_rate);
  reg.set(prefix + "executed_cv", s.executed_cv);
  reg.set(prefix + "park_total_s", s.total_park_s);
}

}  // namespace pmpl::loadbal
