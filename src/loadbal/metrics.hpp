#pragma once
/// \file metrics.hpp
/// Load-imbalance and partition-quality metrics.
///
/// The paper's measures: coefficient of variation of per-processor load
/// (Figs 4a, 5b), makespan/max-load (Fig 4b), edge cut of the region-graph
/// partition (drives the remote-access growth of Fig 7b), and migration
/// volume (the cost side of repartitioning).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "loadbal/ws_threaded.hpp"
#include "util/stats.hpp"

namespace pmpl::runtime {
class MetricsRegistry;
}

namespace pmpl::loadbal {

/// Item -> part assignment (dense part ids in [0, parts)).
using Assignment = std::vector<std::uint32_t>;

/// Sum per-part load for `weights` under `assignment`.
std::vector<double> per_part_load(std::span<const double> weights,
                                  std::span<const std::uint32_t> assignment,
                                  std::uint32_t parts);

/// Coefficient of variation (sigma/mu) of per-part loads.
double load_cv(std::span<const double> weights,
               std::span<const std::uint32_t> assignment,
               std::uint32_t parts);

/// Max per-part load (the lower bound on phase completion time).
double makespan(std::span<const double> weights,
                std::span<const std::uint32_t> assignment,
                std::uint32_t parts);

/// Number of edges whose endpoints land in different parts.
std::uint64_t edge_cut(
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges,
    std::span<const std::uint32_t> assignment);

/// Bytes entering/leaving each part when moving from `before` to `after`
/// (item i contributes bytes[i] to its old part's sends and new part's
/// receives when reassigned).
struct MigrationVolume {
  std::vector<std::uint64_t> sent;      ///< per part
  std::vector<std::uint64_t> received;  ///< per part
  std::uint64_t total = 0;
  std::size_t items_moved = 0;
};

MigrationVolume migration_volume(std::span<const std::uint64_t> bytes,
                                 std::span<const std::uint32_t> before,
                                 std::span<const std::uint32_t> after,
                                 std::uint32_t parts);

/// Load-balance view of a threaded work-stealing run: the scheduler's
/// per-worker counters reduced to the same quantities the simulator and
/// the paper's figures report.
struct WorkerSummary {
  std::uint64_t total_executed = 0;
  double stolen_fraction = 0.0;     ///< executed_stolen / executed (Fig 9)
  double steal_success_rate = 0.0;  ///< successful probes / attempts
  double executed_cv = 0.0;         ///< CV of per-worker executed counts
  double total_park_s = 0.0;        ///< summed idle-parked time
};

WorkerSummary summarize_workers(std::span<const WorkerStats> stats);

/// Publish per-worker stats into `reg`: summed counters under
/// "<prefix>{executed_local,executed_stolen,steal_attempts,steal_failures}",
/// the WorkerSummary reductions as "<prefix>{stolen_fraction,
/// steal_success_rate, executed_cv, park_total_s}" gauges.
void publish(runtime::MetricsRegistry& reg,
             std::span<const WorkerStats> stats, const std::string& prefix);

}  // namespace pmpl::loadbal
