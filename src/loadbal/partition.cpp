#include "loadbal/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "geometry/morton.hpp"

namespace pmpl::loadbal {

Assignment partition_block(std::size_t items, std::uint32_t parts) {
  assert(parts > 0);
  Assignment a(items);
  if (items == 0) return a;
  // ceil-sized blocks so the first (items % parts) parts get one extra.
  const std::size_t base = items / parts;
  const std::size_t extra = items % parts;
  std::size_t idx = 0;
  for (std::uint32_t part = 0; part < parts; ++part) {
    const std::size_t count = base + (part < extra ? 1 : 0);
    for (std::size_t i = 0; i < count && idx < items; ++i) a[idx++] = part;
  }
  return a;
}

Assignment partition_greedy_lpt(const PartitionProblem& p) {
  assert(p.parts > 0);
  const std::size_t n = p.weights.size();
  Assignment a(n, 0);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return p.weights[x] > p.weights[y];
  });
  // Min-heap of (load, part).
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::uint32_t part = 0; part < p.parts; ++part)
    heap.emplace(0.0, part);
  for (std::uint32_t item : order) {
    auto [load, part] = heap.top();
    heap.pop();
    a[item] = part;
    heap.emplace(load + p.weights[item], part);
  }
  return a;
}

Assignment partition_sfc(const PartitionProblem& p) {
  assert(p.parts > 0);
  const std::size_t n = p.weights.size();
  assert(p.centroids.size() == n);
  Assignment a(n, 0);
  if (n == 0) return a;

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = geo::morton_key(p.centroids[i], p.bounds);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return keys[x] < keys[y];
  });

  const double total = std::accumulate(p.weights.begin(), p.weights.end(), 0.0);
  const double target = total / p.parts;
  double acc = 0.0;
  std::uint32_t part = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint32_t item = order[idx];
    const std::size_t items_left = n - idx;
    const std::uint32_t parts_left = p.parts - part;
    // Close the current part when it reached its weight target, or when
    // the remaining items are only just enough to keep every remaining
    // part non-empty.
    const bool weight_full =
        acc >= target * static_cast<double>(part + 1) && part + 1 < p.parts;
    const bool must_advance =
        items_left <= parts_left - 1 && part + 1 < p.parts;
    if (weight_full || must_advance) ++part;
    a[item] = part;
    acc += p.weights[item];
  }
  return a;
}

namespace {

/// Recursive weighted bisection of `items` (indices) into `parts` parts
/// starting at id `first_part`, writing into `out`.
void rcb_recurse(const PartitionProblem& p, std::vector<std::uint32_t>& items,
                 std::size_t lo, std::size_t hi, std::uint32_t first_part,
                 std::uint32_t parts, Assignment& out) {
  if (parts == 1 || hi - lo <= 1) {
    for (std::size_t i = lo; i < hi; ++i) out[items[i]] = first_part;
    return;
  }
  if (hi - lo <= parts) {
    // Scarce regime: one item per part keeps every part non-empty.
    for (std::size_t i = lo; i < hi; ++i)
      out[items[i]] = first_part + static_cast<std::uint32_t>(i - lo);
    return;
  }
  // Split along the axis with the largest centroid spread.
  geo::Aabb box = geo::Aabb::empty();
  for (std::size_t i = lo; i < hi; ++i) {
    const geo::Vec3 c = p.centroids[items[i]];
    box = box.merged(geo::Aabb{c, c});
  }
  const geo::Vec3 size = box.size();
  std::size_t axis = 0;
  if (size.y > size.x) axis = 1;
  if (size.z > size[axis]) axis = 2;

  std::sort(items.begin() + static_cast<long>(lo),
            items.begin() + static_cast<long>(hi),
            [&](std::uint32_t a, std::uint32_t b) {
              return p.centroids[a][axis] < p.centroids[b][axis];
            });

  // Weighted split proportional to the child part counts.
  const std::uint32_t left_parts = parts / 2;
  const std::uint32_t right_parts = parts - left_parts;
  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) total += p.weights[items[i]];
  const double left_target =
      total * static_cast<double>(left_parts) / static_cast<double>(parts);

  double acc = 0.0;
  std::size_t split = lo;
  while (split < hi - 1) {
    const double w = p.weights[items[split]];
    // Stop when adding the next item overshoots the target more than
    // stopping here undershoots it.
    if (acc + w > left_target &&
        (acc + w - left_target) > (left_target - acc))
      break;
    acc += w;
    ++split;
  }
  // Guarantee both sides non-empty.
  split = std::max(split, lo + 1);
  split = std::min(split, hi - 1);

  rcb_recurse(p, items, lo, split, first_part, left_parts, out);
  rcb_recurse(p, items, split, hi, first_part + left_parts, right_parts, out);
}

}  // namespace

Assignment partition_rcb(const PartitionProblem& p) {
  assert(p.parts > 0);
  const std::size_t n = p.weights.size();
  assert(p.centroids.size() == n);
  Assignment a(n, 0);
  if (n == 0) return a;
  std::vector<std::uint32_t> items(n);
  std::iota(items.begin(), items.end(), 0u);
  rcb_recurse(p, items, 0, n, 0, p.parts, a);
  return a;
}

void refine_edge_cut(const PartitionProblem& p, Assignment& assignment,
                     int passes, double balance_tol) {
  const std::size_t n = assignment.size();
  if (n == 0 || p.edges.empty()) return;

  // Adjacency in CSR-ish form.
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const auto& [a, b] : p.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  auto loads = per_part_load(p.weights, assignment, p.parts);
  std::vector<std::size_t> part_sizes(p.parts, 0);
  for (const auto part : assignment) ++part_sizes[part];
  const double mean =
      std::accumulate(loads.begin(), loads.end(), 0.0) / p.parts;
  const double cap = mean * balance_tol;

  for (int pass = 0; pass < passes; ++pass) {
    bool moved_any = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t cur = assignment[v];
      // Count neighbor parts.
      std::size_t same = 0;
      std::uint32_t best_part = cur;
      std::size_t best_count = 0;
      // Small linear count over neighbor parts (degrees are tiny).
      for (std::uint32_t u : adj[v]) {
        const std::uint32_t part = assignment[u];
        if (part == cur) {
          ++same;
          continue;
        }
        std::size_t count = 0;
        for (std::uint32_t w : adj[v])
          if (assignment[w] == part) ++count;
        if (count > best_count) {
          best_count = count;
          best_part = part;
        }
      }
      // Gain = edges internalized - edges externalized.
      if (best_part == cur || best_count <= same) continue;
      if (part_sizes[cur] <= 1) continue;  // never empty a part
      const double w = p.weights[v];
      if (loads[best_part] + w > cap) continue;  // would unbalance
      loads[cur] -= w;
      loads[best_part] += w;
      --part_sizes[cur];
      ++part_sizes[best_part];
      assignment[v] = best_part;
      moved_any = true;
    }
    if (!moved_any) break;
  }
}

}  // namespace pmpl::loadbal
