#pragma once
/// \file partition.hpp
/// Region-graph partitioners.
///
/// The paper computes "high quality partitions of the problem across
/// processing elements" that balance an estimated per-region weight while
/// "preserving the spatial geometry of the subdivision" (§III-B), and uses
/// "a greedy global partitioning algorithm" for the theoretical best-case
/// bound (§IV-B, exact balance is NP-complete). Implemented here:
///
///  - `partition_block`      — the naive mapping: contiguous equal-count
///    blocks of the (row-major) region ordering, i.e. the "1D partitioning
///    of the region mesh" baseline of §IV-B.
///  - `partition_greedy_lpt` — longest-processing-time greedy onto the
///    least-loaded part; the best-balance bound, ignores geometry/edge cut.
///  - `partition_sfc`        — Morton space-filling-curve ordering with a
///    weighted contiguous split: balanced *and* spatially compact.
///  - `partition_rcb`        — weighted recursive coordinate bisection of
///    the region centroids: the geometry-preserving repartitioner used by
///    the PRM experiments.
///  - `refine_edge_cut`      — greedy boundary refinement that moves
///    regions between adjacent parts to shrink edge cut without exceeding
///    a balance tolerance (a lightweight KL/FM pass).

#include <span>

#include "geometry/shapes.hpp"
#include "loadbal/metrics.hpp"

namespace pmpl::loadbal {

/// Inputs common to all partitioners. `centroids`/`edges` may be empty for
/// methods that do not use them (documented per function).
struct PartitionProblem {
  std::span<const double> weights;      ///< per-item load estimate
  std::span<const geo::Vec3> centroids; ///< per-item spatial position
  std::span<const std::pair<std::uint32_t, std::uint32_t>> edges;
  geo::Aabb bounds;                     ///< enclosing box of the centroids
  std::uint32_t parts = 1;
};

/// Contiguous equal-count blocks by item index (weights/geometry ignored).
Assignment partition_block(std::size_t items, std::uint32_t parts);

/// Greedy LPT: heaviest item first onto the least-loaded part. Near-optimal
/// balance; arbitrary geometry. Needs `weights`.
Assignment partition_greedy_lpt(const PartitionProblem& p);

/// Morton-order the centroids, then split the curve into `parts` contiguous
/// weighted chunks. Needs `weights`, `centroids`, `bounds`.
Assignment partition_sfc(const PartitionProblem& p);

/// Weighted recursive coordinate bisection. Needs `weights`, `centroids`.
Assignment partition_rcb(const PartitionProblem& p);

/// Greedy edge-cut refinement: up to `passes` sweeps moving boundary items
/// to a neighboring part when that strictly reduces the cut and keeps every
/// part's load within `balance_tol` (multiplicative) of the mean. Needs
/// `weights`, `edges`.
void refine_edge_cut(const PartitionProblem& p, Assignment& assignment,
                     int passes = 2, double balance_tol = 1.10);

}  // namespace pmpl::loadbal
