#include "loadbal/steal_policy.hpp"

#include <algorithm>

namespace pmpl::loadbal {

std::string to_string(StealPolicyKind k) {
  switch (k) {
    case StealPolicyKind::kRandK:
      return "rand-8";
    case StealPolicyKind::kDiffusive:
      return "diffusive";
    case StealPolicyKind::kHybrid:
      return "hybrid";
    case StealPolicyKind::kLifeline:
      return "lifeline";
  }
  return "?";
}

std::vector<std::uint32_t> StealPolicy::random_victims(
    std::uint32_t thief, Xoshiro256ss& rng) const {
  std::vector<std::uint32_t> out;
  if (p_ <= 1) return out;
  const std::uint32_t want = std::min<std::uint32_t>(k_, p_ - 1);
  out.reserve(want);
  // Rejection sampling with de-dup; k << p in all experiments.
  while (out.size() < want) {
    const auto v = static_cast<std::uint32_t>(rng.uniform_u64(p_));
    if (v == thief) continue;
    if (std::find(out.begin(), out.end(), v) != out.end()) continue;
    out.push_back(v);
  }
  return out;
}

std::vector<std::uint32_t> StealPolicy::victims(std::uint32_t thief,
                                                std::uint32_t stage,
                                                Xoshiro256ss& rng) const {
  switch (kind_) {
    case StealPolicyKind::kRandK:
      return random_victims(thief, rng);
    case StealPolicyKind::kDiffusive:
      return mesh_.neighbors(thief);
    case StealPolicyKind::kHybrid:
      return stage == 0 ? mesh_.neighbors(thief)
                        : random_victims(thief, rng);
    case StealPolicyKind::kLifeline: {
      // Hypercube lifelines: thief ^ 2^i for each dimension.
      std::vector<std::uint32_t> out;
      for (std::uint32_t bit = 1; bit < p_; bit <<= 1) {
        const std::uint32_t n = thief ^ bit;
        if (n < p_ && n != thief) out.push_back(n);
      }
      return out;
    }
  }
  return {};
}

}  // namespace pmpl::loadbal
