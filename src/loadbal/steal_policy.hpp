#pragma once
/// \file steal_policy.hpp
/// Victim-selection policies for work stealing (paper §III-A).
///
///  - RAND-K:    request work from k random processors (k = 8 in the
///               paper's evaluation), re-drawn per attempt.
///  - DIFFUSIVE: processors sit on a 2D mesh; an underloaded processor
///               asks its mesh neighbors.
///  - HYBRID:    DIFFUSIVE first; if no neighbor can service the request,
///               fall back to random victims.

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/topology.hpp"
#include "util/rng.hpp"

namespace pmpl::loadbal {

enum class StealPolicyKind {
  kRandK,      ///< k random victims per attempt (paper: k = 8)
  kDiffusive,  ///< 2D-mesh neighbors
  kHybrid,     ///< diffusive, then random fallback
  kLifeline,   ///< hypercube lifelines (X10-style): a denied thief
               ///< registers with the victim and waits for a pushed grant
};

std::string to_string(StealPolicyKind k);

/// Stateless victim chooser (randomness comes from the caller's RNG so the
/// DES stays deterministic per seed).
class StealPolicy {
 public:
  StealPolicy(StealPolicyKind kind, std::uint32_t p, std::uint32_t k = 8)
      : kind_(kind), p_(p), k_(k), mesh_(p) {}

  StealPolicyKind kind() const noexcept { return kind_; }

  /// Number of escalation stages (1 for RAND-K/DIFFUSIVE, 2 for HYBRID:
  /// stage 0 = neighbors, stage 1 = random fallback).
  std::uint32_t stages() const noexcept {
    return kind_ == StealPolicyKind::kHybrid ? 2u : 1u;
  }

  /// Victims for `thief` at escalation `stage`. Distinct, never the thief.
  std::vector<std::uint32_t> victims(std::uint32_t thief, std::uint32_t stage,
                                     Xoshiro256ss& rng) const;

  const runtime::ProcessMesh& mesh() const noexcept { return mesh_; }

 private:
  std::vector<std::uint32_t> random_victims(std::uint32_t thief,
                                            Xoshiro256ss& rng) const;

  StealPolicyKind kind_;
  std::uint32_t p_;
  std::uint32_t k_;
  runtime::ProcessMesh mesh_;
};

}  // namespace pmpl::loadbal
