#include "loadbal/ws_cluster.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "runtime/fault_io.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport_socket.hpp"
#include "util/io_status.hpp"
#include "util/rng.hpp"

namespace pmpl::loadbal {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double steady_seconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double realtime_seconds() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_s(double s) {
  if (s <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(s);
  ts.tv_nsec = static_cast<long>((s - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

// --- interrupt handling -------------------------------------------------
//
// A ^C (or SIGTERM) during a cluster run used to leak the whole
// /tmp/pmpl_ws_* directory plus every child process. The handler itself
// only sets a flag (async-signal-safe by construction); the supervision
// loop polls it every millisecond and then tears the run down through the
// ordinary cleanup path — kills, reaps, file removal — before returning.

volatile sig_atomic_t g_interrupted = 0;

void on_interrupt(int) { g_interrupted = 1; }

struct InterruptScope {
  struct sigaction old_int {}, old_term {};
  InterruptScope() {
    g_interrupted = 0;
    struct sigaction sa {};
    sa.sa_handler = on_interrupt;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &old_int);
    ::sigaction(SIGTERM, &sa, &old_term);
  }
  ~InterruptScope() {
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
  }
};

/// Is `name` a file this harness family creates in the cluster dir?
/// Sockets ("r<digits>.sock"), result files, checkpoints, and the temp
/// names their atomic writers use.
bool is_cluster_file(const std::string& name) {
  if (name.rfind("result_", 0) == 0 || name.rfind("ckpt_", 0) == 0 ||
      name.rfind("trace_", 0) == 0)
    return true;
  if (name.size() > 1 && name[0] == 'r') {
    std::size_t i = 1;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') ++i;
    if (i > 1 && name.compare(i, std::string::npos, ".sock") == 0)
      return true;
  }
  return false;
}

/// Remove every harness file in `dir` (and the dir itself when this call
/// created it). Best-effort: called on every exit path, including the
/// interrupted one, so an aborted run leaves nothing behind.
void remove_cluster_files(const std::string& dir, bool remove_dir) {
  DIR* d = ::opendir(dir.c_str());
  if (!d) return;
  std::vector<std::string> doomed;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    if (is_cluster_file(name)) doomed.push_back(name);
  }
  ::closedir(d);
  for (const std::string& name : doomed)
    ::unlink((dir + "/" + name).c_str());
  if (remove_dir) ::rmdir(dir.c_str());
}

struct CleanupGuard {
  std::string dir;
  bool created = false;
  bool armed = false;
  ~CleanupGuard() {
    if (armed && created) remove_cluster_files(dir, true);
  }
};

// --- child <-> parent result files -------------------------------------
//
// One line-based text file per incarnation, written to a temp name and
// renamed (atomic on the same filesystem), ending in a FNV-1a checksum
// over the preceding bytes. A SIGKILLed child leaves at most a temp file
// behind, which the parent treats as "did not report" — expected for
// planned crash victims, an error for anyone else.

std::string serialize_result(const WsRankResult& r) {
  std::ostringstream os;
  os << "wsrank 2\n";
  os << "rank " << r.rank << "\n";
  os << "gen " << r.generation << " " << (r.superseded ? 1 : 0) << " "
     << (r.restored ? 1 : 0) << "\n";
  os << "terminated " << (r.terminated ? 1 : 0) << "\n";
  os << "fenced " << (r.fenced ? 1 : 0) << "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g %.17g", r.busy_s, r.finish_s);
  os << "times " << buf << "\n";
  os << "counters " << r.local_tasks << " " << r.stolen_tasks << " "
     << r.steal_requests << " " << r.steal_grants << " " << r.steal_denies
     << " " << r.regions_migrated << " " << r.token_rounds << " "
     << r.steal_retries << " " << r.grant_retransmits << " "
     << r.regions_recovered << " " << r.heartbeat_probes << " "
     << r.heartbeat_misses << " " << r.deaths_detected << " "
     << r.tokens_regenerated << "\n";
  os << "restartx " << r.stale_frames_rejected << " "
     << r.checkpoints_written << " " << r.rejoin_syncs << "\n";
  const auto& t = r.transport;
  os << "transport " << t.frames_sent << " " << t.frames_received << " "
     << t.frames_dropped << " " << t.frames_delayed << " " << t.bytes_sent
     << " " << t.bytes_received << " " << t.reconnects << " "
     << t.connect_retries << " " << t.send_timeouts << " "
     << t.frames_stale << "\n";
  os << "executed " << r.executed.size();
  for (const std::uint32_t e : r.executed) os << " " << e;
  os << "\n";
  os << "done " << r.done.size() << " ";
  for (const bool b : r.done) os << (b ? '1' : '0');
  os << "\n";
  const std::string payload = os.str();
  std::ostringstream out;
  out << payload << "checksum " << std::hex
      << fnv1a64(payload.data(), payload.size()) << "\n";
  return out.str();
}

bool parse_result(const std::string& text, WsRankResult& r,
                  std::string& err) {
  const auto pos = text.rfind("checksum ");
  if (pos == std::string::npos || pos == 0) {
    err = "missing checksum";
    return false;
  }
  {
    std::uint64_t stored = 0;
    std::istringstream cs(text.substr(pos + 9));
    cs >> std::hex >> stored;
    if (!cs || stored != fnv1a64(text.data(), pos)) {
      err = "checksum mismatch";
      return false;
    }
  }
  std::istringstream is(text.substr(0, pos));
  std::string tag;
  int version = 0;
  is >> tag >> version;
  if (tag != "wsrank" || version != 2) {
    err = "bad header";
    return false;
  }
  int b = 0, b2 = 0;
  is >> tag >> r.rank;
  is >> tag >> r.generation >> b >> b2;
  r.superseded = b != 0;
  r.restored = b2 != 0;
  is >> tag >> b;
  r.terminated = b != 0;
  is >> tag >> b;
  r.fenced = b != 0;
  is >> tag >> r.busy_s >> r.finish_s;
  is >> tag >> r.local_tasks >> r.stolen_tasks >> r.steal_requests >>
      r.steal_grants >> r.steal_denies >> r.regions_migrated >>
      r.token_rounds >> r.steal_retries >> r.grant_retransmits >>
      r.regions_recovered >> r.heartbeat_probes >> r.heartbeat_misses >>
      r.deaths_detected >> r.tokens_regenerated;
  is >> tag >> r.stale_frames_rejected >> r.checkpoints_written >>
      r.rejoin_syncs;
  auto& t = r.transport;
  is >> tag >> t.frames_sent >> t.frames_received >> t.frames_dropped >>
      t.frames_delayed >> t.bytes_sent >> t.bytes_received >>
      t.reconnects >> t.connect_retries >> t.send_timeouts >>
      t.frames_stale;
  std::size_t n = 0;
  is >> tag >> n;
  if (!is || tag != "executed" || n > (1u << 24)) {
    err = "bad executed list";
    return false;
  }
  r.executed.resize(n);
  for (auto& e : r.executed) is >> e;
  is >> tag >> n;
  if (!is || tag != "done" || n > (1u << 24)) {
    err = "bad done bitmap";
    return false;
  }
  std::string bits;
  is >> bits;
  if (bits.size() != n) {
    err = "bad done bitmap";
    return false;
  }
  r.done.resize(n);
  for (std::size_t i = 0; i < n; ++i) r.done[i] = bits[i] == '1';
  if (!is) {
    err = "truncated result";
    return false;
  }
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t w = ::write(fd, body.data() + off, body.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  out.clear();
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

std::string result_path(const std::string& dir, std::uint32_t r,
                        std::uint32_t gen) {
  return dir + "/result_" + std::to_string(r) + ".g" + std::to_string(gen);
}

std::string trace_json_path(const std::string& prefix, std::uint32_t r,
                            std::uint32_t gen) {
  return prefix + ".r" + std::to_string(r) + ".g" + std::to_string(gen) +
         ".json";
}

/// The clock metadata tools/trace_merge aligns per-rank timelines on:
/// this rank's cluster epoch on CLOCK_MONOTONIC plus its hello-round-trip
/// offset estimate to every peer it dialed (null = never measured).
/// Emitted as a raw member of the trace's `otherData`.
std::string cluster_clock_json(const runtime::SocketTransport& net,
                               std::uint32_t r, std::uint32_t gen,
                               std::uint32_t p) {
  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", net.epoch_steady_s());
  os << "\"clusterClock\": {\"rank\": " << r << ", \"generation\": " << gen
     << ", \"epochSteadyS\": " << buf << ", \"offsets\": [";
  for (std::uint32_t q = 0; q < p; ++q) {
    if (q != 0) os << ", ";
    if (net.clock_offset_known(q)) {
      std::snprintf(buf, sizeof buf, "%.9g", net.clock_offset(q));
      os << buf;
    } else {
      os << "null";
    }
  }
  os << "]}";
  return os.str();
}

// --- fatal-signal flight-recorder flush --------------------------------
//
// A child that dies on SIGTERM/SIGSEGV/SIGABRT/SIGBUS still owns an
// in-memory trace ring worth salvaging. The handler serializes it through
// the same atomic state_file path as the periodic flight recorder, then
// re-raises with the default disposition so the exit status is unchanged.
// Snapshotting allocates, which is not async-signal-safe — acceptable
// here because the process is already dying and the write is best-effort
// (a torn fragment is rejected by its checksums, never misread). SIGKILL
// of course bypasses this; that is what the periodic writes are for.

runtime::Tracer* g_flight_tracer = nullptr;
std::string g_flight_path;
std::uint32_t g_flight_rank = 0;
std::uint32_t g_flight_gen = 0;

void on_fatal_signal(int sig) {
  ::signal(sig, SIG_DFL);
  if (g_flight_tracer != nullptr && !g_flight_path.empty()) {
    runtime::TraceSnapshot snap = runtime::snapshot_tracer(*g_flight_tracer);
    snap.rank = g_flight_rank;
    snap.generation = g_flight_gen;
    (void)runtime::save_trace_snapshot(snap, g_flight_path);
    g_flight_tracer = nullptr;
  }
  ::raise(sig);
}

[[noreturn]] void child_main(const ClusterConfig& cfg, std::uint32_t r,
                             std::uint32_t gen,
                             const std::string& restore_path,
                             const std::string& dir, double epoch) {
  // The child must not inherit the parent's interrupt bookkeeping: a ^C
  // reaches the whole group, and the children should die by default so
  // the parent's teardown only has to reap them.
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
  runtime::Tracer tracer;
  runtime::SocketTransportConfig net_cfg;
  net_cfg.rank = r;
  net_cfg.size = cfg.ranks;
  net_cfg.dir = dir;
  net_cfg.generation = gen;
  net_cfg.dial_all = gen > 0;
  net_cfg.epoch_steady_s = epoch;
  net_cfg.connect_timeout_s = cfg.launch_timeout_s;
  net_cfg.accept_timeout_s = cfg.launch_timeout_s;
  // Crashes and pauses are the parent's job; children only see the
  // link/token/partition part, mapped from simulated onto wall seconds.
  net_cfg.faults = runtime::scaled_fault_plan(cfg.faults,
                                              cfg.rank.time_scale);
  net_cfg.faults.crashes.clear();
  net_cfg.faults.pauses.clear();
  if (!cfg.trace_path.empty()) {
    net_cfg.tracer = &tracer;
    net_cfg.track_name = "transport " + std::to_string(r);
    net_cfg.trace_capacity = 1 << 14;
    // Seed the flight recorder before the handshake: a rank SIGKILLed
    // while still dialing peers leaves a (nearly empty) fragment, so the
    // supervisor's salvage pass is deterministic instead of racing the
    // first in-loop flight-recorder write.
    runtime::TraceSnapshot snap = runtime::snapshot_tracer(tracer);
    snap.rank = r;
    snap.generation = gen;
    (void)runtime::save_trace_snapshot(snap,
                                       flight_recorder_path(dir, r, gen));
  }
  runtime::SocketTransport net(std::move(net_cfg));
  std::string err;
  if (!net.start(&err))
    std::fprintf(stderr, "rank %u: %s (continuing degraded)\n", r,
                 err.c_str());

  WsRankConfig rank_cfg = cfg.rank;
  rank_cfg.generation = gen;
  if (cfg.restart.enabled) {
    rank_cfg.checkpoint_dir = dir;
    rank_cfg.checkpoint_path = rank_checkpoint_path(dir, r, gen);
    rank_cfg.restore_path = restore_path;
  }
  if (!cfg.trace_path.empty()) {
    rank_cfg.tracer = &tracer;
    rank_cfg.trace_capacity =
        rank_cfg.trace_capacity ? rank_cfg.trace_capacity : 1 << 14;
    rank_cfg.flight_recorder_path = flight_recorder_path(dir, r, gen);
    g_flight_tracer = &tracer;
    g_flight_path = rank_cfg.flight_recorder_path;
    g_flight_rank = r;
    g_flight_gen = gen;
    for (const int sig : {SIGTERM, SIGSEGV, SIGABRT, SIGBUS})
      ::signal(sig, on_fatal_signal);
  }
  const WsRankResult result = run_ws_rank(net, rank_cfg);
  net.close();

  write_file_atomic(result_path(dir, r, gen), serialize_result(result));
  if (!cfg.trace_path.empty()) {
    runtime::export_chrome_trace(
        tracer, trace_json_path(cfg.trace_path, r, gen),
        cluster_clock_json(net, r, gen, cfg.ranks));
  }
  _exit(result.superseded ? 5
        : result.fenced   ? 3
        : result.terminated ? 0
                            : 4);
}

}  // namespace

ClusterItems make_cluster_items(std::uint64_t seed, std::uint32_t n,
                                std::uint32_t p) {
  ClusterItems out;
  out.items.resize(n);
  out.initial.resize(n);
  Xoshiro256ss rng(derive_seed(seed, 0xc1a55e5ULL));
  for (std::uint32_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    out.items[i].service_s = 4e-3 + 3e-2 * u * u;  // heavy-tailed
    out.items[i].bytes = 256 + static_cast<std::uint64_t>(u * 4096.0);
    // Front-load rank 0 so the run *must* steal to balance.
    out.initial[i] = i < n / 2 ? 0 : i % p;
  }
  return out;
}

std::uint64_t region_payload_hash(std::uint64_t seed, std::uint32_t region) {
  Xoshiro256ss rng(derive_seed(seed, region));
  std::uint64_t words[4];
  for (auto& w : words) w = rng();
  return fnv1a64(words, sizeof words);
}

std::uint64_t roadmap_hash(std::uint64_t seed,
                           const std::vector<bool>& done) {
  std::uint64_t h = kFnvOffset;
  for (std::uint32_t i = 0; i < done.size(); ++i) {
    if (!done[i]) continue;
    h = fnv1a64(&i, sizeof i, h);
    const std::uint64_t payload = region_payload_hash(seed, i);
    h = fnv1a64(&payload, sizeof payload, h);
  }
  return h;
}

std::vector<bool> completed_set(const WsResult& des) {
  std::vector<bool> done(des.completion_s.size(), false);
  for (std::size_t i = 0; i < des.completion_s.size(); ++i)
    done[i] = des.completion_s[i] >= 0.0;
  return done;
}

ClusterResult run_ws_cluster(const ClusterConfig& config) {
  ClusterResult out;
  const std::uint32_t p = config.ranks;
  const std::size_t n = config.rank.items.size();
  out.ranks.resize(p);
  out.reported.assign(p, false);
  out.killed.assign(p, false);
  out.exit_codes.assign(p, -1);
  out.restarts.assign(p, 0);
  out.generations.assign(p, 0);
  out.done.assign(n, false);
  if (p == 0 || n == 0 || config.rank.initial.size() != n) {
    out.error = "bad cluster config";
    return out;
  }

  InterruptScope interrupts;
  CleanupGuard cleanup;
  std::string dir = config.dir;
  char tmpl[] = "/tmp/pmpl_ws_XXXXXX";
  if (dir.empty()) {
    if (!mkdtemp(tmpl)) {
      out.error = "mkdtemp failed";
      return out;
    }
    dir = tmpl;
    cleanup.dir = dir;
    cleanup.created = true;
    cleanup.armed = true;
  }

  // Parent-delivered fault schedules, on the wall clock.
  struct Kill {
    double at_s;
    std::uint32_t rank;
    bool fired = false;
  };
  std::vector<Kill> kills;
  for (const auto& c : config.faults.crashes)
    if (c.rank < p)
      kills.push_back({c.at_s * config.rank.time_scale, c.rank, false});
  struct PauseEv {
    double start_s, end_s;
    std::uint32_t rank;
    pid_t pid = -1;  ///< pid actually stopped (survives replacement)
    bool started = false, resumed = false;
  };
  std::vector<PauseEv> pauses;
  for (const auto& pz : config.faults.pauses)
    if (pz.rank < p)
      pauses.push_back({pz.from_s * config.rank.time_scale,
                        pz.until_s * config.rank.time_scale, pz.rank});

  // Lifecycle of each rank across its incarnations.
  struct RankState {
    pid_t pid = -1;
    std::uint32_t gen = 0;
    std::uint32_t restarts = 0;
    double forked_at = 0.0;
    double restart_at = kInf;
    double backoff = 0.0;
    double suspect_check_at = 0.0;
    bool reaped = false;
    int exit_code = -1;
    bool lifecycle_done = false;
  };
  std::vector<RankState> rs(p);
  // Superseded incarnations whose rank already has a replacement; still
  // the parent's children, so they must be reaped (and SIGCONTed if a
  // pause window left them stopped).
  struct Orphan {
    pid_t pid;
    std::uint32_t rank, gen;
    bool reaped = false;
  };
  std::vector<Orphan> orphans;

  const double epoch = steady_seconds();

  const auto newest_checkpoint = [&](std::uint32_t r,
                                     std::uint32_t below_gen) {
    for (std::uint32_t g = below_gen; g-- > 0;) {
      const std::string path = rank_checkpoint_path(dir, r, g);
      if (::access(path.c_str(), R_OK) == 0) return path;
    }
    return std::string();
  };

  const auto fork_rank = [&](std::uint32_t r, std::uint32_t gen) -> pid_t {
    const std::string restore =
        gen > 0 ? newest_checkpoint(r, gen) : std::string();
    const pid_t pid = ::fork();
    if (pid == 0) child_main(config, r, gen, restore, dir, epoch);
    return pid;
  };

  const auto kill_everything = [&] {
    for (auto& s : rs)
      if (s.pid > 0 && !s.reaped) {
        ::kill(s.pid, SIGCONT);
        ::kill(s.pid, SIGKILL);
      }
    for (auto& o : orphans)
      if (!o.reaped) {
        ::kill(o.pid, SIGCONT);
        ::kill(o.pid, SIGKILL);
      }
    for (auto& s : rs) {
      s.restart_at = kInf;
      s.lifecycle_done = true;
    }
  };

  for (std::uint32_t r = 0; r < p; ++r) {
    const pid_t pid = fork_rank(r, 0);
    if (pid < 0) {
      out.error = "fork failed";
      kill_everything();
      for (auto& s : rs)
        if (s.pid > 0) ::waitpid(s.pid, nullptr, 0);
      return out;
    }
    rs[r].pid = pid;
    rs[r].forked_at = 0.0;
  }

  // Supervision loop: fire planned kills/pauses, restart unhealthy
  // incarnations, fork replacements for suspected (stalled) ones, reap
  // everything. Exits when every rank's lifecycle is complete and every
  // incarnation — current or orphaned — has been reaped.
  bool watchdog_fired = false;
  bool interrupted = false;
  bool termination_seen = false;  ///< some incarnation exited 0
  double drain_deadline = kInf;
  const double suspect_grace =
      std::max(0.25, config.restart.suspect_after_s) + 0.25;
  while (true) {
    const double t = steady_seconds() - epoch;
    if (g_interrupted && !interrupted) {
      interrupted = true;
      out.error = "interrupted";
      kill_everything();
    }
    if (t > config.timeout_s && !watchdog_fired) {
      watchdog_fired = true;
      for (std::uint32_t r = 0; r < p; ++r)
        if (!rs[r].reaped) out.killed[r] = true;
      kill_everything();
    }
    for (auto& k : kills) {
      if (k.fired || t < k.at_s) continue;
      k.fired = true;
      if (!rs[k.rank].reaped && rs[k.rank].pid > 0) {
        ::kill(rs[k.rank].pid, SIGKILL);
        out.killed[k.rank] = true;
      }
    }
    for (auto& pz : pauses) {
      if (!pz.started && t >= pz.start_s) {
        pz.started = true;
        if (!rs[pz.rank].reaped && rs[pz.rank].pid > 0) {
          pz.pid = rs[pz.rank].pid;
          ::kill(pz.pid, SIGSTOP);
        } else {
          pz.resumed = true;  // nothing to stop
        }
      }
      if (pz.started && !pz.resumed && t >= pz.end_s) {
        pz.resumed = true;
        ::kill(pz.pid, SIGCONT);
      }
    }
    // Pending restarts.
    for (std::uint32_t r = 0; r < p; ++r) {
      auto& s = rs[r];
      if (s.lifecycle_done || !s.reaped || t < s.restart_at) continue;
      s.restart_at = kInf;
      const pid_t pid = fork_rank(r, s.gen + 1);
      if (pid < 0) {
        s.lifecycle_done = true;
        continue;
      }
      ++s.gen;
      ++s.restarts;
      s.pid = pid;
      s.reaped = false;
      s.exit_code = -1;
      s.forked_at = t;
      s.suspect_check_at = t + suspect_grace;
    }
    // Suspected-stall replacements (the deliberate-zombie path): the
    // child is alive but its checkpoint stopped advancing, so fork its
    // successor WITHOUT killing it and let the epoch fence neutralize it.
    if (config.restart.enabled && config.restart.suspect_after_s > 0.0) {
      for (std::uint32_t r = 0; r < p; ++r) {
        auto& s = rs[r];
        if (s.lifecycle_done || s.reaped || t < s.suspect_check_at ||
            s.restarts >= config.restart.max_restarts ||
            t - s.forked_at < suspect_grace)
          continue;
        s.suspect_check_at = t + 0.01;
        struct stat st {};
        const std::string path = rank_checkpoint_path(dir, r, s.gen);
        const bool stale =
            ::stat(path.c_str(), &st) != 0 ||
            realtime_seconds() - (static_cast<double>(st.st_mtim.tv_sec) +
                                  static_cast<double>(st.st_mtim.tv_nsec) *
                                      1e-9) >
                config.restart.suspect_after_s;
        if (!stale) continue;
        const pid_t pid = fork_rank(r, s.gen + 1);
        if (pid < 0) continue;
        orphans.push_back({s.pid, r, s.gen});
        ++s.gen;
        ++s.restarts;
        s.pid = pid;
        s.exit_code = -1;
        s.forked_at = t;
        s.suspect_check_at = t + suspect_grace;
      }
    }
    // Reap.
    int status = 0;
    const pid_t done_pid = ::waitpid(-1, &status, WNOHANG);
    if (done_pid > 0) {
      const int code = WIFEXITED(status)    ? WEXITSTATUS(status)
                       : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                             : -2;
      bool matched = false;
      for (std::uint32_t r = 0; r < p && !matched; ++r) {
        auto& s = rs[r];
        if (s.reaped || s.pid != done_pid) continue;
        matched = true;
        s.reaped = true;
        s.exit_code = code;
        if (code == 0) termination_seen = true;
        if (code == 5) ++out.zombies_fenced;
        // Once any rank exited terminated, the run is globally done — a
        // rank that merely wedged (exit 4) is a straggler of a finished
        // run, not worth re-forking. A SIGKILLed rank still gets its
        // replacement so its directory is reported.
        const bool restartable = code != 0 && config.restart.enabled &&
                                 s.restarts < config.restart.max_restarts &&
                                 !watchdog_fired && !interrupted &&
                                 (code >= 128 || !termination_seen);
        if (restartable) {
          s.backoff = s.backoff == 0.0
                          ? config.restart.backoff_initial_s
                          : std::min(s.backoff * 2.0,
                                     config.restart.backoff_max_s);
          s.restart_at = t + s.backoff;
        } else {
          s.lifecycle_done = true;
        }
      }
      for (auto& o : orphans) {
        if (matched) break;
        if (o.reaped || o.pid != done_pid) continue;
        matched = true;
        o.reaped = true;
        // A superseded orphan is neutralized either by the epoch fence
        // (exit 5) or by draining a buffered death notice naming its own
        // stale generation (exit 3) — both are the zombie exiting cleanly
        // instead of corrupting the directory.
        if (code == 3 || code == 5) ++out.zombies_fenced;
      }
      continue;  // immediately try to reap more
    }
    // Done? Every lifecycle complete and every incarnation reaped.
    bool all_done = true;
    for (const auto& s : rs)
      if (!s.lifecycle_done || !s.reaped) all_done = false;
    if (all_done) {
      bool orphans_left = false;
      for (const auto& o : orphans)
        if (!o.reaped) orphans_left = true;
      if (!orphans_left) break;
      // Drain stragglers: wake any stopped zombie so it can fence itself;
      // after a grace period, put it down.
      if (drain_deadline == kInf) {
        drain_deadline = t + 3.0;
        for (const auto& o : orphans)
          if (!o.reaped) ::kill(o.pid, SIGCONT);
      } else if (t > drain_deadline) {
        for (const auto& o : orphans)
          if (!o.reaped) ::kill(o.pid, SIGKILL);
      }
    }
    sleep_s(1e-3);
  }
  if (watchdog_fired && out.error.empty())
    out.error = "watchdog: cluster run timed out";

  // Collect what each rank's final incarnation reported. Exit codes 0/3/
  // 4/5 write a result before exiting; a signaled child (SIGKILL) leaves
  // none, which is only acceptable for planned victims.
  out.ok = !watchdog_fired && !interrupted;
  out.terminated_all = true;
  for (std::uint32_t r = 0; r < p; ++r) {
    out.exit_codes[r] = rs[r].exit_code;
    out.generations[r] = rs[r].gen;
    out.restarts[r] = rs[r].restarts;
    std::string text, err;
    if (!read_file(result_path(dir, r, rs[r].gen), text)) {
      if (!out.killed[r]) {
        out.ok = false;
        if (out.error.empty())
          out.error = "rank " + std::to_string(r) + ": no result file";
      }
      continue;
    }
    WsRankResult res;
    if (!parse_result(text, res, err)) {
      // A kill can race the write; only survivors must parse.
      if (!out.killed[r]) {
        out.ok = false;
        if (out.error.empty())
          out.error = "rank " + std::to_string(r) + ": " + err;
      }
      continue;
    }
    out.ranks[r] = std::move(res);
    out.reported[r] = true;
  }

  for (std::uint32_t r = 0; r < p; ++r) {
    if (!out.reported[r]) {
      if (!out.killed[r]) out.terminated_all = false;
      continue;
    }
    const WsRankResult& res = out.ranks[r];
    // A fenced rank was (falsely or not) declared dead; its directory
    // still counts, but it is not required to have seen termination.
    if (!res.terminated && !res.fenced && !out.killed[r])
      out.terminated_all = false;
    for (std::size_t i = 0; i < res.done.size() && i < n; ++i)
      if (res.done[i]) out.done[i] = true;
    out.steal_requests += res.steal_requests;
    out.steal_grants += res.steal_grants;
    out.steal_denies += res.steal_denies;
    out.regions_migrated += res.regions_migrated;
    out.regions_recovered += res.regions_recovered;
    out.grant_retransmits += res.grant_retransmits;
    out.deaths_detected += res.deaths_detected;
    out.executed_total += res.executed.size();
  }
  out.all_done =
      std::all_of(out.done.begin(), out.done.end(), [](bool b) { return b; });
  out.roadmap = roadmap_hash(config.rank.seed, out.done);

  // Salvage: any incarnation that died without exporting a live trace
  // (SIGKILL, watchdog, fatal mid-run) may have left a flight-recorder
  // fragment. Export each as the same .r<r>.g<g>.json the ranks write,
  // with a synthetic "supervisor" track whose "salvage" instant marks the
  // fragment as post-mortem (corr identifies the dead incarnation).
  if (!config.trace_path.empty()) {
    for (std::uint32_t r = 0; r < p; ++r) {
      for (std::uint32_t g = 0; g <= rs[r].gen; ++g) {
        const std::string json = trace_json_path(config.trace_path, r, g);
        if (::access(json.c_str(), R_OK) == 0) continue;  // exported live
        auto snap =
            runtime::load_trace_snapshot(flight_recorder_path(dir, r, g));
        if (!snap) continue;  // died before its first fragment (or corrupt)
        double t_end = 0.0;
        for (const auto& trk : snap->tracks)
          for (const auto& e : trk.events) t_end = std::max(t_end, e.t);
        runtime::TraceSnapshot::Track sup;
        sup.name = "supervisor";
        sup.total = 1;
        runtime::TraceSnapshot::Event ev;
        ev.t = t_end;
        ev.arg = r;
        ev.arg2 = runtime::trace_corr(r, g, 1);
        ev.name_ix = snap->intern("salvage");
        ev.type = runtime::TraceType::kInstant;
        sup.events.push_back(ev);
        snap->tracks.push_back(std::move(sup));
        std::ostringstream cc;
        cc << "\"clusterClock\": {\"rank\": " << r << ", \"generation\": "
           << g << ", \"salvaged\": true}";
        if (runtime::export_chrome_trace(*snap, json, cc.str()))
          out.traces_salvaged.push_back(json);
      }
    }
  }

  // Clean the dir if this call created it; the guard also covers early
  // returns and the interrupted path.
  if (cleanup.created) {
    cleanup.armed = false;
    remove_cluster_files(dir, true);
  }
  return out;
}

}  // namespace pmpl::loadbal
