#include "loadbal/ws_cluster.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "runtime/fault_io.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport_socket.hpp"
#include "util/io_status.hpp"
#include "util/rng.hpp"

namespace pmpl::loadbal {

namespace {

double steady_seconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_s(double s) {
  if (s <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(s);
  ts.tv_nsec = static_cast<long>((s - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

// --- child <-> parent result files -------------------------------------
//
// One line-based text file per rank, written to a temp name and renamed
// (atomic on the same filesystem), ending in a FNV-1a checksum over the
// preceding bytes. A SIGKILLed child leaves at most a temp file behind,
// which the parent treats as "did not report" — expected for planned
// crash victims, an error for anyone else.

std::string serialize_result(const WsRankResult& r) {
  std::ostringstream os;
  os << "wsrank 1\n";
  os << "rank " << r.rank << "\n";
  os << "terminated " << (r.terminated ? 1 : 0) << "\n";
  os << "fenced " << (r.fenced ? 1 : 0) << "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g %.17g", r.busy_s, r.finish_s);
  os << "times " << buf << "\n";
  os << "counters " << r.local_tasks << " " << r.stolen_tasks << " "
     << r.steal_requests << " " << r.steal_grants << " " << r.steal_denies
     << " " << r.regions_migrated << " " << r.token_rounds << " "
     << r.steal_retries << " " << r.grant_retransmits << " "
     << r.regions_recovered << " " << r.heartbeat_probes << " "
     << r.heartbeat_misses << " " << r.deaths_detected << " "
     << r.tokens_regenerated << "\n";
  const auto& t = r.transport;
  os << "transport " << t.frames_sent << " " << t.frames_received << " "
     << t.frames_dropped << " " << t.frames_delayed << " " << t.bytes_sent
     << " " << t.bytes_received << " " << t.reconnects << " "
     << t.connect_retries << " " << t.send_timeouts << "\n";
  os << "executed " << r.executed.size();
  for (const std::uint32_t e : r.executed) os << " " << e;
  os << "\n";
  os << "done " << r.done.size() << " ";
  for (const bool b : r.done) os << (b ? '1' : '0');
  os << "\n";
  const std::string payload = os.str();
  std::ostringstream out;
  out << payload << "checksum " << std::hex
      << fnv1a64(payload.data(), payload.size()) << "\n";
  return out.str();
}

bool parse_result(const std::string& text, WsRankResult& r,
                  std::string& err) {
  const auto pos = text.rfind("checksum ");
  if (pos == std::string::npos || pos == 0) {
    err = "missing checksum";
    return false;
  }
  {
    std::uint64_t stored = 0;
    std::istringstream cs(text.substr(pos + 9));
    cs >> std::hex >> stored;
    if (!cs || stored != fnv1a64(text.data(), pos)) {
      err = "checksum mismatch";
      return false;
    }
  }
  std::istringstream is(text.substr(0, pos));
  std::string tag;
  int version = 0;
  is >> tag >> version;
  if (tag != "wsrank" || version != 1) {
    err = "bad header";
    return false;
  }
  int b = 0;
  is >> tag >> r.rank;
  is >> tag >> b;
  r.terminated = b != 0;
  is >> tag >> b;
  r.fenced = b != 0;
  is >> tag >> r.busy_s >> r.finish_s;
  is >> tag >> r.local_tasks >> r.stolen_tasks >> r.steal_requests >>
      r.steal_grants >> r.steal_denies >> r.regions_migrated >>
      r.token_rounds >> r.steal_retries >> r.grant_retransmits >>
      r.regions_recovered >> r.heartbeat_probes >> r.heartbeat_misses >>
      r.deaths_detected >> r.tokens_regenerated;
  auto& t = r.transport;
  is >> tag >> t.frames_sent >> t.frames_received >> t.frames_dropped >>
      t.frames_delayed >> t.bytes_sent >> t.bytes_received >>
      t.reconnects >> t.connect_retries >> t.send_timeouts;
  std::size_t n = 0;
  is >> tag >> n;
  if (!is || tag != "executed" || n > (1u << 24)) {
    err = "bad executed list";
    return false;
  }
  r.executed.resize(n);
  for (auto& e : r.executed) is >> e;
  is >> tag >> n;
  if (!is || tag != "done" || n > (1u << 24)) {
    err = "bad done bitmap";
    return false;
  }
  std::string bits;
  is >> bits;
  if (bits.size() != n) {
    err = "bad done bitmap";
    return false;
  }
  r.done.resize(n);
  for (std::size_t i = 0; i < n; ++i) r.done[i] = bits[i] == '1';
  if (!is) {
    err = "truncated result";
    return false;
  }
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t w = ::write(fd, body.data() + off, body.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  out.clear();
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

[[noreturn]] void child_main(const ClusterConfig& cfg, std::uint32_t r,
                             const std::string& dir, double epoch) {
  runtime::Tracer tracer;
  runtime::SocketTransportConfig net_cfg;
  net_cfg.rank = r;
  net_cfg.size = cfg.ranks;
  net_cfg.dir = dir;
  net_cfg.epoch_steady_s = epoch;
  net_cfg.connect_timeout_s = cfg.launch_timeout_s;
  net_cfg.accept_timeout_s = cfg.launch_timeout_s;
  // Crashes are the parent's job; children only see the link/token part,
  // mapped from simulated onto wall seconds.
  net_cfg.faults = runtime::scaled_fault_plan(cfg.faults,
                                              cfg.rank.time_scale);
  net_cfg.faults.crashes.clear();
  if (!cfg.trace_path.empty()) {
    net_cfg.tracer = &tracer;
    net_cfg.track_name = "transport " + std::to_string(r);
    net_cfg.trace_capacity = 1 << 14;
  }
  runtime::SocketTransport net(std::move(net_cfg));
  std::string err;
  if (!net.start(&err))
    std::fprintf(stderr, "rank %u: %s (continuing degraded)\n", r,
                 err.c_str());

  WsRankConfig rank_cfg = cfg.rank;
  if (!cfg.trace_path.empty()) {
    rank_cfg.tracer = &tracer;
    rank_cfg.trace_capacity =
        rank_cfg.trace_capacity ? rank_cfg.trace_capacity : 1 << 14;
  }
  const WsRankResult result = run_ws_rank(net, rank_cfg);
  net.close();

  write_file_atomic(dir + "/result_" + std::to_string(r),
                    serialize_result(result));
  if (!cfg.trace_path.empty())
    runtime::export_chrome_trace(
        tracer, cfg.trace_path + ".r" + std::to_string(r) + ".json");
  _exit(result.fenced ? 3 : (result.terminated ? 0 : 4));
}

}  // namespace

ClusterItems make_cluster_items(std::uint64_t seed, std::uint32_t n,
                                std::uint32_t p) {
  ClusterItems out;
  out.items.resize(n);
  out.initial.resize(n);
  Xoshiro256ss rng(derive_seed(seed, 0xc1a55e5ULL));
  for (std::uint32_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    out.items[i].service_s = 4e-3 + 3e-2 * u * u;  // heavy-tailed
    out.items[i].bytes = 256 + static_cast<std::uint64_t>(u * 4096.0);
    // Front-load rank 0 so the run *must* steal to balance.
    out.initial[i] = i < n / 2 ? 0 : i % p;
  }
  return out;
}

std::uint64_t region_payload_hash(std::uint64_t seed, std::uint32_t region) {
  Xoshiro256ss rng(derive_seed(seed, region));
  std::uint64_t words[4];
  for (auto& w : words) w = rng();
  return fnv1a64(words, sizeof words);
}

std::uint64_t roadmap_hash(std::uint64_t seed,
                           const std::vector<bool>& done) {
  std::uint64_t h = kFnvOffset;
  for (std::uint32_t i = 0; i < done.size(); ++i) {
    if (!done[i]) continue;
    h = fnv1a64(&i, sizeof i, h);
    const std::uint64_t payload = region_payload_hash(seed, i);
    h = fnv1a64(&payload, sizeof payload, h);
  }
  return h;
}

std::vector<bool> completed_set(const WsResult& des) {
  std::vector<bool> done(des.completion_s.size(), false);
  for (std::size_t i = 0; i < des.completion_s.size(); ++i)
    done[i] = des.completion_s[i] >= 0.0;
  return done;
}

ClusterResult run_ws_cluster(const ClusterConfig& config) {
  ClusterResult out;
  const std::uint32_t p = config.ranks;
  const std::size_t n = config.rank.items.size();
  out.ranks.resize(p);
  out.reported.assign(p, false);
  out.killed.assign(p, false);
  out.exit_codes.assign(p, -1);
  out.done.assign(n, false);
  if (p == 0 || n == 0 || config.rank.initial.size() != n) {
    out.error = "bad cluster config";
    return out;
  }

  std::string dir = config.dir;
  char tmpl[] = "/tmp/pmpl_ws_XXXXXX";
  if (dir.empty()) {
    if (!mkdtemp(tmpl)) {
      out.error = "mkdtemp failed";
      return out;
    }
    dir = tmpl;
  }

  // SIGKILL schedule from the plan's crash list, on the wall clock.
  struct Kill {
    double at_s;
    std::uint32_t rank;
    bool fired = false;
  };
  std::vector<Kill> kills;
  for (const auto& c : config.faults.crashes)
    if (c.rank < p)
      kills.push_back({c.at_s * config.rank.time_scale, c.rank, false});

  const double epoch = steady_seconds();
  std::vector<pid_t> pids(p, -1);
  for (std::uint32_t r = 0; r < p; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) child_main(config, r, dir, epoch);  // never returns
    if (pid < 0) {
      out.error = "fork failed";
      for (std::uint32_t k = 0; k < r; ++k) ::kill(pids[k], SIGKILL);
      for (std::uint32_t k = 0; k < r; ++k)
        ::waitpid(pids[k], nullptr, 0);
      return out;
    }
    pids[r] = pid;
  }

  // Reap children, firing planned kills at their instants and the
  // watchdog if the protocol wedges.
  std::uint32_t live = p;
  bool watchdog_fired = false;
  while (live > 0) {
    const double t = steady_seconds() - epoch;
    for (auto& k : kills) {
      if (k.fired || t < k.at_s) continue;
      k.fired = true;
      if (pids[k.rank] >= 0 && out.exit_codes[k.rank] == -1) {
        ::kill(pids[k.rank], SIGKILL);
        out.killed[k.rank] = true;
      }
    }
    if (t > config.timeout_s && !watchdog_fired) {
      watchdog_fired = true;
      for (std::uint32_t r = 0; r < p; ++r)
        if (pids[r] >= 0 && out.exit_codes[r] == -1) {
          ::kill(pids[r], SIGKILL);
          out.killed[r] = true;
        }
    }
    int status = 0;
    const pid_t done_pid = ::waitpid(-1, &status, WNOHANG);
    if (done_pid == 0) {
      sleep_s(1e-3);
      continue;
    }
    if (done_pid < 0) break;  // no children left (shouldn't happen)
    for (std::uint32_t r = 0; r < p; ++r) {
      if (pids[r] != done_pid) continue;
      out.exit_codes[r] = WIFEXITED(status) ? WEXITSTATUS(status)
                          : WIFSIGNALED(status)
                              ? 128 + WTERMSIG(status)
                              : -2;
      --live;
      break;
    }
  }
  if (watchdog_fired) out.error = "watchdog: cluster run timed out";

  // Collect what the children reported.
  out.ok = !watchdog_fired;
  out.terminated_all = true;
  for (std::uint32_t r = 0; r < p; ++r) {
    std::string text, err;
    const std::string path = dir + "/result_" + std::to_string(r);
    if (!read_file(path, text)) {
      if (!out.killed[r]) {
        out.ok = false;
        if (out.error.empty())
          out.error = "rank " + std::to_string(r) + ": no result file";
      }
      continue;
    }
    WsRankResult res;
    if (!parse_result(text, res, err)) {
      // A kill can race the write; only survivors must parse.
      if (!out.killed[r]) {
        out.ok = false;
        if (out.error.empty())
          out.error = "rank " + std::to_string(r) + ": " + err;
      }
      continue;
    }
    out.ranks[r] = std::move(res);
    out.reported[r] = true;
    ::unlink(path.c_str());
  }

  for (std::uint32_t r = 0; r < p; ++r) {
    if (!out.reported[r]) {
      if (!out.killed[r]) out.terminated_all = false;
      continue;
    }
    const WsRankResult& res = out.ranks[r];
    // A fenced rank was (falsely or not) declared dead; its directory
    // still counts, but it is not required to have seen termination.
    if (!res.terminated && !res.fenced && !out.killed[r])
      out.terminated_all = false;
    for (std::size_t i = 0; i < res.done.size() && i < n; ++i)
      if (res.done[i]) out.done[i] = true;
    out.steal_requests += res.steal_requests;
    out.steal_grants += res.steal_grants;
    out.steal_denies += res.steal_denies;
    out.regions_migrated += res.regions_migrated;
    out.regions_recovered += res.regions_recovered;
    out.grant_retransmits += res.grant_retransmits;
    out.deaths_detected += res.deaths_detected;
    out.executed_total += res.executed.size();
  }
  out.all_done =
      std::all_of(out.done.begin(), out.done.end(), [](bool b) { return b; });
  out.roadmap = roadmap_hash(config.rank.seed, out.done);

  // Clean the socket dir if this call created it (best-effort).
  if (config.dir.empty()) {
    for (std::uint32_t r = 0; r < p; ++r) {
      ::unlink((dir + "/r" + std::to_string(r) + ".sock").c_str());
      ::unlink((dir + "/result_" + std::to_string(r)).c_str());
      ::unlink((dir + "/result_" + std::to_string(r) + ".tmp").c_str());
    }
    ::rmdir(dir.c_str());
  }
  return out;
}

}  // namespace pmpl::loadbal
