#pragma once
/// \file ws_cluster.hpp
/// Forked-rank cluster harness and the sim-vs-real validation gate.
///
/// run_ws_cluster() forks `ranks` processes, wires them into a
/// SocketTransport mesh and runs the per-rank protocol engine
/// (ws_rank.cpp) in each, while the parent plays fault-plan executioner:
/// planned crashes become real SIGKILLs at their (time-scaled) wall-clock
/// instants, planned link/token faults ride inside each child's transport.
/// Each child writes a checksummed result file; the parent aggregates the
/// survivors into a ClusterResult.
///
/// The gate (DESIGN.md §5h): the completed-region set is summarized by a
/// schedule-independent roadmap hash — FNV-1a over (region id, payload
/// hash) in ascending region order, payloads derived from
/// derive_seed(seed, region) only — so the same seed and fault plan run
/// under the DES (simulate_work_stealing) and under this harness must
/// produce *identical* hashes, and their protocol-event counters must
/// agree within tolerance. tests/test_transport.cpp and
/// bench/bench_transport.cpp hold both transports to it.

#include <cstdint>
#include <string>
#include <vector>

#include "loadbal/ws_engine.hpp"
#include "loadbal/ws_rank.hpp"

namespace pmpl::loadbal {

/// Deterministic synthetic cluster workload: skewed service times (many
/// small regions, a heavy tail) and a deliberately imbalanced initial
/// assignment (first half of the regions on rank 0) so stealing always
/// has something to do. Identical inputs for the DES and socket runs.
struct ClusterItems {
  std::vector<WsItem> items;
  std::vector<std::uint32_t> initial;
};
ClusterItems make_cluster_items(std::uint64_t seed, std::uint32_t n,
                                std::uint32_t p);

/// Deterministic per-region payload digest (derive_seed(seed, region)
/// expanded through the region's own stream) — what the region's roadmap
/// piece hashes to, independent of who executed it or when.
std::uint64_t region_payload_hash(std::uint64_t seed, std::uint32_t region);

/// Roadmap hash over a completed set: FNV-1a over (region id, payload
/// hash) for every done region in ascending order.
std::uint64_t roadmap_hash(std::uint64_t seed, const std::vector<bool>& done);

/// Completed set of a DES run (completion_s >= 0), for hashing with
/// roadmap_hash on the sim side of the gate.
std::vector<bool> completed_set(const WsResult& des);

/// Supervisor restart policy (DESIGN.md §5i). When enabled, every child
/// checkpoints its protocol state into the cluster dir and the parent
/// re-forks a child that dies by signal or exits unhealthy (fenced,
/// wedged, any nonzero code) as generation+1, pointed at the newest
/// checkpoint its predecessors left, after a capped exponential backoff.
struct RestartPolicy {
  bool enabled = false;
  std::uint32_t max_restarts = 3;   ///< re-forks per rank
  double backoff_initial_s = 0.02;  ///< doubles per consecutive restart
  double backoff_max_s = 0.5;

  /// >0: a rank whose checkpoint file stops advancing for this long is
  /// *suspected* and a replacement is forked WITHOUT killing it — the
  /// deliberate zombie scenario: if the old incarnation ever resumes
  /// (e.g. SIGCONT after a pause fault), generation fencing must
  /// neutralize it — it exits superseded (5) on an epoch fence, or
  /// self-fences (3) draining a buffered death notice that names its own
  /// stale generation; both count in zombies_fenced. 0 disables.
  double suspect_after_s = 0.0;
};

struct ClusterConfig {
  std::uint32_t ranks = 4;

  /// Per-rank engine configuration. `items`/`initial` must outlive the
  /// call; tracer is ignored (children cannot share the parent's tracer).
  /// When restart.enabled, checkpoint/restore paths and generations are
  /// managed by the supervisor and any values here are overridden.
  WsRankConfig rank;

  /// Fault plan in *simulated* seconds, like the DES takes it; crash and
  /// window instants are multiplied by rank.time_scale onto the wall
  /// clock. Crashes are delivered by the parent as SIGKILL, pause windows
  /// as SIGSTOP/SIGCONT; link/token/partition faults are evaluated inside
  /// each child's transport.
  runtime::FaultPlan faults;

  RestartPolicy restart;

  /// Non-empty: each child exports its transport + protocol trace to
  /// "<trace_path>.r<rank>.g<generation>.json" — per-incarnation, so a
  /// restarted rank's timeline stays separate from its predecessor's —
  /// with the rank's clock-sync metadata embedded for tools/trace_merge.
  /// Children also persist their trace ring to a flight-recorder fragment
  /// in the cluster dir (see WsRankConfig::flight_recorder_path); after
  /// the run the supervisor salvages fragments of incarnations that died
  /// without exporting (SIGKILL, watchdog) into the same .r<r>.g<g>.json
  /// naming, each with a synthetic "supervisor" track carrying a
  /// "salvage" instant.
  std::string trace_path;

  /// Directory for socket and result files; empty = fresh mkdtemp.
  std::string dir;

  double launch_timeout_s = 10.0;  ///< per-child mesh bring-up budget
  double timeout_s = 90.0;         ///< parent's whole-run watchdog
};

struct ClusterResult {
  /// Harness-level success: every non-crashed child exited and produced a
  /// parseable result file. Protocol-level outcomes are below.
  bool ok = false;
  std::string error;  ///< first harness failure when !ok

  bool terminated_all = false;  ///< every survivor saw the termination wave
  bool all_done = false;        ///< union directory covers every region
  std::uint64_t roadmap = 0;    ///< roadmap_hash over the union
  std::vector<bool> done;       ///< union of the survivors' directories

  /// Per-rank results of each rank's FINAL incarnation; `reported[r]`
  /// says which parsed. A rank whose last incarnation was SIGKILLed (no
  /// restart budget left, or watchdog) normally doesn't report. A
  /// restored incarnation's `executed` list spans its whole lineage, so
  /// the no-duplicate-execution invariant is checked across these lists.
  std::vector<WsRankResult> ranks;
  std::vector<bool> reported;
  std::vector<bool> killed;  ///< SIGKILLed by the plan (or watchdog)
  std::vector<int> exit_codes;  ///< final incarnation; 128+sig if signaled

  // Supervisor bookkeeping (all zeros when restarts are disabled).
  std::vector<std::uint32_t> restarts;     ///< re-forks performed per rank
  std::vector<std::uint32_t> generations;  ///< final generation per rank
  std::uint64_t zombies_fenced = 0;  ///< superseded incarnations that exited
                                     ///<   cleanly (epoch-fenced exit 5, or
                                     ///<   self-fenced on a buffered death
                                     ///<   notice naming their gen, exit 3)

  /// Flight-recorder fragments the supervisor exported for incarnations
  /// that died without writing a live trace (empty when tracing is off or
  /// nobody died). Paths follow the "<trace_path>.r<r>.g<g>.json" naming.
  std::vector<std::string> traces_salvaged;

  // Survivor-summed protocol counters, for the gate's tolerance checks.
  std::uint64_t steal_requests = 0;
  std::uint64_t steal_grants = 0;
  std::uint64_t steal_denies = 0;
  std::uint64_t regions_migrated = 0;
  std::uint64_t regions_recovered = 0;
  std::uint64_t grant_retransmits = 0;
  std::uint64_t deaths_detected = 0;
  std::uint64_t executed_total = 0;  ///< region executions incl. re-runs
};

/// Fork-and-run the work-stealing protocol over real processes and Unix
/// sockets. Blocks until every child exited (or the watchdog fired).
ClusterResult run_ws_cluster(const ClusterConfig& config);

}  // namespace pmpl::loadbal
