#include "loadbal/ws_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <set>

#include "runtime/des.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/termination.hpp"
#include "runtime/transport_des.hpp"

namespace pmpl::loadbal {

namespace {

/// Whole simulation state; one instance per simulate_work_stealing call.
///
/// Fault machinery (ids, ledger, timeouts, heartbeats, token generations)
/// is structured so that with an empty FaultPlan the exact same sequence of
/// Simulator::schedule_* calls is issued as the pre-fault engine made:
/// determinism ties break on insertion order, so even one extra event would
/// perturb fault-free schedules.
///
/// Every inter-rank hop goes through the DesTransport seam (the virtual-
/// time implementation of the transport concept, DESIGN.md §5h): latency
/// pricing and fault rolls live there, protocol decisions stay here. The
/// per-rank engine in ws_rank.cpp runs the same protocol over real
/// transports; the sim-vs-real gate in tests holds the two to the same
/// roadmap.
class WsEngine {
 public:
  WsEngine(std::span<const WsItem> items,
           std::span<const std::uint32_t> initial, std::uint32_t p,
           const WsConfig& config)
      : items_(items),
        p_(p),
        config_(config),
        policy_(config.policy, p, config.rand_k),
        safra_(p),
        rng_(config.seed),
        inject_(config.faults),
        locs_(p) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      assert(initial[i] < p);
      locs_[initial[i]].queue.push_back(static_cast<std::uint32_t>(i));
    }
    result_.busy_s.assign(p, 0.0);
    result_.local_tasks.assign(p, 0);
    result_.stolen_tasks.assign(p, 0);
    result_.final_owner.assign(items.size(), 0);
    result_.completion_s.assign(items.size(), -1.0);
    stolen_flag_.assign(items.size(), false);
    completed_.assign(items.size(), false);
    reexec_pending_.assign(items.size(), false);
    alive_.assign(p, true);
    death_known_.assign(p, false);
    death_pending_.assign(p, false);
    crash_time_.assign(p, 0.0);
    if (config.tracer) {
      // One virtual-time track per rank. The DES is single-threaded, so
      // every track has exactly one writer (the simulation loop) and the
      // lock-free single-writer emit contract holds trivially.
      trace_.reserve(p);
      for (std::uint32_t r = 0; r < p; ++r)
        trace_.push_back(config.tracer->track(
            config.trace_prefix + "rank " + std::to_string(r),
            config.trace_capacity));
    }
    if (inject_.active()) {
      // Derive resilience timeouts from the worst case the protocol must
      // wait out: a victim busy with the largest region stretched by the
      // strongest straggler window, plus round-trip control latency and the
      // largest grant payload. Too-small values cost retries, never
      // correctness.
      const double remote = config.cluster.remote_latency_s;
      // A short RPC-style timeout: long enough that control messages never
      // time out spuriously on a healthy link, far shorter than a region's
      // service time. A request parked at a busy victim may time out and be
      // retried elsewhere — wasteful but correct (the eventual late grant
      // is still accepted; its settled request is simply stale).
      steal_timeout_ = config.steal_timeout_s > 0.0
                           ? config.steal_timeout_s
                           : std::max(256.0 * remote, 1e-3);
      hb_period_ = config.heartbeat_period_s > 0.0
                       ? config.heartbeat_period_s
                       : std::max(64.0 * remote, 1e-4);
      // Consecutive missed heartbeats before a rank is declared dead. The
      // configured floor is enough on loss-free links, but with a lossy
      // plan the threshold must scale so the per-window false-positive
      // probability stays ~1e-9 across ~1e5 probe windows — otherwise the
      // fencing path would slowly execute the whole cluster. A targeted
      // drop_prob=1 link still fences after the configured floor.
      hb_misses_required_ = config.heartbeat_misses;
      double max_drop = 0.0;
      for (const auto& l : config.faults.links)
        max_drop = std::max(max_drop, l.drop_prob);
      const double p_lost_rt = 1.0 - (1.0 - max_drop) * (1.0 - max_drop);
      if (p_lost_rt > 0.0 && p_lost_rt < 1.0)
        hb_misses_required_ = std::max(
            hb_misses_required_,
            static_cast<std::uint32_t>(
                std::ceil(-9.0 / std::log10(p_lost_rt))));
      // Token regeneration: keyed to an *idle* ring transit, not to the
      // longest region — a token legitimately parked at a busy rank may be
      // regenerated spuriously (the stale one is discarded by generation),
      // which merely costs an extra round. The timeout doubles while
      // rounds keep failing and resets once a token survives a transit.
      token_regen_initial_ = std::max(
          32.0 * static_cast<double>(p) * remote, 1e-3);
      token_regen_timeout_ = token_regen_initial_;
      token_retry_delay_ = std::max(64.0 * remote, 1e-4);
    }
  }

  WsResult run() {
    for (std::uint32_t i = 0; i < p_; ++i) start_next(i);
    if (inject_.active()) {
      for (const auto& c : inject_.plan().crashes) {
        if (c.rank >= p_) continue;
        sim_.schedule_at(c.at_s, [this, r = c.rank] {
          if (terminated_ || !alive_[r]) return;
          ++result_.faults.crashes;
          do_crash(r);
        });
      }
      start_heartbeats();
    }
    // Token-ring termination works for any p (the p==1 ring is rank 0
    // alone, detecting on its first idle).
    sim_.run();
    result_.hit_event_limit = sim_.hit_event_limit();
    result_.terminated = terminated_;
    // If the calendar drained without detection (all locations crashed, or
    // p==1 with rank 0 dead), fall back to the last event time.
    if (!terminated_) result_.makespan_s = sim_.now();
    result_.events = sim_.events_processed();
    return std::move(result_);
  }

 private:
  struct PendingRequest {
    std::uint32_t thief = 0;
    std::uint64_t req_id = 0;
  };

  struct Location {
    std::deque<std::uint32_t> queue;
    bool busy = false;
    std::uint32_t cur_item = 0;       ///< executing item (valid while busy)
    std::uint32_t failed_rounds = 0;  ///< consecutive fully-denied rounds
    std::uint32_t outstanding = 0;    ///< replies still expected
    std::uint32_t stage = 0;
    double backoff = 0.0;
    bool holds_token = false;
    runtime::SafraTermination::Token token;
    std::uint64_t token_gen = 0;  ///< generation of the held token
    /// Steal requests that arrived while this location was executing a
    /// region: single-threaded locations only progress communication
    /// between tasks (STAPL RMI polls at scheduling points), so they are
    /// serviced when the current region completes.
    std::vector<PendingRequest> pending_requests;
    /// Lifeline mode: thieves whose steal was denied and who now wait for
    /// a pushed grant when this location next has surplus work.
    std::vector<std::uint32_t> lifeline_waiters;
    /// Fault mode: outstanding request ids (drained by reply or timeout,
    /// whichever first; the loser of that race is ignored as stale).
    std::set<std::uint64_t> reqs_pending;
    // Heartbeat probe state (fault mode only).
    std::uint32_t hb_target = 0;
    std::uint64_t hb_seq = 0;    ///< last probe sequence sent
    std::uint64_t hb_acked = 0;  ///< last probe sequence acked
    std::uint32_t hb_misses = 0;
  };

  /// A granted batch in flight: retransmitted until the thief acks, so a
  /// region survives message loss. Resolved (erased) on ack, or at a crash
  /// announcement: an undelivered batch is re-queued (victim alive) or
  /// recovered with the dead victim's queue; a delivered one needs nothing.
  struct GrantInFlight {
    std::uint32_t victim = 0;
    std::uint32_t thief = 0;
    std::uint64_t req_id = 0;  ///< 0 for lifeline pushes
    std::vector<std::uint32_t> items;
    std::uint64_t bytes = 0;
    bool delivered = false;
    double timeout = 0.0;  ///< next retransmit timeout (doubles, capped)
  };

  bool idle(const Location& loc) const noexcept {
    return !loc.busy && loc.queue.empty();
  }

  /// Rank's trace track; nullptr when tracing is off.
  runtime::TraceBuffer* tr(std::uint32_t rank) const noexcept {
    return trace_.empty() ? nullptr : trace_[rank];
  }

  void start_next(std::uint32_t rank) {
    if (terminated_ || !alive_[rank]) return;
    Location& loc = locs_[rank];
    if (loc.queue.empty()) {
      on_become_idle(rank);
      return;
    }
    const std::uint32_t item = loc.queue.front();
    loc.queue.pop_front();
    loc.busy = true;
    loc.cur_item = item;
    const double nominal = items_[item].service_s;
    const double service =
        inject_.active() ? inject_.stretched_service(rank, sim_.now(), nominal)
                         : nominal;
    if (runtime::TraceBuffer* t = tr(rank)) {
      t->counter_at("queue", sim_.now(), loc.queue.size());
      t->begin_at("region", sim_.now(), item);
      if (service > nominal)
        t->instant_at("straggle", sim_.now(),
                      static_cast<std::uint64_t>((service - nominal) * 1e6));
    }
    sim_.schedule_in(service, [this, rank, item, service, nominal] {
      if (!alive_[rank]) return;  // crashed mid-region: work lost, recovered
      Location& l = locs_[rank];
      l.busy = false;
      if (runtime::TraceBuffer* t = tr(rank))
        t->end_at("region", sim_.now(), item);
      result_.busy_s[rank] += service;
      if (service > nominal)
        result_.faults.straggler_delay_s += service - nominal;
      completed_[item] = true;
      result_.completion_s[item] = sim_.now();
      if (reexec_pending_[item]) {
        reexec_pending_[item] = false;
        ++result_.faults.regions_reexecuted;
        result_.faults.reexecuted_service_s += nominal;
      }
      result_.final_owner[item] = rank;
      if (stolen_flag_[item])
        ++result_.stolen_tasks[rank];
      else
        ++result_.local_tasks[rank];
      // Serve steal requests that arrived mid-execution before starting
      // the next region.
      if (!l.pending_requests.empty()) {
        const auto pending = std::move(l.pending_requests);
        l.pending_requests.clear();
        for (const PendingRequest& pr : pending) {
          if (inject_.active() && death_known_[pr.thief]) continue;
          serve_request(rank, pr.thief, pr.req_id);
        }
      }
      feed_lifelines(rank);
      start_next(rank);
    });
  }

  void on_become_idle(std::uint32_t rank) {
    if (terminated_ || !alive_[rank]) return;
    Location& loc = locs_[rank];
    // Forward a held token now that we are idle (unless a crash made it
    // stale in the meantime — a fresh generation is circulating).
    if (loc.holds_token) {
      loc.holds_token = false;
      if (loc.token_gen == token_generation_) process_token(rank, loc.token);
    }
    // The leader (rank 0 until it dies) drives detection rounds whenever it
    // idles with no round in flight.
    if (rank == safra_.leader() && !round_active_) initiate_round();
    // Begin stealing unless a request round is already outstanding.
    loc.stage = 0;
    loc.backoff = config_.backoff_initial_s;
    loc.failed_rounds = 0;  // fresh idleness: probe again
    if (loc.outstanding == 0) issue_requests(rank);
  }

  void issue_requests(std::uint32_t rank) {
    if (terminated_ || !alive_[rank]) return;
    Location& loc = locs_[rank];
    if (!idle(loc)) return;
    auto victims = policy_.victims(rank, loc.stage, rng_);
    if (inject_.active())
      victims.erase(std::remove_if(victims.begin(), victims.end(),
                                   [this](std::uint32_t v) {
                                     return death_known_[v];
                                   }),
                    victims.end());
    if (victims.empty()) {
      retry_later(rank);
      return;
    }
    loc.outstanding += static_cast<std::uint32_t>(victims.size());
    for (const std::uint32_t v : victims) {
      ++result_.steal_requests;
      const std::uint64_t req_id = next_req_id_++;
      if (runtime::TraceBuffer* t = tr(rank)) {
        // DES request ids are globally unique, so generation 0 + the
        // thief's rank make the steal-flow correlation id (the victim
        // recomputes it from the same fields in on_request).
        t->instant_at("steal_req", sim_.now(), v,
                      runtime::trace_corr(rank, 0, req_id));
        t->flow_start_at("steal", sim_.now(),
                         runtime::trace_corr(rank, 0, req_id), v);
      }
      if (inject_.active()) loc.reqs_pending.insert(req_id);
      if (!net_.send_control(rank, v, [this, v, rank, req_id] {
            on_request(v, rank, req_id);
          })) {
        if (runtime::TraceBuffer* t = tr(rank))
          t->instant_at("drop", sim_.now(), v);
      }
      if (!inject_.active()) continue;
      sim_.schedule_in(steal_timeout_, [this, rank, req_id] {
        on_request_timeout(rank, req_id);
      });
    }
  }

  void on_request_timeout(std::uint32_t thief, std::uint64_t req_id) {
    if (terminated_ || !alive_[thief]) return;
    if (locs_[thief].reqs_pending.erase(req_id) == 0) return;  // answered
    ++result_.faults.steal_retries;
    resolve_deny(thief);  // treat the silence as a deny and move on
  }

  void on_request(std::uint32_t victim, std::uint32_t thief,
                  std::uint64_t req_id) {
    if (terminated_ || !alive_[victim]) return;
    if (runtime::TraceBuffer* t = tr(victim))
      t->flow_end_at("steal", sim_.now(),
                     runtime::trace_corr(thief, 0, req_id), thief);
    Location& loc = locs_[victim];
    // A busy location cannot progress communication until its current
    // region completes; park the request.
    if (loc.busy) {
      loc.pending_requests.push_back({thief, req_id});
      return;
    }
    serve_request(victim, thief, req_id);
  }

  void serve_request(std::uint32_t victim, std::uint32_t thief,
                     std::uint64_t req_id) {
    if (terminated_ || !alive_[victim]) return;
    Location& loc = locs_[victim];
    // Grant when the victim can spare work: up to steal_max_items from the
    // back of the queue, never more than half (the victim keeps the front
    // it is about to execute).
    std::size_t n = std::min<std::size_t>(config_.steal_max_items,
                                          loc.queue.size() / 2);
    if (n == 0 && loc.queue.size() == 1 && loc.busy) n = 1;
    if (n == 0) {
      ++result_.steal_denies;
      if (runtime::TraceBuffer* t = tr(victim))
        t->instant_at("deny", sim_.now(), thief);
      if (policy_.kind() == StealPolicyKind::kLifeline &&
          std::find(loc.lifeline_waiters.begin(), loc.lifeline_waiters.end(),
                    thief) == loc.lifeline_waiters.end())
        loc.lifeline_waiters.push_back(thief);
      if (!net_.send_control(victim, thief, [this, thief, req_id] {
            on_deny(thief, req_id);
          })) {
        // Lost deny: the thief's request timeout resolves it.
        if (runtime::TraceBuffer* t = tr(victim))
          t->instant_at("drop", sim_.now(), thief);
      }
      return;
    }
    std::vector<std::uint32_t> grant;
    grant.reserve(n);
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      grant.push_back(loc.queue.back());
      loc.queue.pop_back();
      bytes += items_[grant.back()].bytes;
    }
    send_grant(victim, thief, req_id, std::move(grant), bytes);
  }

  /// Dispatch a granted batch. Fault-free: one delivery event, exactly the
  /// legacy behavior. Fault mode: the batch enters the retransmit ledger
  /// and is re-sent until acked, so loss delays but never destroys it.
  void send_grant(std::uint32_t victim, std::uint32_t thief,
                  std::uint64_t req_id, std::vector<std::uint32_t> grant,
                  std::uint64_t bytes) {
    ++result_.steal_grants;
    result_.regions_migrated += grant.size();
    if (runtime::TraceBuffer* t = tr(victim)) {
      t->instant_at("grant", sim_.now(), thief,
                    req_id != 0 ? runtime::trace_corr(thief, 0, req_id) : 0);
      // Grant flows reuse the originating request's correlation id (the
      // categories keep them distinct from the steal flow); lifeline
      // pushes (req_id 0) share that id and get no flow.
      if (req_id != 0)
        t->flow_start_at("grant", sim_.now(),
                         runtime::trace_corr(thief, 0, req_id), thief);
    }
    // Work-bearing message: participates in termination accounting.
    safra_.on_send(victim);
    if (!inject_.active()) {
      net_.send_bulk(victim, thief, bytes,
                     [this, thief, req_id, grant = std::move(grant)] {
                       safra_.on_receive(thief);
                       accept_grant(thief, grant, req_id);
                     });
      return;
    }
    const std::uint64_t gid = next_grant_id_++;
    GrantInFlight g;
    g.victim = victim;
    g.thief = thief;
    g.req_id = req_id;
    g.items = std::move(grant);
    g.bytes = bytes;
    g.timeout = steal_timeout_;
    ledger_.emplace(gid, std::move(g));
    transmit_grant(gid, /*retransmit=*/false);
  }

  void transmit_grant(std::uint64_t gid, bool retransmit) {
    auto it = ledger_.find(gid);
    if (it == ledger_.end()) return;
    GrantInFlight& g = it->second;
    if (retransmit) ++result_.faults.grant_retransmits;
    if (!net_.send_bulk(g.victim, g.thief, g.bytes,
                        [this, gid] { deliver_grant(gid); })) {
      if (runtime::TraceBuffer* t = tr(g.victim))
        t->instant_at("drop", sim_.now(), g.thief);
    }
    sim_.schedule_in(g.timeout, [this, gid] { on_grant_timeout(gid); });
    g.timeout = std::min(g.timeout * 2.0, 16.0 * steal_timeout_);
  }

  void deliver_grant(std::uint64_t gid) {
    auto it = ledger_.find(gid);
    if (it == ledger_.end()) return;  // already acked+resolved (duplicate)
    GrantInFlight& g = it->second;
    if (terminated_ || !alive_[g.thief]) return;  // timeout path resolves
    if (!g.delivered) {
      g.delivered = true;
      safra_.on_receive(g.thief);
      accept_grant(g.thief, g.items, g.req_id);
    }
    // Ack every delivery (duplicates re-ack in case the first ack was
    // dropped). The ack itself can be lost; retransmits re-trigger it.
    if (!net_.send_control(g.thief, g.victim,
                           [this, gid] { ledger_.erase(gid); })) {
      if (runtime::TraceBuffer* t = tr(g.thief))
        t->instant_at("drop", sim_.now(), g.victim);
    }
  }

  void on_grant_timeout(std::uint64_t gid) {
    if (terminated_) return;
    auto it = ledger_.find(gid);
    if (it == ledger_.end()) return;  // acked in the meantime
    GrantInFlight& g = it->second;
    if (!alive_[g.victim]) return;  // resolved at the victim's death sweep
    if (death_known_[g.thief]) {
      // Thief confirmed dead. An undelivered batch goes back to the victim
      // (a delivered one was recovered with the thief's queue).
      if (!g.delivered) reclaim_grant(gid);
      else ledger_.erase(it);
      return;
    }
    transmit_grant(gid, /*retransmit=*/true);
  }

  /// Return an undelivered batch to its (alive) victim's queue. Only done
  /// on *confirmed* thief death: re-claiming on mere silence could execute
  /// a region twice.
  void reclaim_grant(std::uint64_t gid) {
    auto it = ledger_.find(gid);
    if (it == ledger_.end()) return;
    GrantInFlight& g = it->second;
    Location& v = locs_[g.victim];
    std::uint64_t recovered = 0;
    for (const std::uint32_t item : g.items) {
      if (completed_[item]) continue;
      v.queue.push_back(item);
      ++recovered;
    }
    result_.faults.regions_recovered += recovered;
    // The grant's on_send at the victim will never see its on_receive.
    safra_.on_send_cancelled(g.victim);
    safra_.taint(g.victim);
    ledger_.erase(it);
    if (recovered > 0 && !v.busy) start_next(g.victim);
  }

  void accept_grant(std::uint32_t thief,
                    const std::vector<std::uint32_t>& grant,
                    std::uint64_t req_id) {
    if (terminated_) return;
    Location& loc = locs_[thief];
    if (req_id != 0) {  // 0 = lifeline push: no request to settle
      bool counted = true;
      if (inject_.active())
        counted = loc.reqs_pending.erase(req_id) > 0;  // false: timed out
      if (counted && loc.outstanding > 0) --loc.outstanding;
    }
    if (!grant.empty()) {
      for (const std::uint32_t item : grant) {
        stolen_flag_[item] = true;
        loc.queue.push_back(item);
      }
      if (runtime::TraceBuffer* t = tr(thief)) {
        if (req_id != 0)
          t->flow_end_at("grant", sim_.now(),
                         runtime::trace_corr(thief, 0, req_id), grant.size());
        t->instant_at("migrate_in", sim_.now(), grant.size());
        t->counter_at("queue", sim_.now(), loc.queue.size());
      }
      if (req_id != 0) {
        loc.stage = 0;
        loc.backoff = config_.backoff_initial_s;
        loc.failed_rounds = 0;
      }
      if (!loc.busy) start_next(thief);
    }
  }

  void on_deny(std::uint32_t thief, std::uint64_t req_id) {
    if (terminated_ || !alive_[thief]) return;
    if (inject_.active() && locs_[thief].reqs_pending.erase(req_id) == 0)
      return;  // stale: the request already timed out
    resolve_deny(thief);
  }

  /// A request was answered empty (or timed out): when the whole round came
  /// back empty, escalate, back off, or give up probing.
  void resolve_deny(std::uint32_t thief) {
    Location& loc = locs_[thief];
    if (loc.outstanding > 0) --loc.outstanding;
    if (loc.outstanding == 0 && idle(loc)) {
      if (loc.stage + 1 < policy_.stages()) {
        ++loc.stage;
        issue_requests(thief);
        return;
      }
      ++loc.failed_rounds;
      if (policy_.kind() == StealPolicyKind::kLifeline)
        return;  // registered on the victims' lifelines; wait for a push
      if (loc.failed_rounds < config_.give_up_after) retry_later(thief);
    }
  }

  /// Lifeline mode: a location with surplus queued work pushes grants to
  /// registered waiters at its next communication point.
  void feed_lifelines(std::uint32_t rank) {
    if (terminated_ || policy_.kind() != StealPolicyKind::kLifeline) return;
    Location& loc = locs_[rank];
    while (!loc.lifeline_waiters.empty() && loc.queue.size() >= 2) {
      const std::uint32_t waiter = loc.lifeline_waiters.back();
      loc.lifeline_waiters.pop_back();
      if (!idle(locs_[waiter])) continue;  // found work elsewhere meanwhile
      if (inject_.active() && death_known_[waiter]) continue;
      const std::size_t n = std::min<std::size_t>(config_.steal_max_items,
                                                  loc.queue.size() / 2);
      if (n == 0) break;
      std::vector<std::uint32_t> grant;
      grant.reserve(n);
      std::uint64_t bytes = 0;
      for (std::size_t i = 0; i < n; ++i) {
        grant.push_back(loc.queue.back());
        loc.queue.pop_back();
        bytes += items_[grant.back()].bytes;
      }
      send_grant(rank, waiter, /*req_id=*/0, std::move(grant), bytes);
    }
  }

  void retry_later(std::uint32_t rank) {
    Location& loc = locs_[rank];
    const double delay = loc.backoff;
    loc.backoff = std::min(loc.backoff * 2.0, config_.backoff_max_s);
    sim_.schedule_in(delay, [this, rank] {
      Location& l = locs_[rank];
      if (terminated_ || !alive_[rank] || !idle(l) || l.outstanding > 0)
        return;
      l.stage = 0;
      issue_requests(rank);
    });
  }

  // --- fault machinery --------------------------------------------------

  void do_crash(std::uint32_t rank) {
    alive_[rank] = false;
    crash_time_[rank] = sim_.now();
    Location& loc = locs_[rank];
    if (runtime::TraceBuffer* t = tr(rank)) {
      // Close the open region span (its completion event will bail out on
      // !alive_) so the crash shows as a truncated span, then mark it.
      if (loc.busy) t->end_at("region", sim_.now(), loc.cur_item);
      t->instant_at("crash", sim_.now());
    }
    if (loc.busy) reexec_pending_[loc.cur_item] = true;  // partial work lost
    if (loc.holds_token) {
      loc.holds_token = false;
      ++result_.faults.tokens_lost;  // regeneration will recover the round
    }
    // Everything else — queued regions, parked requests, in-flight grants —
    // stays frozen until the heartbeat detector announces the death; that
    // detection latency is part of the measured recovery cost.
  }

  /// Ring predecessor by *announced* knowledge (the detector cannot peek at
  /// god-view liveness). Returns `rank` itself when it is the last one.
  std::uint32_t pred_known_alive(std::uint32_t rank) const {
    std::uint32_t pred = (rank + p_ - 1) % p_;
    while (pred != rank && death_known_[pred]) pred = (pred + p_ - 1) % p_;
    return pred;
  }

  /// First actually-alive rank after `rank` (recovery is god-view: the DES
  /// re-homes regions the way a real checkpoint/successor scheme would).
  std::uint32_t successor_alive(std::uint32_t rank) const {
    std::uint32_t succ = (rank + 1) % p_;
    while (succ != rank && !alive_[succ]) succ = (succ + 1) % p_;
    return succ;
  }

  void start_heartbeats() {
    if (p_ < 2) return;
    for (std::uint32_t r = 0; r < p_; ++r) {
      locs_[r].hb_target = pred_known_alive(r);
      // Stagger first probes across the period so they do not pile onto
      // one simulated instant.
      sim_.schedule_in(hb_period_ * static_cast<double>(r + 1) /
                           static_cast<double>(p_),
                       [this, r] { hb_tick(r); });
    }
  }

  void hb_tick(std::uint32_t r) {
    if (terminated_ || !alive_[r]) return;
    Location& loc = locs_[r];
    const std::uint32_t target = pred_known_alive(r);
    if (target == r) return;  // last announced-alive rank: nobody to probe
    if (target != loc.hb_target) {
      // Ring shifted under us; start a fresh probe history.
      loc.hb_target = target;
      loc.hb_misses = 0;
      loc.hb_acked = loc.hb_seq;
    }
    // Evaluate the previous probe before sending the next one.
    if (loc.hb_seq > loc.hb_acked) {
      ++loc.hb_misses;
      if (runtime::TraceBuffer* t = tr(r))
        t->instant_at("hb_miss", sim_.now(), target);
      if (loc.hb_misses >= hb_misses_required_ &&
          !death_known_[target] && !death_pending_[target]) {
        death_pending_[target] = true;
        sim_.schedule_in(broadcast_latency(),
                         [this, target] { on_death_known(target); });
      }
    } else {
      loc.hb_misses = 0;
    }
    ++loc.hb_seq;
    ++result_.faults.heartbeat_probes;
    const std::uint64_t seq = loc.hb_seq;
    // A dropped probe needs no handling here: the unanswered sequence
    // number is the miss signal.
    net_.send_control(r, target,
                      [this, r, target, seq] { hb_probe_at(r, target, seq); });
    sim_.schedule_in(hb_period_, [this, r] { hb_tick(r); });
  }

  /// Probe arrived at `target`. Heartbeats are runtime-level (answered by
  /// the communication layer even while the rank is busy executing), so a
  /// merely slow or busy rank is not declared dead — only silence from a
  /// crash (or message loss, fenced below) is.
  void hb_probe_at(std::uint32_t prober, std::uint32_t target,
                   std::uint64_t seq) {
    if (terminated_ || !alive_[target]) return;  // the dead do not ack
    net_.send_control(target, prober, [this, prober, seq] {
      if (terminated_ || !alive_[prober]) return;
      Location& l = locs_[prober];
      if (seq > l.hb_acked) l.hb_acked = seq;
    });
  }

  /// One-to-all dissemination down a binomial tree: log2(p) remote hops.
  double broadcast_latency() const {
    return config_.cluster.remote_latency_s *
           std::ceil(std::log2(static_cast<double>(std::max(2u, p_))));
  }

  /// The cluster now *knows* `d` is dead: repair the ring, fence a false
  /// positive, and re-home every region the rank still owned.
  void on_death_known(std::uint32_t d) {
    if (terminated_ || death_known_[d]) return;
    death_known_[d] = true;
    if (alive_[d]) {
      // False positive (probes/acks eaten by a lossy link): fence the
      // suspect so no region ever has two owners.
      ++result_.faults.fenced;
      if (runtime::TraceBuffer* t = tr(d))
        t->instant_at("fenced", sim_.now());
      do_crash(d);
    }
    if (runtime::TraceBuffer* t = tr(d))
      t->instant_at("death_known", sim_.now());
    safra_.mark_dead(d);
    // Any token computed against the old ring is unsound (the dead rank's
    // balance just moved to the leader): invalidate the round.
    ++token_generation_;
    round_active_ = false;
    Location& dead = locs_[d];
    dead.pending_requests.clear();
    dead.lifeline_waiters.clear();
    // Resolve ledger entries touching d. Collect first: resolution erases.
    std::vector<std::uint64_t> involved;
    for (const auto& [gid, g] : ledger_)
      if (g.victim == d || g.thief == d) involved.push_back(gid);
    std::vector<std::uint32_t> from_ledger;  // victim==d, undelivered
    for (const std::uint64_t gid : involved) {
      auto it = ledger_.find(gid);
      if (it == ledger_.end()) continue;
      GrantInFlight& g = it->second;
      if (g.thief == d) {
        // Delivered: the batch sits in d's queue and is recovered below.
        // Undelivered: back to the alive victim right away.
        if (!g.delivered) {
          reclaim_grant(gid);
          continue;
        }
        ledger_.erase(it);
        continue;
      }
      // g.victim == d. A delivered batch is fine where it is (its Safra
      // send/receive pair already balanced); an undelivered one is lost
      // with the sender — recover the regions, cancel the orphaned send
      // (whose balance mark_dead just folded into the leader).
      if (!g.delivered) {
        for (const std::uint32_t item : g.items) from_ledger.push_back(item);
        safra_.on_send_cancelled(safra_.leader());
      }
      ledger_.erase(it);
    }
    // Re-home d's unfinished regions to its ring successor.
    const std::uint32_t succ = successor_alive(d);
    if (succ != d) {
      Location& s = locs_[succ];
      std::uint64_t recovered = 0;
      auto recover = [&](std::uint32_t item) {
        if (completed_[item]) return;
        s.queue.push_back(item);
        ++recovered;
      };
      if (dead.busy) recover(dead.cur_item);  // will be re-executed
      for (const std::uint32_t item : dead.queue) recover(item);
      for (const std::uint32_t item : from_ledger) recover(item);
      dead.queue.clear();
      dead.busy = false;
      if (recovered > 0) {
        result_.faults.regions_recovered += recovered;
        // The successor just became active again: force a fresh white
        // detection round before termination can be declared.
        safra_.taint(succ);
        result_.faults.recovery_latency_max_s =
            std::max(result_.faults.recovery_latency_max_s,
                     sim_.now() - crash_time_[d]);
        if (!s.busy) start_next(succ);
      }
    }
    // Restart detection under the repaired ring.
    const std::uint32_t leader = safra_.leader();
    if (alive_[leader] && idle(locs_[leader]) && !round_active_)
      initiate_round();
  }

  // --- termination detection -------------------------------------------

  void initiate_round() {
    if (terminated_ || round_active_) return;
    round_active_ = true;
    ++result_.token_rounds;
    // Each round gets its own generation: an abandoned round's token (or
    // its regeneration timer) can then be recognized as stale.
    ++token_generation_;
    if (inject_.active()) arm_token_regeneration();
    send_token(safra_.leader(), safra_.initiate());
  }

  void arm_token_regeneration() {
    const std::uint64_t gen = token_generation_;
    sim_.schedule_in(token_regen_timeout_, [this, gen] {
      if (terminated_ || gen != token_generation_ || !round_active_) return;
      // The round's token vanished (dropped, or died with a rank before
      // the crash was announced): abandon the round and let the leader
      // start a fresh one. The timeout doubles so a slow-but-alive round
      // is not chased forever.
      ++result_.faults.tokens_regenerated;
      ++token_generation_;
      round_active_ = false;
      token_regen_timeout_ *= 2.0;
      const std::uint32_t leader = safra_.leader();
      if (alive_[leader] && idle(locs_[leader])) initiate_round();
      // Otherwise the leader's next on_become_idle restarts detection.
    });
  }

  void send_token(std::uint32_t from,
                  runtime::SafraTermination::Token token) {
    const std::uint32_t to = safra_.next_of(from);
    const std::uint64_t gen = token_generation_;
    if (runtime::TraceBuffer* t = tr(from))
      t->instant_at("token", sim_.now(), to);
    const bool forwarded = net_.send_token(from, to, [this, to, token, gen] {
      if (terminated_) return;
      if (gen != token_generation_) return;  // stale round: discard
      if (!alive_[to]) {
        // Sent into a crash window: the token is gone until regeneration.
        ++result_.faults.tokens_lost;
        return;
      }
      Location& loc = locs_[to];
      if (idle(loc)) {
        process_token(to, token);
      } else {
        loc.holds_token = true;
        loc.token = token;
        loc.token_gen = gen;
      }
    });
    if (!forwarded) {
      // Reliable hop-by-hop forwarding: the sender notices the missing
      // ack and resends (the handshake is folded into the retry delay).
      // Without this, a lossy ring of p hops completes a round with
      // probability (1-q)^p — essentially never — and end-to-end
      // regeneration alone cannot terminate. Regeneration stays as the
      // backstop for tokens that die *with* their holder.
      sim_.schedule_in(token_retry_delay_, [this, from, token, gen] {
        if (terminated_ || gen != token_generation_ || !alive_[from]) return;
        send_token(from, token);
      });
    }
  }

  void process_token(std::uint32_t rank,
                     runtime::SafraTermination::Token token) {
    // A token reaching the leader proves the ring is passable: stop
    // escalating the regeneration timeout.
    if (rank == safra_.leader()) token_regen_timeout_ = token_regen_initial_;
    const auto decision = safra_.on_token_at_idle(rank, token);
    switch (decision.action) {
      case runtime::SafraTermination::Action::kTerminate: {
        terminated_ = true;
        if (runtime::TraceBuffer* t = tr(rank))
          t->instant_at("terminate", sim_.now());
        // Completion broadcast down a binomial tree: log2(p) remote hops.
        result_.makespan_s = sim_.now() + broadcast_latency();
        return;
      }
      case runtime::SafraTermination::Action::kForward: {
        if (rank == safra_.leader()) {
          // A round just failed; pace the next one so the ring is not
          // saturated by detection traffic.
          round_active_ = false;
          const double pace =
              std::max(config_.cluster.remote_latency_s * 16.0,
                       std::min(1e-2, 0.02 * sim_.now()));
          sim_.schedule_in(pace, [this] {
            const std::uint32_t leader = safra_.leader();
            if (!terminated_ && alive_[leader] && idle(locs_[leader]))
              initiate_round();
          });
          return;
        }
        send_token(rank, decision.token);
        return;
      }
      case runtime::SafraTermination::Action::kHold:
        return;
    }
  }

  std::span<const WsItem> items_;
  std::uint32_t p_;
  WsConfig config_;
  StealPolicy policy_;
  runtime::SafraTermination safra_;
  Xoshiro256ss rng_;
  runtime::FaultInjector inject_;
  runtime::Simulator sim_;
  std::vector<Location> locs_;
  std::vector<bool> stolen_flag_;
  std::vector<bool> completed_;       ///< executed somewhere (durable)
  std::vector<bool> reexec_pending_;  ///< lost mid-execution at a crash
  std::vector<bool> alive_;           ///< god view: crash already fired
  std::vector<bool> death_known_;     ///< announced cluster-wide
  std::vector<bool> death_pending_;   ///< announcement broadcast in flight
  std::vector<double> crash_time_;
  std::vector<runtime::TraceBuffer*> trace_;  ///< per rank; empty = off
  std::map<std::uint64_t, GrantInFlight> ledger_;
  WsResult result_;
  /// The transport seam: declared after every member it references (sim_,
  /// config_, inject_, result_) so its construction sees them initialized.
  runtime::DesTransport net_{sim_, config_.cluster, inject_, result_.faults,
                             p_};
  bool terminated_ = false;
  bool round_active_ = false;
  std::uint64_t next_req_id_ = 1;    ///< 0 is the lifeline-push sentinel
  std::uint64_t next_grant_id_ = 1;
  std::uint64_t token_generation_ = 0;
  double steal_timeout_ = 0.0;
  double hb_period_ = 0.0;
  std::uint32_t hb_misses_required_ = 3;
  double token_regen_initial_ = 0.0;
  double token_regen_timeout_ = 0.0;
  double token_retry_delay_ = 0.0;
};

}  // namespace

WsResult simulate_work_stealing(std::span<const WsItem> items,
                                std::span<const std::uint32_t> initial,
                                std::uint32_t p, const WsConfig& config) {
  assert(p > 0);
  assert(items.size() == initial.size());
  WsEngine engine(items, initial, p, config);
  return engine.run();
}

void publish(runtime::MetricsRegistry& reg, const WsResult& result,
             const std::string& prefix) {
  reg.add(prefix + "steal_requests", result.steal_requests);
  reg.add(prefix + "steal_grants", result.steal_grants);
  reg.add(prefix + "steal_denies", result.steal_denies);
  reg.add(prefix + "regions_migrated", result.regions_migrated);
  reg.add(prefix + "token_rounds", result.token_rounds);
  reg.add(prefix + "events", result.events);
  reg.set(prefix + "makespan_s", result.makespan_s);
  reg.set(prefix + "stolen_fraction", result.stolen_fraction());
  double busy = 0.0;
  runtime::Histogram& busy_hist = reg.histogram(prefix + "rank_busy_us");
  for (const double b : result.busy_s) {
    busy += b;
    busy_hist.observe(b * 1e6);
  }
  reg.set(prefix + "busy_total_s", busy);
  publish(reg, result.faults, prefix + "fault_");
}

}  // namespace pmpl::loadbal
