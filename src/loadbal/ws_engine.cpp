#include "loadbal/ws_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "runtime/des.hpp"
#include "runtime/termination.hpp"

namespace pmpl::loadbal {

namespace {

/// Whole simulation state; one instance per simulate_work_stealing call.
class WsEngine {
 public:
  WsEngine(std::span<const WsItem> items,
           std::span<const std::uint32_t> initial, std::uint32_t p,
           const WsConfig& config)
      : items_(items),
        p_(p),
        config_(config),
        policy_(config.policy, p, config.rand_k),
        safra_(p),
        rng_(config.seed),
        locs_(p) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      assert(initial[i] < p);
      locs_[initial[i]].queue.push_back(static_cast<std::uint32_t>(i));
    }
    result_.busy_s.assign(p, 0.0);
    result_.local_tasks.assign(p, 0);
    result_.stolen_tasks.assign(p, 0);
    result_.final_owner.assign(items.size(), 0);
    stolen_flag_.assign(items.size(), false);
  }

  WsResult run() {
    for (std::uint32_t i = 0; i < p_; ++i) start_next(i);
    // Token-ring termination works for any p (the p==1 ring is rank 0
    // alone, detecting on its first idle).
    sim_.run();
    // If the calendar drained without detection (shouldn't happen), fall
    // back to the last event time.
    if (!terminated_) result_.makespan_s = sim_.now();
    result_.events = sim_.events_processed();
    return std::move(result_);
  }

 private:
  struct Location {
    std::deque<std::uint32_t> queue;
    bool busy = false;
    std::uint32_t failed_rounds = 0;  ///< consecutive fully-denied rounds
    std::uint32_t outstanding = 0;    ///< replies still expected
    std::uint32_t stage = 0;
    double backoff = 0.0;
    bool holds_token = false;
    runtime::SafraTermination::Token token;
    /// Steal requests that arrived while this location was executing a
    /// region: single-threaded locations only progress communication
    /// between tasks (STAPL RMI polls at scheduling points), so they are
    /// serviced when the current region completes.
    std::vector<std::uint32_t> pending_requests;
    /// Lifeline mode: thieves whose steal was denied and who now wait for
    /// a pushed grant when this location next has surplus work.
    std::vector<std::uint32_t> lifeline_waiters;
  };

  bool idle(const Location& loc) const noexcept {
    return !loc.busy && loc.queue.empty();
  }

  void start_next(std::uint32_t rank) {
    if (terminated_) return;
    Location& loc = locs_[rank];
    if (loc.queue.empty()) {
      on_become_idle(rank);
      return;
    }
    const std::uint32_t item = loc.queue.front();
    loc.queue.pop_front();
    loc.busy = true;
    const double service = items_[item].service_s;
    result_.busy_s[rank] += service;
    sim_.schedule_in(service, [this, rank, item] {
      Location& l = locs_[rank];
      l.busy = false;
      result_.final_owner[item] = rank;
      if (stolen_flag_[item])
        ++result_.stolen_tasks[rank];
      else
        ++result_.local_tasks[rank];
      // Serve steal requests that arrived mid-execution before starting
      // the next region.
      if (!l.pending_requests.empty()) {
        const auto pending = std::move(l.pending_requests);
        l.pending_requests.clear();
        for (const std::uint32_t thief : pending) serve_request(rank, thief);
      }
      feed_lifelines(rank);
      start_next(rank);
    });
  }

  void on_become_idle(std::uint32_t rank) {
    if (terminated_) return;
    Location& loc = locs_[rank];
    // Forward a held token now that we are idle.
    if (loc.holds_token) {
      loc.holds_token = false;
      process_token(rank, loc.token);
    }
    // Rank 0 drives detection rounds whenever it idles with no round
    // in flight.
    if (rank == 0 && !round_active_) initiate_round();
    // Begin stealing unless a request round is already outstanding.
    loc.stage = 0;
    loc.backoff = config_.backoff_initial_s;
    loc.failed_rounds = 0;  // fresh idleness: probe again
    if (loc.outstanding == 0) issue_requests(rank);
  }

  void issue_requests(std::uint32_t rank) {
    if (terminated_) return;
    Location& loc = locs_[rank];
    if (!idle(loc)) return;
    const auto victims = policy_.victims(rank, loc.stage, rng_);
    if (victims.empty()) {
      retry_later(rank);
      return;
    }
    loc.outstanding += static_cast<std::uint32_t>(victims.size());
    for (const std::uint32_t v : victims) {
      ++result_.steal_requests;
      sim_.schedule_in(config_.cluster.latency(rank, v),
                       [this, v, rank] { on_request(v, rank); });
    }
  }

  void on_request(std::uint32_t victim, std::uint32_t thief) {
    if (terminated_) return;
    Location& loc = locs_[victim];
    // A busy location cannot progress communication until its current
    // region completes; park the request.
    if (loc.busy) {
      loc.pending_requests.push_back(thief);
      return;
    }
    serve_request(victim, thief);
  }

  void serve_request(std::uint32_t victim, std::uint32_t thief) {
    if (terminated_) return;
    Location& loc = locs_[victim];
    // Grant when the victim can spare work: up to steal_max_items from the
    // back of the queue, never more than half (the victim keeps the front
    // it is about to execute).
    std::size_t n = std::min<std::size_t>(config_.steal_max_items,
                                          loc.queue.size() / 2);
    if (n == 0 && loc.queue.size() == 1 && loc.busy) n = 1;
    if (n == 0) {
      ++result_.steal_denies;
      if (policy_.kind() == StealPolicyKind::kLifeline &&
          std::find(loc.lifeline_waiters.begin(), loc.lifeline_waiters.end(),
                    thief) == loc.lifeline_waiters.end())
        loc.lifeline_waiters.push_back(thief);
      sim_.schedule_in(config_.cluster.latency(victim, thief),
                       [this, thief] { on_reply(thief, {}); });
      return;
    }
    std::vector<std::uint32_t> grant;
    grant.reserve(n);
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      grant.push_back(loc.queue.back());
      loc.queue.pop_back();
      bytes += items_[grant.back()].bytes;
    }
    ++result_.steal_grants;
    result_.regions_migrated += grant.size();
    // Work-bearing message: participates in termination accounting.
    safra_.on_send(victim);
    sim_.schedule_in(config_.cluster.transfer_time(victim, thief, bytes),
                     [this, thief, grant = std::move(grant)] {
                       safra_.on_receive(thief);
                       on_reply(thief, grant);
                     });
  }

  void on_reply(std::uint32_t thief, const std::vector<std::uint32_t>& grant) {
    if (terminated_) return;
    Location& loc = locs_[thief];
    if (loc.outstanding > 0) --loc.outstanding;
    if (!grant.empty()) {
      for (const std::uint32_t item : grant) {
        stolen_flag_[item] = true;
        loc.queue.push_back(item);
      }
      loc.stage = 0;
      loc.backoff = config_.backoff_initial_s;
      loc.failed_rounds = 0;
      if (!loc.busy) start_next(thief);
      return;
    }
    // Deny: when the whole round came back empty, escalate, back off, or
    // give up probing (bounded search for work).
    if (loc.outstanding == 0 && idle(loc)) {
      if (loc.stage + 1 < policy_.stages()) {
        ++loc.stage;
        issue_requests(thief);
        return;
      }
      ++loc.failed_rounds;
      if (policy_.kind() == StealPolicyKind::kLifeline)
        return;  // registered on the victims' lifelines; wait for a push
      if (loc.failed_rounds < config_.give_up_after) retry_later(thief);
    }
  }

  /// Lifeline mode: a location with surplus queued work pushes grants to
  /// registered waiters at its next communication point.
  void feed_lifelines(std::uint32_t rank) {
    if (terminated_ || policy_.kind() != StealPolicyKind::kLifeline) return;
    Location& loc = locs_[rank];
    while (!loc.lifeline_waiters.empty() && loc.queue.size() >= 2) {
      const std::uint32_t waiter = loc.lifeline_waiters.back();
      loc.lifeline_waiters.pop_back();
      if (!idle(locs_[waiter])) continue;  // found work elsewhere meanwhile
      const std::size_t n = std::min<std::size_t>(config_.steal_max_items,
                                                  loc.queue.size() / 2);
      if (n == 0) break;
      std::vector<std::uint32_t> grant;
      grant.reserve(n);
      std::uint64_t bytes = 0;
      for (std::size_t i = 0; i < n; ++i) {
        grant.push_back(loc.queue.back());
        loc.queue.pop_back();
        bytes += items_[grant.back()].bytes;
      }
      ++result_.steal_grants;
      result_.regions_migrated += grant.size();
      safra_.on_send(rank);
      sim_.schedule_in(
          config_.cluster.transfer_time(rank, waiter, bytes),
          [this, waiter, grant = std::move(grant)] {
            safra_.on_receive(waiter);
            Location& w = locs_[waiter];
            for (const std::uint32_t item : grant) {
              stolen_flag_[item] = true;
              w.queue.push_back(item);
            }
            if (!w.busy) start_next(waiter);
          });
    }
  }

  void retry_later(std::uint32_t rank) {
    Location& loc = locs_[rank];
    const double delay = loc.backoff;
    loc.backoff = std::min(loc.backoff * 2.0, config_.backoff_max_s);
    sim_.schedule_in(delay, [this, rank] {
      Location& l = locs_[rank];
      if (terminated_ || !idle(l) || l.outstanding > 0) return;
      l.stage = 0;
      issue_requests(rank);
    });
  }

  // --- termination detection -------------------------------------------

  void initiate_round() {
    if (terminated_ || round_active_) return;
    round_active_ = true;
    ++result_.token_rounds;
    send_token(0, safra_.initiate());
  }

  void send_token(std::uint32_t from,
                  runtime::SafraTermination::Token token) {
    const std::uint32_t to = safra_.next_of(from);
    sim_.schedule_in(config_.cluster.latency(from, to), [this, to, token] {
      if (terminated_) return;
      Location& loc = locs_[to];
      if (idle(loc)) {
        process_token(to, token);
      } else {
        loc.holds_token = true;
        loc.token = token;
      }
    });
  }

  void process_token(std::uint32_t rank,
                     runtime::SafraTermination::Token token) {
    const auto decision = safra_.on_token_at_idle(rank, token);
    switch (decision.action) {
      case runtime::SafraTermination::Action::kTerminate: {
        terminated_ = true;
        // Completion broadcast down a binomial tree: log2(p) remote hops.
        const double broadcast =
            config_.cluster.remote_latency_s *
            std::ceil(std::log2(static_cast<double>(std::max(2u, p_))));
        result_.makespan_s = sim_.now() + broadcast;
        return;
      }
      case runtime::SafraTermination::Action::kForward: {
        if (rank == 0) {
          // A round just failed; pace the next one so the ring is not
          // saturated by detection traffic.
          round_active_ = false;
          const double pace =
              std::max(config_.cluster.remote_latency_s * 16.0,
                       std::min(1e-2, 0.02 * sim_.now()));
          sim_.schedule_in(pace, [this] {
            if (!terminated_ && idle(locs_[0])) initiate_round();
          });
          return;
        }
        send_token(rank, decision.token);
        return;
      }
      case runtime::SafraTermination::Action::kHold:
        return;
    }
  }

  std::span<const WsItem> items_;
  std::uint32_t p_;
  WsConfig config_;
  StealPolicy policy_;
  runtime::SafraTermination safra_;
  Xoshiro256ss rng_;
  runtime::Simulator sim_;
  std::vector<Location> locs_;
  std::vector<bool> stolen_flag_;
  WsResult result_;
  bool terminated_ = false;
  bool round_active_ = false;
};

}  // namespace

WsResult simulate_work_stealing(std::span<const WsItem> items,
                                std::span<const std::uint32_t> initial,
                                std::uint32_t p, const WsConfig& config) {
  assert(p > 0);
  assert(items.size() == initial.size());
  WsEngine engine(items, initial, p, config);
  return engine.run();
}

}  // namespace pmpl::loadbal
