#pragma once
/// \file ws_engine.hpp
/// Event-driven work-stealing simulation (Algorithm 3 of the paper).
///
/// Regions are tasks with measured service times; each location executes
/// its queue front-to-back, and an idle location issues steal requests per
/// the victim-selection policy. A victim grants half of its queued regions
/// from the *back* of its queue (ownership transfer, paper §II-A/III-A);
/// transfers pay latency plus payload-bytes/bandwidth. The phase ends when
/// Safra token-ring termination detection confirms global quiescence, so
/// detection cost is part of the measured schedule.
///
/// Only work-bearing messages (grants) participate in termination
/// accounting: requests and denies cannot activate a process, so they are
/// tracked as overhead but do not dirty the token. Thieves retry with
/// exponential backoff until termination, so late imbalance is still
/// stolen.

#include <cstdint>
#include <span>
#include <vector>

#include "loadbal/metrics.hpp"
#include "loadbal/steal_policy.hpp"
#include "runtime/topology.hpp"

namespace pmpl::loadbal {

/// One schedulable task (a region's planning work for one phase).
struct WsItem {
  double service_s = 0.0;   ///< measured execution time
  std::uint64_t bytes = 0;  ///< migration payload (region + its roadmap)
};

/// Engine configuration.
struct WsConfig {
  StealPolicyKind policy = StealPolicyKind::kHybrid;
  std::uint32_t rand_k = 8;  ///< victims per RAND-K attempt (paper: 8)
  runtime::ClusterSpec cluster = runtime::ClusterSpec::hopper();
  std::uint64_t seed = 1;
  double backoff_initial_s = 5e-6;
  double backoff_max_s = 1e-2;
  /// A thief stops probing after this many consecutive fully-denied
  /// escalation rounds (it still serves requests and the token). Real
  /// schedulers bound probing to avoid congestion; this is also what makes
  /// "few processors are able to find work once they have exhausted their
  /// local regions" (paper §IV-C2) appear at scale.
  std::uint32_t give_up_after = 3;
  /// Regions granted per steal, taken from the back of the victim's queue
  /// (ownership transfer). Capped at half the victim's queue. Small grants
  /// are what make work stealing "random and non-exact" (paper §IV-C2)
  /// compared with a global repartition.
  std::uint32_t steal_max_items = 1;
};

/// Simulation outcome.
struct WsResult {
  double makespan_s = 0.0;  ///< time of confirmed global termination
  std::vector<double> busy_s;              ///< per location
  std::vector<std::uint64_t> local_tasks;  ///< executed, originally owned
  std::vector<std::uint64_t> stolen_tasks; ///< executed, stolen (Fig 9)
  Assignment final_owner;                  ///< executor of each item
  std::uint64_t steal_requests = 0;
  std::uint64_t steal_grants = 0;
  std::uint64_t steal_denies = 0;
  std::uint64_t regions_migrated = 0;
  std::uint64_t token_rounds = 0;
  std::uint64_t events = 0;

  /// Fraction of executed tasks that were stolen.
  double stolen_fraction() const noexcept {
    std::uint64_t s = 0, t = 0;
    for (std::size_t i = 0; i < stolen_tasks.size(); ++i) {
      s += stolen_tasks[i];
      t += stolen_tasks[i] + local_tasks[i];
    }
    return t ? static_cast<double>(s) / static_cast<double>(t) : 0.0;
  }
};

/// Simulate work stealing of `items` initially distributed by `initial`
/// (item -> location) across `p` locations. Deterministic per config seed.
WsResult simulate_work_stealing(std::span<const WsItem> items,
                                std::span<const std::uint32_t> initial,
                                std::uint32_t p, const WsConfig& config);

}  // namespace pmpl::loadbal
