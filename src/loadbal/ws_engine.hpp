#pragma once
/// \file ws_engine.hpp
/// Event-driven work-stealing simulation (Algorithm 3 of the paper).
///
/// Regions are tasks with measured service times; each location executes
/// its queue front-to-back, and an idle location issues steal requests per
/// the victim-selection policy. A victim grants half of its queued regions
/// from the *back* of its queue (ownership transfer, paper §II-A/III-A);
/// transfers pay latency plus payload-bytes/bandwidth. The phase ends when
/// Safra token-ring termination detection confirms global quiescence, so
/// detection cost is part of the measured schedule.
///
/// Only work-bearing messages (grants) participate in termination
/// accounting: requests and denies cannot activate a process, so they are
/// tracked as overhead but do not dirty the token. Thieves retry with
/// exponential backoff until termination, so late imbalance is still
/// stolen.
///
/// Fault tolerance (active only when WsConfig::faults is non-empty; an
/// empty plan reproduces the fault-free event stream bit-for-bit):
///  - steal requests and grants carry ids; requests time out into denies
///    and are retried, grants are acknowledged and retransmitted until
///    acked, so a lossy link can delay a region but never lose it.
///  - a heartbeat detector (each rank probes its ring predecessor) declares
///    unresponsive ranks dead after `heartbeat_misses` missed acks; a false
///    positive is fenced (the suspect is killed) so the ring never has two
///    owners for one region.
///  - a dead rank's queued and in-progress regions are recovered by its
///    ring successor; re-executed in-progress work is counted in
///    FaultMetrics::reexecuted_service_s.
///  - Safra termination survives crashes via ring repair + leader
///    migration, and token loss via generation-stamped tokens regenerated
///    on a doubling timeout — termination is never declared early and
///    detection never hangs.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "loadbal/metrics.hpp"
#include "loadbal/steal_policy.hpp"
#include "runtime/fault.hpp"
#include "runtime/topology.hpp"
#include "runtime/trace.hpp"

namespace pmpl::runtime {
class MetricsRegistry;
}

namespace pmpl::loadbal {

/// One schedulable task (a region's planning work for one phase).
struct WsItem {
  double service_s = 0.0;   ///< measured execution time
  std::uint64_t bytes = 0;  ///< migration payload (region + its roadmap)
};

/// Engine configuration.
struct WsConfig {
  StealPolicyKind policy = StealPolicyKind::kHybrid;
  std::uint32_t rand_k = 8;  ///< victims per RAND-K attempt (paper: 8)
  runtime::ClusterSpec cluster = runtime::ClusterSpec::hopper();
  std::uint64_t seed = 1;
  double backoff_initial_s = 5e-6;
  double backoff_max_s = 1e-2;
  /// A thief stops probing after this many consecutive fully-denied
  /// escalation rounds (it still serves requests and the token). Real
  /// schedulers bound probing to avoid congestion; this is also what makes
  /// "few processors are able to find work once they have exhausted their
  /// local regions" (paper §IV-C2) appear at scale.
  std::uint32_t give_up_after = 3;
  /// Regions granted per steal, taken from the back of the victim's queue
  /// (ownership transfer). Capped at half the victim's queue. Small grants
  /// are what make work stealing "random and non-exact" (paper §IV-C2)
  /// compared with a global repartition.
  std::uint32_t steal_max_items = 1;
  /// Failure scenario. Empty (the default) leaves the engine's event
  /// stream bit-for-bit identical to the fault-free model: no timeouts,
  /// acks, heartbeats or fault-RNG draws are scheduled at all.
  runtime::FaultPlan faults;
  /// Resilience knobs, consulted only when `faults` is non-empty.
  /// 0 = derive from cluster latencies and the largest (stretched) region.
  double steal_timeout_s = 0.0;     ///< request/grant-ack timeout
  double heartbeat_period_s = 0.0;  ///< failure-detector probe period
  std::uint32_t heartbeat_misses = 3;  ///< consecutive misses => declared dead
  /// Tracing sink; nullptr (the default) disables tracing. When set, the
  /// engine creates one *virtual-time* track per rank named
  /// "<trace_prefix>rank <r>" and records region spans, steal
  /// request/deny/grant and migration instants, heartbeat-miss / fencing /
  /// death markers, Safra token hops, and crash/straggle/drop fault
  /// instants, all stamped in simulated seconds. Tracing draws no
  /// randomness and schedules no DES events, so a traced replay is
  /// event-for-event identical to an untraced one.
  runtime::Tracer* tracer = nullptr;
  std::string trace_prefix;        ///< track-name prefix (strategy label…)
  std::size_t trace_capacity = 0;  ///< per-rank ring size; 0 = tracer default
};

/// Simulation outcome.
struct WsResult {
  double makespan_s = 0.0;  ///< time of confirmed global termination
  std::vector<double> busy_s;              ///< per location
  std::vector<std::uint64_t> local_tasks;  ///< executed, originally owned
  std::vector<std::uint64_t> stolen_tasks; ///< executed, stolen (Fig 9)
  Assignment final_owner;                  ///< executor of each item
  std::uint64_t steal_requests = 0;
  std::uint64_t steal_grants = 0;
  std::uint64_t steal_denies = 0;
  std::uint64_t regions_migrated = 0;
  std::uint64_t token_rounds = 0;
  std::uint64_t events = 0;
  /// Completion time of each item (-1 when never executed, which can only
  /// happen when every location crashed before finishing the work).
  std::vector<double> completion_s;
  /// True when Safra detection confirmed global quiescence; false when the
  /// calendar drained without it (e.g. all locations crashed).
  bool terminated = false;
  /// True when the DES stopped at its runaway-event backstop; makespan and
  /// counters from such a run are meaningless and callers must fail loudly.
  bool hit_event_limit = false;
  runtime::FaultMetrics faults;  ///< all-zero for an empty FaultPlan

  /// Fraction of executed tasks that were stolen.
  double stolen_fraction() const noexcept {
    std::uint64_t s = 0, t = 0;
    for (std::size_t i = 0; i < stolen_tasks.size(); ++i) {
      s += stolen_tasks[i];
      t += stolen_tasks[i] + local_tasks[i];
    }
    return t ? static_cast<double>(s) / static_cast<double>(t) : 0.0;
  }
};

/// Simulate work stealing of `items` initially distributed by `initial`
/// (item -> location) across `p` locations. Deterministic per config seed.
WsResult simulate_work_stealing(std::span<const WsItem> items,
                                std::span<const std::uint32_t> initial,
                                std::uint32_t p, const WsConfig& config);

/// Publish a result's counters into `reg` as "<prefix>…" instruments
/// (steal/migration/token counters, makespan and busy-time gauges, a
/// per-rank busy-seconds histogram) plus the fault metrics under
/// "<prefix>fault_". Lives here rather than in loadbal/metrics.hpp because
/// this header already depends on that one.
void publish(runtime::MetricsRegistry& reg, const WsResult& result,
             const std::string& prefix);

}  // namespace pmpl::loadbal
