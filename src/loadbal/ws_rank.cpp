#include "loadbal/ws_rank.hpp"

#include <time.h>

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "runtime/metrics_registry.hpp"
#include "util/rng.hpp"
#include "util/state_file.hpp"

namespace pmpl::loadbal {

namespace {

using runtime::Frame;
using runtime::FrameType;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// kGrantAck with this grant id acknowledges a kTerminate instead.
constexpr std::uint64_t kTerminateAck = ~0ull;

/// Identity of the workload + protocol config a checkpoint belongs to; a
/// restarted incarnation refuses to resume from a different setup.
std::uint64_t config_fingerprint(const WsRankConfig& cfg, std::uint32_t p) {
  std::uint64_t key[5] = {cfg.seed, cfg.items.size(), p,
                          static_cast<std::uint64_t>(cfg.policy),
                          (std::uint64_t(cfg.steal_max_items) << 32) |
                              cfg.rand_k};
  return fnv1a64(key, sizeof key);
}

void put_bitmap(std::vector<char>& out, const std::vector<bool>& v) {
  for (bool b : v) out.push_back(b ? 1 : 0);
}

bool take_bitmap(StateReader& r, std::size_t n, std::vector<bool>& v) {
  if (r.left < n) {
    r.ok = false;
    return false;
  }
  v.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    char c = 0;
    r.take(&c, 1);
    v[i] = c != 0;
  }
  return r.ok;
}

void sleep_s(double s) {
  if (s <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(s);
  ts.tv_nsec = static_cast<long>((s - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

/// One rank's view of the protocol. Same state machine as the DES engine's
/// per-Location bookkeeping, driven by real frames instead of simulator
/// callbacks; see the header for where the two must differ.
class WsRank {
 public:
  WsRank(runtime::Transport& net, const WsRankConfig& cfg)
      : net_(net), cfg_(cfg), p_(net.size()), me_(net.rank()),
        policy_(cfg.policy, p_, cfg.rand_k),
        rng_(derive_seed(cfg.seed, 0xa11c0de ^ me_)) {
    const std::size_t n = cfg_.items.size();
    owner_.assign(n, 0);
    done_.assign(n, false);
    stolen_.assign(n, false);
    death_known_.assign(p_, false);
    peer_gen_rank_.assign(p_, 0);
    for (std::size_t i = 0; i < n; ++i) {
      owner_[i] = cfg_.initial[i];
      if (cfg_.initial[i] == me_)
        queue_.push_back(static_cast<std::uint32_t>(i));
    }
    result_.rank = me_;
    result_.generation = cfg_.generation;
    fingerprint_ = config_fingerprint(cfg_, p_);
    if (!cfg_.restore_path.empty()) restore();
    rejoining_ = cfg_.generation > 0;
    // Namespace this incarnation's request/grant ids above every earlier
    // incarnation's, so a zombie's grant id can never collide with a fresh
    // one in a peer's dedup set.
    const std::uint64_t floor_id =
        (static_cast<std::uint64_t>(cfg_.generation) << 32) + 1;
    next_req_id_ = std::max(next_req_id_, floor_id);
    next_grant_id_ = std::max(next_grant_id_, floor_id);
    if (cfg_.tracer)
      trace_ = cfg_.tracer->track(
          cfg_.trace_prefix + "rank " + std::to_string(me_),
          cfg_.trace_capacity);
  }

  WsRankResult run() {
    const double start = net_.now();
    last_activity_ = start;
    last_poll_ = start;
    regen_timeout_ = cfg_.token_regen_initial_s;
    hb_at_ = start + cfg_.heartbeat_period_s *
                         (static_cast<double>(me_ + 1) /
                          static_cast<double>(p_));
    if (!cfg_.checkpoint_path.empty())
      ckpt_at_ = start + cfg_.checkpoint_period_s;
    idle_entered_ = false;
    if (rejoining_) begin_rejoin(start);
    while (!terminated_ && !fenced_ && !superseded_) {
      if (cfg_.run_timeout_s > 0.0 &&
          net_.now() - last_activity_ > cfg_.run_timeout_s)
        break;  // liveness backstop: report non-termination, don't hang
      if (rejoining_) {
        rejoin_step();
        continue;
      }
      if (!queue_.empty()) {
        idle_entered_ = false;
        const std::uint32_t item = queue_.front();
        queue_.pop_front();
        // Completed elsewhere meanwhile, or migrated away by the rejoin
        // reconciliation — either way no longer this rank's to run.
        if (done_[item] || owner_[item] != me_) continue;
        execute(item);
        if (terminated_ || fenced_ || superseded_) break;
        serve_parked();
        feed_lifelines();
        continue;
      }
      if (!idle_entered_) {
        idle_entered_ = true;
        on_become_idle();
      }
      idle_step();
    }
    finish(start);
    return std::move(result_);
  }

 private:
  struct InFlight {
    std::uint32_t thief = 0;
    std::uint64_t req_id = 0;
    std::vector<std::uint32_t> items;
    double retransmit_at = 0.0;
    double timeout = 0.0;
  };

  // --- durability (DESIGN.md §5i) --------------------------------------

  /// Is `item` inside any unacked outgoing grant? Such regions are the
  /// thief's problem (ack) or the reclaim path's (death) — never queued
  /// or claimed directly.
  bool in_ledger(std::uint32_t item) const {
    for (const auto& [gid, g] : ledger_)
      if (std::find(g.items.begin(), g.items.end(), item) != g.items.end())
        return true;
    return false;
  }

  void restore() {
    auto c = load_rank_checkpoint(cfg_.restore_path);
    if (!c || c->fingerprint != fingerprint_ || c->rank != me_ ||
        c->owner.size() != owner_.size() || c->death_known.size() != p_)
      return;  // fresh start; the rejoin sync rebuilds the view
    rng_.set_state(c->rng_state);
    owner_ = c->owner;
    done_ = c->done;
    stolen_ = c->stolen;
    death_known_ = c->death_known;
    death_known_[me_] = false;  // that fence died with the old incarnation
    peer_gen_rank_ = c->peer_gen;
    queue_.assign(c->queue.begin(), c->queue.end());
    result_.executed = c->executed;
    for (const RankGrantRecord& g : c->ledger) {
      InFlight fl;
      fl.thief = g.thief;
      fl.req_id = g.req_id;
      fl.items = g.items;
      fl.timeout = cfg_.grant_timeout_s;
      fl.retransmit_at = 0.0;  // retransmit immediately
      ledger_.emplace(g.grant_id, std::move(fl));
    }
    seen_grants_.insert(c->seen_grants.begin(), c->seen_grants.end());
    next_req_id_ = c->next_req_id;
    next_grant_id_ = c->next_grant_id;
    result_.busy_s = c->busy_s;
    counters_from(c->counters);
    // Self-heal: a region the directory credits to this rank that is in
    // neither the restored queue nor the grant ledger was in flight at
    // the crash (typically mid-execution); re-queue it.
    std::vector<bool> queued(owner_.size(), false);
    for (const std::uint32_t item : queue_) queued[item] = true;
    for (std::size_t i = 0; i < owner_.size(); ++i)
      if (owner_[i] == me_ && !done_[i] && !queued[i] &&
          !in_ledger(static_cast<std::uint32_t>(i)))
        queue_.push_back(static_cast<std::uint32_t>(i));
    result_.restored = true;
  }

  void save_checkpoint() {
    if (cfg_.checkpoint_path.empty()) return;
    RankCheckpoint c;
    c.rank = me_;
    c.generation = cfg_.generation;
    c.fingerprint = fingerprint_;
    rng_.state(c.rng_state);
    c.queue.assign(queue_.begin(), queue_.end());
    c.owner = owner_;
    c.done = done_;
    c.stolen = stolen_;
    c.death_known = death_known_;
    c.peer_gen = peer_gen_rank_;
    c.executed = result_.executed;
    c.ledger.reserve(ledger_.size());
    for (const auto& [gid, g] : ledger_)
      c.ledger.push_back({g.thief, gid, g.req_id, g.items});
    c.seen_grants.assign(seen_grants_.begin(), seen_grants_.end());
    c.next_req_id = next_req_id_;
    c.next_grant_id = next_grant_id_;
    c.busy_s = result_.busy_s;
    counters_to(c.counters);
    if (save_rank_checkpoint(c, cfg_.checkpoint_path))
      ++result_.checkpoints_written;
    ckpt_at_ = net_.now() + cfg_.checkpoint_period_s;
    if (net_.now() >= flight_at_) save_flight_record();
  }

  /// Persist the whole trace ring (every track of the attached tracer)
  /// through the atomic state_file container. Serializing the ring is far
  /// heavier than a checkpoint, so writes are throttled by
  /// flight_record_period_s; a SIGKILL loses at most that much trace.
  void save_flight_record() {
    flight_at_ = net_.now() + cfg_.flight_record_period_s;
    if (cfg_.flight_recorder_path.empty() || !cfg_.tracer) return;
    runtime::TraceSnapshot snap = runtime::snapshot_tracer(*cfg_.tracer);
    snap.rank = me_;
    snap.generation = cfg_.generation;
    (void)runtime::save_trace_snapshot(snap, cfg_.flight_recorder_path);
  }

  void counters_to(std::uint64_t out[14]) const {
    const std::uint64_t v[14] = {
        result_.local_tasks,       result_.stolen_tasks,
        result_.steal_requests,    result_.steal_grants,
        result_.steal_denies,      result_.regions_migrated,
        result_.token_rounds,      result_.steal_retries,
        result_.grant_retransmits, result_.regions_recovered,
        result_.heartbeat_probes,  result_.heartbeat_misses,
        result_.deaths_detected,   result_.tokens_regenerated};
    std::copy(v, v + 14, out);
  }

  void counters_from(const std::uint64_t in[14]) {
    result_.local_tasks = in[0];
    result_.stolen_tasks = in[1];
    result_.steal_requests = in[2];
    result_.steal_grants = in[3];
    result_.steal_denies = in[4];
    result_.regions_migrated = in[5];
    result_.token_rounds = in[6];
    result_.steal_retries = in[7];
    result_.grant_retransmits = in[8];
    result_.regions_recovered = in[9];
    result_.heartbeat_probes = in[10];
    result_.heartbeat_misses = in[11];
    result_.deaths_detected = in[12];
    result_.tokens_regenerated = in[13];
  }

  /// Read the dead rank's newest durable checkpoint (when a shared
  /// checkpoint directory is configured) and merge its completed-region
  /// bits before anything is reclaimed or re-homed: a completion whose
  /// kRegionDone broadcast was cut short by the crash must not be
  /// re-executed. The ring successor re-broadcasts what it learned so
  /// every directory converges.
  void merge_peer_checkpoint(std::uint32_t d) {
    if (cfg_.checkpoint_dir.empty()) return;
    std::optional<RankCheckpoint> best;
    for (std::uint32_t g = 0; g <= peer_gen_rank_[d] + 4; ++g) {
      auto c = load_rank_checkpoint(
          rank_checkpoint_path(cfg_.checkpoint_dir, d, g));
      if (c && c->fingerprint == fingerprint_ && c->rank == d &&
          c->done.size() == done_.size() &&
          (!best || c->generation >= best->generation))
        best = std::move(c);
    }
    if (!best) return;
    std::vector<std::uint32_t> learned;
    for (std::size_t i = 0; i < done_.size(); ++i)
      if (best->done[i] && !done_[i]) {
        done_[i] = true;
        learned.push_back(static_cast<std::uint32_t>(i));
      }
    if (learned.empty()) return;
    if (next_known_alive(d) == me_) {
      Frame f;
      f.type = FrameType::kRegionDone;
      for (const std::uint32_t item : learned) {
        f.a = item;
        broadcast(f);
      }
    }
  }

  // --- restart / rejoin (DESIGN.md §5i) --------------------------------

  void begin_rejoin(double now) {
    my_black_ = true;  // this incarnation's arrival invalidates any round
    // Durable ground truth before asking anyone: every completion is
    // checkpointed *before* its kRegionDone broadcast, so the union of
    // every peer's newest on-disk checkpoint covers every completed
    // region — even when the whole mesh finished and exited while this
    // incarnation was being forked. Without it, a rejoiner reviving into
    // a dead cluster rebuilds its queue from a stale directory and
    // re-executes regions that are already done (benign for the roadmap
    // hash, fatal for the zero-duplicate-execution guarantee).
    for (std::uint32_t r = 0; r < p_; ++r)
      if (r != me_) merge_peer_checkpoint(r);
    rejoin_deadline_ = now + cfg_.rejoin_timeout_s;
    rejoin_resend_at_ = 0.0;
    rejoin_replied_.assign(p_, false);
    rejoin_replied_[me_] = true;
    if (trace_) trace_->instant_at("rejoin", now, cfg_.generation);
  }

  /// One iteration of the rejoin loop: retransmit kRejoin to silent live
  /// peers, run the normal timers (heartbeats are answered by handle()),
  /// and reconcile once everyone replied or the deadline passed.
  void rejoin_step() {
    timers();
    if (terminated_ || fenced_ || superseded_) return;
    const double now = net_.now();
    bool all = true;
    for (std::uint32_t r = 0; r < p_; ++r)
      if (!rejoin_replied_[r] && !death_known_[r]) all = false;
    if (all || now >= rejoin_deadline_) {
      finalize_rejoin();
      return;
    }
    if (now >= rejoin_resend_at_) {
      rejoin_resend_at_ = now + cfg_.rejoin_retransmit_s;
      Frame f;
      f.type = FrameType::kRejoin;
      f.a = cfg_.generation;
      for (std::size_t i = 0; i < done_.size(); ++i)
        if (done_[i]) f.items.push_back(static_cast<std::uint32_t>(i));
      for (std::uint32_t r = 0; r < p_; ++r)
        if (r != me_ && !rejoin_replied_[r] && !death_known_[r]) send(r, f);
    }
    drain(std::min(cfg_.idle_poll_s,
                   std::max(0.0, rejoin_deadline_ - now)));
  }

  /// Rebuild the queue under the synchronized directory: drop regions the
  /// peers claimed or completed, adopt regions their directories still
  /// credit to this rank (covers a lost checkpoint), and re-queue anything
  /// the restored directory credits here that went missing.
  void finalize_rejoin() {
    rejoining_ = false;
    for (const std::uint32_t i : rejoin_yours_)
      if (!done_[i] && rejoin_claimed_.count(i) == 0) owner_[i] = me_;
    std::deque<std::uint32_t> q;
    std::vector<bool> queued(owner_.size(), false);
    for (const std::uint32_t item : queue_) {
      if (done_[item] || owner_[item] != me_ || queued[item]) continue;
      queued[item] = true;
      q.push_back(item);
    }
    for (std::size_t i = 0; i < owner_.size(); ++i) {
      const auto item = static_cast<std::uint32_t>(i);
      if (owner_[i] == me_ && !done_[i] && !queued[i] && !in_ledger(item))
        q.push_back(item);
    }
    queue_ = std::move(q);
    rejoin_claimed_.clear();
    rejoin_yours_.clear();
    my_black_ = true;
    idle_entered_ = false;
    last_activity_ = net_.now();
    if (trace_) trace_->counter_at("queue", net_.now(), queue_.size());
    save_checkpoint();
    maybe_process_token();
  }

  // --- execution --------------------------------------------------------

  void execute(std::uint32_t item) {
    const double dur = cfg_.items[item].service_s * cfg_.time_scale;
    if (trace_) {
      trace_->counter_at("queue", net_.now(), queue_.size());
      trace_->begin_at("region", net_.now(), item);
    }
    busy_ = true;
    double elapsed = 0.0;
    while (elapsed < dur && !terminated_ && !fenced_ && !superseded_ &&
           !done_[item]) {
      const double chunk = std::min(cfg_.slice_s, dur - elapsed);
      sleep_s(chunk);
      elapsed += chunk;
      // Poll between slices: answer heartbeats, run timers, park steals.
      drain(0.0);
      timers();
    }
    busy_ = false;
    // One last poll before the completion becomes ledger. A SIGSTOP that
    // lands between the final slice and complete() otherwise commits the
    // region on resume without ever observing what arrived during the
    // freeze — a death notice naming this rank (it must fence, not
    // complete), or a kRegionDone for this very region from the successor
    // that re-homed it off our stale checkpoint (completing too would put
    // the region in two final ledgers). The remaining unsynchronized
    // window is the straight-line code below — microseconds, down from
    // the full slice.
    drain(0.0);
    if (trace_) trace_->end_at("region", net_.now(), item);
    if (terminated_ || fenced_ || superseded_) return;
    if (done_[item]) return;  // a peer completed it first: their ledger
    result_.busy_s += dur;
    complete(item);
  }

  void complete(std::uint32_t item) {
    done_[item] = true;
    owner_[item] = me_;
    last_activity_ = net_.now();
    // Durability before visibility: once any peer hears this kRegionDone,
    // a restarted incarnation must never report the region undone.
    save_checkpoint();
    // Freeze fence, between the durable write and the ledger claim. A
    // SIGSTOP anywhere since the last poll means peers may have declared
    // this rank dead off the *pre*-completion checkpoint and re-homed the
    // region; claiming it now would put it in two final ledgers. Re-poll
    // and stand down if so. The durable write above is the arbiter for
    // every later freeze: once the renamed checkpoint records the done
    // bit, a death-merge sees it and nobody re-homes, so the claim below
    // is safe no matter where a later freeze lands.
    if (net_.now() - last_poll_ > cfg_.heartbeat_period_s) {
      drain(0.0);
      timers();
      if (terminated_ || fenced_ || superseded_) return;
    }
    result_.executed.push_back(item);
    if (stolen_[item])
      ++result_.stolen_tasks;
    else
      ++result_.local_tasks;
    Frame f;
    f.type = FrameType::kRegionDone;
    f.a = item;
    broadcast(f);
  }

  // --- idle loop --------------------------------------------------------

  void on_become_idle() {
    stage_ = 0;
    backoff_ = cfg_.retry_backoff_initial_s;
    failed_rounds_ = 0;
    retry_at_ = kInf;
    maybe_process_token();
    if (outstanding_ == 0) issue_requests();
  }

  void idle_step() {
    timers();
    maybe_process_token();
    if (terminated_ || fenced_ || superseded_) return;
    if (leader() == me_ && !round_active_ && net_.now() >= pace_at_)
      initiate_round();
    double next = next_deadline();
    const double wait =
        std::min(cfg_.idle_poll_s, std::max(0.0, next - net_.now()));
    drain(wait);
  }

  /// Earliest armed timer deadline.
  double next_deadline() const {
    double t = hb_at_;
    if (!req_deadline_.empty())
      for (const auto& [id, d] : req_deadline_) t = std::min(t, d);
    for (const auto& [gid, g] : ledger_) t = std::min(t, g.retransmit_at);
    if (retry_at_ < kInf) t = std::min(t, retry_at_);
    if (leader() == me_) {
      if (round_active_) t = std::min(t, regen_at_);
      else t = std::min(t, pace_at_);
    }
    return t;
  }

  void timers() {
    const double now = net_.now();
    // Steal-request timeouts: treat silence as a deny.
    while (true) {
      std::uint64_t victim_id = 0;
      bool found = false;
      for (const auto& [id, d] : req_deadline_)
        if (d <= now) {
          victim_id = id;
          found = true;
          break;
        }
      if (!found) break;
      req_deadline_.erase(victim_id);
      if (reqs_pending_.erase(victim_id) > 0) {
        ++result_.steal_retries;
        resolve_deny();
      }
    }
    // Grant retransmits.
    for (auto& [gid, g] : ledger_) {
      if (g.retransmit_at > now) continue;
      if (death_known_[g.thief]) continue;  // resolved by handle_death
      ++result_.grant_retransmits;
      transmit_grant(gid, g);
    }
    if (now >= hb_at_) hb_tick();
    if (leader() == me_ && round_active_ && now >= regen_at_) {
      // The round's token vanished (receiver-side drop, or it was
      // forwarded into a crash): abandon and re-initiate.
      ++result_.tokens_regenerated;
      round_active_ = false;
      regen_timeout_ = std::min(regen_timeout_ * 2.0, 8.0);
      pace_at_ = now;
    }
    if (retry_at_ <= now) {
      retry_at_ = kInf;
      if (queue_.empty() && !busy_ && outstanding_ == 0) {
        stage_ = 0;
        issue_requests();
      }
    }
    if (now >= ckpt_at_) save_checkpoint();
    // After (never before) the checkpoint write, so a salvaged fragment
    // never describes work the durable state has not caught up to. Runs on
    // its own timer too: chaos runs with checkpointing disabled still
    // leave fragments for the supervisor.
    if (now >= flight_at_) save_flight_record();
  }

  /// Receive and handle frames for up to `wait` seconds (0 = one
  /// non-blocking pass).
  void drain(double wait) {
    Frame f;
    const bool got = net_.recv(f, wait);
    last_poll_ = net_.now();
    if (!got) return;
    handle(f);
    while (net_.recv(f, 0.0)) handle(f);
  }

  // --- stealing ---------------------------------------------------------

  void issue_requests() {
    if (terminated_ || fenced_ || rejoining_ || !queue_.empty() || busy_)
      return;
    auto victims = policy_.victims(me_, stage_, rng_);
    victims.erase(std::remove_if(victims.begin(), victims.end(),
                                 [this](std::uint32_t v) {
                                   return v == me_ || death_known_[v];
                                 }),
                  victims.end());
    if (victims.empty()) {
      retry_later();
      return;
    }
    outstanding_ += static_cast<std::uint32_t>(victims.size());
    for (const std::uint32_t v : victims) {
      ++result_.steal_requests;
      const std::uint64_t req_id = next_req_id_++;
      if (trace_) {
        // Request ids are generation-namespaced counters, so their low
        // bits + our (rank, generation) make the steal-flow correlation
        // id; the victim recomputes the same id from the frame fields.
        trace_->instant_at("steal_req", net_.now(), v,
                           runtime::trace_corr(me_, cfg_.generation, req_id));
        trace_->flow_start_at(
            "steal", net_.now(),
            runtime::trace_corr(me_, cfg_.generation, req_id), v);
      }
      reqs_pending_.insert(req_id);
      req_deadline_[req_id] = net_.now() + cfg_.steal_timeout_s;
      Frame f;
      f.type = FrameType::kStealRequest;
      f.a = req_id;
      send(v, f);  // a failed send resolves via the timeout
    }
  }

  void retry_later() {
    const double delay = backoff_;
    backoff_ = std::min(backoff_ * 2.0, cfg_.retry_backoff_max_s);
    retry_at_ = net_.now() + delay;
  }

  void resolve_deny() {
    if (outstanding_ > 0) --outstanding_;
    if (outstanding_ == 0 && queue_.empty() && !busy_) {
      if (stage_ + 1 < policy_.stages()) {
        ++stage_;
        issue_requests();
        return;
      }
      ++failed_rounds_;
      if (policy_.kind() == StealPolicyKind::kLifeline)
        return;  // wait for a lifeline push
      if (failed_rounds_ < cfg_.give_up_after) retry_later();
    }
  }

  void serve(std::uint32_t thief, std::uint64_t req_id) {
    if (death_known_[thief]) return;
    std::size_t n =
        std::min<std::size_t>(cfg_.steal_max_items, queue_.size() / 2);
    if (n == 0 && queue_.size() == 1 && busy_) n = 1;
    if (n == 0) {
      ++result_.steal_denies;
      if (trace_) trace_->instant_at("deny", net_.now(), thief);
      if (policy_.kind() == StealPolicyKind::kLifeline &&
          std::find(lifeline_waiters_.begin(), lifeline_waiters_.end(),
                    thief) == lifeline_waiters_.end())
        lifeline_waiters_.push_back(thief);
      Frame f;
      f.type = FrameType::kDeny;
      f.a = req_id;
      send(thief, f);  // lost deny: the thief's timeout resolves it
      return;
    }
    std::vector<std::uint32_t> grant;
    grant.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      grant.push_back(queue_.back());
      queue_.pop_back();
    }
    send_grant(thief, req_id, std::move(grant));
  }

  void send_grant(std::uint32_t thief, std::uint64_t req_id,
                  std::vector<std::uint32_t> grant) {
    ++result_.steal_grants;
    result_.regions_migrated += grant.size();
    const std::uint64_t gid = next_grant_id_++;
    if (trace_) {
      // Grant ids are generation-namespaced like request ids, so the same
      // corr construction works; the thief completes the flow when it
      // *applies* the grant (dedup-filtered), not merely when bytes land.
      trace_->instant_at("grant", net_.now(), thief,
                         runtime::trace_corr(me_, cfg_.generation, gid));
      trace_->flow_start_at(
          "grant", net_.now(),
          runtime::trace_corr(me_, cfg_.generation, gid), thief);
    }
    InFlight g;
    g.thief = thief;
    g.req_id = req_id;
    g.items = std::move(grant);
    g.timeout = cfg_.grant_timeout_s;
    auto [it, inserted] = ledger_.emplace(gid, std::move(g));
    transmit_grant(gid, it->second);
  }

  void transmit_grant(std::uint64_t gid, InFlight& g) {
    Frame f;
    f.type = FrameType::kGrant;
    f.a = gid;
    f.b = g.req_id;
    f.items = g.items;
    send(g.thief, f);
    g.retransmit_at = net_.now() + g.timeout;
    g.timeout = std::min(g.timeout * 2.0, 16.0 * cfg_.grant_timeout_s);
  }

  void feed_lifelines() {
    if (policy_.kind() != StealPolicyKind::kLifeline) return;
    while (!lifeline_waiters_.empty() && queue_.size() >= 2) {
      const std::uint32_t waiter = lifeline_waiters_.back();
      lifeline_waiters_.pop_back();
      if (death_known_[waiter]) continue;
      const std::size_t n =
          std::min<std::size_t>(cfg_.steal_max_items, queue_.size() / 2);
      if (n == 0) break;
      std::vector<std::uint32_t> grant;
      grant.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        grant.push_back(queue_.back());
        queue_.pop_back();
      }
      send_grant(waiter, /*req_id=*/0, std::move(grant));
    }
  }

  void serve_parked() {
    if (parked_.empty()) return;
    const auto parked = std::move(parked_);
    parked_.clear();
    for (const auto& [thief, req_id] : parked) serve(thief, req_id);
  }

  // --- heartbeats and death -------------------------------------------

  std::uint32_t pred_known_alive(std::uint32_t rank) const {
    std::uint32_t pred = (rank + p_ - 1) % p_;
    while (pred != rank && death_known_[pred]) pred = (pred + p_ - 1) % p_;
    return pred;
  }

  std::uint32_t next_known_alive(std::uint32_t rank) const {
    std::uint32_t next = (rank + 1) % p_;
    while (next != rank && death_known_[next]) next = (next + 1) % p_;
    return next;
  }

  /// Lowest rank not announced dead: round head, may declare termination.
  std::uint32_t leader() const {
    std::uint32_t l = 0;
    while (l < p_ && death_known_[l]) ++l;
    return l == p_ ? me_ : l;
  }

  void hb_tick() {
    hb_at_ = net_.now() + cfg_.heartbeat_period_s;
    if (p_ < 2) return;
    const std::uint32_t target = pred_known_alive(me_);
    if (target == me_) return;
    if (target != hb_target_) {
      hb_target_ = target;
      hb_misses_ = 0;
      hb_acked_ = hb_seq_;
    }
    if (hb_seq_ > hb_acked_) {
      ++hb_misses_;
      ++result_.heartbeat_misses;
      if (trace_) trace_->instant_at("hb_miss", net_.now(), target);
      if (hb_misses_ >= cfg_.heartbeat_misses && !death_known_[target]) {
        ++result_.deaths_detected;
        announce_death(target);
        return;
      }
    } else {
      hb_misses_ = 0;
    }
    ++hb_seq_;
    ++result_.heartbeat_probes;
    Frame f;
    f.type = FrameType::kHbProbe;
    f.a = hb_seq_;
    send(target, f);
  }

  void announce_death(std::uint32_t d) {
    Frame f;
    f.type = FrameType::kDeathNotice;
    f.a = d;
    // The suspect's newest known generation rides along so a *replacement*
    // incarnation (strictly newer gen) can ignore a notice that names only
    // its dead predecessor.
    f.b = peer_gen_rank_[d];
    // Including the suspect itself: a false positive must fence, so no
    // region ever has two live owners.
    for (std::uint32_t r = 0; r < p_; ++r)
      if (r != me_ && !death_known_[r]) send(r, f);
    handle_death(d);
  }

  void handle_death(std::uint32_t d) {
    if (d >= p_ || death_known_[d]) return;
    if (d == me_) {
      fenced_ = true;
      result_.fenced = true;
      if (trace_) trace_->instant_at("fenced", net_.now());
      return;
    }
    death_known_[d] = true;
    last_activity_ = net_.now();
    if (trace_) trace_->instant_at("death_known", net_.now(), d);
    merge_peer_checkpoint(d);
    // Reclaim unacked grants this rank sent to the dead thief: they may
    // never have arrived. (If they did arrive, the successor scan below —
    // run by whichever rank owns that duty — may re-home them again off
    // the directory; double execution of a deterministic region is
    // benign, an orphaned region is not.)
    std::uint64_t reclaimed_total = 0;
    for (auto it = ledger_.begin(); it != ledger_.end();) {
      if (it->second.thief != d) {
        ++it;
        continue;
      }
      std::uint64_t reclaimed = 0;
      for (const std::uint32_t item : it->second.items)
        if (!done_[item]) {
          queue_.push_back(item);
          owner_[item] = me_;
          ++reclaimed;
        }
      result_.regions_recovered += reclaimed;
      reclaimed_total += reclaimed;
      if (reclaimed > 0) my_black_ = true;
      it = ledger_.erase(it);
    }
    // Reclaims are recoveries too: the same rehome instant the successor
    // scan emits, so the post-mortem analyzer never sees recovered
    // regions with no trace marker explaining them (arg = dead rank,
    // corr = how many regions came back).
    if (trace_ && reclaimed_total > 0) {
      trace_->instant_at("rehome", net_.now(), d,
                         static_cast<std::uint32_t>(reclaimed_total));
      trace_->counter_at("queue", net_.now(), queue_.size());
    }
    // Ring-successor recovery: the first announced-alive rank after d
    // re-homes every region the directory still credits to d.
    if (next_known_alive(d) == me_) {
      std::vector<std::uint32_t> rehomed;
      for (std::size_t i = 0; i < owner_.size(); ++i)
        if (owner_[i] == d && !done_[i]) {
          owner_[i] = me_;
          queue_.push_back(static_cast<std::uint32_t>(i));
          rehomed.push_back(static_cast<std::uint32_t>(i));
        }
      if (!rehomed.empty()) {
        result_.regions_recovered += rehomed.size();
        my_black_ = true;
        Frame f;
        f.type = FrameType::kOwnerUpdate;
        f.b = me_;
        // The post-mortem analyzer pairs this with the death_known instant
        // above to measure recovery latency (arg = dead rank, corr = how
        // many regions came home).
        if (trace_) {
          trace_->instant_at(
              "rehome", net_.now(), d,
              static_cast<std::uint32_t>(rehomed.size()));
          trace_->counter_at("queue", net_.now(), queue_.size());
        }
        f.items = std::move(rehomed);
        broadcast(f);
      }
    }
    // An in-flight round is now unsound; the leader's regeneration timer
    // (or its own next idle) restarts detection over the repaired ring.
    if (leader() == me_) pace_at_ = std::min(pace_at_, net_.now() + 0.01);
  }

  // --- termination ------------------------------------------------------

  std::uint64_t unacked() const { return ledger_.size(); }

  void initiate_round() {
    if (terminated_ || rejoining_ || !queue_.empty() || busy_) return;
    round_active_ = true;
    ++result_.token_rounds;
    token_gen_ = std::max(token_gen_, seen_gen_) + 1;
    regen_at_ = net_.now() + regen_timeout_;
    my_black_ = false;
    const std::uint32_t next = next_known_alive(me_);
    if (next == me_) {
      // Ring of one (everyone else dead): the end-of-round check is local.
      round_active_ = false;
      if (!my_black_ && unacked() == 0 && net_.pending() == 0) declare();
      else pace_at_ = net_.now() + 0.01;
      return;
    }
    Frame f;
    f.type = FrameType::kToken;
    f.a = 0;
    f.b = 0;
    f.c = token_gen_;
    if (trace_) trace_->instant_at("token", net_.now(), next);
    send_token(next, f);
  }

  /// Forward a token, skipping peers whose connection is already known
  /// dead (a send into a SIGKILLed process fails fast; an injected
  /// receiver-side drop does not — the leader's regeneration covers it).
  void send_token(std::uint32_t to, Frame f) {
    std::uint32_t hop = to;
    for (std::uint32_t tries = 0; tries < p_; ++tries) {
      if (send(hop, f)) return;
      // The hop is unreachable but not yet declared dead: its state is
      // unknown (it may be restarting with work still queued), so this
      // round must not certify quiescence. Blacken before skipping.
      f.b = 1;
      const std::uint32_t next = next_known_alive(hop);
      if (next == hop || next == me_) return;  // nowhere left to forward
      hop = next;
    }
  }

  void maybe_process_token() {
    if (!has_held_token_ || busy_ || rejoining_ || !queue_.empty()) return;
    // Drain everything readable first: a grant queued behind this token
    // must blacken us before the token moves on (the no-in-flight
    // property the unacked-count scheme relies on).
    if (net_.pending() > 0) {
      drain(0.0);
      if (busy_ || !queue_.empty() || net_.pending() > 0) return;
    }
    const Frame tok = held_token_;
    has_held_token_ = false;
    process_token(tok);
  }

  void process_token(const Frame& tok) {
    if (tok.c < seen_gen_) return;  // stale round
    seen_gen_ = tok.c;
    if (leader() == me_) {
      if (!round_active_ || tok.c != token_gen_) return;  // stale
      round_active_ = false;
      regen_timeout_ = cfg_.token_regen_initial_s;  // the ring is passable
      const bool black = tok.b != 0 || my_black_;
      const std::uint64_t balance = tok.a + unacked();
      if (!black && balance == 0 && net_.pending() == 0) {
        declare();
        return;
      }
      pace_at_ = net_.now() + 0.01;
      return;
    }
    Frame f = tok;
    f.a += unacked();
    if (my_black_) f.b = 1;
    my_black_ = false;
    const std::uint32_t next = next_known_alive(me_);
    if (trace_) trace_->instant_at("token", net_.now(), next);
    send_token(next, f);
  }

  void declare() {
    terminated_ = true;
    result_.terminated = true;
    if (trace_) trace_->instant_at("terminate", net_.now());
    // Acked completion broadcast: retransmit to silent peers so a lossy
    // link cannot strand a rank in the idle loop until its backstop.
    std::vector<bool> acked(p_, false);
    Frame f;
    f.type = FrameType::kTerminate;
    const double deadline = net_.now() + 2.0;
    double next_send = 0.0;
    while (net_.now() < deadline) {
      bool all = true;
      for (std::uint32_t r = 0; r < p_; ++r)
        if (r != me_ && !death_known_[r] && !acked[r]) all = false;
      if (all) break;
      if (net_.now() >= next_send) {
        for (std::uint32_t r = 0; r < p_; ++r)
          if (r != me_ && !death_known_[r] && !acked[r]) send(r, f);
        next_send = net_.now() + 0.02;
      }
      Frame in;
      if (net_.recv(in, 0.005)) {
        if (in.type == FrameType::kGrantAck && in.a == kTerminateAck &&
            in.from < p_)
          acked[in.from] = true;
        else if (in.type == FrameType::kDeathNotice && in.a < p_ &&
                 in.a != me_)
          death_known_[in.a] = true;
        // Everything else is moot: the work is done.
      }
    }
  }

  // --- frame dispatch ---------------------------------------------------

  void handle(const Frame& f) {
    if (f.from >= p_ || f.from == me_) return;
    if (f.type == FrameType::kEpochFence) {
      // A peer's transport refused this incarnation's handshake because a
      // newer one exists: stand down without touching the directory.
      if (f.a > cfg_.generation) {
        superseded_ = true;
        result_.superseded = true;
        if (trace_) trace_->instant_at("superseded", net_.now(), f.a);
      }
      return;
    }
    if (f.gen < peer_gen_rank_[f.from]) {
      // Zombie fence: an older incarnation of the peer is still talking
      // (in-flight bytes from a connection its replacement displaced).
      ++result_.stale_frames_rejected;
      return;
    }
    peer_gen_rank_[f.from] = f.gen;
    last_activity_ = net_.now();
    switch (f.type) {
      case FrameType::kHello:
        return;
      case FrameType::kStealRequest:
        // Head of the thief's steal-flow arrow: the request reached its
        // victim (whether it is then served, parked or denied).
        if (trace_)
          trace_->flow_end_at(
              "steal", net_.now(),
              runtime::trace_corr(f.from, f.gen, f.a), f.from);
        if (rejoining_) {
          // The queue is under reconciliation; granting from it could
          // migrate a region a peer is about to claim.
          Frame d;
          d.type = FrameType::kDeny;
          d.a = f.a;
          send(f.from, d);
        } else if (busy_)
          parked_.emplace_back(f.from, f.a);
        else
          serve(f.from, f.a);
        return;
      case FrameType::kDeny:
        if (reqs_pending_.erase(f.a) > 0) {
          req_deadline_.erase(f.a);
          resolve_deny();
        }
        return;
      case FrameType::kGrant:
        on_grant(f);
        return;
      case FrameType::kGrantAck:
        if (f.a != kTerminateAck) ledger_.erase(f.a);
        return;
      case FrameType::kHbProbe: {
        Frame ack;
        ack.type = FrameType::kHbAck;
        ack.a = f.a;
        send(f.from, ack);
        return;
      }
      case FrameType::kHbAck:
        if (f.from == hb_target_ && f.a > hb_acked_) hb_acked_ = f.a;
        return;
      case FrameType::kToken:
        if (!has_held_token_ || f.c >= held_token_.c) {
          held_token_ = f;
          has_held_token_ = true;
        }
        maybe_process_token();
        return;
      case FrameType::kDeathNotice: {
        const auto suspect = static_cast<std::uint32_t>(f.a);
        if (suspect >= p_) return;
        const auto suspect_gen = static_cast<std::uint32_t>(f.b);
        if (suspect == me_) {
          // A notice naming a strictly older incarnation is about the
          // predecessor this process replaced, not about it.
          if (suspect_gen >= cfg_.generation) handle_death(me_);
          else ++result_.stale_frames_rejected;
          return;
        }
        if (suspect_gen < peer_gen_rank_[suspect]) {
          ++result_.stale_frames_rejected;  // corpse already superseded
          return;
        }
        handle_death(suspect);
        return;
      }
      case FrameType::kOwnerUpdate:
        for (const std::uint32_t item : f.items)
          if (item < owner_.size() && !done_[item])
            owner_[item] = static_cast<std::uint32_t>(f.b);
        return;
      case FrameType::kRegionDone:
        if (f.a < done_.size()) done_[static_cast<std::size_t>(f.a)] = true;
        return;
      case FrameType::kTerminate: {
        Frame ack;
        ack.type = FrameType::kGrantAck;
        ack.a = kTerminateAck;
        send(f.from, ack);
        terminated_ = true;
        result_.terminated = true;
        if (trace_) trace_->instant_at("terminate", net_.now());
        return;
      }
      case FrameType::kRejoin: {
        // A replacement incarnation of f.from is announcing itself:
        // resurrect it, merge the done set it restored, and answer with
        // this rank's directory view.
        if (death_known_[f.from]) {
          death_known_[f.from] = false;
          if (trace_) trace_->instant_at("resurrect", net_.now(), f.from);
        }
        for (const std::uint32_t item : f.items)
          if (item < done_.size()) done_[item] = true;
        my_black_ = true;  // membership changed: the current round is void
        Frame r;
        r.type = FrameType::kDirSync;
        r.a = f.a;
        r.b = rejoining_ ? 1 : 0;
        for (std::size_t i = 0; i < done_.size(); ++i) {
          const auto item = static_cast<std::uint32_t>(i);
          if (done_[i])
            r.items.push_back(item);
          else if (owner_[i] == me_ && !in_ledger(item))
            r.items.push_back(item | runtime::kDirSyncClaimBit);
          else if (owner_[i] == f.from)
            r.items.push_back(item | runtime::kDirSyncYoursBit);
        }
        send(f.from, r);
        return;
      }
      case FrameType::kDirSync: {
        if (!rejoining_ || f.a != cfg_.generation) return;
        ++result_.rejoin_syncs;
        rejoin_replied_[f.from] = true;
        const bool live_responder = f.b == 0;
        for (const std::uint32_t e : f.items) {
          const std::uint32_t item =
              e & ~(runtime::kDirSyncClaimBit | runtime::kDirSyncYoursBit);
          if (item >= done_.size()) continue;
          if ((e & runtime::kDirSyncClaimBit) != 0) {
            // A rejoining responder claims from a restored (possibly
            // stale) directory; break symmetric claims by rank so exactly
            // one incarnation keeps a disputed region. A live responder's
            // claim is authoritative.
            if (!done_[item] && (live_responder || f.from < me_)) {
              owner_[item] = f.from;
              rejoin_claimed_.insert(item);
            }
          } else if ((e & runtime::kDirSyncYoursBit) != 0) {
            rejoin_yours_.insert(item);
          } else {
            done_[item] = true;
          }
        }
        return;
      }
      case FrameType::kEpochFence:
        return;  // handled before the switch
    }
  }

  void on_grant(const Frame& f) {
    // Ack every copy (the first ack may have been lost); apply only the
    // first (the retransmit ledger makes duplicates routine, and a
    // double-applied grant would execute regions twice unconditionally).
    Frame ack;
    ack.type = FrameType::kGrantAck;
    ack.a = f.a;
    send(f.from, ack);
    // Grant ids are generation-namespaced (high 32 bits), so the victim
    // rank must occupy bits above that to keep the key collision-free.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.from) << 48) ^ f.a;
    if (!seen_grants_.insert(key).second) return;
    // First application of this grant: close the victim's grant flow here
    // (retransmitted copies were deduped above, so the arrow lands once).
    if (trace_)
      trace_->flow_end_at("grant", net_.now(),
                          runtime::trace_corr(f.from, f.gen, f.a), f.from);
    if (f.b != 0) {  // settle the originating request unless lifeline push
      if (reqs_pending_.erase(f.b) > 0) {
        req_deadline_.erase(f.b);
        if (outstanding_ > 0) --outstanding_;
      }
      stage_ = 0;
      backoff_ = cfg_.retry_backoff_initial_s;
      failed_rounds_ = 0;
    }
    std::uint64_t took = 0;
    for (const std::uint32_t item : f.items) {
      if (item >= done_.size() || done_[item]) continue;
      stolen_[item] = true;
      owner_[item] = me_;
      queue_.push_back(item);
      ++took;
    }
    if (took > 0) {
      my_black_ = true;  // new work: the current round must not terminate
      idle_entered_ = false;
      Frame upd;
      upd.type = FrameType::kOwnerUpdate;
      upd.b = me_;
      upd.items.assign(f.items.begin(), f.items.end());
      broadcast(upd);
      if (trace_) {
        trace_->instant_at("migrate_in", net_.now(), f.items.size());
        trace_->counter_at("queue", net_.now(), queue_.size());
      }
    }
  }

  // --- plumbing ---------------------------------------------------------

  bool send(std::uint32_t to, Frame f) {
    f.from = me_;
    f.to = to;
    f.gen = cfg_.generation;
    return net_.send(to, f);
  }

  void broadcast(const Frame& f) {
    for (std::uint32_t r = 0; r < p_; ++r)
      if (r != me_ && !death_known_[r]) send(r, f);
  }

  void finish(double start) {
    result_.finish_s = net_.now();
    result_.done = done_;
    result_.transport = net_.metrics();
    // Abnormal exits (fenced, superseded, liveness backstop) flush the
    // flight recorder unthrottled — this is the black box the post-mortem
    // reads when the process is about to disappear. Clean terminations
    // flush too: it is cheap, and it leaves a complete fragment even when
    // the caller never exports a live trace.
    if (!cfg_.flight_recorder_path.empty() && cfg_.tracer) {
      flight_at_ = -kInf;
      save_flight_record();
    }
    (void)start;
  }

  runtime::Transport& net_;
  const WsRankConfig& cfg_;
  const std::uint32_t p_;
  const std::uint32_t me_;
  StealPolicy policy_;
  Xoshiro256ss rng_;
  runtime::TraceBuffer* trace_ = nullptr;

  std::deque<std::uint32_t> queue_;
  std::vector<std::uint32_t> owner_;  ///< replicated region directory
  std::vector<bool> done_;
  std::vector<bool> stolen_;
  std::vector<bool> death_known_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> parked_;
  std::vector<std::uint32_t> lifeline_waiters_;

  std::set<std::uint64_t> reqs_pending_;
  std::map<std::uint64_t, double> req_deadline_;
  std::uint32_t outstanding_ = 0;
  std::uint32_t stage_ = 0;
  std::uint32_t failed_rounds_ = 0;
  double backoff_ = 0.0;
  double retry_at_ = kInf;
  std::uint64_t next_req_id_ = 1;  ///< 0 is the lifeline-push sentinel

  std::map<std::uint64_t, InFlight> ledger_;  ///< unacked grants out
  std::set<std::uint64_t> seen_grants_;       ///< dedupe (victim, gid)
  std::uint64_t next_grant_id_ = 1;

  std::uint32_t hb_target_ = 0;
  std::uint64_t hb_seq_ = 0;
  std::uint64_t hb_acked_ = 0;
  std::uint32_t hb_misses_ = 0;
  double hb_at_ = 0.0;

  bool my_black_ = false;
  bool round_active_ = false;
  std::uint64_t token_gen_ = 0;  ///< last round this leader initiated
  std::uint64_t seen_gen_ = 0;   ///< freshest generation seen anywhere
  double regen_at_ = kInf;
  double regen_timeout_ = 0.0;
  double pace_at_ = 0.0;
  Frame held_token_;
  bool has_held_token_ = false;

  bool busy_ = false;
  bool terminated_ = false;
  bool fenced_ = false;
  bool idle_entered_ = false;
  double last_activity_ = 0.0;
  double last_poll_ = 0.0;  ///< when the socket was last looked at (freeze fence)

  // Restart/rejoin state (DESIGN.md §5i).
  std::uint64_t fingerprint_ = 0;
  std::vector<std::uint32_t> peer_gen_rank_;  ///< newest gen seen per peer
  bool rejoining_ = false;
  bool superseded_ = false;
  double ckpt_at_ = kInf;
  double flight_at_ = 0.0;  ///< next flight-recorder write (throttle)
  double rejoin_deadline_ = 0.0;
  double rejoin_resend_at_ = 0.0;
  std::vector<bool> rejoin_replied_;
  std::set<std::uint32_t> rejoin_claimed_;  ///< pending, owned elsewhere
  std::set<std::uint32_t> rejoin_yours_;    ///< peers credit them to me

  WsRankResult result_;
};

}  // namespace

std::string rank_checkpoint_path(const std::string& dir, std::uint32_t rank,
                                 std::uint32_t gen) {
  return dir + "/ckpt_" + std::to_string(rank) + ".g" + std::to_string(gen);
}

std::string flight_recorder_path(const std::string& dir, std::uint32_t rank,
                                 std::uint32_t gen) {
  return dir + "/trace_" + std::to_string(rank) + ".g" + std::to_string(gen);
}

bool save_rank_checkpoint(const RankCheckpoint& c, const std::string& path) {
  StateBlob blob;
  blob.kind = kStateKindWsRank;
  blob.fingerprint = c.fingerprint;
  blob.seed = 0;
  blob.meta0 = c.rank;
  blob.meta1 = c.generation;
  auto& out = blob.payload;
  for (std::uint64_t w : c.rng_state) put_u64(out, w);
  const auto n = static_cast<std::uint32_t>(c.owner.size());
  const auto p = static_cast<std::uint32_t>(c.death_known.size());
  put_u32(out, n);
  for (std::uint32_t o : c.owner) put_u32(out, o);
  put_bitmap(out, c.done);
  put_bitmap(out, c.stolen);
  put_u32(out, p);
  put_bitmap(out, c.death_known);
  for (std::uint32_t g : c.peer_gen) put_u32(out, g);
  put_u32(out, static_cast<std::uint32_t>(c.queue.size()));
  for (std::uint32_t q : c.queue) put_u32(out, q);
  put_u32(out, static_cast<std::uint32_t>(c.executed.size()));
  for (std::uint32_t e : c.executed) put_u32(out, e);
  put_u32(out, static_cast<std::uint32_t>(c.ledger.size()));
  for (const RankGrantRecord& g : c.ledger) {
    put_u32(out, g.thief);
    put_u64(out, g.grant_id);
    put_u64(out, g.req_id);
    put_u32(out, static_cast<std::uint32_t>(g.items.size()));
    for (std::uint32_t item : g.items) put_u32(out, item);
  }
  put_u32(out, static_cast<std::uint32_t>(c.seen_grants.size()));
  for (std::uint64_t s : c.seen_grants) put_u64(out, s);
  put_u64(out, c.next_req_id);
  put_u64(out, c.next_grant_id);
  put_f64(out, c.busy_s);
  for (std::uint64_t v : c.counters) put_u64(out, v);
  return save_state_file(blob, path);
}

std::optional<RankCheckpoint> load_rank_checkpoint(const std::string& path,
                                                   IoStatus* status) {
  const auto fail = [&](IoStatus code) {
    if (status) *status = code;
    return std::nullopt;
  };
  IoStatus st = IoStatus::kOk;
  std::optional<StateBlob> blob = load_state_file(path, &st);
  if (status) *status = st;
  if (!blob) return std::nullopt;
  if (blob->kind != kStateKindWsRank) return fail(IoStatus::kMalformed);

  RankCheckpoint c;
  c.rank = blob->meta0;
  c.generation = blob->meta1;
  c.fingerprint = blob->fingerprint;
  StateReader r{blob->payload.data(), blob->payload.size()};
  for (auto& w : c.rng_state) w = r.u64();
  const std::uint32_t n = r.u32();
  if (!r.ok || n > r.left) return fail(IoStatus::kMalformed);
  c.owner.resize(n);
  for (auto& o : c.owner) o = r.u32();
  if (!take_bitmap(r, n, c.done)) return fail(IoStatus::kMalformed);
  if (!take_bitmap(r, n, c.stolen)) return fail(IoStatus::kMalformed);
  const std::uint32_t p = r.u32();
  if (!r.ok || p > r.left || c.rank >= p) return fail(IoStatus::kMalformed);
  if (!take_bitmap(r, p, c.death_known)) return fail(IoStatus::kMalformed);
  c.peer_gen.resize(p);
  for (auto& g : c.peer_gen) g = r.u32();
  const auto take_ids = [&](std::vector<std::uint32_t>& ids) {
    const std::uint32_t count = r.u32();
    if (!r.ok || count > r.left) {
      r.ok = false;
      return false;
    }
    ids.resize(count);
    for (auto& id : ids) {
      id = r.u32();
      if (r.ok && id >= n) r.ok = false;
    }
    return r.ok;
  };
  if (!take_ids(c.queue)) return fail(IoStatus::kMalformed);
  if (!take_ids(c.executed)) return fail(IoStatus::kMalformed);
  const std::uint32_t grants = r.u32();
  if (!r.ok || grants > r.left) return fail(IoStatus::kMalformed);
  c.ledger.resize(grants);
  for (RankGrantRecord& g : c.ledger) {
    g.thief = r.u32();
    if (r.ok && g.thief >= p) return fail(IoStatus::kOutOfRange);
    g.grant_id = r.u64();
    g.req_id = r.u64();
    if (!take_ids(g.items)) return fail(IoStatus::kMalformed);
  }
  const std::uint32_t seen = r.u32();
  if (!r.ok || seen > r.left) return fail(IoStatus::kMalformed);
  c.seen_grants.resize(seen);
  for (auto& s : c.seen_grants) s = r.u64();
  c.next_req_id = r.u64();
  c.next_grant_id = r.u64();
  c.busy_s = r.f64();
  for (auto& v : c.counters) v = r.u64();
  if (!r.ok) return fail(IoStatus::kMalformed);
  if (r.left != 0) return fail(IoStatus::kCountMismatch);
  return c;
}

WsRankResult run_ws_rank(runtime::Transport& net,
                         const WsRankConfig& config) {
  WsRank rank(net, config);
  return rank.run();
}

void publish(runtime::MetricsRegistry& reg, const WsRankResult& r,
             const std::string& prefix) {
  reg.add(prefix + "steal_requests", r.steal_requests);
  reg.add(prefix + "steal_grants", r.steal_grants);
  reg.add(prefix + "steal_denies", r.steal_denies);
  reg.add(prefix + "regions_migrated", r.regions_migrated);
  reg.add(prefix + "token_rounds", r.token_rounds);
  reg.add(prefix + "steal_retries", r.steal_retries);
  reg.add(prefix + "grant_retransmits", r.grant_retransmits);
  reg.add(prefix + "regions_recovered", r.regions_recovered);
  reg.add(prefix + "heartbeat_probes", r.heartbeat_probes);
  reg.add(prefix + "heartbeat_misses", r.heartbeat_misses);
  reg.add(prefix + "deaths_detected", r.deaths_detected);
  reg.add(prefix + "tokens_regenerated", r.tokens_regenerated);
  reg.add(prefix + "stale_frames_rejected", r.stale_frames_rejected);
  reg.add(prefix + "checkpoints_written", r.checkpoints_written);
  reg.add(prefix + "rejoin_syncs", r.rejoin_syncs);
  reg.set(prefix + "busy_s", r.busy_s);
  publish(reg, r.transport, prefix + "transport_");
}

}  // namespace pmpl::loadbal
