#include "loadbal/ws_rank.hpp"

#include <time.h>

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "runtime/metrics_registry.hpp"
#include "util/rng.hpp"

namespace pmpl::loadbal {

namespace {

using runtime::Frame;
using runtime::FrameType;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// kGrantAck with this grant id acknowledges a kTerminate instead.
constexpr std::uint64_t kTerminateAck = ~0ull;

void sleep_s(double s) {
  if (s <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(s);
  ts.tv_nsec = static_cast<long>((s - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

/// One rank's view of the protocol. Same state machine as the DES engine's
/// per-Location bookkeeping, driven by real frames instead of simulator
/// callbacks; see the header for where the two must differ.
class WsRank {
 public:
  WsRank(runtime::Transport& net, const WsRankConfig& cfg)
      : net_(net), cfg_(cfg), p_(net.size()), me_(net.rank()),
        policy_(cfg.policy, p_, cfg.rand_k),
        rng_(derive_seed(cfg.seed, 0xa11c0de ^ me_)) {
    const std::size_t n = cfg_.items.size();
    owner_.assign(n, 0);
    done_.assign(n, false);
    stolen_.assign(n, false);
    death_known_.assign(p_, false);
    for (std::size_t i = 0; i < n; ++i) {
      owner_[i] = cfg_.initial[i];
      if (cfg_.initial[i] == me_)
        queue_.push_back(static_cast<std::uint32_t>(i));
    }
    result_.rank = me_;
    if (cfg_.tracer)
      trace_ = cfg_.tracer->track(
          cfg_.trace_prefix + "rank " + std::to_string(me_),
          cfg_.trace_capacity);
  }

  WsRankResult run() {
    const double start = net_.now();
    last_activity_ = start;
    regen_timeout_ = cfg_.token_regen_initial_s;
    hb_at_ = start + cfg_.heartbeat_period_s *
                         (static_cast<double>(me_ + 1) /
                          static_cast<double>(p_));
    idle_entered_ = false;
    while (!terminated_ && !fenced_) {
      if (cfg_.run_timeout_s > 0.0 &&
          net_.now() - last_activity_ > cfg_.run_timeout_s)
        break;  // liveness backstop: report non-termination, don't hang
      if (!queue_.empty()) {
        idle_entered_ = false;
        const std::uint32_t item = queue_.front();
        queue_.pop_front();
        if (done_[item]) continue;  // completed elsewhere meanwhile
        execute(item);
        if (terminated_ || fenced_) break;
        serve_parked();
        feed_lifelines();
        continue;
      }
      if (!idle_entered_) {
        idle_entered_ = true;
        on_become_idle();
      }
      idle_step();
    }
    finish(start);
    return std::move(result_);
  }

 private:
  struct InFlight {
    std::uint32_t thief = 0;
    std::uint64_t req_id = 0;
    std::vector<std::uint32_t> items;
    double retransmit_at = 0.0;
    double timeout = 0.0;
  };

  // --- execution --------------------------------------------------------

  void execute(std::uint32_t item) {
    const double dur = cfg_.items[item].service_s * cfg_.time_scale;
    if (trace_) {
      trace_->counter_at("queue", net_.now(), queue_.size());
      trace_->begin_at("region", net_.now(), item);
    }
    busy_ = true;
    double elapsed = 0.0;
    while (elapsed < dur && !terminated_ && !fenced_) {
      const double chunk = std::min(cfg_.slice_s, dur - elapsed);
      sleep_s(chunk);
      elapsed += chunk;
      // Poll between slices: answer heartbeats, run timers, park steals.
      drain(0.0);
      timers();
    }
    busy_ = false;
    if (trace_) trace_->end_at("region", net_.now(), item);
    if (terminated_ || fenced_) return;
    result_.busy_s += dur;
    complete(item);
  }

  void complete(std::uint32_t item) {
    done_[item] = true;
    owner_[item] = me_;
    result_.executed.push_back(item);
    if (stolen_[item])
      ++result_.stolen_tasks;
    else
      ++result_.local_tasks;
    last_activity_ = net_.now();
    Frame f;
    f.type = FrameType::kRegionDone;
    f.a = item;
    broadcast(f);
  }

  // --- idle loop --------------------------------------------------------

  void on_become_idle() {
    stage_ = 0;
    backoff_ = cfg_.retry_backoff_initial_s;
    failed_rounds_ = 0;
    retry_at_ = kInf;
    maybe_process_token();
    if (outstanding_ == 0) issue_requests();
  }

  void idle_step() {
    timers();
    maybe_process_token();
    if (terminated_ || fenced_) return;
    if (leader() == me_ && !round_active_ && net_.now() >= pace_at_)
      initiate_round();
    double next = next_deadline();
    const double wait =
        std::min(cfg_.idle_poll_s, std::max(0.0, next - net_.now()));
    drain(wait);
  }

  /// Earliest armed timer deadline.
  double next_deadline() const {
    double t = hb_at_;
    if (!req_deadline_.empty())
      for (const auto& [id, d] : req_deadline_) t = std::min(t, d);
    for (const auto& [gid, g] : ledger_) t = std::min(t, g.retransmit_at);
    if (retry_at_ < kInf) t = std::min(t, retry_at_);
    if (leader() == me_) {
      if (round_active_) t = std::min(t, regen_at_);
      else t = std::min(t, pace_at_);
    }
    return t;
  }

  void timers() {
    const double now = net_.now();
    // Steal-request timeouts: treat silence as a deny.
    while (true) {
      std::uint64_t victim_id = 0;
      bool found = false;
      for (const auto& [id, d] : req_deadline_)
        if (d <= now) {
          victim_id = id;
          found = true;
          break;
        }
      if (!found) break;
      req_deadline_.erase(victim_id);
      if (reqs_pending_.erase(victim_id) > 0) {
        ++result_.steal_retries;
        resolve_deny();
      }
    }
    // Grant retransmits.
    for (auto& [gid, g] : ledger_) {
      if (g.retransmit_at > now) continue;
      if (death_known_[g.thief]) continue;  // resolved by handle_death
      ++result_.grant_retransmits;
      transmit_grant(gid, g);
    }
    if (now >= hb_at_) hb_tick();
    if (leader() == me_ && round_active_ && now >= regen_at_) {
      // The round's token vanished (receiver-side drop, or it was
      // forwarded into a crash): abandon and re-initiate.
      ++result_.tokens_regenerated;
      round_active_ = false;
      regen_timeout_ = std::min(regen_timeout_ * 2.0, 8.0);
      pace_at_ = now;
    }
    if (retry_at_ <= now) {
      retry_at_ = kInf;
      if (queue_.empty() && !busy_ && outstanding_ == 0) {
        stage_ = 0;
        issue_requests();
      }
    }
  }

  /// Receive and handle frames for up to `wait` seconds (0 = one
  /// non-blocking pass).
  void drain(double wait) {
    Frame f;
    if (!net_.recv(f, wait)) return;
    handle(f);
    while (net_.recv(f, 0.0)) handle(f);
  }

  // --- stealing ---------------------------------------------------------

  void issue_requests() {
    if (terminated_ || fenced_ || !queue_.empty() || busy_) return;
    auto victims = policy_.victims(me_, stage_, rng_);
    victims.erase(std::remove_if(victims.begin(), victims.end(),
                                 [this](std::uint32_t v) {
                                   return v == me_ || death_known_[v];
                                 }),
                  victims.end());
    if (victims.empty()) {
      retry_later();
      return;
    }
    outstanding_ += static_cast<std::uint32_t>(victims.size());
    for (const std::uint32_t v : victims) {
      ++result_.steal_requests;
      if (trace_) trace_->instant_at("steal_req", net_.now(), v);
      const std::uint64_t req_id = next_req_id_++;
      reqs_pending_.insert(req_id);
      req_deadline_[req_id] = net_.now() + cfg_.steal_timeout_s;
      Frame f;
      f.type = FrameType::kStealRequest;
      f.a = req_id;
      send(v, f);  // a failed send resolves via the timeout
    }
  }

  void retry_later() {
    const double delay = backoff_;
    backoff_ = std::min(backoff_ * 2.0, cfg_.retry_backoff_max_s);
    retry_at_ = net_.now() + delay;
  }

  void resolve_deny() {
    if (outstanding_ > 0) --outstanding_;
    if (outstanding_ == 0 && queue_.empty() && !busy_) {
      if (stage_ + 1 < policy_.stages()) {
        ++stage_;
        issue_requests();
        return;
      }
      ++failed_rounds_;
      if (policy_.kind() == StealPolicyKind::kLifeline)
        return;  // wait for a lifeline push
      if (failed_rounds_ < cfg_.give_up_after) retry_later();
    }
  }

  void serve(std::uint32_t thief, std::uint64_t req_id) {
    if (death_known_[thief]) return;
    std::size_t n =
        std::min<std::size_t>(cfg_.steal_max_items, queue_.size() / 2);
    if (n == 0 && queue_.size() == 1 && busy_) n = 1;
    if (n == 0) {
      ++result_.steal_denies;
      if (trace_) trace_->instant_at("deny", net_.now(), thief);
      if (policy_.kind() == StealPolicyKind::kLifeline &&
          std::find(lifeline_waiters_.begin(), lifeline_waiters_.end(),
                    thief) == lifeline_waiters_.end())
        lifeline_waiters_.push_back(thief);
      Frame f;
      f.type = FrameType::kDeny;
      f.a = req_id;
      send(thief, f);  // lost deny: the thief's timeout resolves it
      return;
    }
    std::vector<std::uint32_t> grant;
    grant.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      grant.push_back(queue_.back());
      queue_.pop_back();
    }
    send_grant(thief, req_id, std::move(grant));
  }

  void send_grant(std::uint32_t thief, std::uint64_t req_id,
                  std::vector<std::uint32_t> grant) {
    ++result_.steal_grants;
    result_.regions_migrated += grant.size();
    if (trace_) trace_->instant_at("grant", net_.now(), thief);
    const std::uint64_t gid = next_grant_id_++;
    InFlight g;
    g.thief = thief;
    g.req_id = req_id;
    g.items = std::move(grant);
    g.timeout = cfg_.grant_timeout_s;
    auto [it, inserted] = ledger_.emplace(gid, std::move(g));
    transmit_grant(gid, it->second);
  }

  void transmit_grant(std::uint64_t gid, InFlight& g) {
    Frame f;
    f.type = FrameType::kGrant;
    f.a = gid;
    f.b = g.req_id;
    f.items = g.items;
    send(g.thief, f);
    g.retransmit_at = net_.now() + g.timeout;
    g.timeout = std::min(g.timeout * 2.0, 16.0 * cfg_.grant_timeout_s);
  }

  void feed_lifelines() {
    if (policy_.kind() != StealPolicyKind::kLifeline) return;
    while (!lifeline_waiters_.empty() && queue_.size() >= 2) {
      const std::uint32_t waiter = lifeline_waiters_.back();
      lifeline_waiters_.pop_back();
      if (death_known_[waiter]) continue;
      const std::size_t n =
          std::min<std::size_t>(cfg_.steal_max_items, queue_.size() / 2);
      if (n == 0) break;
      std::vector<std::uint32_t> grant;
      grant.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        grant.push_back(queue_.back());
        queue_.pop_back();
      }
      send_grant(waiter, /*req_id=*/0, std::move(grant));
    }
  }

  void serve_parked() {
    if (parked_.empty()) return;
    const auto parked = std::move(parked_);
    parked_.clear();
    for (const auto& [thief, req_id] : parked) serve(thief, req_id);
  }

  // --- heartbeats and death -------------------------------------------

  std::uint32_t pred_known_alive(std::uint32_t rank) const {
    std::uint32_t pred = (rank + p_ - 1) % p_;
    while (pred != rank && death_known_[pred]) pred = (pred + p_ - 1) % p_;
    return pred;
  }

  std::uint32_t next_known_alive(std::uint32_t rank) const {
    std::uint32_t next = (rank + 1) % p_;
    while (next != rank && death_known_[next]) next = (next + 1) % p_;
    return next;
  }

  /// Lowest rank not announced dead: round head, may declare termination.
  std::uint32_t leader() const {
    std::uint32_t l = 0;
    while (l < p_ && death_known_[l]) ++l;
    return l == p_ ? me_ : l;
  }

  void hb_tick() {
    hb_at_ = net_.now() + cfg_.heartbeat_period_s;
    if (p_ < 2) return;
    const std::uint32_t target = pred_known_alive(me_);
    if (target == me_) return;
    if (target != hb_target_) {
      hb_target_ = target;
      hb_misses_ = 0;
      hb_acked_ = hb_seq_;
    }
    if (hb_seq_ > hb_acked_) {
      ++hb_misses_;
      ++result_.heartbeat_misses;
      if (trace_) trace_->instant_at("hb_miss", net_.now(), target);
      if (hb_misses_ >= cfg_.heartbeat_misses && !death_known_[target]) {
        ++result_.deaths_detected;
        announce_death(target);
        return;
      }
    } else {
      hb_misses_ = 0;
    }
    ++hb_seq_;
    ++result_.heartbeat_probes;
    Frame f;
    f.type = FrameType::kHbProbe;
    f.a = hb_seq_;
    send(target, f);
  }

  void announce_death(std::uint32_t d) {
    Frame f;
    f.type = FrameType::kDeathNotice;
    f.a = d;
    // Including the suspect itself: a false positive must fence, so no
    // region ever has two live owners.
    for (std::uint32_t r = 0; r < p_; ++r)
      if (r != me_ && !death_known_[r]) send(r, f);
    handle_death(d);
  }

  void handle_death(std::uint32_t d) {
    if (d >= p_ || death_known_[d]) return;
    if (d == me_) {
      fenced_ = true;
      result_.fenced = true;
      if (trace_) trace_->instant_at("fenced", net_.now());
      return;
    }
    death_known_[d] = true;
    last_activity_ = net_.now();
    if (trace_) trace_->instant_at("death_known", net_.now(), d);
    // Reclaim unacked grants this rank sent to the dead thief: they may
    // never have arrived. (If they did arrive, the successor scan below —
    // run by whichever rank owns that duty — may re-home them again off
    // the directory; double execution of a deterministic region is
    // benign, an orphaned region is not.)
    for (auto it = ledger_.begin(); it != ledger_.end();) {
      if (it->second.thief != d) {
        ++it;
        continue;
      }
      std::uint64_t reclaimed = 0;
      for (const std::uint32_t item : it->second.items)
        if (!done_[item]) {
          queue_.push_back(item);
          owner_[item] = me_;
          ++reclaimed;
        }
      result_.regions_recovered += reclaimed;
      if (reclaimed > 0) my_black_ = true;
      it = ledger_.erase(it);
    }
    // Ring-successor recovery: the first announced-alive rank after d
    // re-homes every region the directory still credits to d.
    if (next_known_alive(d) == me_) {
      std::vector<std::uint32_t> rehomed;
      for (std::size_t i = 0; i < owner_.size(); ++i)
        if (owner_[i] == d && !done_[i]) {
          owner_[i] = me_;
          queue_.push_back(static_cast<std::uint32_t>(i));
          rehomed.push_back(static_cast<std::uint32_t>(i));
        }
      if (!rehomed.empty()) {
        result_.regions_recovered += rehomed.size();
        my_black_ = true;
        Frame f;
        f.type = FrameType::kOwnerUpdate;
        f.b = me_;
        f.items = std::move(rehomed);
        broadcast(f);
        if (trace_)
          trace_->counter_at("queue", net_.now(), queue_.size());
      }
    }
    // An in-flight round is now unsound; the leader's regeneration timer
    // (or its own next idle) restarts detection over the repaired ring.
    if (leader() == me_) pace_at_ = std::min(pace_at_, net_.now() + 0.01);
  }

  // --- termination ------------------------------------------------------

  std::uint64_t unacked() const { return ledger_.size(); }

  void initiate_round() {
    if (terminated_ || !queue_.empty() || busy_) return;
    round_active_ = true;
    ++result_.token_rounds;
    token_gen_ = std::max(token_gen_, seen_gen_) + 1;
    regen_at_ = net_.now() + regen_timeout_;
    my_black_ = false;
    const std::uint32_t next = next_known_alive(me_);
    if (next == me_) {
      // Ring of one (everyone else dead): the end-of-round check is local.
      round_active_ = false;
      if (!my_black_ && unacked() == 0 && net_.pending() == 0) declare();
      else pace_at_ = net_.now() + 0.01;
      return;
    }
    Frame f;
    f.type = FrameType::kToken;
    f.a = 0;
    f.b = 0;
    f.c = token_gen_;
    if (trace_) trace_->instant_at("token", net_.now(), next);
    send_token(next, f);
  }

  /// Forward a token, skipping peers whose connection is already known
  /// dead (a send into a SIGKILLed process fails fast; an injected
  /// receiver-side drop does not — the leader's regeneration covers it).
  void send_token(std::uint32_t to, Frame f) {
    std::uint32_t hop = to;
    for (std::uint32_t tries = 0; tries < p_; ++tries) {
      if (send(hop, f)) return;
      const std::uint32_t next = next_known_alive(hop);
      if (next == hop || next == me_) return;  // nowhere left to forward
      hop = next;
    }
  }

  void maybe_process_token() {
    if (!has_held_token_ || busy_ || !queue_.empty()) return;
    // Drain everything readable first: a grant queued behind this token
    // must blacken us before the token moves on (the no-in-flight
    // property the unacked-count scheme relies on).
    if (net_.pending() > 0) {
      drain(0.0);
      if (busy_ || !queue_.empty() || net_.pending() > 0) return;
    }
    const Frame tok = held_token_;
    has_held_token_ = false;
    process_token(tok);
  }

  void process_token(const Frame& tok) {
    if (tok.c < seen_gen_) return;  // stale round
    seen_gen_ = tok.c;
    if (leader() == me_) {
      if (!round_active_ || tok.c != token_gen_) return;  // stale
      round_active_ = false;
      regen_timeout_ = cfg_.token_regen_initial_s;  // the ring is passable
      const bool black = tok.b != 0 || my_black_;
      const std::uint64_t balance = tok.a + unacked();
      if (!black && balance == 0 && net_.pending() == 0) {
        declare();
        return;
      }
      pace_at_ = net_.now() + 0.01;
      return;
    }
    Frame f = tok;
    f.a += unacked();
    if (my_black_) f.b = 1;
    my_black_ = false;
    const std::uint32_t next = next_known_alive(me_);
    if (trace_) trace_->instant_at("token", net_.now(), next);
    send_token(next, f);
  }

  void declare() {
    terminated_ = true;
    result_.terminated = true;
    if (trace_) trace_->instant_at("terminate", net_.now());
    // Acked completion broadcast: retransmit to silent peers so a lossy
    // link cannot strand a rank in the idle loop until its backstop.
    std::vector<bool> acked(p_, false);
    Frame f;
    f.type = FrameType::kTerminate;
    const double deadline = net_.now() + 2.0;
    double next_send = 0.0;
    while (net_.now() < deadline) {
      bool all = true;
      for (std::uint32_t r = 0; r < p_; ++r)
        if (r != me_ && !death_known_[r] && !acked[r]) all = false;
      if (all) break;
      if (net_.now() >= next_send) {
        for (std::uint32_t r = 0; r < p_; ++r)
          if (r != me_ && !death_known_[r] && !acked[r]) send(r, f);
        next_send = net_.now() + 0.02;
      }
      Frame in;
      if (net_.recv(in, 0.005)) {
        if (in.type == FrameType::kGrantAck && in.a == kTerminateAck &&
            in.from < p_)
          acked[in.from] = true;
        else if (in.type == FrameType::kDeathNotice && in.a < p_ &&
                 in.a != me_)
          death_known_[in.a] = true;
        // Everything else is moot: the work is done.
      }
    }
  }

  // --- frame dispatch ---------------------------------------------------

  void handle(const Frame& f) {
    if (f.from >= p_ || f.from == me_) return;
    last_activity_ = net_.now();
    switch (f.type) {
      case FrameType::kHello:
        return;
      case FrameType::kStealRequest:
        if (busy_)
          parked_.emplace_back(f.from, f.a);
        else
          serve(f.from, f.a);
        return;
      case FrameType::kDeny:
        if (reqs_pending_.erase(f.a) > 0) {
          req_deadline_.erase(f.a);
          resolve_deny();
        }
        return;
      case FrameType::kGrant:
        on_grant(f);
        return;
      case FrameType::kGrantAck:
        if (f.a != kTerminateAck) ledger_.erase(f.a);
        return;
      case FrameType::kHbProbe: {
        Frame ack;
        ack.type = FrameType::kHbAck;
        ack.a = f.a;
        send(f.from, ack);
        return;
      }
      case FrameType::kHbAck:
        if (f.from == hb_target_ && f.a > hb_acked_) hb_acked_ = f.a;
        return;
      case FrameType::kToken:
        if (!has_held_token_ || f.c >= held_token_.c) {
          held_token_ = f;
          has_held_token_ = true;
        }
        maybe_process_token();
        return;
      case FrameType::kDeathNotice:
        handle_death(static_cast<std::uint32_t>(f.a));
        return;
      case FrameType::kOwnerUpdate:
        for (const std::uint32_t item : f.items)
          if (item < owner_.size() && !done_[item])
            owner_[item] = static_cast<std::uint32_t>(f.b);
        return;
      case FrameType::kRegionDone:
        if (f.a < done_.size()) done_[static_cast<std::size_t>(f.a)] = true;
        return;
      case FrameType::kTerminate: {
        Frame ack;
        ack.type = FrameType::kGrantAck;
        ack.a = kTerminateAck;
        send(f.from, ack);
        terminated_ = true;
        result_.terminated = true;
        if (trace_) trace_->instant_at("terminate", net_.now());
        return;
      }
    }
  }

  void on_grant(const Frame& f) {
    // Ack every copy (the first ack may have been lost); apply only the
    // first (the retransmit ledger makes duplicates routine, and a
    // double-applied grant would execute regions twice unconditionally).
    Frame ack;
    ack.type = FrameType::kGrantAck;
    ack.a = f.a;
    send(f.from, ack);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.from) << 40) ^ f.a;
    if (!seen_grants_.insert(key).second) return;
    if (f.b != 0) {  // settle the originating request unless lifeline push
      if (reqs_pending_.erase(f.b) > 0) {
        req_deadline_.erase(f.b);
        if (outstanding_ > 0) --outstanding_;
      }
      stage_ = 0;
      backoff_ = cfg_.retry_backoff_initial_s;
      failed_rounds_ = 0;
    }
    std::uint64_t took = 0;
    for (const std::uint32_t item : f.items) {
      if (item >= done_.size() || done_[item]) continue;
      stolen_[item] = true;
      owner_[item] = me_;
      queue_.push_back(item);
      ++took;
    }
    if (took > 0) {
      my_black_ = true;  // new work: the current round must not terminate
      idle_entered_ = false;
      Frame upd;
      upd.type = FrameType::kOwnerUpdate;
      upd.b = me_;
      upd.items.assign(f.items.begin(), f.items.end());
      broadcast(upd);
      if (trace_) {
        trace_->instant_at("migrate_in", net_.now(), f.items.size());
        trace_->counter_at("queue", net_.now(), queue_.size());
      }
    }
  }

  // --- plumbing ---------------------------------------------------------

  bool send(std::uint32_t to, Frame f) {
    f.from = me_;
    f.to = to;
    return net_.send(to, f);
  }

  void broadcast(const Frame& f) {
    for (std::uint32_t r = 0; r < p_; ++r)
      if (r != me_ && !death_known_[r]) send(r, f);
  }

  void finish(double start) {
    result_.finish_s = net_.now();
    result_.done = done_;
    result_.transport = net_.metrics();
    (void)start;
  }

  runtime::Transport& net_;
  const WsRankConfig& cfg_;
  const std::uint32_t p_;
  const std::uint32_t me_;
  StealPolicy policy_;
  Xoshiro256ss rng_;
  runtime::TraceBuffer* trace_ = nullptr;

  std::deque<std::uint32_t> queue_;
  std::vector<std::uint32_t> owner_;  ///< replicated region directory
  std::vector<bool> done_;
  std::vector<bool> stolen_;
  std::vector<bool> death_known_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> parked_;
  std::vector<std::uint32_t> lifeline_waiters_;

  std::set<std::uint64_t> reqs_pending_;
  std::map<std::uint64_t, double> req_deadline_;
  std::uint32_t outstanding_ = 0;
  std::uint32_t stage_ = 0;
  std::uint32_t failed_rounds_ = 0;
  double backoff_ = 0.0;
  double retry_at_ = kInf;
  std::uint64_t next_req_id_ = 1;  ///< 0 is the lifeline-push sentinel

  std::map<std::uint64_t, InFlight> ledger_;  ///< unacked grants out
  std::set<std::uint64_t> seen_grants_;       ///< dedupe (victim, gid)
  std::uint64_t next_grant_id_ = 1;

  std::uint32_t hb_target_ = 0;
  std::uint64_t hb_seq_ = 0;
  std::uint64_t hb_acked_ = 0;
  std::uint32_t hb_misses_ = 0;
  double hb_at_ = 0.0;

  bool my_black_ = false;
  bool round_active_ = false;
  std::uint64_t token_gen_ = 0;  ///< last round this leader initiated
  std::uint64_t seen_gen_ = 0;   ///< freshest generation seen anywhere
  double regen_at_ = kInf;
  double regen_timeout_ = 0.0;
  double pace_at_ = 0.0;
  Frame held_token_;
  bool has_held_token_ = false;

  bool busy_ = false;
  bool terminated_ = false;
  bool fenced_ = false;
  bool idle_entered_ = false;
  double last_activity_ = 0.0;

  WsRankResult result_;
};

}  // namespace

WsRankResult run_ws_rank(runtime::Transport& net,
                         const WsRankConfig& config) {
  WsRank rank(net, config);
  return rank.run();
}

void publish(runtime::MetricsRegistry& reg, const WsRankResult& r,
             const std::string& prefix) {
  reg.add(prefix + "steal_requests", r.steal_requests);
  reg.add(prefix + "steal_grants", r.steal_grants);
  reg.add(prefix + "steal_denies", r.steal_denies);
  reg.add(prefix + "regions_migrated", r.regions_migrated);
  reg.add(prefix + "token_rounds", r.token_rounds);
  reg.add(prefix + "steal_retries", r.steal_retries);
  reg.add(prefix + "grant_retransmits", r.grant_retransmits);
  reg.add(prefix + "regions_recovered", r.regions_recovered);
  reg.add(prefix + "heartbeat_probes", r.heartbeat_probes);
  reg.add(prefix + "heartbeat_misses", r.heartbeat_misses);
  reg.add(prefix + "deaths_detected", r.deaths_detected);
  reg.add(prefix + "tokens_regenerated", r.tokens_regenerated);
  reg.set(prefix + "busy_s", r.busy_s);
  publish(reg, r.transport, prefix + "transport_");
}

}  // namespace pmpl::loadbal
