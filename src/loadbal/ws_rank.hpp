#pragma once
/// \file ws_rank.hpp
/// Per-rank work-stealing protocol engine over a real Transport.
///
/// This is the same protocol the DES engine (ws_engine.cpp) simulates from
/// a god's-eye view — steal requests/denies, acked grants with retransmit,
/// heartbeat fencing, ring-successor region recovery, token-ring
/// termination — restated as what ONE rank does with only its own state
/// and the frames it receives. run_ws_rank() is what each forked process
/// (or MemTransport thread) executes; the cluster launcher in
/// ws_cluster.hpp assembles the per-rank results and the sim-vs-real gate
/// holds them to the DES roadmap (DESIGN.md §5h).
///
/// Differences from the DES forced by losing the god view:
///  - Region directory: every rank tracks (owner, done) per region,
///    updated by broadcast kOwnerUpdate / kRegionDone frames. Recovery of
///    a dead rank's regions is the *ring successor* scanning its own
///    directory — not an omniscient sweep — so a completion whose
///    broadcast was cut short by SIGKILL is simply re-executed (benign:
///    regions are deterministic by derive_seed).
///  - Termination: classic Safra message counting cannot survive a crash
///    (a dead rank's balance is unrecoverable), so the token instead sums
///    *unacked grants* — a self-correcting local count (send +1, ack or
///    death-reclaim -1) — plus the usual black/white round. Sound over
///    stream transports because anything a dead sender wrote is already
///    readable at the receiver, and a rank drains `Transport::pending`
///    before forwarding a token.
///  - Execution is sliced: between ~slice_s chunks of a region the rank
///    polls the transport, so heartbeat probes are answered while "busy"
///    (the DES models this as runtime-level heartbeats).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "loadbal/steal_policy.hpp"
#include "loadbal/ws_engine.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport.hpp"
#include "util/io_status.hpp"

namespace pmpl::loadbal {

struct WsRankConfig {
  /// Every rank receives the full item table and initial assignment (same
  /// inputs as simulate_work_stealing); service_s values are in simulated
  /// seconds and are mapped to wall time by time_scale.
  std::span<const WsItem> items;
  std::span<const std::uint32_t> initial;

  StealPolicyKind policy = StealPolicyKind::kHybrid;
  std::uint32_t rand_k = 2;
  std::uint64_t seed = 0x5eedULL;
  std::uint32_t steal_max_items = 1;
  std::uint32_t give_up_after = 3;

  double time_scale = 1.0;  ///< wall seconds per simulated service second

  // Wall-clock protocol timers. Defaults are sized for a loaded CI box
  // (hundreds of ms of scheduling jitter must not fence a live rank).
  double slice_s = 2e-3;           ///< max execution chunk between polls
  double steal_timeout_s = 0.05;   ///< silence => treat request as denied
  double grant_timeout_s = 0.05;   ///< unacked grant retransmit (doubles)
  double heartbeat_period_s = 0.025;
  std::uint32_t heartbeat_misses = 8;
  double token_regen_initial_s = 0.4;  ///< leader re-initiates a lost round
  double retry_backoff_initial_s = 2e-3;
  double retry_backoff_max_s = 0.05;
  double idle_poll_s = 0.01;  ///< recv timeout when nothing is armed

  /// Give up entirely when no frame arrives for this long after the last
  /// activity — a liveness backstop against protocol wedges; 0 disables.
  double run_timeout_s = 60.0;

  // --- restart / rejoin (DESIGN.md §5i) -------------------------------

  /// Incarnation number of this process for rank `net.rank()`. 0 is the
  /// first launch; the supervisor increments it per restart. Stamped into
  /// every frame; peers reject frames from older generations.
  std::uint32_t generation = 0;

  /// Durable rank state (util/state_file container, kStateKindWsRank).
  /// Written after every completion *before* its kRegionDone broadcast
  /// (so a completion a peer heard about is always durable), plus
  /// periodically every checkpoint_period_s. Empty disables.
  std::string checkpoint_path;
  double checkpoint_period_s = 0.05;

  /// Checkpoint of the previous incarnation to resume from (typically its
  /// checkpoint_path). Absent/corrupt degrades to a fresh start — the
  /// rejoin sync then rebuilds the directory view from the peers.
  std::string restore_path;

  /// Directory holding every rank's checkpoints under the
  /// rank_checkpoint_path() naming. When set, a rank that learns of a
  /// peer's death reads the dead rank's newest durable checkpoint and
  /// merges its completed-region bits *before* reclaiming or re-homing
  /// anything — closing the window where a completion's kRegionDone
  /// broadcast died with its sender (which would otherwise re-execute
  /// the region). Empty disables the merge.
  std::string checkpoint_dir;

  /// Restarted incarnations (generation > 0) run the rejoin protocol
  /// before executing anything: broadcast kRejoin, collect kDirSync
  /// replies from every live peer (retransmitting every
  /// rejoin_retransmit_s), and reconcile queue ownership. The deadline
  /// bounds the wait when peers are dead or already gone.
  double rejoin_timeout_s = 0.6;
  double rejoin_retransmit_s = 0.05;

  runtime::Tracer* tracer = nullptr;
  std::string trace_prefix;
  std::size_t trace_capacity = 0;

  /// Flight recorder: when set (and a tracer is attached), the whole trace
  /// ring is persisted to this path through the util/state_file atomic
  /// checksummed container (kStateKindTraceRing) at checkpoint boundaries
  /// — written right *after* the durable checkpoint, so the fragment never
  /// describes work the checkpoint has not yet made durable — and on every
  /// abnormal exit (fenced / superseded / liveness backstop). A SIGKILLed
  /// rank therefore leaves a fragment at most one flight_record_period_s
  /// stale for the supervisor to salvage. Empty disables.
  std::string flight_recorder_path;
  /// Minimum spacing between checkpoint-boundary flight-recorder writes
  /// (serializing the ring is much heavier than a checkpoint, so it is
  /// throttled independently of checkpoint_period_s).
  double flight_record_period_s = 0.2;
};

/// What one rank reports at exit; the launcher aggregates these. The
/// `done` bitmap is this rank's directory view (own executions plus
/// broadcast completions), whose union across survivors is the completed
/// set the roadmap hash is computed over.
struct WsRankResult {
  std::uint32_t rank = 0;
  std::uint32_t generation = 0;
  bool terminated = false;  ///< saw (or declared) the termination broadcast
  bool fenced = false;      ///< received a death notice naming itself
  bool superseded = false;  ///< epoch-fenced: a newer incarnation exists
  bool restored = false;    ///< state resumed from a checkpoint
  double busy_s = 0.0;      ///< wall seconds executing regions
  double finish_s = 0.0;    ///< transport time at loop exit
  std::vector<std::uint32_t> executed;  ///< region ids this rank completed
                                        ///<   (restored + this incarnation)
  std::vector<bool> done;               ///< directory: completed anywhere

  std::uint64_t local_tasks = 0;
  std::uint64_t stolen_tasks = 0;
  std::uint64_t steal_requests = 0;
  std::uint64_t steal_grants = 0;
  std::uint64_t steal_denies = 0;
  std::uint64_t regions_migrated = 0;  ///< items granted away
  std::uint64_t token_rounds = 0;      ///< rounds this rank initiated
  std::uint64_t steal_retries = 0;     ///< request timeouts
  std::uint64_t grant_retransmits = 0;
  std::uint64_t regions_recovered = 0;  ///< re-homed here off dead ranks
  std::uint64_t heartbeat_probes = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t deaths_detected = 0;  ///< death notices this rank issued
  std::uint64_t tokens_regenerated = 0;
  std::uint64_t stale_frames_rejected = 0;  ///< old-generation frames dropped
  std::uint64_t checkpoints_written = 0;
  std::uint64_t rejoin_syncs = 0;  ///< kDirSync replies received while rejoining

  runtime::TransportMetrics transport;
};

/// One unacked outgoing grant, as persisted in a rank checkpoint. The
/// restored incarnation re-enters these into its retransmit ledger, and
/// the chaos harness asserts the no-duplicate-execution invariant from
/// the union of executed lists against these ledgers.
struct RankGrantRecord {
  std::uint32_t thief = 0;
  std::uint64_t grant_id = 0;
  std::uint64_t req_id = 0;
  std::vector<std::uint32_t> items;
};

/// Durable per-rank protocol state — everything a restarted incarnation
/// needs to resume without re-executing completed regions: the region
/// directory (owner/done), its queue, the RNG cursor, the unacked-grant
/// ledger, the grant dedup set, and the protocol counters. Saved in the
/// util/state_file container (atomic tmp+rename, dual FNV-1a checksums).
struct RankCheckpoint {
  std::uint32_t rank = 0;
  std::uint32_t generation = 0;   ///< incarnation that wrote this
  std::uint64_t fingerprint = 0;  ///< workload/config identity
  std::uint64_t rng_state[4] = {0, 0, 0, 0};
  std::vector<std::uint32_t> queue;
  std::vector<std::uint32_t> owner;
  std::vector<bool> done;
  std::vector<bool> stolen;
  std::vector<bool> death_known;
  std::vector<std::uint32_t> peer_gen;  ///< newest generation seen per peer
  std::vector<std::uint32_t> executed;
  std::vector<RankGrantRecord> ledger;
  std::vector<std::uint64_t> seen_grants;
  std::uint64_t next_req_id = 1;
  std::uint64_t next_grant_id = 1;
  double busy_s = 0.0;
  std::uint64_t counters[14] = {};  ///< WsRankResult counters, in order:
                                    ///< local_tasks..tokens_regenerated
};

/// "<dir>/ckpt_<rank>.g<gen>" — the per-incarnation checkpoint naming
/// convention the cluster supervisor and the death-recovery merge agree
/// on. Per-generation files keep a resumed zombie from clobbering its
/// replacement's durable state.
std::string rank_checkpoint_path(const std::string& dir, std::uint32_t rank,
                                 std::uint32_t gen);

/// "<dir>/trace_<rank>.g<gen>" — the flight-recorder fragment naming
/// convention, parallel to the checkpoint naming above (and, like it,
/// per-incarnation so a zombie cannot clobber its replacement's fragment).
/// The supervisor exports salvaged fragments as
/// "<trace_path>.r<rank>.g<gen>.json", the same per-rank per-generation
/// naming the ranks themselves use for live trace exports.
std::string flight_recorder_path(const std::string& dir, std::uint32_t rank,
                                 std::uint32_t gen);

/// Serialize atomically. Returns false on I/O failure.
bool save_rank_checkpoint(const RankCheckpoint& c, const std::string& path);

/// Load and fully validate (container checksums plus payload bounds).
/// nullopt with the precise IoStatus on any malformation.
std::optional<RankCheckpoint> load_rank_checkpoint(
    const std::string& path, IoStatus* status = nullptr);

/// Publish the protocol-health counters (retransmits, heartbeat misses,
/// recoveries) and the nested transport metrics as "<prefix>…".
void publish(runtime::MetricsRegistry& reg, const WsRankResult& r,
             const std::string& prefix);

/// Run the work-stealing protocol as rank `net.rank()` until global
/// termination (or the liveness backstop). Blocks; drives `net` from the
/// calling thread only.
WsRankResult run_ws_rank(runtime::Transport& net, const WsRankConfig& config);

}  // namespace pmpl::loadbal
