#pragma once
/// \file ws_rank.hpp
/// Per-rank work-stealing protocol engine over a real Transport.
///
/// This is the same protocol the DES engine (ws_engine.cpp) simulates from
/// a god's-eye view — steal requests/denies, acked grants with retransmit,
/// heartbeat fencing, ring-successor region recovery, token-ring
/// termination — restated as what ONE rank does with only its own state
/// and the frames it receives. run_ws_rank() is what each forked process
/// (or MemTransport thread) executes; the cluster launcher in
/// ws_cluster.hpp assembles the per-rank results and the sim-vs-real gate
/// holds them to the DES roadmap (DESIGN.md §5h).
///
/// Differences from the DES forced by losing the god view:
///  - Region directory: every rank tracks (owner, done) per region,
///    updated by broadcast kOwnerUpdate / kRegionDone frames. Recovery of
///    a dead rank's regions is the *ring successor* scanning its own
///    directory — not an omniscient sweep — so a completion whose
///    broadcast was cut short by SIGKILL is simply re-executed (benign:
///    regions are deterministic by derive_seed).
///  - Termination: classic Safra message counting cannot survive a crash
///    (a dead rank's balance is unrecoverable), so the token instead sums
///    *unacked grants* — a self-correcting local count (send +1, ack or
///    death-reclaim -1) — plus the usual black/white round. Sound over
///    stream transports because anything a dead sender wrote is already
///    readable at the receiver, and a rank drains `Transport::pending`
///    before forwarding a token.
///  - Execution is sliced: between ~slice_s chunks of a region the rank
///    polls the transport, so heartbeat probes are answered while "busy"
///    (the DES models this as runtime-level heartbeats).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "loadbal/steal_policy.hpp"
#include "loadbal/ws_engine.hpp"
#include "runtime/trace.hpp"
#include "runtime/transport.hpp"

namespace pmpl::loadbal {

struct WsRankConfig {
  /// Every rank receives the full item table and initial assignment (same
  /// inputs as simulate_work_stealing); service_s values are in simulated
  /// seconds and are mapped to wall time by time_scale.
  std::span<const WsItem> items;
  std::span<const std::uint32_t> initial;

  StealPolicyKind policy = StealPolicyKind::kHybrid;
  std::uint32_t rand_k = 2;
  std::uint64_t seed = 0x5eedULL;
  std::uint32_t steal_max_items = 1;
  std::uint32_t give_up_after = 3;

  double time_scale = 1.0;  ///< wall seconds per simulated service second

  // Wall-clock protocol timers. Defaults are sized for a loaded CI box
  // (hundreds of ms of scheduling jitter must not fence a live rank).
  double slice_s = 2e-3;           ///< max execution chunk between polls
  double steal_timeout_s = 0.05;   ///< silence => treat request as denied
  double grant_timeout_s = 0.05;   ///< unacked grant retransmit (doubles)
  double heartbeat_period_s = 0.025;
  std::uint32_t heartbeat_misses = 8;
  double token_regen_initial_s = 0.4;  ///< leader re-initiates a lost round
  double retry_backoff_initial_s = 2e-3;
  double retry_backoff_max_s = 0.05;
  double idle_poll_s = 0.01;  ///< recv timeout when nothing is armed

  /// Give up entirely when no frame arrives for this long after the last
  /// activity — a liveness backstop against protocol wedges; 0 disables.
  double run_timeout_s = 60.0;

  runtime::Tracer* tracer = nullptr;
  std::string trace_prefix;
  std::size_t trace_capacity = 0;
};

/// What one rank reports at exit; the launcher aggregates these. The
/// `done` bitmap is this rank's directory view (own executions plus
/// broadcast completions), whose union across survivors is the completed
/// set the roadmap hash is computed over.
struct WsRankResult {
  std::uint32_t rank = 0;
  bool terminated = false;  ///< saw (or declared) the termination broadcast
  bool fenced = false;      ///< received a death notice naming itself
  double busy_s = 0.0;      ///< wall seconds executing regions
  double finish_s = 0.0;    ///< transport time at loop exit
  std::vector<std::uint32_t> executed;  ///< region ids this rank completed
  std::vector<bool> done;               ///< directory: completed anywhere

  std::uint64_t local_tasks = 0;
  std::uint64_t stolen_tasks = 0;
  std::uint64_t steal_requests = 0;
  std::uint64_t steal_grants = 0;
  std::uint64_t steal_denies = 0;
  std::uint64_t regions_migrated = 0;  ///< items granted away
  std::uint64_t token_rounds = 0;      ///< rounds this rank initiated
  std::uint64_t steal_retries = 0;     ///< request timeouts
  std::uint64_t grant_retransmits = 0;
  std::uint64_t regions_recovered = 0;  ///< re-homed here off dead ranks
  std::uint64_t heartbeat_probes = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t deaths_detected = 0;  ///< death notices this rank issued
  std::uint64_t tokens_regenerated = 0;

  runtime::TransportMetrics transport;
};

/// Publish the protocol-health counters (retransmits, heartbeat misses,
/// recoveries) and the nested transport metrics as "<prefix>…".
void publish(runtime::MetricsRegistry& reg, const WsRankResult& r,
             const std::string& prefix);

/// Run the work-stealing protocol as rank `net.rank()` until global
/// termination (or the liveness backstop). Blocks; drives `net` from the
/// calling thread only.
WsRankResult run_ws_rank(runtime::Transport& net, const WsRankConfig& config);

}  // namespace pmpl::loadbal
