#include "loadbal/ws_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace pmpl::loadbal {

using pmpl::json::Value;

namespace {

constexpr std::size_t kBuckets = 64;

/// log2 microsecond bucket: 0 = [0,1)us, k = [2^(k-1), 2^k)us, capped.
std::size_t bucket_of(double delta_us) {
  if (delta_us < 1.0) return 0;
  std::size_t b = 1;
  double edge = 1.0;
  while (b < kBuckets - 1 && delta_us >= edge * 2.0) {
    edge *= 2.0;
    ++b;
  }
  return b;
}

std::uint32_t parse_corr(const Value* args) {
  if (!args) return 0;
  const Value* corr = args->find("corr");
  if (!corr || !corr->is_string()) return 0;
  return static_cast<std::uint32_t>(
      std::strtoul(corr->as_string().c_str(), nullptr, 16));
}

double num_or(const Value* v, double fallback) {
  return v && v->is_number() ? v->as_number() : fallback;
}

void append_hist(std::string& j, const char* key, std::uint64_t count,
                 const std::vector<std::uint64_t>& hist) {
  j += std::string("\"") + key + "\": {\"count\": " + std::to_string(count) +
       ", \"log2_us\": [";
  for (std::size_t i = 0; i < hist.size(); ++i) {
    if (i) j += ", ";
    j += std::to_string(hist[i]);
  }
  j += "]}";
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

WsReport analyze_trace(const Value& merged, std::string* error) {
  WsReport r;
  r.steal_latency_log2_us.assign(kBuckets, 0);
  r.grant_rtt_log2_us.assign(kBuckets, 0);
  if (!merged.is_object()) {
    if (error) *error = "root is not an object";
    return r;
  }
  const Value* events = merged.find("traceEvents");
  if (!events || !events->is_array()) {
    if (error) *error = "missing traceEvents array";
    return r;
  }

  std::map<std::uint32_t, WsReport::Rank> ranks;
  std::map<std::pair<std::uint32_t, double>, std::vector<double>> span_stack;
  std::map<std::string, double> flow_start;  // "cat|id" -> start ts
  std::map<std::uint32_t, WsReport::Death> first_death;  // by dead rank
  std::set<std::pair<std::uint32_t, std::uint32_t>> salvaged;
  std::map<std::uint32_t, std::vector<double>> region_begins;
  double min_ts = 0.0, max_ts = 0.0;
  bool any_ts = false;

  for (const Value& ev : events->as_array()) {
    if (!ev.is_object()) continue;
    const Value* phv = ev.find("ph");
    if (!phv || !phv->is_string()) continue;
    const std::string& ph = phv->as_string();
    if (ph == "M") continue;
    const double ts = num_or(ev.find("ts"), 0.0);
    const auto pid = static_cast<std::uint32_t>(num_or(ev.find("pid"), 0.0));
    const double tid = num_or(ev.find("tid"), 0.0);
    if (!any_ts) {
      min_ts = max_ts = ts;
      any_ts = true;
    }
    min_ts = std::min(min_ts, ts);
    max_ts = std::max(max_ts, ts);
    const Value* namev = ev.find("name");
    const std::string name =
        namev && namev->is_string() ? namev->as_string() : "";
    WsReport::Rank& rk = ranks[pid];
    rk.rank = pid;

    if (ph == "B" && name == "region") {
      span_stack[{pid, tid}].push_back(ts);
      region_begins[pid].push_back(ts);
    } else if (ph == "E" && name == "region") {
      auto& stack = span_stack[{pid, tid}];
      if (!stack.empty()) {
        rk.busy_us += ts - stack.back();
        ++rk.regions;
        stack.pop_back();
      }
    } else if (ph == "s" || ph == "f") {
      const Value* cat = ev.find("cat");
      const Value* id = ev.find("id");
      if (!cat || !cat->is_string() || !id || !id->is_string()) continue;
      const std::string& c = cat->as_string();
      if (c != "steal" && c != "grant") continue;
      const std::string key = c + "|" + id->as_string();
      if (ph == "s") {
        flow_start[key] = ts;
        continue;
      }
      const auto it = flow_start.find(key);
      if (it == flow_start.end()) continue;  // head without salvaged tail
      const double delta = std::max(0.0, ts - it->second);
      flow_start.erase(it);
      if (c == "steal") {
        ++r.steal_flows;
        ++r.steal_latency_log2_us[bucket_of(delta)];
      } else {
        ++r.grant_flows;
        ++r.grant_rtt_log2_us[bucket_of(delta)];
      }
    } else if (ph == "i") {
      const Value* args = ev.find("args");
      const auto arg =
          static_cast<std::uint64_t>(num_or(args ? args->find("arg") : nullptr,
                                            0.0));
      if (name == "steal_req") {
        ++rk.steal_reqs;
      } else if (name == "grant") {
        ++rk.grants;
      } else if (name == "deny") {
        ++rk.denies;
      } else if (name == "migrate_in") {
        ++rk.migrate_ins;
      } else if (name == "death_known") {
        const auto dead = static_cast<std::uint32_t>(arg);
        const auto it = first_death.find(dead);
        if (it == first_death.end() || ts < it->second.detected_ts_us)
          first_death[dead] = {dead, pid, ts};
      } else if (name == "salvage") {
        const std::uint32_t corr = parse_corr(args);
        salvaged.insert({static_cast<std::uint32_t>(arg),
                         (corr >> 20) & 0x3fu});
      } else if (name == "rehome") {
        WsReport::Recovery rec;
        rec.by_rank = pid;
        rec.dead_rank = static_cast<std::uint32_t>(arg);
        rec.regions = parse_corr(args);  // count rides in the corr channel
        rec.rehome_ts_us = ts;
        r.recoveries.push_back(rec);
      }
    }
  }
  // Salvaged fragments also announce themselves in the merge provenance
  // (a fragment whose ring dropped the salvage instant still counts).
  if (const Value* other = merged.find("otherData"))
    if (const Value* m = other->find("merged"))
      if (const Value* ins = m->find("inputs"); ins && ins->is_array())
        for (const Value& in : ins->as_array()) {
          const Value* sv = in.find("salvaged");
          if (sv && sv->is_bool() && sv->as_bool())
            salvaged.insert(
                {static_cast<std::uint32_t>(num_or(in.find("rank"), 0.0)),
                 static_cast<std::uint32_t>(
                     num_or(in.find("generation"), 0.0))});
        }

  r.window_us = any_ts ? max_ts - min_ts : 0.0;
  double sum = 0.0, sum2 = 0.0;
  for (auto& [pid, rk] : ranks) {
    rk.idle_us = std::max(0.0, r.window_us - rk.busy_us);
    sum += rk.busy_us;
    r.ranks.push_back(rk);
  }
  if (!r.ranks.empty()) {
    r.busy_mean_us = sum / static_cast<double>(r.ranks.size());
    for (const auto& rk : r.ranks) {
      const double d = rk.busy_us - r.busy_mean_us;
      sum2 += d * d;
    }
    const double var = sum2 / static_cast<double>(r.ranks.size());
    if (r.busy_mean_us > 0.0) r.busy_cv = std::sqrt(var) / r.busy_mean_us;
  }

  for (const auto& [dead, death] : first_death) r.deaths.push_back(death);
  for (const auto& [rank, gen] : salvaged) r.salvages.push_back({rank, gen});
  for (WsReport::Recovery& rec : r.recoveries) {
    const auto it = region_begins.find(rec.by_rank);
    if (it == region_begins.end()) continue;
    // Events arrive timestamp-sorted from trace_merge, but don't rely on
    // it — scan for the earliest region begin at/after the rehome.
    double best = -1.0;
    for (const double b : it->second)
      if (b >= rec.rehome_ts_us && (best < 0.0 || b < best)) best = b;
    if (best >= 0.0) {
      rec.first_exec_ts_us = best;
      rec.recovery_latency_us = best - rec.rehome_ts_us;
    }
  }
  return r;
}

std::string render_json(const WsReport& r) {
  std::string j;
  j += "{\n\"schema\": \"pmpl-ws-report-1\",\n";
  j += "\"window_us\": " + fmt(r.window_us) + ",\n";
  j += "\"busy_mean_us\": " + fmt(r.busy_mean_us) + ",\n";
  j += "\"busy_cv\": " + fmt(r.busy_cv) + ",\n";
  j += "\"ranks\": [\n";
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    const auto& rk = r.ranks[i];
    j += "  {\"rank\": " + std::to_string(rk.rank) +
         ", \"busy_us\": " + fmt(rk.busy_us) +
         ", \"idle_us\": " + fmt(rk.idle_us) +
         ", \"regions\": " + std::to_string(rk.regions) +
         ", \"steal_reqs\": " + std::to_string(rk.steal_reqs) +
         ", \"grants\": " + std::to_string(rk.grants) +
         ", \"denies\": " + std::to_string(rk.denies) +
         ", \"migrate_ins\": " + std::to_string(rk.migrate_ins) + "}";
    j += i + 1 < r.ranks.size() ? ",\n" : "\n";
  }
  j += "],\n";
  append_hist(j, "steal_latency", r.steal_flows, r.steal_latency_log2_us);
  j += ",\n";
  append_hist(j, "grant_rtt", r.grant_flows, r.grant_rtt_log2_us);
  j += ",\n\"chaos\": {\"deaths\": [";
  for (std::size_t i = 0; i < r.deaths.size(); ++i) {
    const auto& d = r.deaths[i];
    j += std::string(i ? ", " : "") + "{\"dead_rank\": " +
         std::to_string(d.dead_rank) +
         ", \"detector\": " + std::to_string(d.detector) +
         ", \"detected_ts_us\": " + fmt(d.detected_ts_us) + "}";
  }
  j += "], \"salvaged\": [";
  for (std::size_t i = 0; i < r.salvages.size(); ++i) {
    const auto& s = r.salvages[i];
    j += std::string(i ? ", " : "") + "{\"rank\": " + std::to_string(s.rank) +
         ", \"generation\": " + std::to_string(s.generation) + "}";
  }
  j += "], \"recoveries\": [";
  for (std::size_t i = 0; i < r.recoveries.size(); ++i) {
    const auto& c = r.recoveries[i];
    j += std::string(i ? ", " : "") + "{\"by_rank\": " +
         std::to_string(c.by_rank) +
         ", \"dead_rank\": " + std::to_string(c.dead_rank) +
         ", \"regions\": " + std::to_string(c.regions) +
         ", \"rehome_ts_us\": " + fmt(c.rehome_ts_us) +
         ", \"first_exec_ts_us\": " + fmt(c.first_exec_ts_us) +
         ", \"recovery_latency_us\": " + fmt(c.recovery_latency_us) + "}";
  }
  j += "]}\n}\n";
  return j;
}

std::string render_markdown(const WsReport& r) {
  std::string m;
  m += "# Cluster trace report\n\n";
  m += "Run window: " + fmt(r.window_us / 1000.0) + " ms, " +
       std::to_string(r.ranks.size()) + " ranks. Busy-time CV: " +
       fmt(r.busy_cv) + " (mean " + fmt(r.busy_mean_us / 1000.0) +
       " ms/rank).\n\n";
  m += "## Load balance\n\n";
  m += "| rank | busy ms | idle ms | regions | steal reqs | grants | denies "
       "| migrate in |\n";
  m += "|-----:|--------:|--------:|--------:|-----------:|-------:|-------:"
       "|-----------:|\n";
  for (const auto& rk : r.ranks)
    m += "| " + std::to_string(rk.rank) + " | " + fmt(rk.busy_us / 1000.0) +
         " | " + fmt(rk.idle_us / 1000.0) + " | " +
         std::to_string(rk.regions) + " | " + std::to_string(rk.steal_reqs) +
         " | " + std::to_string(rk.grants) + " | " +
         std::to_string(rk.denies) + " | " + std::to_string(rk.migrate_ins) +
         " |\n";
  const auto hist_line = [&m](const char* title, std::uint64_t count,
                              const std::vector<std::uint64_t>& h) {
    m += std::string("\n## ") + title + "\n\n" + std::to_string(count) +
         " completed flows.";
    if (count == 0) {
      m += "\n";
      return;
    }
    m += " log2 buckets (us):\n\n";
    for (std::size_t b = 0; b < h.size(); ++b) {
      if (h[b] == 0) continue;
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      m += "- [" + fmt(lo) + ", " + fmt(hi) + ") us: " +
           std::to_string(h[b]) + "\n";
    }
  };
  hist_line("Steal latency (request flight)", r.steal_flows,
            r.steal_latency_log2_us);
  hist_line("Grant round-trip (decision to application)", r.grant_flows,
            r.grant_rtt_log2_us);
  m += "\n## Chaos post-mortem\n\n";
  if (r.deaths.empty() && r.salvages.empty() && r.recoveries.empty()) {
    m += "Fault-free run: no deaths detected, nothing salvaged.\n";
    return m;
  }
  for (const auto& d : r.deaths)
    m += "- rank " + std::to_string(d.dead_rank) +
         " declared dead (first detected by rank " +
         std::to_string(d.detector) + " at " + fmt(d.detected_ts_us / 1000.0) +
         " ms)\n";
  for (const auto& s : r.salvages)
    m += "- flight-recorder fragment salvaged for rank " +
         std::to_string(s.rank) + " generation " +
         std::to_string(s.generation) + "\n";
  for (const auto& c : r.recoveries) {
    m += "- rank " + std::to_string(c.by_rank) + " re-homed " +
         std::to_string(c.regions) + " regions of dead rank " +
         std::to_string(c.dead_rank) + " at " + fmt(c.rehome_ts_us / 1000.0) +
         " ms";
    if (c.recovery_latency_us >= 0.0)
      m += "; first re-homed execution " + fmt(c.recovery_latency_us / 1000.0) +
           " ms later";
    m += "\n";
  }
  return m;
}

}  // namespace pmpl::loadbal
