#pragma once
/// \file ws_report.hpp
/// Load-imbalance and chaos post-mortem analyzer over a merged cluster
/// trace (the library behind tools/ws_report).
///
/// Consumes the single-timeline JSON tools/trace_merge writes (or any one
/// rank's export — the analyses degrade gracefully to one process) and
/// reduces it to the questions DESIGN.md §5j cares about:
///  - load balance: per-rank busy ("region" span) / idle time over the
///    run window, coefficient of variation of busy time across ranks
///    (the paper's imbalance metric), per-rank steal/grant/deny counts;
///  - protocol latency: log2 histograms (microsecond buckets) of
///    steal-request flight time ("steal" flow start -> end) and grant
///    round-trip ("grant" flow start -> end, i.e. victim decision to
///    thief application);
///  - chaos post-mortem: who died (death_known instants), which dead
///    incarnations' trace fragments the supervisor salvaged ("salvage"
///    instants / salvaged inputs), who re-homed their regions (rehome
///    instants) and how long until the re-homed work actually ran
///    (rehome -> next region-begin on the recovering rank).
///
/// render_json() emits the machine-readable report the CI trace-smoke job
/// checks against tools/ws_report_schema.json; render_markdown() the
/// human summary attached to the job artifact.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json_mini.hpp"

namespace pmpl::loadbal {

struct WsReport {
  struct Rank {
    std::uint32_t rank = 0;
    double busy_us = 0.0;   ///< inside "region" spans
    double idle_us = 0.0;   ///< window - busy
    std::uint64_t regions = 0;  ///< completed region spans
    std::uint64_t steal_reqs = 0;
    std::uint64_t grants = 0;
    std::uint64_t denies = 0;
    std::uint64_t migrate_ins = 0;
  };
  struct Death {
    std::uint32_t dead_rank = 0;
    std::uint32_t detector = 0;  ///< pid that first emitted death_known
    double detected_ts_us = 0.0;
  };
  struct Salvage {
    std::uint32_t rank = 0;
    std::uint32_t generation = 0;
  };
  struct Recovery {
    std::uint32_t by_rank = 0;    ///< ring successor that re-homed
    std::uint32_t dead_rank = 0;
    std::uint64_t regions = 0;    ///< regions re-homed (rehome corr arg)
    double rehome_ts_us = 0.0;
    double first_exec_ts_us = -1.0;  ///< next region begin; -1 = none seen
    double recovery_latency_us = -1.0;  ///< first_exec - rehome; -1 = none
  };

  double window_us = 0.0;  ///< [earliest, latest] payload timestamp span
  double busy_mean_us = 0.0;
  double busy_cv = 0.0;  ///< stddev/mean of per-rank busy (0 when mean 0)
  std::vector<Rank> ranks;

  std::uint64_t steal_flows = 0;  ///< completed steal arrows measured
  std::uint64_t grant_flows = 0;
  /// log2 microsecond buckets: bucket 0 = [0,1)us, k = [2^(k-1), 2^k)us.
  std::vector<std::uint64_t> steal_latency_log2_us;  // 64 buckets
  std::vector<std::uint64_t> grant_rtt_log2_us;      // 64 buckets

  std::vector<Death> deaths;
  std::vector<Salvage> salvages;
  std::vector<Recovery> recoveries;
};

/// Analyze a parsed merged-trace document. Structural problems (no
/// traceEvents array) set `error` and return an empty report.
WsReport analyze_trace(const pmpl::json::Value& merged, std::string* error);

std::string render_json(const WsReport& r);
std::string render_markdown(const WsReport& r);

}  // namespace pmpl::loadbal
