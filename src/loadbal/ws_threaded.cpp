#include "loadbal/ws_threaded.hpp"

#include <atomic>
#include <cassert>

namespace pmpl::loadbal {

std::vector<WorkerStats> run_on_scheduler(
    runtime::Scheduler& scheduler,
    const std::vector<std::function<void()>>& tasks,
    const std::vector<std::uint32_t>& initial) {
  assert(tasks.size() == initial.size());
  const auto workers = static_cast<std::uint32_t>(scheduler.size());

  // Record which worker actually ran each task; local/stolen attribution
  // is relative to the *initial* assignment, which the scheduler's own
  // counters (whose "local" means own-deque) cannot express.
  const auto before = scheduler.counters();
  std::vector<std::atomic<std::int32_t>> executor(tasks.size());
  for (auto& e : executor) e.store(-1, std::memory_order_relaxed);

  runtime::TaskGroup group;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    assert(initial[i] < workers);
    scheduler.submit_to(initial[i],
                        [&scheduler, &tasks, &executor, i] {
                          executor[i].store(scheduler.current_worker(),
                                            std::memory_order_relaxed);
                          tasks[i]();
                        },
                        &group);
  }
  scheduler.wait(group);

  std::vector<WorkerStats> stats(workers);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto w = executor[i].load(std::memory_order_relaxed);
    assert(w >= 0);
    if (static_cast<std::uint32_t>(w) == initial[i])
      ++stats[static_cast<std::size_t>(w)].executed_local;
    else
      ++stats[static_cast<std::size_t>(w)].executed_stolen;
  }
  const auto after = scheduler.counters();
  for (std::uint32_t w = 0; w < workers; ++w) {
    stats[w].steal_attempts =
        after[w].steal_attempts - before[w].steal_attempts;
    stats[w].steal_failures =
        after[w].steal_failures - before[w].steal_failures;
    stats[w].park_s = after[w].park_s - before[w].park_s;
  }
  return stats;
}

std::vector<WorkerStats> run_work_stealing(
    const std::vector<std::function<void()>>& tasks,
    const std::vector<std::uint32_t>& initial, std::uint32_t workers,
    std::uint64_t seed) {
  assert(workers > 0);
  runtime::SchedulerOptions options;
  options.seed = seed;
  runtime::Scheduler scheduler(workers, options);
  return run_on_scheduler(scheduler, tasks, initial);
}

}  // namespace pmpl::loadbal
