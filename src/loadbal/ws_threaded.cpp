#include "loadbal/ws_threaded.hpp"

#include <cassert>
#include <thread>

#include "util/rng.hpp"

namespace pmpl::loadbal {

namespace {

/// A worker's task deque: owner pops from the front, thieves steal from
/// the back. Mutex-based — region tasks are coarse (milliseconds), so
/// queue overhead is irrelevant next to task cost.
class TaskDeque {
 public:
  void push(std::uint32_t task) {
    std::lock_guard lock(mutex_);
    deque_.push_back(task);
  }

  bool pop_front(std::uint32_t& task) {
    std::lock_guard lock(mutex_);
    if (deque_.empty()) return false;
    task = deque_.front();
    deque_.pop_front();
    return true;
  }

  /// Steal up to half the queue from the back.
  std::vector<std::uint32_t> steal_half() {
    std::lock_guard lock(mutex_);
    const std::size_t n = deque_.size() / 2;
    std::vector<std::uint32_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(deque_.back());
      deque_.pop_back();
    }
    return out;
  }

 private:
  std::mutex mutex_;
  std::deque<std::uint32_t> deque_;
};

}  // namespace

std::vector<WorkerStats> run_work_stealing(
    const std::vector<std::function<void()>>& tasks,
    const std::vector<std::uint32_t>& initial, std::uint32_t workers,
    std::uint64_t seed) {
  assert(tasks.size() == initial.size());
  assert(workers > 0);

  std::vector<TaskDeque> queues(workers);
  std::vector<bool> is_local_flag(tasks.size(), true);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    assert(initial[i] < workers);
    queues[initial[i]].push(static_cast<std::uint32_t>(i));
  }

  std::vector<WorkerStats> stats(workers);
  std::atomic<std::uint64_t> remaining{tasks.size()};
  // Track stolen-ness per (worker, task) locally: a task is "stolen" for
  // the executing worker iff it was not initially assigned to it.
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Xoshiro256ss rng(derive_seed(seed, w));
      WorkerStats& st = stats[w];
      while (remaining.load(std::memory_order_acquire) > 0) {
        std::uint32_t task;
        if (queues[w].pop_front(task)) {
          tasks[task]();
          if (initial[task] == w)
            ++st.executed_local;
          else
            ++st.executed_stolen;
          remaining.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
        // Steal from a random victim.
        if (workers == 1) break;
        ++st.steal_attempts;
        const auto victim =
            static_cast<std::uint32_t>(rng.uniform_u64(workers));
        if (victim == w) continue;
        const auto stolen = queues[victim].steal_half();
        for (std::uint32_t t : stolen) queues[w].push(t);
        if (stolen.empty()) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  return stats;
}

}  // namespace pmpl::loadbal
