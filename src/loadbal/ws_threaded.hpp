#pragma once
/// \file ws_threaded.hpp
/// Real shared-memory work-stealing executor.
///
/// The DES engine replays measured work at cluster scale; this executor
/// actually runs region tasks concurrently on host threads with the same
/// steal-from-the-back discipline, demonstrating the algorithm end-to-end
/// (used by the parallel examples and the threaded integration tests).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace pmpl::loadbal {

/// Statistics per worker after a run.
struct WorkerStats {
  std::uint64_t executed_local = 0;
  std::uint64_t executed_stolen = 0;
  std::uint64_t steal_attempts = 0;
};

/// Execute `tasks` distributed to `workers` queues per `initial`
/// (task index -> worker). Each worker drains its own deque from the
/// front and steals from a random victim's back when empty. Returns
/// per-worker stats. Tasks must be thread-safe with respect to each other.
std::vector<WorkerStats> run_work_stealing(
    const std::vector<std::function<void()>>& tasks,
    const std::vector<std::uint32_t>& initial, std::uint32_t workers,
    std::uint64_t seed = 42);

}  // namespace pmpl::loadbal
