#pragma once
/// \file ws_threaded.hpp
/// Real shared-memory work-stealing execution, as a thin adapter over the
/// lock-free runtime::Scheduler.
///
/// The DES engine replays measured work at cluster scale; this adapter
/// actually runs region tasks concurrently on host threads with the same
/// initial-placement + steal discipline, demonstrating the algorithm
/// end-to-end (used by the parallel builders, examples, and the threaded
/// integration tests). Idle workers park instead of busy-spinning, and a
/// stolen batch preserves the FIFO order it had in the victim's queue.

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/scheduler.hpp"

namespace pmpl::loadbal {

/// Statistics per worker after a run. `executed_local` counts tasks run by
/// their initially-assigned worker; `executed_stolen` counts migrated ones.
struct WorkerStats {
  std::uint64_t executed_local = 0;
  std::uint64_t executed_stolen = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_failures = 0;  ///< attempts that found nothing
  double park_s = 0.0;               ///< idle time spent parked, not spinning
};

/// Execute `tasks` on `scheduler` with initial placement `initial`
/// (task index -> worker), blocking until all complete. Returns per-worker
/// stats attributed against the initial assignment. Tasks must be
/// thread-safe with respect to each other.
std::vector<WorkerStats> run_on_scheduler(
    runtime::Scheduler& scheduler,
    const std::vector<std::function<void()>>& tasks,
    const std::vector<std::uint32_t>& initial);

/// Convenience wrapper: build a `workers`-wide scheduler, run, tear down.
/// Kept as the stable entry point predating the unified scheduler; `seed`
/// feeds victim selection.
std::vector<WorkerStats> run_work_stealing(
    const std::vector<std::function<void()>>& tasks,
    const std::vector<std::uint32_t>& initial, std::uint32_t workers,
    std::uint64_t seed = 42);

}  // namespace pmpl::loadbal
