#include "model/model_env.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "loadbal/metrics.hpp"
#include "loadbal/partition.hpp"
#include "util/stats.hpp"

namespace pmpl::model {

ModelEnvironment::ModelEnvironment(double blocked_fraction,
                                   std::uint32_t grid_side)
    : blocked_(blocked_fraction), side_(grid_side) {
  assert(grid_side > 0);
  assert(blocked_fraction >= 0.0 && blocked_fraction < 1.0);

  const double obstacle_side = std::sqrt(blocked_fraction);
  const double lo = 0.5 * (1.0 - obstacle_side);
  const double hi = lo + obstacle_side;
  const geo::Aabb obstacle{{lo, lo, 0.0}, {hi, hi, 1.0}};

  const double cell = 1.0 / side_;
  vfree_.resize(static_cast<std::size_t>(side_) * side_);
  // x-major ordering (column-contiguous): id = ix * side + iy, matching
  // RegionGrid's ordering with nz = 1.
  for (std::uint32_t ix = 0; ix < side_; ++ix) {
    for (std::uint32_t iy = 0; iy < side_; ++iy) {
      const geo::Aabb box{{ix * cell, iy * cell, 0.0},
                          {(ix + 1) * cell, (iy + 1) * cell, 1.0}};
      const double blocked_area = box.overlap_volume(obstacle);  // z-depth 1
      vfree_[ix * side_ + iy] = box.volume() - blocked_area;
    }
  }
}

std::vector<double> ModelEnvironment::naive_load(std::uint32_t procs) const {
  const auto assignment = loadbal::partition_block(vfree_.size(), procs);
  return loadbal::per_part_load(vfree_, assignment, procs);
}

std::vector<double> ModelEnvironment::best_load(std::uint32_t procs) const {
  const loadbal::PartitionProblem problem{
      vfree_, {}, {}, geo::Aabb{{0, 0, 0}, {1, 1, 1}}, procs};
  const auto assignment = loadbal::partition_greedy_lpt(problem);
  return loadbal::per_part_load(vfree_, assignment, procs);
}

double ModelEnvironment::cv_naive(std::uint32_t procs) const {
  return summarize(naive_load(procs)).cv();
}

double ModelEnvironment::cv_best(std::uint32_t procs) const {
  return summarize(best_load(procs)).cv();
}

double ModelEnvironment::max_load_improvement_pct(std::uint32_t procs) const {
  const double naive_max = summarize(naive_load(procs)).max;
  const double best_max = summarize(best_load(procs)).max;
  if (naive_max <= 0.0) return 0.0;
  return 100.0 * (naive_max - best_max) / naive_max;
}

}  // namespace pmpl::model
