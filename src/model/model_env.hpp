#pragma once
/// \file model_env.hpp
/// The paper's theoretical model (§IV-B, Fig 4): a 2D unit workspace with
/// one centered square obstacle, subdivided into an n x n region mesh.
///
/// Per-region free area V_free is computed *analytically* (box-box overlap),
/// so the load a region experiences (∝ V_free) is exact. From it we derive:
///  - the coefficient of variation under the naive column mapping
///    ("model imbalance"),
///  - the CV under the best partition a greedy global algorithm finds,
///    ignoring edge cuts ("model improvement" — exact balance is
///    NP-complete),
///  - the bound on the reduction of the most-loaded processor's V_free that
///    *any* load balancing technique can achieve ("theoretical (unit
///    area)" in Fig 4b).

#include <cstdint>
#include <vector>

#include "geometry/shapes.hpp"

namespace pmpl::model {

/// Analytic model environment.
class ModelEnvironment {
 public:
  /// Unit square with a centered square obstacle of area
  /// `blocked_fraction`, subdivided into `grid_side` x `grid_side` regions.
  ModelEnvironment(double blocked_fraction, std::uint32_t grid_side);

  std::uint32_t grid_side() const noexcept { return side_; }
  std::size_t num_regions() const noexcept { return vfree_.size(); }
  double blocked_fraction() const noexcept { return blocked_; }

  /// Exact free area of region id (x-major ordering, matching RegionGrid).
  double vfree(std::uint32_t region) const noexcept { return vfree_[region]; }

  /// All per-region free areas (the model's load weights).
  const std::vector<double>& vfree_weights() const noexcept { return vfree_; }

  /// Per-processor V_free under the naive mapping (contiguous blocks of
  /// region columns).
  std::vector<double> naive_load(std::uint32_t procs) const;

  /// Per-processor V_free under the greedy (LPT) best-balance partition.
  std::vector<double> best_load(std::uint32_t procs) const;

  /// CV of the naive mapping ("model imbalance", Fig 4a).
  double cv_naive(std::uint32_t procs) const;

  /// CV of the greedy best partition ("model improvement", Fig 4a).
  double cv_best(std::uint32_t procs) const;

  /// Percentage reduction of the most-loaded processor's V_free achievable
  /// by the best partition: the Fig 4b "theoretical (unit area)" series.
  double max_load_improvement_pct(std::uint32_t procs) const;

 private:
  double blocked_;
  std::uint32_t side_;
  std::vector<double> vfree_;
};

}  // namespace pmpl::model
