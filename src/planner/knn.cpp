#include "planner/knn.hpp"

#include <algorithm>
#include <cmath>

namespace pmpl::planner {

namespace {

/// Max-heap on the canonical order, so the *worst* kept neighbor is at the
/// front; sort_heap then yields ascending canonical order.
struct WorstFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return neighbor_before(a, b);
  }
};

void heap_consider(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
  if (heap.size() < k) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), WorstFirst{});
  } else if (neighbor_before(n, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), WorstFirst{});
    heap.back() = n;
    std::push_heap(heap.begin(), heap.end(), WorstFirst{});
  }
}

}  // namespace

void NeighborFinder::nearest_batch(std::span<const cspace::Config> queries,
                                   std::size_t k, KnnBatch& out,
                                   PlannerStats* stats) {
  out.neighbors.clear();
  out.offsets.clear();
  out.offsets.reserve(queries.size() + 1);
  out.offsets.push_back(0);
  for (const auto& q : queries) {
    const auto r = nearest(q, k, stats);
    out.neighbors.insert(out.neighbors.end(), r.begin(), r.end());
    out.offsets.push_back(static_cast<std::uint32_t>(out.neighbors.size()));
  }
}

std::span<const Neighbor> BruteForceKnn::nearest(const cspace::Config& q,
                                                 std::size_t k,
                                                 PlannerStats* stats) {
  if (stats) ++stats->knn_queries;
  heap_.clear();
  if (k == 0) return {};
  heap_.reserve(k + 1);
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (stats) ++stats->knn_candidates;
    heap_consider(heap_, k, {ids_[i], space_->distance(q, configs_[i])});
  }
  std::sort_heap(heap_.begin(), heap_.end(), WorstFirst{});
  return {heap_.data(), heap_.size()};
}

void KdTreeKnn::insert(graph::VertexId id, const cspace::Config& c) {
  ids_.push_back(id);
  cfgs_.push_back(c);
  pos_.push_back(space_->position(c));
  // Rebuild when the unindexed buffer exceeds half the indexed size (and at
  // least 32 points), keeping amortized insertion cheap.
  const std::size_t buffered = ids_.size() - indexed_;
  if (buffered >= 32 && buffered * 2 >= indexed_) rebuild();
}

void KdTreeKnn::rebuild() {
  const std::size_t n = ids_.size();
  nodes_.clear();
  nodes_.reserve(leaf_size_ ? 2 * n / leaf_size_ + 2 : n);
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = static_cast<std::uint32_t>(i);
  root_ = n == 0 ? kNoNode : build_subtree(0, n);
  // The recursion only permutes within its own subrange, so perm_ ends up
  // leaf-contiguous; mirror it into the SoA coordinate arrays.
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec3& p = pos_[perm_[i]];
    px_[i] = p.x;
    py_[i] = p.y;
    pz_[i] = p.z;
  }
  stack_.reserve(64);
  indexed_ = n;
}

std::uint32_t KdTreeKnn::build_subtree(std::size_t lo, std::size_t hi) {
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (hi - lo <= leaf_size_) {
    nodes_[idx] = {0.0, static_cast<std::uint32_t>(lo),
                   static_cast<std::uint32_t>(hi - lo), kLeafAxis};
    return idx;
  }
  // Split along the axis of widest positional spread; a degenerate
  // zero-width spread still partitions, its split plane just never prunes.
  geo::Vec3 cmin = pos_[perm_[lo]];
  geo::Vec3 cmax = cmin;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const geo::Vec3& p = pos_[perm_[i]];
    cmin = geo::min(cmin, p);
    cmax = geo::max(cmax, p);
  }
  const geo::Vec3 extent = cmax - cmin;
  std::uint8_t axis = 0;
  if (extent.y > extent[axis]) axis = 1;
  if (extent.z > extent[axis]) axis = 2;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(perm_.begin() + static_cast<long>(lo),
                   perm_.begin() + static_cast<long>(mid),
                   perm_.begin() + static_cast<long>(hi),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return pos_[a][axis] < pos_[b][axis];
                   });
  // Median point goes to the right half: left holds coords <= split,
  // right holds coords >= split, which is what the |delta| bound assumes.
  const double split = pos_[perm_[mid]][axis];
  const std::uint32_t left = build_subtree(lo, mid);
  const std::uint32_t right = build_subtree(mid, hi);
  nodes_[idx] = {split, left, right, axis};
  return idx;
}

std::span<const Neighbor> KdTreeKnn::nearest(const cspace::Config& q,
                                             std::size_t k,
                                             PlannerStats* stats) {
  // Lazy-rebuild guard: a long insert burst can leave a large fraction of
  // the points in the linear buffer (the insert-time policy only fires
  // every tree/2 inserts); if the buffer dominates, fold it into the tree
  // once instead of paying an O(buffer) scan on every query.
  const std::size_t buffered = ids_.size() - indexed_;
  if (buffered >= 32 && buffered * 4 >= indexed_) rebuild();

  if (stats) ++stats->knn_queries;
  heap_.clear();
  if (k == 0) return {};
  heap_.reserve(k + 1);
  const geo::Vec3 qp = space_->position(q);

  stack_.clear();
  if (root_ != kNoNode) stack_.push_back({root_, 0.0});
  while (!stack_.empty()) {
    const Visit v = stack_.back();
    stack_.pop_back();
    // Strict >: an equal bound may still hide an equal-distance point with
    // a smaller id, which beats the current worst under canonical order.
    if (heap_.size() >= k && v.bound > heap_.front().distance) continue;
    const Node& n = nodes_[v.node];
    if (n.axis == kLeafAxis) {
      const std::size_t first = n.a;
      const std::size_t count = n.b;
      for (std::size_t s = first; s < first + count; ++s) {
        if (stats) ++stats->knn_candidates;
        const double dx = qp.x - px_[s];
        const double dy = qp.y - py_[s];
        const double dz = qp.z - pz_[s];
        // Left-associative sum, matching Vec3::dot/norm bit-for-bit so
        // this positional bound can never exceed the full metric (which
        // only adds a non-negative rotation term on top of it).
        const double pd = std::sqrt((dx * dx + dy * dy) + dz * dz);
        if (heap_.size() >= k && pd > heap_.front().distance) continue;
        const std::uint32_t m = perm_[s];
        heap_consider(heap_, k, {ids_[m], space_->distance(q, cfgs_[m])});
      }
      continue;
    }
    const double delta = qp[n.axis] - n.split;
    const std::uint32_t near_child = delta < 0.0 ? n.a : n.b;
    const std::uint32_t far_child = delta < 0.0 ? n.b : n.a;
    // Depth-first into the near child: push the far side (with its
    // tightened bound) first so the near side pops next.
    stack_.push_back({far_child, std::max(v.bound, std::fabs(delta))});
    stack_.push_back({near_child, v.bound});
  }

  // Points inserted since the last rebuild live in the linear buffer; the
  // same positional lower bound skips the full metric where it cannot win.
  for (std::size_t i = indexed_; i < ids_.size(); ++i) {
    if (stats) ++stats->knn_candidates;
    const double dx = qp.x - pos_[i].x;
    const double dy = qp.y - pos_[i].y;
    const double dz = qp.z - pos_[i].z;
    const double pd = std::sqrt((dx * dx + dy * dy) + dz * dz);
    if (heap_.size() >= k && pd > heap_.front().distance) continue;
    heap_consider(heap_, k, {ids_[i], space_->distance(q, cfgs_[i])});
  }
  std::sort_heap(heap_.begin(), heap_.end(), WorstFirst{});
  return {heap_.data(), heap_.size()};
}

std::unique_ptr<NeighborFinder> make_neighbor_finder(
    const cspace::CSpace& space, bool exact) {
  if (exact) return std::make_unique<BruteForceKnn>(space);
  return std::make_unique<KdTreeKnn>(space);
}

}  // namespace pmpl::planner
