#include "planner/knn.hpp"

#include <algorithm>
#include <cmath>

namespace pmpl::planner {

namespace {

/// Max-heap ordering on distance so the worst of the current k best is at
/// the front.
struct ByDistance {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance < b.distance;
  }
};

void heap_consider(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
  if (heap.size() < k) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), ByDistance{});
  } else if (n.distance < heap.front().distance) {
    std::pop_heap(heap.begin(), heap.end(), ByDistance{});
    heap.back() = n;
    std::push_heap(heap.begin(), heap.end(), ByDistance{});
  }
}

}  // namespace

std::vector<Neighbor> BruteForceKnn::nearest(const cspace::Config& q,
                                             std::size_t k,
                                             PlannerStats* stats) {
  if (stats) ++stats->knn_queries;
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (stats) ++stats->knn_candidates;
    heap_consider(heap, k, {ids_[i], space_->distance(q, configs_[i])});
  }
  std::sort_heap(heap.begin(), heap.end(), ByDistance{});
  return heap;
}

void KdTreeKnn::insert(graph::VertexId id, const cspace::Config& c) {
  points_.push_back({space_->position(c), id, c});
  // Rebuild when the unindexed buffer exceeds half the indexed size (and at
  // least 32 points), keeping amortized insertion cheap.
  const std::size_t buffered = points_.size() - tree_size_;
  if (buffered >= 32 && buffered * 2 >= tree_size_) rebuild();
}

void KdTreeKnn::rebuild() {
  nodes_.clear();
  nodes_.reserve(points_.size());
  std::vector<std::uint32_t> items(points_.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    items[i] = static_cast<std::uint32_t>(i);
  root_ = points_.empty()
              ? kNoNode
              : build_subtree(items, 0, items.size(), 0);
  tree_size_ = points_.size();
}

std::uint32_t KdTreeKnn::build_subtree(std::vector<std::uint32_t>& items,
                                       std::size_t lo, std::size_t hi,
                                       int depth) {
  if (lo >= hi) return kNoNode;
  const std::size_t mid = lo + (hi - lo) / 2;
  const auto axis = static_cast<std::uint8_t>(depth % 3);
  std::nth_element(items.begin() + static_cast<long>(lo),
                   items.begin() + static_cast<long>(mid),
                   items.begin() + static_cast<long>(hi),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return points_[a].pos[axis] < points_[b].pos[axis];
                   });
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({items[mid], kNoNode, kNoNode, axis});
  const std::uint32_t left = build_subtree(items, lo, mid, depth + 1);
  const std::uint32_t right = build_subtree(items, mid + 1, hi, depth + 1);
  nodes_[idx].left = left;
  nodes_[idx].right = right;
  return idx;
}

void KdTreeKnn::search(std::uint32_t node, const geo::Vec3& q, std::size_t k,
                       std::vector<Neighbor>& heap,
                       const cspace::Config& qcfg,
                       PlannerStats* stats) const {
  if (node == kNoNode) return;
  const Node& n = nodes_[node];
  const Point& p = points_[n.point];
  if (stats) ++stats->knn_candidates;
  heap_consider(heap, k, {p.id, space_->distance(qcfg, p.cfg)});

  const double delta = q[n.axis] - p.pos[n.axis];
  const std::uint32_t near_child = delta < 0.0 ? n.left : n.right;
  const std::uint32_t far_child = delta < 0.0 ? n.right : n.left;
  search(near_child, q, k, heap, qcfg, stats);
  // The positional split plane bounds positional distance; the full metric
  // adds a non-negative rotation term, so |delta| remains a valid lower
  // bound for pruning.
  if (heap.size() < k || std::fabs(delta) < heap.front().distance)
    search(far_child, q, k, heap, qcfg, stats);
}

std::vector<Neighbor> KdTreeKnn::nearest(const cspace::Config& q,
                                         std::size_t k, PlannerStats* stats) {
  if (stats) ++stats->knn_queries;
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  const geo::Vec3 qp = space_->position(q);
  search(root_, qp, k, heap, q, stats);
  // Points inserted since the last rebuild live in the linear buffer.
  for (std::size_t i = tree_size_; i < points_.size(); ++i) {
    if (stats) ++stats->knn_candidates;
    heap_consider(heap, k, {points_[i].id,
                            space_->distance(q, points_[i].cfg)});
  }
  std::sort_heap(heap.begin(), heap.end(), ByDistance{});
  return heap;
}

std::unique_ptr<NeighborFinder> make_neighbor_finder(
    const cspace::CSpace& space, bool exact) {
  if (exact) return std::make_unique<BruteForceKnn>(space);
  return std::make_unique<KdTreeKnn>(space);
}

}  // namespace pmpl::planner
