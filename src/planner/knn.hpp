#pragma once
/// \file knn.hpp
/// k-nearest-neighbor search over configurations.
///
/// Global nearest-neighbor search is the classic bottleneck of parallel
/// sampling-based planning (paper §I); the subdivision algorithms avoid it
/// by keeping searches regional. Two finders are provided:
///
///  - `BruteForceKnn` — exact under the full C-space metric; O(n) per query.
///  - `KdTreeKnn`     — leaf-bucketed kd-tree over workspace *positions*
///    with deferred rebuilds for incremental insertion. Leaves hold 8–16
///    points in structure-of-arrays layout so a leaf scan is a tight loop
///    over contiguous doubles; traversal is iterative with an explicit
///    stack. Candidates are ranked by the full C-space metric; positional
///    distance is a valid lower bound on every metric we define (rotation
///    adds a non-negative term), so results are exact — the tree only loses
///    pruning power, not accuracy.
///
/// Both finders return results in the *canonical neighbor order* (ascending
/// distance, ties broken by ascending vertex id — see `neighbor_before`),
/// which makes the k-best set a total order: any exact finder returns
/// bit-identical results regardless of scan or traversal order. That
/// determinism is load-bearing for roadmap reproducibility.
///
/// `nearest()` returns a span into per-finder scratch (no per-query heap
/// allocation once warm); `nearest_batch()` amortizes call overhead across
/// a query batch into a caller-owned reusable buffer. Finders are *not*
/// thread-safe for concurrent queries — each worker owns its finder, which
/// matches how the planners already use them.
///
/// Both report visited-candidate counts so k-NN work feeds the load model.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cspace/space.hpp"
#include "planner/roadmap.hpp"
#include "planner/stats.hpp"

namespace pmpl::planner {

/// A neighbor candidate: vertex id and metric distance to the query.
struct Neighbor {
  graph::VertexId id;
  double distance;
};

/// Canonical neighbor order: ascending distance, ties broken by ascending
/// vertex id. The id tie-break totally orders candidates (ids are unique),
/// so the k nearest are a unique set in a unique order no matter how a
/// finder visits points.
inline bool neighbor_before(const Neighbor& a, const Neighbor& b) noexcept {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

/// Flat result buffer for `nearest_batch`: query i's neighbors occupy
/// [offsets[i], offsets[i+1]) of `neighbors`. Reuse the same instance
/// across batches to keep the connection phase allocation-free once warm.
struct KnnBatch {
  std::vector<Neighbor> neighbors;
  std::vector<std::uint32_t> offsets;  ///< size = query count + 1

  std::span<const Neighbor> of(std::size_t i) const noexcept {
    return {neighbors.data() + offsets[i], neighbors.data() + offsets[i + 1]};
  }
  std::size_t query_count() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
};

/// Interface for incremental k-NN over (id, config) pairs.
class NeighborFinder {
 public:
  virtual ~NeighborFinder() = default;

  virtual void insert(graph::VertexId id, const cspace::Config& c) = 0;

  /// The k nearest stored configs to `q`, in canonical order. Fewer than k
  /// if the structure holds fewer points. The span aliases finder-owned
  /// scratch: it is invalidated by the next `nearest`/`nearest_batch`/
  /// `insert` call, and a finder must not be queried concurrently.
  virtual std::span<const Neighbor> nearest(
      const cspace::Config& q, std::size_t k,
      PlannerStats* stats = nullptr) = 0;

  /// Run `nearest` for every query, packing results into `out` (cleared
  /// first). Results are identical to k single queries in order.
  void nearest_batch(std::span<const cspace::Config> queries, std::size_t k,
                     KnnBatch& out, PlannerStats* stats = nullptr);

  virtual std::size_t size() const noexcept = 0;
};

/// Exact linear scan under the full C-space metric.
class BruteForceKnn final : public NeighborFinder {
 public:
  explicit BruteForceKnn(const cspace::CSpace& space) : space_(&space) {}

  void insert(graph::VertexId id, const cspace::Config& c) override {
    ids_.push_back(id);
    configs_.push_back(c);
  }

  std::span<const Neighbor> nearest(const cspace::Config& q, std::size_t k,
                                    PlannerStats* stats = nullptr) override;

  std::size_t size() const noexcept override { return ids_.size(); }

 private:
  const cspace::CSpace* space_;
  std::vector<graph::VertexId> ids_;
  std::vector<cspace::Config> configs_;
  std::vector<Neighbor> heap_;  ///< query scratch; holds the last result
};

/// Leaf-bucketed kd-tree over positions with an insertion buffer; the tree
/// is rebuilt when the buffer outgrows a fraction of the tree (amortized
/// O(log n) insertion without rebalancing machinery). Internal nodes store
/// only a split plane; points live in leaf buckets laid out SoA
/// (`px_/py_/pz_`) so the per-leaf distance scan is branch-light and
/// cache-friendly.
class KdTreeKnn final : public NeighborFinder {
 public:
  static constexpr std::size_t kDefaultLeafSize = 12;

  explicit KdTreeKnn(const cspace::CSpace& space,
                     std::size_t leaf_size = kDefaultLeafSize)
      : space_(&space), leaf_size_(leaf_size) {}

  void insert(graph::VertexId id, const cspace::Config& c) override;

  std::span<const Neighbor> nearest(const cspace::Config& q, std::size_t k,
                                    PlannerStats* stats = nullptr) override;

  std::size_t size() const noexcept override { return ids_.size(); }

  /// Points covered by the built tree; the rest sit in the linear
  /// insertion buffer. Exposed for rebuild-policy tests.
  std::size_t indexed_size() const noexcept { return indexed_; }

 private:
  static constexpr std::uint8_t kLeafAxis = 3;
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  struct Node {
    double split = 0.0;     ///< internal: split-plane coordinate
    std::uint32_t a = 0;    ///< internal: left child; leaf: first slot
    std::uint32_t b = 0;    ///< internal: right child; leaf: point count
    std::uint8_t axis = 0;  ///< 0..2 for internal nodes, kLeafAxis for leaves
  };

  /// Deferred subtree visit: `bound` is a positional lower bound on the
  /// distance from the query to anything in the subtree.
  struct Visit {
    std::uint32_t node;
    double bound;
  };

  void rebuild();
  std::uint32_t build_subtree(std::size_t lo, std::size_t hi);

  const cspace::CSpace* space_;
  std::size_t leaf_size_;

  // Master point storage, indexed by insertion order.
  std::vector<graph::VertexId> ids_;
  std::vector<cspace::Config> cfgs_;
  std::vector<geo::Vec3> pos_;

  // Built tree. perm_ maps leaf-contiguous slots to master indices;
  // px_/py_/pz_ hold slot positions as SoA for the leaf distance scan.
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> perm_;
  std::vector<double> px_, py_, pz_;
  std::uint32_t root_ = kNoNode;
  std::size_t indexed_ = 0;  ///< points included in the built tree

  // Per-query scratch, reused so nearest() is allocation-free once warm.
  std::vector<Neighbor> heap_;
  std::vector<Visit> stack_;
};

/// Factory: kd-tree by default, brute force for exactness-sensitive users.
std::unique_ptr<NeighborFinder> make_neighbor_finder(
    const cspace::CSpace& space, bool exact = false);

}  // namespace pmpl::planner
