#pragma once
/// \file knn.hpp
/// k-nearest-neighbor search over configurations.
///
/// Global nearest-neighbor search is the classic bottleneck of parallel
/// sampling-based planning (paper §I); the subdivision algorithms avoid it
/// by keeping searches regional. Two finders are provided:
///
///  - `BruteForceKnn` — exact under the full C-space metric; O(n) per query.
///  - `KdTreeKnn`     — kd-tree over workspace *positions* with deferred
///    rebuilds for incremental insertion. Candidates are ranked by the full
///    C-space metric; the positional split distance is a valid lower bound
///    on every metric we define (rotation adds a non-negative term), so
///    results are exact — the tree only loses pruning power, not accuracy.
///
/// Both report visited-candidate counts so k-NN work feeds the load model.

#include <cstdint>
#include <memory>
#include <vector>

#include "cspace/space.hpp"
#include "planner/roadmap.hpp"
#include "planner/stats.hpp"

namespace pmpl::planner {

/// A neighbor candidate: vertex id and metric distance to the query.
struct Neighbor {
  graph::VertexId id;
  double distance;
};

/// Interface for incremental k-NN over (id, config) pairs.
class NeighborFinder {
 public:
  virtual ~NeighborFinder() = default;

  virtual void insert(graph::VertexId id, const cspace::Config& c) = 0;

  /// The k nearest stored configs to `q` (ascending distance). Fewer than k
  /// if the structure holds fewer points.
  virtual std::vector<Neighbor> nearest(const cspace::Config& q,
                                        std::size_t k,
                                        PlannerStats* stats = nullptr) = 0;

  virtual std::size_t size() const noexcept = 0;
};

/// Exact linear scan under the full C-space metric.
class BruteForceKnn final : public NeighborFinder {
 public:
  explicit BruteForceKnn(const cspace::CSpace& space) : space_(&space) {}

  void insert(graph::VertexId id, const cspace::Config& c) override {
    ids_.push_back(id);
    configs_.push_back(c);
  }

  std::vector<Neighbor> nearest(const cspace::Config& q, std::size_t k,
                                PlannerStats* stats = nullptr) override;

  std::size_t size() const noexcept override { return ids_.size(); }

 private:
  const cspace::CSpace* space_;
  std::vector<graph::VertexId> ids_;
  std::vector<cspace::Config> configs_;
};

/// kd-tree over positions with an insertion buffer; the tree is rebuilt
/// when the buffer outgrows a fraction of the tree (amortized O(log n)
/// insertion without rebalancing machinery).
class KdTreeKnn final : public NeighborFinder {
 public:
  explicit KdTreeKnn(const cspace::CSpace& space) : space_(&space) {}

  void insert(graph::VertexId id, const cspace::Config& c) override;

  std::vector<Neighbor> nearest(const cspace::Config& q, std::size_t k,
                                PlannerStats* stats = nullptr) override;

  std::size_t size() const noexcept override { return points_.size(); }

 private:
  struct Node {
    std::uint32_t point = 0;       ///< index into points_
    std::uint32_t left = 0;        ///< 0 = none (node 0 is the root; valid)
    std::uint32_t right = 0;
    std::uint8_t axis = 0;
  };

  struct Point {
    geo::Vec3 pos;
    graph::VertexId id;
    cspace::Config cfg;
  };

  void rebuild();
  std::uint32_t build_subtree(std::vector<std::uint32_t>& items,
                              std::size_t lo, std::size_t hi, int depth);
  void search(std::uint32_t node, const geo::Vec3& q, std::size_t k,
              std::vector<Neighbor>& heap, const cspace::Config& qcfg,
              PlannerStats* stats) const;

  const cspace::CSpace* space_;
  std::vector<Point> points_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = kNoNode;
  std::size_t tree_size_ = 0;  ///< points included in the built tree
  static constexpr std::uint32_t kNoNode = 0xffffffffu;
};

/// Factory: kd-tree by default, brute force for exactness-sensitive users.
std::unique_ptr<NeighborFinder> make_neighbor_finder(
    const cspace::CSpace& space, bool exact = false);

}  // namespace pmpl::planner
