#include "planner/prm.hpp"

#include <algorithm>

#include "planner/query.hpp"

namespace pmpl::planner {

std::vector<cspace::Config> sample_region(const env::Environment& e,
                                          const geo::Aabb& box,
                                          std::size_t attempts,
                                          Xoshiro256ss& rng,
                                          PlannerStats& stats,
                                          const runtime::CancelToken* cancel) {
  const UniformSampler sampler(e.space(), e.validity());
  return sample_region_with(sampler, box, attempts, rng, stats, cancel);
}

std::vector<cspace::Config> sample_region_with(const Sampler& sampler,
                                               const geo::Aabb& box,
                                               std::size_t attempts,
                                               Xoshiro256ss& rng,
                                               PlannerStats& stats,
                                               const runtime::CancelToken*
                                                   cancel) {
  std::vector<cspace::Config> valid;
  valid.reserve(attempts / 2);
  cspace::Config c;
  for (std::size_t i = 0; i < attempts; ++i) {
    if (runtime::stop_requested(cancel)) break;
    if (sampler.sample(box, rng, c, stats)) valid.push_back(c);
  }
  return valid;
}

void connect_within(const env::Environment& e, Roadmap& g,
                    std::span<const graph::VertexId> ids,
                    const PrmParams& params, PlannerStats& stats,
                    graph::UnionFind* cc,
                    const runtime::CancelToken* cancel) {
  if (ids.size() < 2) return;
  auto finder = make_neighbor_finder(e.space(), params.exact_knn);
  for (graph::VertexId id : ids) finder->insert(id, g.vertex(id).cfg);

  // Batch every k-NN query up front. The finder holds all of `ids` and is
  // never mutated during the connection loop, so batched results are
  // identical to interleaved per-vertex queries — and the batch reuses one
  // result buffer instead of allocating a neighbor vector per vertex.
  std::vector<cspace::Config> qcfgs;
  qcfgs.reserve(ids.size());
  for (graph::VertexId id : ids) qcfgs.push_back(g.vertex(id).cfg);
  KnnBatch batch;
  // k+1 because the query point itself is in the structure.
  finder->nearest_batch(qcfgs, params.k_neighbors + 1, batch, &stats);

  if (!params.batch_edges) {
    const cspace::LocalPlanner lp(e.space(), e.validity(), params.resolution);
    for (std::size_t qi = 0; qi < ids.size(); ++qi) {
      const graph::VertexId id = ids[qi];
      if (runtime::stop_requested(cancel)) return;
      for (const Neighbor& n : batch.of(qi)) {
        if (n.id == id) continue;
        if (g.has_edge(id, n.id)) continue;
        if (params.skip_same_component && cc != nullptr &&
            cc->connected(id, n.id))
          continue;
        ++stats.lp_attempts;
        const auto r =
            lp.plan(g.vertex(id).cfg, g.vertex(n.id).cfg, &stats.cd);
        stats.lp_steps += r.steps_checked;
        if (r.success) {
          ++stats.lp_success;
          g.add_edge(id, n.id, {r.length});
          if (cc != nullptr) cc->unite(id, n.id);
        }
      }
    }
    return;
  }

  // Cross-edge batching: admit candidate edges into a small speculative
  // window and commit results strictly in admission order. The admission
  // precondition (no existing edge / not already connected) is monotone —
  // edges are only ever added — so a candidate skipped at admission would
  // also be skipped sequentially; a candidate admitted speculatively is
  // RE-checked at commit against the fully caught-up graph, and a stale
  // result is discarded without touching any counter. Roadmap and stats
  // are therefore bit-identical to the sequential loop above; the
  // speculation cost shows up only in narrow_tests/bvh_nodes, which count
  // work actually performed.
  cspace::EdgeBatchPlanner ebp(e.space(), e.validity(), params.resolution,
                               params.edge_window);
  const auto commit_one = [&] {
    const auto out = ebp.next(&stats.cd);
    const auto a = static_cast<graph::VertexId>(out.tag >> 32);
    const auto b = static_cast<graph::VertexId>(out.tag & 0xffffffffu);
    if (g.has_edge(a, b)) return;
    if (params.skip_same_component && cc != nullptr && cc->connected(a, b))
      return;
    ++stats.lp_attempts;
    stats.lp_steps += out.result.steps_checked;
    // EdgeBatchPlanner drops queries (speculation must not count); the
    // sequential path issues exactly one query per checked step, so the
    // committed edge's semantic count is reconstructed here.
    stats.cd.queries += out.result.steps_checked;
    if (out.result.success) {
      ++stats.lp_success;
      g.add_edge(a, b, {out.result.length});
      if (cc != nullptr) cc->unite(a, b);
    }
  };

  for (std::size_t qi = 0; qi < ids.size(); ++qi) {
    const graph::VertexId id = ids[qi];
    if (runtime::stop_requested(cancel)) break;
    for (const Neighbor& n : batch.of(qi)) {
      if (n.id == id) continue;
      if (g.has_edge(id, n.id)) continue;
      if (params.skip_same_component && cc != nullptr &&
          cc->connected(id, n.id))
        continue;
      if (!ebp.can_admit()) commit_one();
      ebp.admit(g.vertex(id).cfg, g.vertex(n.id).cfg,
                (static_cast<std::uint64_t>(id) << 32) | n.id);
    }
  }
  // Drain the window (on cancel this is the bounded overrun: at most
  // edge_window already-admitted local plans finish).
  while (ebp.pending()) commit_one();
}

std::size_t connect_between(const env::Environment& e, Roadmap& g,
                            std::span<const graph::VertexId> ids_a,
                            std::span<const graph::VertexId> ids_b,
                            const PrmParams& params, PlannerStats& stats,
                            graph::UnionFind* cc, std::size_t max_attempts,
                            const runtime::CancelToken* cancel) {
  if (ids_a.empty() || ids_b.empty()) return 0;
  // Query from the smaller side into the larger side.
  std::span<const graph::VertexId> from = ids_a;
  std::span<const graph::VertexId> to = ids_b;
  if (from.size() > to.size()) std::swap(from, to);

  auto finder = make_neighbor_finder(e.space(), params.exact_knn);
  for (graph::VertexId id : to) finder->insert(id, g.vertex(id).cfg);

  // Collect candidate pairs (closest first), then attempt the best ones.
  struct Candidate {
    double distance;
    graph::VertexId a, b;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(from.size() * 2);
  std::vector<cspace::Config> qcfgs;
  qcfgs.reserve(from.size());
  for (graph::VertexId id : from) qcfgs.push_back(g.vertex(id).cfg);
  KnnBatch batch;
  finder->nearest_batch(qcfgs, 2, batch, &stats);
  for (std::size_t qi = 0; qi < from.size(); ++qi)
    for (const Neighbor& n : batch.of(qi))
      candidates.push_back({n.distance, from[qi], n.id});
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.distance < y.distance;
            });

  const cspace::LocalPlanner lp(e.space(), e.validity(), params.resolution);
  std::size_t edges_added = 0;
  std::size_t attempts = 0;
  for (const Candidate& c : candidates) {
    if (attempts >= max_attempts) break;
    if (runtime::stop_requested(cancel)) break;
    if (g.has_edge(c.a, c.b)) continue;
    if (params.skip_same_component && cc != nullptr &&
        cc->connected(c.a, c.b))
      continue;
    ++attempts;
    ++stats.lp_attempts;
    const auto r = lp.plan(g.vertex(c.a).cfg, g.vertex(c.b).cfg, &stats.cd);
    stats.lp_steps += r.steps_checked;
    if (r.success) {
      ++stats.lp_success;
      g.add_edge(c.a, c.b, {r.length});
      if (cc != nullptr) cc->unite(c.a, c.b);
      ++edges_added;
    }
  }
  return edges_added;
}

void Prm::build(std::size_t attempts, std::uint64_t seed,
                const runtime::CancelToken* cancel) {
  Xoshiro256ss rng(seed);
  const auto sampler = make_sampler(params_.sampler, env_->space(),
                                    env_->validity(), params_.sampler_scale);
  const auto samples =
      sample_region_with(*sampler, env_->space().position_bounds(), attempts,
                         rng, stats_, cancel);
  std::vector<graph::VertexId> ids;
  ids.reserve(samples.size());
  for (const auto& c : samples) ids.push_back(map_.add_vertex({c, 0}));
  graph::UnionFind cc(map_.num_vertices());
  connect_within(*env_, map_, ids, params_, stats_, &cc, cancel);
}

std::optional<std::vector<cspace::Config>> Prm::query(
    const cspace::Config& start, const cspace::Config& goal) {
  return query_roadmap(*env_, map_, start, goal, params_.k_neighbors,
                       params_.resolution, &stats_);
}

}  // namespace pmpl::planner
