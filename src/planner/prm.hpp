#pragma once
/// \file prm.hpp
/// Sequential Probabilistic Roadmap Method (Kavraki et al. 1996).
///
/// The regional building blocks used by Algorithm 1 (uniform subdivision)
/// are exposed as free functions so the parallel drivers can run the phases
/// separately (sample -> [redistribute] -> connect -> region-connect); the
/// `Prm` class composes them into the classic whole-space planner for
/// sequential use and the examples.

#include <optional>
#include <span>
#include <vector>

#include "cspace/local_planner.hpp"
#include "env/environment.hpp"
#include "graph/union_find.hpp"
#include "planner/knn.hpp"
#include "planner/roadmap.hpp"
#include "planner/samplers.hpp"
#include "planner/stats.hpp"
#include "runtime/cancel.hpp"
#include "util/rng.hpp"

namespace pmpl::planner {

/// PRM tuning knobs.
struct PrmParams {
  std::size_t k_neighbors = 6;   ///< connection attempts per sample
  double resolution = 1.0;       ///< local-plan validation step (metric)
  bool skip_same_component = true;  ///< skip attempts inside one component
  bool exact_knn = false;        ///< brute-force k-NN instead of kd-tree
  SamplerKind sampler = SamplerKind::kUniform;  ///< node generation strategy
  double sampler_scale = 6.0;    ///< sigma / bridge length for the above

  /// Validate candidate edges through a cross-edge batching window
  /// (EdgeBatchPlanner) so wide validity lanes stay full across short or
  /// early-rejecting edges. Roadmaps and planner stats are bit-identical
  /// to the sequential path: admission preconditions are re-checked at
  /// in-order commit, and speculative work never reaches `queries` or the
  /// lp_* counters. OFF falls back to one LocalPlanner::plan per edge.
  bool batch_edges = true;
  std::size_t edge_window = 8;   ///< in-flight edges when batching
};

/// Sampling phase: draw `attempts` uniform samples with positions in `box`,
/// keep the valid ones. Deterministic given `rng`'s seed. A fired `cancel`
/// token stops after the current attempt (bounded overrun: one sample).
std::vector<cspace::Config> sample_region(const env::Environment& e,
                                          const geo::Aabb& box,
                                          std::size_t attempts,
                                          Xoshiro256ss& rng,
                                          PlannerStats& stats,
                                          const runtime::CancelToken* cancel =
                                              nullptr);

/// Sampling phase with an explicit strategy (Gaussian, bridge-test, ...).
std::vector<cspace::Config> sample_region_with(const Sampler& sampler,
                                               const geo::Aabb& box,
                                               std::size_t attempts,
                                               Xoshiro256ss& rng,
                                               PlannerStats& stats,
                                               const runtime::CancelToken*
                                                   cancel = nullptr);

/// Node-connection phase within one vertex set: each vertex attempts local
/// plans to its k nearest neighbors among `ids`. Successful edges are added
/// to `g` (and merged in `cc` when provided). All k-NN queries run batched
/// before the first local plan; a fired `cancel` token stops between
/// vertices (bounded overrun: the batched k-NN pass + k local plans).
void connect_within(const env::Environment& e, Roadmap& g,
                    std::span<const graph::VertexId> ids,
                    const PrmParams& params, PlannerStats& stats,
                    graph::UnionFind* cc = nullptr,
                    const runtime::CancelToken* cancel = nullptr);

/// Region-connection phase between two vertex sets (adjacent regions):
/// for each vertex of the smaller set, attempt a local plan to its nearest
/// neighbors in the other set, up to `max_attempts` total attempts (closest
/// pairs first). Returns the number of edges added. A fired `cancel` token
/// stops between attempts (bounded overrun: one local plan).
std::size_t connect_between(const env::Environment& e, Roadmap& g,
                            std::span<const graph::VertexId> ids_a,
                            std::span<const graph::VertexId> ids_b,
                            const PrmParams& params, PlannerStats& stats,
                            graph::UnionFind* cc = nullptr,
                            std::size_t max_attempts = 32,
                            const runtime::CancelToken* cancel = nullptr);

/// Classic sequential PRM over the whole C-space.
class Prm {
 public:
  Prm(const env::Environment& e, PrmParams params = {})
      : env_(&e), params_(params) {}

  /// Sample `attempts` configurations and connect the valid ones. With a
  /// `cancel` token, stops cooperatively and keeps the partial roadmap.
  void build(std::size_t attempts, std::uint64_t seed,
             const runtime::CancelToken* cancel = nullptr);

  /// Connect `start` and `goal` to the roadmap and extract a path.
  std::optional<std::vector<cspace::Config>> query(
      const cspace::Config& start, const cspace::Config& goal);

  const Roadmap& roadmap() const noexcept { return map_; }
  Roadmap& roadmap() noexcept { return map_; }
  const PlannerStats& stats() const noexcept { return stats_; }
  const PrmParams& params() const noexcept { return params_; }

 private:
  const env::Environment* env_;
  PrmParams params_;
  Roadmap map_;
  PlannerStats stats_;
};

}  // namespace pmpl::planner
