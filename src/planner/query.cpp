#include "planner/query.hpp"

#include <algorithm>
#include <queue>

#include "cspace/local_planner.hpp"
#include "planner/knn.hpp"

namespace pmpl::planner {

std::optional<std::vector<cspace::Config>> find_path_with_attachments(
    const env::Environment& e, const Roadmap& g, const cspace::Config& start,
    const cspace::Config& goal, std::span<const AttachEdge> start_edges,
    std::span<const AttachEdge> goal_edges) {
  if (start_edges.empty() || goal_edges.empty()) return std::nullopt;

  // Virtual ids: n = start, n + 1 = goal. The overlay is two extra rows of
  // the dist/prev arrays; the roadmap is only ever read.
  const auto n = static_cast<graph::VertexId>(g.num_vertices());
  const graph::VertexId s = n;
  const graph::VertexId t = n + 1;
  constexpr double kInf = 1e300;

  const auto& space = e.space();
  const auto cfg_of = [&](graph::VertexId v) -> const cspace::Config& {
    if (v == s) return start;
    if (v == t) return goal;
    return g.vertex(v).cfg;
  };
  const auto heuristic = [&](graph::VertexId v) {
    return v == t ? 0.0 : space.distance(cfg_of(v), goal);
  };

  std::vector<double> dist(n + 2, kInf);
  std::vector<graph::VertexId> prev(n + 2, graph::kInvalidVertex);
  // (f = g + h, vertex): pair comparison breaks f ties by ascending vertex
  // id, same as graph::astar — expansion order is deterministic.
  using Entry = std::pair<double, graph::VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;

  const auto relax = [&](graph::VertexId from, graph::VertexId to, double w) {
    const double nd = dist[from] + w;
    if (nd < dist[to]) {
      dist[to] = nd;
      prev[to] = from;
      open.emplace(nd + heuristic(to), to);
    }
  };

  dist[s] = 0.0;
  open.emplace(heuristic(s), s);
  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (u == t) break;
    if (f - heuristic(u) > dist[u] + 1e-12) continue;  // stale entry
    if (u == s) {
      for (const AttachEdge& a : start_edges) relax(s, a.to, a.length);
      continue;
    }
    for (const auto& edge : g.edges_of(u)) relax(u, edge.to, edge.prop.length);
    // Overlay edges into the goal: the lists are k-sized, so a linear scan
    // per expansion costs less than building a lookup table would.
    for (const AttachEdge& a : goal_edges)
      if (a.to == u) relax(u, t, a.length);
  }

  if (dist[t] >= kInf) return std::nullopt;
  std::vector<graph::VertexId> vertices;
  for (graph::VertexId v = t; v != graph::kInvalidVertex; v = prev[v])
    vertices.push_back(v);
  std::reverse(vertices.begin(), vertices.end());

  std::vector<cspace::Config> configs;
  configs.reserve(vertices.size());
  for (graph::VertexId v : vertices) configs.push_back(cfg_of(v));
  return configs;
}

std::optional<std::vector<cspace::Config>> query_roadmap(
    const env::Environment& e, const Roadmap& g, const cspace::Config& start,
    const cspace::Config& goal, std::size_t k_neighbors, double resolution,
    PlannerStats* stats) {
  PlannerStats local;
  PlannerStats& st = stats != nullptr ? *stats : local;

  if (!e.validity().valid(start, &st.cd) || !e.validity().valid(goal, &st.cd))
    return std::nullopt;

  const cspace::LocalPlanner lp(e.space(), e.validity(), resolution);

  // Direct start->goal shot first (trivial queries).
  {
    ++st.lp_attempts;
    const auto r = lp.plan(start, goal, &st.cd);
    st.lp_steps += r.steps_checked;
    if (r.success) {
      ++st.lp_success;
      return std::vector<cspace::Config>{start, goal};
    }
  }

  auto finder = make_neighbor_finder(e.space(), /*exact=*/false);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    finder->insert(v, g.vertex(v).cfg);

  const auto attach = [&](const cspace::Config& c,
                          std::vector<AttachEdge>& out) {
    for (const Neighbor& nb : finder->nearest(c, k_neighbors, &st)) {
      ++st.lp_attempts;
      const auto r = lp.plan(c, g.vertex(nb.id).cfg, &st.cd);
      st.lp_steps += r.steps_checked;
      if (r.success) {
        ++st.lp_success;
        out.push_back({nb.id, r.length});
      }
    }
    return !out.empty();
  };

  std::vector<AttachEdge> start_edges, goal_edges;
  if (!attach(start, start_edges) || !attach(goal, goal_edges))
    return std::nullopt;
  return find_path_with_attachments(e, g, start, goal, start_edges,
                                    goal_edges);
}

double path_length(const env::Environment& e,
                   const std::vector<cspace::Config>& path) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    total += e.space().distance(path[i], path[i + 1]);
  return total;
}

bool path_valid(const env::Environment& e,
                const std::vector<cspace::Config>& path, double resolution,
                PlannerStats* stats) {
  if (path.empty()) return false;
  PlannerStats local;
  PlannerStats& st = stats != nullptr ? *stats : local;
  const cspace::LocalPlanner lp(e.space(), e.validity(), resolution);
  for (const auto& c : path)
    if (!e.validity().valid(c, &st.cd)) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto r = lp.plan(path[i], path[i + 1], &st.cd);
    st.lp_steps += r.steps_checked;
    if (!r.success) return false;
  }
  return true;
}

}  // namespace pmpl::planner
