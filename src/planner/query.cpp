#include "planner/query.hpp"

#include "cspace/local_planner.hpp"
#include "graph/shortest_path.hpp"
#include "planner/knn.hpp"

namespace pmpl::planner {

std::optional<std::vector<cspace::Config>> query_roadmap(
    const env::Environment& e, Roadmap& g, const cspace::Config& start,
    const cspace::Config& goal, std::size_t k_neighbors, double resolution,
    PlannerStats* stats) {
  PlannerStats local;
  PlannerStats& st = stats != nullptr ? *stats : local;

  if (!e.validity().valid(start, &st.cd) || !e.validity().valid(goal, &st.cd))
    return std::nullopt;

  auto finder = make_neighbor_finder(e.space(), /*exact=*/false);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    finder->insert(v, g.vertex(v).cfg);

  const cspace::LocalPlanner lp(e.space(), e.validity(), resolution);
  const graph::VertexId s = g.add_vertex({start, 0});
  const graph::VertexId t = g.add_vertex({goal, 0});

  auto attach = [&](graph::VertexId v, const cspace::Config& c) {
    bool any = false;
    for (const Neighbor& n : finder->nearest(c, k_neighbors, &st)) {
      ++st.lp_attempts;
      const auto r = lp.plan(c, g.vertex(n.id).cfg, &st.cd);
      st.lp_steps += r.steps_checked;
      if (r.success) {
        ++st.lp_success;
        g.add_edge(v, n.id, {r.length});
        any = true;
      }
    }
    return any;
  };

  // Direct start->goal shot first (trivial queries).
  {
    ++st.lp_attempts;
    const auto r = lp.plan(start, goal, &st.cd);
    st.lp_steps += r.steps_checked;
    if (r.success) {
      ++st.lp_success;
      return std::vector<cspace::Config>{start, goal};
    }
  }

  if (!attach(s, start) || !attach(t, goal)) return std::nullopt;

  const auto& space = e.space();
  const auto path = graph::astar<RoadmapVertex, RoadmapEdge>(
      g, s, t, [](const RoadmapEdge& edge) { return edge.length; },
      [&](graph::VertexId v) {
        return space.distance(g.vertex(v).cfg, goal);
      });
  if (!path) return std::nullopt;

  std::vector<cspace::Config> configs;
  configs.reserve(path->vertices.size());
  for (graph::VertexId v : path->vertices) configs.push_back(g.vertex(v).cfg);
  return configs;
}

double path_length(const env::Environment& e,
                   const std::vector<cspace::Config>& path) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    total += e.space().distance(path[i], path[i + 1]);
  return total;
}

bool path_valid(const env::Environment& e,
                const std::vector<cspace::Config>& path, double resolution,
                PlannerStats* stats) {
  if (path.empty()) return false;
  PlannerStats local;
  PlannerStats& st = stats != nullptr ? *stats : local;
  const cspace::LocalPlanner lp(e.space(), e.validity(), resolution);
  for (const auto& c : path)
    if (!e.validity().valid(c, &st.cd)) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto r = lp.plan(path[i], path[i + 1], &st.cd);
    st.lp_steps += r.steps_checked;
    if (!r.success) return false;
  }
  return true;
}

}  // namespace pmpl::planner
