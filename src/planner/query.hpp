#pragma once
/// \file query.hpp
/// Roadmap query processing: connect start/goal, extract a path.

#include <optional>
#include <vector>

#include "env/environment.hpp"
#include "planner/roadmap.hpp"
#include "planner/stats.hpp"

namespace pmpl::planner {

/// Connect `start` and `goal` to the roadmap via local plans to their k
/// nearest vertices, then run A* (metric heuristic). On success returns the
/// configuration path start..goal. The roadmap is restored (temporary
/// vertices removed) only logically: the two query vertices stay appended —
/// callers querying repeatedly should copy the map or accept growth.
std::optional<std::vector<cspace::Config>> query_roadmap(
    const env::Environment& e, Roadmap& g, const cspace::Config& start,
    const cspace::Config& goal, std::size_t k_neighbors, double resolution,
    PlannerStats* stats = nullptr);

/// Total metric length of a configuration path.
double path_length(const env::Environment& e,
                   const std::vector<cspace::Config>& path);

/// Validate an entire configuration path at the given resolution (every
/// segment re-checked); true when collision-free.
bool path_valid(const env::Environment& e,
                const std::vector<cspace::Config>& path, double resolution,
                PlannerStats* stats = nullptr);

}  // namespace pmpl::planner
