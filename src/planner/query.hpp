#pragma once
/// \file query.hpp
/// Roadmap query processing: connect start/goal, extract a path.
///
/// Queries attach start and goal through a temporary *overlay* — validated
/// attachment edges held outside the roadmap — so the roadmap itself is
/// `const` and never grows. That is what makes concurrent queries against
/// one shared (snapshot) roadmap sound: any number of readers may query the
/// same `const Roadmap&` at once, and a query leaves no residue behind.
/// (Earlier revisions appended the two query vertices to the caller's
/// roadmap; that wart is gone.)

#include <optional>
#include <span>
#include <vector>

#include "env/environment.hpp"
#include "planner/roadmap.hpp"
#include "planner/stats.hpp"

namespace pmpl::planner {

/// One validated attachment edge from a query endpoint (start or goal) into
/// the roadmap: the vertex it reaches and the metric length of the local
/// plan that reached it.
struct AttachEdge {
  graph::VertexId to = graph::kInvalidVertex;
  double length = 0.0;
};

/// A* over the roadmap plus a two-vertex overlay: virtual `start` connects
/// into `g` via `start_edges`, virtual `goal` is reached from any vertex
/// named in `goal_edges`. The roadmap is read-only; the overlay lives on
/// this call's stack. Heuristic is the C-space metric distance to `goal`
/// (admissible: edge lengths are metric lengths). Returns the configuration
/// path start..goal, or nullopt when the overlay does not connect.
///
/// Deterministic: ties in the open set break by ascending vertex id, and
/// the attachment lists are consumed in the order given — so identical
/// inputs produce bit-identical paths regardless of caller threading.
std::optional<std::vector<cspace::Config>> find_path_with_attachments(
    const env::Environment& e, const Roadmap& g, const cspace::Config& start,
    const cspace::Config& goal, std::span<const AttachEdge> start_edges,
    std::span<const AttachEdge> goal_edges);

/// Connect `start` and `goal` to the roadmap via local plans to their k
/// nearest vertices, then run A* (metric heuristic). On success returns the
/// configuration path start..goal. The roadmap is never mutated: start and
/// goal attach through an overlay (`find_path_with_attachments`), so
/// repeated or concurrent queries need no defensive copy.
std::optional<std::vector<cspace::Config>> query_roadmap(
    const env::Environment& e, const Roadmap& g, const cspace::Config& start,
    const cspace::Config& goal, std::size_t k_neighbors, double resolution,
    PlannerStats* stats = nullptr);

/// Total metric length of a configuration path.
double path_length(const env::Environment& e,
                   const std::vector<cspace::Config>& path);

/// Validate an entire configuration path at the given resolution (every
/// segment re-checked); true when collision-free.
bool path_valid(const env::Environment& e,
                const std::vector<cspace::Config>& path, double resolution,
                PlannerStats* stats = nullptr);

}  // namespace pmpl::planner
