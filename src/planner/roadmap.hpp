#pragma once
/// \file roadmap.hpp
/// Roadmap/tree graph types shared by PRM, RRT and the parallel drivers.

#include "cspace/config.hpp"
#include "graph/adjacency_graph.hpp"

namespace pmpl::planner {

/// Roadmap vertex: a valid configuration, tagged with the subdivision
/// region that generated it (drives per-region weights and Fig 3/5c
/// distribution plots).
struct RoadmapVertex {
  cspace::Config cfg;
  std::uint32_t region = 0;
};

/// Roadmap edge: a validated local plan of the given metric length.
struct RoadmapEdge {
  double length = 0.0;
};

/// The roadmap G = (V, E) of PRM — also used as the tree container for RRT
/// (kept acyclic by construction / pruning).
using Roadmap = graph::AdjacencyGraph<RoadmapVertex, RoadmapEdge>;

}  // namespace pmpl::planner
