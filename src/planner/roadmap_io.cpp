#include "planner/roadmap_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace pmpl::planner {

namespace {
constexpr const char* kMagic = "pmpl-roadmap";
constexpr int kVersion = 1;
}  // namespace

bool save_roadmap(const Roadmap& g, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << std::setprecision(17);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& vert = g.vertex(v);
    os << "v " << vert.region << ' ' << vert.cfg.size();
    for (std::size_t i = 0; i < vert.cfg.size(); ++i) os << ' ' << vert.cfg[i];
    os << '\n';
  }
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    for (const auto& he : g.edges_of(v))
      if (he.to > v)
        os << "e " << v << ' ' << he.to << ' ' << he.prop.length << '\n';
  return static_cast<bool>(os);
}

std::optional<Roadmap> load_roadmap(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion)
    return std::nullopt;

  Roadmap g;
  std::string tag;
  while (is >> tag) {
    if (tag == "v") {
      std::uint32_t region = 0;
      std::size_t k = 0;
      if (!(is >> region >> k) || k > cspace::kMaxConfigValues)
        return std::nullopt;
      cspace::Config c;
      for (std::size_t i = 0; i < k; ++i) {
        double value = 0.0;
        if (!(is >> value)) return std::nullopt;
        c.push_back(value);
      }
      g.add_vertex({c, region});
    } else if (tag == "e") {
      graph::VertexId from = 0, to = 0;
      double length = 0.0;
      if (!(is >> from >> to >> length)) return std::nullopt;
      if (from >= g.num_vertices() || to >= g.num_vertices())
        return std::nullopt;
      g.add_edge(from, to, {length});
    } else {
      return std::nullopt;  // unknown record
    }
  }
  return g;
}

bool save_roadmap_file(const Roadmap& g, const std::string& path) {
  std::ofstream os(path);
  return os && save_roadmap(g, os);
}

std::optional<Roadmap> load_roadmap_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_roadmap(is);
}

}  // namespace pmpl::planner
