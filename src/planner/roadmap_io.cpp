#include "planner/roadmap_io.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace pmpl::planner {

namespace {

constexpr const char* kMagic = "pmpl-roadmap";
constexpr int kVersionLegacy = 1;  ///< no counts/checksum (read-only)
constexpr int kVersion = 2;        ///< counts header + trailing checksum

bool fail(IoStatus* status, IoStatus s) {
  if (status) *status = s;
  return false;
}

/// Parse the body records shared by both versions. `strict` (v2) requires
/// the counts header first and stops at the checksum footer, returning the
/// footer's claimed value through `claimed` and the running checksum of the
/// record bytes through `actual`.
std::optional<Roadmap> parse_records(std::istream& is, bool strict,
                                     IoStatus* status) {
  Roadmap g;
  bool have_counts = false;
  std::uint64_t want_vertices = 0, want_edges = 0;
  bool have_checksum = false;
  std::uint64_t claimed_checksum = 0;
  std::uint64_t running = kFnvOffset;

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      if (strict) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) {
      fail(status, IoStatus::kMalformed);
      return std::nullopt;
    }
    if (strict && tag == "checksum") {
      std::string junk;
      if (!(ls >> std::hex >> claimed_checksum) || (ls >> junk)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      have_checksum = true;
      break;  // footer: nothing may follow
    }
    if (strict) {
      // The checksum covers every record line (with its newline), exactly
      // as written by save_roadmap.
      running = fnv1a64(line.data(), line.size(), running);
      running = fnv1a64("\n", 1, running);
    }
    if (strict && tag == "counts") {
      if (have_counts || g.num_vertices() != 0) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      if (!(ls >> want_vertices >> want_edges)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      have_counts = true;
    } else if (tag == "v") {
      std::uint32_t region = 0;
      std::size_t k = 0;
      if (!(ls >> region >> k)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      if (k > cspace::kMaxConfigValues) {
        fail(status, IoStatus::kOutOfRange);
        return std::nullopt;
      }
      cspace::Config c;
      for (std::size_t i = 0; i < k; ++i) {
        double value = 0.0;
        if (!(ls >> value)) {
          fail(status, IoStatus::kMalformed);
          return std::nullopt;
        }
        c.push_back(value);
      }
      g.add_vertex({c, region});
    } else if (tag == "e") {
      graph::VertexId from = 0, to = 0;
      double length = 0.0;
      if (!(ls >> from >> to >> length)) {
        fail(status, IoStatus::kMalformed);
        return std::nullopt;
      }
      if (from >= g.num_vertices() || to >= g.num_vertices()) {
        fail(status, IoStatus::kOutOfRange);
        return std::nullopt;
      }
      g.add_edge(from, to, {length});
    } else {
      fail(status, IoStatus::kMalformed);
      return std::nullopt;
    }
  }

  if (strict) {
    if (!have_checksum || !have_counts) {
      // No footer (or no header): the file ends mid-stream.
      fail(status, IoStatus::kTruncated);
      return std::nullopt;
    }
    std::string rest;
    if (is >> rest) {
      fail(status, IoStatus::kMalformed);  // trailing junk after footer
      return std::nullopt;
    }
    if (running != claimed_checksum) {
      fail(status, IoStatus::kChecksumMismatch);
      return std::nullopt;
    }
    if (g.num_vertices() != want_vertices || g.num_edges() != want_edges) {
      fail(status, IoStatus::kCountMismatch);
      return std::nullopt;
    }
  }
  if (status) *status = IoStatus::kOk;
  return g;
}

}  // namespace

bool save_roadmap(const Roadmap& g, std::ostream& os) {
  // Records are built in a buffer so the trailing checksum can cover the
  // exact bytes written.
  std::ostringstream body;
  body << std::setprecision(17);
  body << "counts " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& vert = g.vertex(v);
    body << "v " << vert.region << ' ' << vert.cfg.size();
    for (std::size_t i = 0; i < vert.cfg.size(); ++i)
      body << ' ' << vert.cfg[i];
    body << '\n';
  }
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    for (const auto& he : g.edges_of(v))
      if (he.to > v)
        body << "e " << v << ' ' << he.to << ' ' << he.prop.length << '\n';

  const std::string payload = body.str();
  os << kMagic << ' ' << kVersion << '\n';
  os << payload;
  os << "checksum " << std::hex << fnv1a64(payload.data(), payload.size())
     << std::dec << '\n';
  return static_cast<bool>(os);
}

std::optional<Roadmap> load_roadmap(std::istream& is, IoStatus* status) {
  std::string header;
  if (!std::getline(is, header)) {
    fail(status, IoStatus::kTruncated);
    return std::nullopt;
  }
  std::istringstream hs(header);
  std::string magic;
  int version = 0;
  if (!(hs >> magic >> version)) {
    fail(status, IoStatus::kMalformed);
    return std::nullopt;
  }
  if (magic != kMagic) {
    fail(status, IoStatus::kBadMagic);
    return std::nullopt;
  }
  if (version != kVersion && version != kVersionLegacy) {
    fail(status, IoStatus::kBadVersion);
    return std::nullopt;
  }
  return parse_records(is, version == kVersion, status);
}

bool save_roadmap_file(const Roadmap& g, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os || !save_roadmap(g, os)) return false;
    os.flush();
    if (!os) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Roadmap> load_roadmap_file(const std::string& path,
                                         IoStatus* status) {
  std::ifstream is(path);
  if (!is) {
    if (status) *status = IoStatus::kOpenFailed;
    return std::nullopt;
  }
  return load_roadmap(is, status);
}

}  // namespace pmpl::planner
