#pragma once
/// \file roadmap_io.hpp
/// Roadmap persistence: a simple line-oriented text format.
///
/// Roadmaps are expensive to build and cheap to store; multi-query
/// applications build once and reload. Format version 2 (one record per
/// line) is self-verifying — a counts header and a trailing FNV-1a
/// checksum over the record bytes make truncation and bit corruption
/// detectable instead of silently yielding a smaller/shifted roadmap:
///
///   pmpl-roadmap 2
///   counts <num_vertices> <num_edges>
///   v <region> <k> <value_0> ... <value_{k-1}>
///   e <from> <to> <length>
///   checksum <fnv1a64-hex>
///
/// Version 1 files (no counts/checksum) are still readable; new files are
/// always written as version 2. Loaders never crash on bad input: they
/// return nullopt plus an `IoStatus` naming what was wrong.

#include <iosfwd>
#include <optional>
#include <string>

#include "planner/roadmap.hpp"
#include "util/io_status.hpp"

namespace pmpl::planner {

/// Serialize `g` to `os` (format version 2). Returns false on stream
/// failure.
bool save_roadmap(const Roadmap& g, std::ostream& os);

/// Parse a roadmap from `is`; nullopt on malformed input. When `status` is
/// non-null it receives the precise failure (or IoStatus::kOk).
std::optional<Roadmap> load_roadmap(std::istream& is,
                                    IoStatus* status = nullptr);

/// File convenience wrappers. Saving is atomic: the roadmap is written to
/// `path + ".tmp"` and renamed over `path` only once complete, so a crash
/// mid-save never leaves a half-written file at `path`.
bool save_roadmap_file(const Roadmap& g, const std::string& path);
std::optional<Roadmap> load_roadmap_file(const std::string& path,
                                         IoStatus* status = nullptr);

}  // namespace pmpl::planner
