#pragma once
/// \file roadmap_io.hpp
/// Roadmap persistence: a simple line-oriented text format.
///
/// Roadmaps are expensive to build and cheap to store; multi-query
/// applications build once and reload. Format (one record per line):
///
///   pmpl-roadmap 1
///   v <region> <k> <value_0> ... <value_{k-1}>
///   e <from> <to> <length>

#include <iosfwd>
#include <optional>
#include <string>

#include "planner/roadmap.hpp"

namespace pmpl::planner {

/// Serialize `g` to `os`. Returns false on stream failure.
bool save_roadmap(const Roadmap& g, std::ostream& os);

/// Parse a roadmap from `is`; nullopt on malformed input.
std::optional<Roadmap> load_roadmap(std::istream& is);

/// File convenience wrappers.
bool save_roadmap_file(const Roadmap& g, const std::string& path);
std::optional<Roadmap> load_roadmap_file(const std::string& path);

}  // namespace pmpl::planner
