#include "planner/rrt.hpp"

#include "cspace/local_planner.hpp"
#include "graph/shortest_path.hpp"

namespace pmpl::planner {

RrtBranch::RrtBranch(const env::Environment& e, Roadmap& tree,
                     const cspace::Config& root, std::uint32_t region,
                     const RrtParams& params)
    : env_(&e),
      tree_(&tree),
      params_(params),
      region_(region),
      root_id_(tree.add_vertex({root, region})),
      finder_(make_neighbor_finder(e.space(), params.exact_knn)) {
  node_ids_.push_back(root_id_);
  finder_->insert(root_id_, root);
}

std::optional<graph::VertexId> RrtBranch::extend(const cspace::Config& target,
                                                 PlannerStats& stats) {
  ++stats.rrt_extends;
  const auto nearest = finder_->nearest(target, 1, &stats);
  if (nearest.empty()) return std::nullopt;
  const graph::VertexId near_id = nearest.front().id;
  const cspace::Config& qnear = tree_->vertex(near_id).cfg;

  const auto& space = env_->space();
  const double d = space.distance(qnear, target);
  if (d <= 1e-12) return std::nullopt;
  const double t = d <= params_.step ? 1.0 : params_.step / d;
  cspace::Config qnew = space.interpolate(qnear, target, t);

  // Validate the new configuration, then the connecting edge.
  if (!env_->validity().valid(qnew, &stats.cd)) return std::nullopt;
  const cspace::LocalPlanner lp(space, env_->validity(), params_.resolution);
  ++stats.lp_attempts;
  const auto r = lp.plan(qnear, qnew, &stats.cd);
  stats.lp_steps += r.steps_checked;
  if (!r.success) return std::nullopt;
  ++stats.lp_success;
  ++stats.rrt_extends_success;

  const graph::VertexId id = tree_->add_vertex({qnew, region_});
  tree_->add_edge(near_id, id, {r.length});
  node_ids_.push_back(id);
  finder_->insert(id, tree_->vertex(id).cfg);
  return id;
}

void RrtBranch::grow(
    const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
    Xoshiro256ss& rng, PlannerStats& stats,
    const runtime::CancelToken* cancel) {
  for (std::size_t iter = 0;
       iter < params_.max_iterations && node_ids_.size() < params_.max_nodes;
       ++iter) {
    if (runtime::stop_requested(cancel)) return;
    ++stats.samples_attempted;
    extend(sampler(rng), stats);
  }
}

std::optional<std::vector<cspace::Config>> Rrt::plan(
    const cspace::Config& start, const cspace::Config& goal,
    std::uint64_t seed, double goal_bias,
    const runtime::CancelToken* cancel) {
  tree_ = Roadmap{};
  if (!env_->validity().valid(start, &stats_.cd) ||
      !env_->validity().valid(goal, &stats_.cd))
    return std::nullopt;

  Xoshiro256ss rng(seed);
  RrtBranch branch(*env_, tree_, start, 0, params_);
  const auto& space = env_->space();
  const cspace::LocalPlanner lp(space, env_->validity(), params_.resolution);

  for (std::size_t iter = 0; iter < params_.max_iterations &&
                             branch.num_nodes() < params_.max_nodes;
       ++iter) {
    if (runtime::stop_requested(cancel)) return std::nullopt;
    ++stats_.samples_attempted;
    const cspace::Config target =
        rng.uniform() < goal_bias ? goal : space.sample(rng);
    const auto added = branch.extend(target, stats_);
    if (!added) continue;

    // Try to close to the goal whenever we get within one step.
    const cspace::Config& qnew = tree_.vertex(*added).cfg;
    if (space.distance(qnew, goal) <= params_.step) {
      ++stats_.lp_attempts;
      const auto r = lp.plan(qnew, goal, &stats_.cd);
      stats_.lp_steps += r.steps_checked;
      if (r.success) {
        ++stats_.lp_success;
        const graph::VertexId goal_id = tree_.add_vertex({goal, 0});
        tree_.add_edge(*added, goal_id, {r.length});
        const auto path = graph::dijkstra<RoadmapVertex, RoadmapEdge>(
            tree_, branch.root(), goal_id,
            [](const RoadmapEdge& edge) { return edge.length; });
        if (!path) return std::nullopt;
        std::vector<cspace::Config> configs;
        configs.reserve(path->vertices.size());
        for (graph::VertexId v : path->vertices)
          configs.push_back(tree_.vertex(v).cfg);
        return configs;
      }
    }
  }
  return std::nullopt;
}

}  // namespace pmpl::planner
