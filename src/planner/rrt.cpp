#include "planner/rrt.hpp"

#include <algorithm>

#include "cspace/local_planner.hpp"
#include "graph/shortest_path.hpp"
#include "planner/samplers.hpp"

namespace pmpl::planner {

RrtBranch::RrtBranch(const env::Environment& e, Roadmap& tree,
                     const cspace::Config& root, std::uint32_t region,
                     const RrtParams& params)
    : env_(&e),
      tree_(&tree),
      params_(params),
      region_(region),
      root_id_(tree.add_vertex({root, region})),
      finder_(make_neighbor_finder(e.space(), params.exact_knn)) {
  node_ids_.push_back(root_id_);
  finder_->insert(root_id_, root);
}

RrtBranch::~RrtBranch() = default;

std::optional<graph::VertexId> RrtBranch::extend(const cspace::Config& target,
                                                 PlannerStats& stats) {
  ++stats.rrt_extends;
  const auto nearest = finder_->nearest(target, 1, &stats);
  if (nearest.empty()) return std::nullopt;
  const graph::VertexId near_id = nearest.front().id;
  const cspace::Config& qnear = tree_->vertex(near_id).cfg;

  const auto& space = env_->space();
  const double d = space.distance(qnear, target);
  if (d <= 1e-12) return std::nullopt;
  const double t = d <= params_.step ? 1.0 : params_.step / d;
  cspace::Config qnew = space.interpolate(qnear, target, t);

  // Validate the new configuration, then the connecting edge.
  if (!env_->validity().valid(qnew, &stats.cd)) return std::nullopt;
  const cspace::LocalPlanner lp(space, env_->validity(), params_.resolution);
  ++stats.lp_attempts;
  const auto r = lp.plan(qnear, qnew, &stats.cd);
  stats.lp_steps += r.steps_checked;
  if (!r.success) return std::nullopt;
  ++stats.lp_success;
  ++stats.rrt_extends_success;

  const graph::VertexId id = tree_->add_vertex({qnew, region_});
  tree_->add_edge(near_id, id, {r.length});
  node_ids_.push_back(id);
  finder_->insert(id, tree_->vertex(id).cfg);
  return id;
}

std::size_t RrtBranch::extend_wave(std::span<const cspace::Config> targets,
                                   PlannerStats& stats,
                                   std::vector<graph::VertexId>* added) {
  if (targets.empty()) return 0;
  if (!ebp_)
    ebp_ = std::make_unique<cspace::EdgeBatchPlanner>(
        env_->space(), env_->validity(), params_.resolution, kMaxWave);
  const auto& space = env_->space();
  std::size_t n_added = 0;
  for (std::size_t base = 0; base < targets.size(); base += kMaxWave) {
    const std::size_t w = std::min(kMaxWave, targets.size() - base);

    // Nearest neighbors for the whole wave against the frozen tree.
    finder_->nearest_batch(targets.subspan(base, w), 1, wave_knn_, &stats);

    // Steer each target; collect the candidate (qnear, qnew) pairs.
    wave_near_.clear();
    wave_cfg_.clear();
    for (std::size_t i = 0; i < w; ++i) {
      ++stats.rrt_extends;
      const auto nb = wave_knn_.of(i);
      if (nb.empty()) continue;
      const cspace::Config& qnear = tree_->vertex(nb.front().id).cfg;
      const cspace::Config& target = targets[base + i];
      const double d = space.distance(qnear, target);
      if (d <= 1e-12) continue;
      const double t = d <= params_.step ? 1.0 : params_.step / d;
      wave_near_.push_back(nb.front().id);
      wave_cfg_.push_back(space.interpolate(qnear, target, t));
    }
    if (wave_cfg_.empty()) continue;

    // One wide validity pass over every steered configuration, then the
    // surviving edges through the cross-edge window. Commit strictly in
    // admission (= target) order so the tree is deterministic.
    const std::uint32_t mask =
        env_->validity().valid_mask(wave_cfg_, &stats.cd);
    for (std::size_t i = 0; i < wave_cfg_.size(); ++i) {
      if (!(mask & (1u << i))) continue;
      if (!ebp_->can_admit()) break;  // window >= kMaxWave: unreachable
      ebp_->admit(tree_->vertex(wave_near_[i]).cfg, wave_cfg_[i],
                  static_cast<std::uint64_t>(i));
    }
    while (ebp_->pending()) {
      const auto out = ebp_->next(&stats.cd);
      const std::size_t i = static_cast<std::size_t>(out.tag);
      ++stats.lp_attempts;
      stats.lp_steps += out.result.steps_checked;
      // EdgeBatchPlanner drops queries (speculation must not count); the
      // per-edge semantic count equals steps_checked for in-bounds edge
      // interiors — same reconstruction as the PRM connection phase.
      stats.cd.queries += out.result.steps_checked;
      if (!out.result.success) continue;
      ++stats.lp_success;
      ++stats.rrt_extends_success;
      const graph::VertexId id = tree_->add_vertex({wave_cfg_[i], region_});
      tree_->add_edge(wave_near_[i], id, {out.result.length});
      node_ids_.push_back(id);
      finder_->insert(id, tree_->vertex(id).cfg);
      if (added != nullptr) added->push_back(id);
      ++n_added;
    }
  }
  return n_added;
}

void RrtBranch::grow(
    const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
    Xoshiro256ss& rng, PlannerStats& stats,
    const runtime::CancelToken* cancel) {
  for (std::size_t iter = 0;
       iter < params_.max_iterations && node_ids_.size() < params_.max_nodes;
       ++iter) {
    if (runtime::stop_requested(cancel)) return;
    ++stats.samples_attempted;
    extend(sampler(rng), stats);
  }
}

void RrtBranch::grow_wave(
    const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
    Xoshiro256ss& rng, std::size_t width, PlannerStats& stats,
    const runtime::CancelToken* cancel) {
  if (width <= 1) {
    grow(sampler, rng, stats, cancel);
    return;
  }
  std::vector<cspace::Config> targets;
  for (std::size_t iter = 0;
       iter < params_.max_iterations && node_ids_.size() < params_.max_nodes;
       /* advanced per wave */) {
    if (runtime::stop_requested(cancel)) return;
    const std::size_t w = std::min(width, params_.max_iterations - iter);
    sample_targets(sampler, rng, w, targets);
    stats.samples_attempted += w;
    extend_wave(targets, stats);
    iter += w;
  }
}

std::optional<std::vector<cspace::Config>> Rrt::plan(
    const cspace::Config& start, const cspace::Config& goal,
    std::uint64_t seed, double goal_bias,
    const runtime::CancelToken* cancel) {
  tree_ = Roadmap{};
  if (!env_->validity().valid(start, &stats_.cd) ||
      !env_->validity().valid(goal, &stats_.cd))
    return std::nullopt;

  Xoshiro256ss rng(seed);
  RrtBranch branch(*env_, tree_, start, 0, params_);
  const auto& space = env_->space();
  const cspace::LocalPlanner lp(space, env_->validity(), params_.resolution);

  for (std::size_t iter = 0; iter < params_.max_iterations &&
                             branch.num_nodes() < params_.max_nodes;
       ++iter) {
    if (runtime::stop_requested(cancel)) return std::nullopt;
    ++stats_.samples_attempted;
    const cspace::Config target =
        rng.uniform() < goal_bias ? goal : space.sample(rng);
    const auto added = branch.extend(target, stats_);
    if (!added) continue;

    // Try to close to the goal whenever we get within one step.
    const cspace::Config& qnew = tree_.vertex(*added).cfg;
    if (space.distance(qnew, goal) <= params_.step) {
      ++stats_.lp_attempts;
      const auto r = lp.plan(qnew, goal, &stats_.cd);
      stats_.lp_steps += r.steps_checked;
      if (r.success) {
        ++stats_.lp_success;
        const graph::VertexId goal_id = tree_.add_vertex({goal, 0});
        tree_.add_edge(*added, goal_id, {r.length});
        const auto path = graph::dijkstra<RoadmapVertex, RoadmapEdge>(
            tree_, branch.root(), goal_id,
            [](const RoadmapEdge& edge) { return edge.length; });
        if (!path) return std::nullopt;
        std::vector<cspace::Config> configs;
        configs.reserve(path->vertices.size());
        for (graph::VertexId v : path->vertices)
          configs.push_back(tree_.vertex(v).cfg);
        return configs;
      }
    }
  }
  return std::nullopt;
}

}  // namespace pmpl::planner
