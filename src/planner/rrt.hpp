#pragma once
/// \file rrt.hpp
/// Sequential Rapidly-exploring Random Tree (LaValle & Kuffner 2001).
///
/// `RrtBranch` is the regional building block of Algorithm 2 (uniform
/// radial subdivision): each region grows one branch, with sampling biased
/// toward the region's target direction; the parallel driver later connects
/// branches of adjacent regions (pruning any cycles). The `Rrt` class is
/// the classic whole-space planner for sequential use and the examples.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "env/environment.hpp"
#include "planner/knn.hpp"
#include "planner/roadmap.hpp"
#include "planner/stats.hpp"
#include "runtime/cancel.hpp"
#include "util/rng.hpp"

namespace pmpl::cspace {
class EdgeBatchPlanner;
}

namespace pmpl::planner {

/// RRT tuning knobs.
struct RrtParams {
  double step = 5.0;        ///< max extension distance Δq (metric)
  double resolution = 1.0;  ///< edge validation step (metric)
  std::size_t max_nodes = 1000;
  std::size_t max_iterations = 8000;
  bool exact_knn = false;
};

/// One RRT tree with incremental nearest-neighbor search.
/// The tree is stored in an externally-owned Roadmap so regional branches
/// can later be merged/connected; vertex ids are the Roadmap's.
class RrtBranch {
 public:
  /// Creates the branch rooted at `root` (which must be valid — asserted by
  /// callers); the root vertex is added to `tree` tagged with `region`.
  RrtBranch(const env::Environment& e, Roadmap& tree,
            const cspace::Config& root, std::uint32_t region,
            const RrtParams& params);
  ~RrtBranch();

  /// One RRT iteration: steer from the nearest tree node toward `target`
  /// by at most `step`, validate, and add. Returns the new vertex id on
  /// success.
  std::optional<graph::VertexId> extend(const cspace::Config& target,
                                        PlannerStats& stats);

  /// Wavefront extension: process up to 32 `targets` as one batch —
  /// nearest-neighbor queries batched against the tree as it stood at
  /// entry, new configurations validated through one wide `valid_mask`
  /// call, connecting edges validated through a cross-edge window
  /// (EdgeBatchPlanner), survivors inserted strictly in target order.
  /// Returns the number of nodes added (also appended to `added` when
  /// non-null). A single-target wave is roadmap- and query-count-identical
  /// to `extend`; wider waves steer every target against the same frozen
  /// tree snapshot, which is the wavefront semantics (deterministic for a
  /// fixed width, but a different — equally valid — tree than width 1).
  std::size_t extend_wave(std::span<const cspace::Config> targets,
                          PlannerStats& stats,
                          std::vector<graph::VertexId>* added = nullptr);

  /// Grow until `max_nodes` nodes or `max_iterations` iterations, drawing
  /// growth targets from `sampler`. A fired `cancel` token stops between
  /// iterations (bounded overrun: one extend = one k-NN + one local plan).
  void grow(const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
            Xoshiro256ss& rng, PlannerStats& stats,
            const runtime::CancelToken* cancel = nullptr);

  /// `grow` with wavefront batching: draws `width` targets per round and
  /// extends them as one wave. `width <= 1` delegates to `grow` (identical
  /// tree); wider waves may overshoot `max_nodes` by at most one wave. A
  /// fired `cancel` token stops between waves.
  void grow_wave(const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
                 Xoshiro256ss& rng, std::size_t width, PlannerStats& stats,
                 const runtime::CancelToken* cancel = nullptr);

  /// The k nearest tree nodes to `q` (canonical neighbor order) — exposed
  /// for inter-tree connection (RRT-Connect). The span aliases finder
  /// scratch: invalidated by the next query or insertion.
  std::span<const Neighbor> nearest(const cspace::Config& q, std::size_t k,
                                    PlannerStats& stats) {
    return finder_->nearest(q, k, &stats);
  }

  std::size_t num_nodes() const noexcept { return node_ids_.size(); }
  graph::VertexId root() const noexcept { return root_id_; }
  const std::vector<graph::VertexId>& node_ids() const noexcept {
    return node_ids_;
  }
  std::uint32_t region() const noexcept { return region_; }

 private:
  static constexpr std::size_t kMaxWave = 32;  ///< valid_mask verdict width

  const env::Environment* env_;
  Roadmap* tree_;
  RrtParams params_;
  std::uint32_t region_;
  graph::VertexId root_id_;
  std::vector<graph::VertexId> node_ids_;
  std::unique_ptr<NeighborFinder> finder_;

  // Wavefront scratch, created on first extend_wave (classic extend/grow
  // users never pay for it).
  std::unique_ptr<cspace::EdgeBatchPlanner> ebp_;
  KnnBatch wave_knn_;
  std::vector<graph::VertexId> wave_near_;
  std::vector<cspace::Config> wave_cfg_;
};

/// Classic sequential RRT: grow from `start`, biased toward `goal`, stop
/// when the goal connects.
class Rrt {
 public:
  Rrt(const env::Environment& e, RrtParams params = {})
      : env_(&e), params_(params) {}

  /// Plan start -> goal; `goal_bias` is the probability of using the goal
  /// as the growth target. Returns the configuration path on success. A
  /// fired `cancel` token stops between iterations; the grown tree stays
  /// available through tree() for salvage.
  std::optional<std::vector<cspace::Config>> plan(
      const cspace::Config& start, const cspace::Config& goal,
      std::uint64_t seed, double goal_bias = 0.1,
      const runtime::CancelToken* cancel = nullptr);

  const Roadmap& tree() const noexcept { return tree_; }
  const PlannerStats& stats() const noexcept { return stats_; }

 private:
  const env::Environment* env_;
  RrtParams params_;
  Roadmap tree_;
  PlannerStats stats_;
};

}  // namespace pmpl::planner
