#include "planner/rrt_connect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/shortest_path.hpp"
#include "planner/samplers.hpp"

namespace pmpl::planner {

namespace {

/// A clamped extension whose endpoint coincides with its target (the
/// CONNECT loop's REACHED condition). Steering uses t = 1 whenever the
/// nearest node is within one step, so a reached target is hit exactly;
/// the tolerance only absorbs interpolation round-off.
constexpr double kReachedTol = 1e-9;

}  // namespace

std::optional<std::vector<cspace::Config>> RrtConnect::plan(
    const cspace::Config& start, const cspace::Config& goal,
    std::uint64_t seed, const runtime::CancelToken* cancel) {
  tree_ = Roadmap{};
  stats_ = PlannerStats{};
  if (!env_->validity().valid(start, &stats_.cd) ||
      !env_->validity().valid(goal, &stats_.cd))
    return std::nullopt;

  const auto& space = env_->space();
  RrtParams bp;
  bp.step = params_.step;
  bp.resolution = params_.resolution;
  bp.max_nodes = params_.max_nodes;
  bp.max_iterations = params_.max_iterations;
  bp.exact_knn = params_.exact_knn;
  RrtBranch start_tree(*env_, tree_, start, 0, bp);
  RrtBranch goal_tree(*env_, tree_, goal, 1, bp);
  RrtBranch* grow_tree = &start_tree;
  RrtBranch* connect_tree = &goal_tree;

  Xoshiro256ss rng(seed);
  const auto sampler = [&](Xoshiro256ss& g) { return space.sample(g); };
  const std::size_t width =
      std::clamp<std::size_t>(params_.batch_width, 1, 32);
  std::vector<cspace::Config> targets;
  std::vector<graph::VertexId> added;

  for (std::size_t iter = 0; iter < params_.max_iterations &&
                             tree_.num_vertices() < params_.max_nodes;
       /* advanced per wave */) {
    if (runtime::stop_requested(cancel)) return std::nullopt;
    const std::size_t w =
        std::min(width, params_.max_iterations - iter);
    iter += w;
    sample_targets(sampler, rng, w, targets);
    stats_.samples_attempted += w;
    added.clear();
    grow_tree->extend_wave(targets, stats_, &added);
    if (added.empty()) {
      std::swap(grow_tree, connect_tree);
      continue;
    }

    // Best new node: the wave survivor closest to the other tree (ties
    // resolved by wave order — deterministic).
    graph::VertexId best_id = added.front();
    double best_d = std::numeric_limits<double>::infinity();
    for (const graph::VertexId id : added) {
      const auto nb = connect_tree->nearest(tree_.vertex(id).cfg, 1, stats_);
      if (!nb.empty() && nb.front().distance < best_d) {
        best_d = nb.front().distance;
        best_id = id;
      }
    }

    // Greedy CONNECT: extend the other tree toward the best new node until
    // it reaches the node, gets trapped, or hits the step cap. Each
    // extension starts from the previous one's endpoint (the new node is
    // the nearest), so progress toward the target is monotone.
    const cspace::Config qtarget = tree_.vertex(best_id).cfg;
    std::optional<graph::VertexId> reached;
    for (std::size_t c = 0; c < params_.max_connect_steps &&
                            tree_.num_vertices() < params_.max_nodes;
         ++c) {
      if (runtime::stop_requested(cancel)) return std::nullopt;
      const auto id = connect_tree->extend(qtarget, stats_);
      if (!id) break;  // trapped
      if (space.distance(tree_.vertex(*id).cfg, qtarget) <= kReachedTol) {
        reached = id;
        break;
      }
    }
    if (reached) {
      // Bridge the trees at the meeting point and extract the path.
      tree_.add_edge(best_id, *reached,
                     {space.distance(tree_.vertex(*reached).cfg, qtarget)});
      const auto path = graph::dijkstra<RoadmapVertex, RoadmapEdge>(
          tree_, start_tree.root(), goal_tree.root(),
          [](const RoadmapEdge& edge) { return edge.length; });
      if (!path) return std::nullopt;
      std::vector<cspace::Config> configs;
      configs.reserve(path->vertices.size());
      for (const graph::VertexId v : path->vertices)
        configs.push_back(tree_.vertex(v).cfg);
      return configs;
    }
    std::swap(grow_tree, connect_tree);
  }
  return std::nullopt;
}

}  // namespace pmpl::planner
