#pragma once
/// \file rrt_connect.hpp
/// Bidirectional RRT-Connect (Kuffner & LaValle 2000) with wavefront-style
/// batched extension.
///
/// Two trees grow toward each other: each round samples a wave of growth
/// targets, extends the active tree through `RrtBranch::extend_wave` (wide
/// validity kernels over the whole wave), then greedily CONNECTs the other
/// tree toward the best new node — repeated clamped extensions until it
/// reaches the node or gets trapped. On a successful connect the trees are
/// bridged and the start-goal path extracted. `batch_width = 1` is the
/// classic single-sample algorithm; wider waves keep the SIMD validity
/// lanes full. Deterministic for a fixed (seed, width).
///
/// Both trees live in ONE Roadmap — the start tree tagged region 0, the
/// goal tree region 1 — so the bridged graph is directly queryable and the
/// regional machinery (merge, hashing, IO) applies unchanged.

#include <optional>
#include <vector>

#include "env/environment.hpp"
#include "planner/roadmap.hpp"
#include "planner/rrt.hpp"
#include "planner/stats.hpp"
#include "runtime/cancel.hpp"

namespace pmpl::planner {

/// RRT-Connect tuning knobs.
struct RrtConnectParams {
  double step = 5.0;        ///< max extension distance Δq (metric)
  double resolution = 1.0;  ///< edge validation step (metric)
  std::size_t max_nodes = 2000;       ///< total across both trees
  std::size_t max_iterations = 8000;  ///< growth targets drawn overall
  bool exact_knn = false;
  /// Wavefront width: growth targets extended per batch (1..32). Width 1
  /// reproduces the classic algorithm exactly; wider waves batch k-NN,
  /// config validity (one wide valid_mask) and edge validation (cross-edge
  /// window) per round.
  std::size_t batch_width = 1;
  std::size_t max_connect_steps = 64;  ///< greedy-connect extension cap
};

/// Bidirectional planner: grow from `start` and `goal` simultaneously,
/// stop when the trees connect.
class RrtConnect {
 public:
  RrtConnect(const env::Environment& e, RrtConnectParams params = {})
      : env_(&e), params_(params) {}

  /// Plan start -> goal. Returns the configuration path on success. A
  /// fired `cancel` token stops between waves; the grown forest stays
  /// available through tree() for salvage.
  std::optional<std::vector<cspace::Config>> plan(
      const cspace::Config& start, const cspace::Config& goal,
      std::uint64_t seed, const runtime::CancelToken* cancel = nullptr);

  const Roadmap& tree() const noexcept { return tree_; }
  const PlannerStats& stats() const noexcept { return stats_; }

 private:
  const env::Environment* env_;
  RrtConnectParams params_;
  Roadmap tree_;
  PlannerStats stats_;
};

}  // namespace pmpl::planner
