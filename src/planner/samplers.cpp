#include "planner/samplers.hpp"

#include <cmath>

namespace pmpl::planner {

namespace {

/// A configuration displaced from `c` by an approximately-Gaussian step of
/// scale `sigma` in every value dimension (positions clamped later by the
/// validity bounds check).
cspace::Config displaced(const cspace::CSpace& space, const cspace::Config& c, double sigma,
                 Xoshiro256ss& rng) {
  // Displace along the straight line toward a fresh uniform sample: this
  // respects the space's topology (rotations move on the geodesic).
  const cspace::Config other = space.sample(rng);
  const double d = space.distance(c, other);
  if (d <= 1e-12) return c;
  const double step = std::fabs(rng.normal()) * sigma;
  return space.interpolate(c, other, std::min(1.0, step / d));
}

}  // namespace

bool GaussianSampler::sample(const geo::Aabb& box, Xoshiro256ss& rng,
                             cspace::Config& out,
                             PlannerStats& stats) const {
  ++stats.samples_attempted;
  const cspace::Config a = space_->sample_in(box, rng);
  const cspace::Config b = displaced(*space_, a, sigma_, rng);
  const bool va = validity_->valid(a, &stats.cd);
  const bool vb = validity_->valid(b, &stats.cd);
  // Keep the valid one of a surface-straddling pair.
  if (va == vb) return false;
  out = va ? a : b;
  // The kept partner may have drifted outside the region box; regional
  // ownership allows the overlap band, so accept it as long as it is in
  // the expanded box the caller sampled from.
  ++stats.samples_valid;
  return true;
}

bool BridgeTestSampler::sample(const geo::Aabb& box, Xoshiro256ss& rng,
                               cspace::Config& out,
                               PlannerStats& stats) const {
  ++stats.samples_attempted;
  const cspace::Config a = space_->sample_in(box, rng);
  if (validity_->valid(a, &stats.cd)) return false;  // need an invalid end
  cspace::Config b = displaced(*space_, a, length_, rng);
  if (validity_->valid(b, &stats.cd)) return false;
  out = space_->interpolate(a, b, 0.5);
  if (!validity_->valid(out, &stats.cd)) return false;
  ++stats.samples_valid;
  return true;
}

std::unique_ptr<Sampler> make_sampler(SamplerKind kind, const cspace::CSpace& space,
                                      const cspace::ValidityChecker& validity,
                                      double scale) {
  switch (kind) {
    case SamplerKind::kUniform:
      return std::make_unique<UniformSampler>(space, validity);
    case SamplerKind::kGaussian:
      return std::make_unique<GaussianSampler>(space, validity, scale);
    case SamplerKind::kBridgeTest:
      return std::make_unique<BridgeTestSampler>(space, validity, scale);
  }
  return std::make_unique<UniformSampler>(space, validity);
}

void sample_targets(
    const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
    Xoshiro256ss& rng, std::size_t n, std::vector<cspace::Config>& out) {
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sampler(rng));
}

}  // namespace pmpl::planner
