#pragma once
/// \file samplers.hpp
/// Sampling strategies beyond plain uniform sampling.
///
/// PRM generates nodes "using some sampling strategy" (paper §II-B); the
/// classic alternatives concentrate samples where they matter:
///
///  - `UniformSampler`     — baseline: uniform over the (region) box.
///  - `GaussianSampler`    — Boor et al.: keep a sample only if a Gaussian
///    neighbor at distance ~sigma has the opposite validity. Samples
///    cluster near C-obstacle boundaries.
///  - `BridgeTestSampler`  — Hsu et al.: keep the midpoint of two invalid
///    samples when it is valid. Samples cluster inside narrow passages —
///    the regime the subdivision environments (med-cube, walls) stress.
///
/// All draw from the caller's RNG so per-region determinism is preserved.

#include <functional>
#include <memory>
#include <vector>

#include "cspace/space.hpp"
#include "cspace/validity.hpp"
#include "planner/stats.hpp"
#include "util/rng.hpp"

namespace pmpl::planner {

/// Strategy interface: try to produce one valid configuration with its
/// position inside `box`. Returns false when the attempt is rejected
/// (callers count attempts, not successes).
class Sampler {
 public:
  virtual ~Sampler() = default;

  virtual bool sample(const geo::Aabb& box, Xoshiro256ss& rng, cspace::Config& out,
                      PlannerStats& stats) const = 0;
};

/// Baseline uniform sampling: one validity check per attempt.
class UniformSampler final : public Sampler {
 public:
  UniformSampler(const cspace::CSpace& space, const cspace::ValidityChecker& validity)
      : space_(&space), validity_(&validity) {}

  bool sample(const geo::Aabb& box, Xoshiro256ss& rng, cspace::Config& out,
              PlannerStats& stats) const override {
    ++stats.samples_attempted;
    out = space_->sample_in(box, rng);
    if (!validity_->valid(out, &stats.cd)) return false;
    ++stats.samples_valid;
    return true;
  }

 private:
  const cspace::CSpace* space_;
  const cspace::ValidityChecker* validity_;
};

/// Gaussian sampling: accepts configurations near the C-obstacle surface.
class GaussianSampler final : public Sampler {
 public:
  /// `sigma` is the metric standard deviation of the partner offset.
  GaussianSampler(const cspace::CSpace& space, const cspace::ValidityChecker& validity,
                  double sigma)
      : space_(&space), validity_(&validity), sigma_(sigma) {}

  bool sample(const geo::Aabb& box, Xoshiro256ss& rng, cspace::Config& out,
              PlannerStats& stats) const override;

 private:
  const cspace::CSpace* space_;
  const cspace::ValidityChecker* validity_;
  double sigma_;
};

/// Bridge-test sampling: accepts valid midpoints of invalid pairs.
class BridgeTestSampler final : public Sampler {
 public:
  /// `bridge_length` is the metric distance between the two endpoints.
  BridgeTestSampler(const cspace::CSpace& space, const cspace::ValidityChecker& validity,
                    double bridge_length)
      : space_(&space), validity_(&validity), length_(bridge_length) {}

  bool sample(const geo::Aabb& box, Xoshiro256ss& rng, cspace::Config& out,
              PlannerStats& stats) const override;

 private:
  const cspace::CSpace* space_;
  const cspace::ValidityChecker* validity_;
  double length_;
};

/// Which strategy a planner should use.
enum class SamplerKind { kUniform, kGaussian, kBridgeTest };

std::unique_ptr<Sampler> make_sampler(SamplerKind kind, const cspace::CSpace& space,
                                      const cspace::ValidityChecker& validity,
                                      double scale);

/// Draw `n` growth targets from `sampler` into `out` (cleared first) — the
/// front end of a wavefront extension batch. Consumes exactly the RNG
/// stream n sequential draws would, so width-1 wavefronts replay the
/// classic per-iteration sampling order.
void sample_targets(const std::function<cspace::Config(Xoshiro256ss&)>& sampler,
                    Xoshiro256ss& rng, std::size_t n,
                    std::vector<cspace::Config>& out);

}  // namespace pmpl::planner
