#include "planner/smoothing.hpp"

#include <algorithm>

#include "cspace/local_planner.hpp"
#include "planner/query.hpp"

namespace pmpl::planner {

SmoothingResult shortcut_path(const env::Environment& e,
                              const std::vector<cspace::Config>& path,
                              std::size_t iterations, double resolution,
                              std::uint64_t seed, PlannerStats* stats) {
  SmoothingResult out;
  out.path = path;
  out.length_before = path_length(e, path);
  out.length_after = out.length_before;
  if (path.size() < 3) return out;

  PlannerStats local;
  PlannerStats& st = stats != nullptr ? *stats : local;
  const cspace::LocalPlanner lp(e.space(), e.validity(), resolution);
  Xoshiro256ss rng(seed);

  for (std::size_t iter = 0; iter < iterations && out.path.size() > 2;
       ++iter) {
    // Pick i < j with at least one vertex between them.
    const std::size_t n = out.path.size();
    std::size_t i = rng.index(n - 2);
    std::size_t j = i + 2 + rng.index(n - i - 2);
    const double old_len = [&] {
      double l = 0.0;
      for (std::size_t k = i; k < j; ++k)
        l += e.space().distance(out.path[k], out.path[k + 1]);
      return l;
    }();
    const double direct = e.space().distance(out.path[i], out.path[j]);
    if (direct >= old_len - 1e-9) continue;  // no gain possible

    ++st.lp_attempts;
    const auto r = lp.plan(out.path[i], out.path[j], &st.cd);
    st.lp_steps += r.steps_checked;
    if (!r.success) continue;
    ++st.lp_success;

    out.path.erase(out.path.begin() + static_cast<long>(i) + 1,
                   out.path.begin() + static_cast<long>(j));
    out.length_after -= old_len - direct;
    ++out.shortcuts_applied;
  }
  out.length_after = path_length(e, out.path);  // exact recompute
  return out;
}

}  // namespace pmpl::planner
