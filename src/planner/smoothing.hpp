#pragma once
/// \file smoothing.hpp
/// Path post-processing: shortcut smoothing.
///
/// PRM/RRT paths zig-zag through roadmap vertices; shortcutting repeatedly
/// picks two points along the path and replaces the intermediate section
/// with a straight local plan when that plan is valid and shorter.

#include <vector>

#include "env/environment.hpp"
#include "planner/stats.hpp"
#include "util/rng.hpp"

namespace pmpl::planner {

struct SmoothingResult {
  std::vector<cspace::Config> path;
  double length_before = 0.0;
  double length_after = 0.0;
  std::size_t shortcuts_applied = 0;
};

/// Randomized shortcutting: `iterations` attempts at replacing a random
/// subpath with one straight edge (validated at `resolution`). Endpoints
/// are preserved; the returned path is never longer than the input.
SmoothingResult shortcut_path(const env::Environment& e,
                              const std::vector<cspace::Config>& path,
                              std::size_t iterations, double resolution,
                              std::uint64_t seed,
                              PlannerStats* stats = nullptr);

}  // namespace pmpl::planner
