#pragma once
/// \file stats.hpp
/// Operation counters for planner work.
///
/// Everything the sequential planners do is counted here; the DES work-unit
/// model (runtime/work_units.hpp) converts these counts into simulated
/// execution time, which is what makes "measure once, replay any schedule"
/// deterministic and machine-independent.

#include <cstdint>

#include "collision/checker.hpp"

namespace pmpl::planner {

/// Counters for one planning computation (one region, one phase).
struct PlannerStats {
  collision::CollisionStats cd;  ///< collision-checker op counts

  std::uint64_t samples_attempted = 0;
  std::uint64_t samples_valid = 0;

  std::uint64_t knn_queries = 0;
  std::uint64_t knn_candidates = 0;  ///< vertices scanned/visited

  std::uint64_t lp_attempts = 0;  ///< local-plan edge attempts
  std::uint64_t lp_success = 0;
  std::uint64_t lp_steps = 0;  ///< interpolated configs validity-checked

  std::uint64_t rrt_extends = 0;
  std::uint64_t rrt_extends_success = 0;

  PlannerStats& operator+=(const PlannerStats& o) noexcept {
    cd += o.cd;
    samples_attempted += o.samples_attempted;
    samples_valid += o.samples_valid;
    knn_queries += o.knn_queries;
    knn_candidates += o.knn_candidates;
    lp_attempts += o.lp_attempts;
    lp_success += o.lp_success;
    lp_steps += o.lp_steps;
    rrt_extends += o.rrt_extends;
    rrt_extends_success += o.rrt_extends_success;
    return *this;
  }
};

}  // namespace pmpl::planner
