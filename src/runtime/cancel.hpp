#pragma once
/// \file cancel.hpp
/// Cooperative cancellation and deadlines for anytime planning.
///
/// A `CancelToken` is a poll-based stop signal: long-running computations
/// (scheduler batches, sampling/KNN/connection loops, per-region planner
/// iterations) check `stop_requested()` at natural granule boundaries and
/// return early with whatever partial result they hold. Nothing is ever
/// killed — the overrun past a cancellation or deadline is bounded by one
/// granule (one sample attempt / one local plan / one k-NN query), which is
/// what lets a build with a deadline return a *well-formed* partial roadmap
/// instead of throwing or being torn down mid-write.
///
/// `Deadline` wraps the monotonic clock (steady_clock — wall-clock jumps
/// must not fire deadlines). A token can carry a deadline; once it expires
/// the token latches cancelled, so subsequent polls are a single atomic
/// load, not a clock read.

#include <atomic>
#include <chrono>
#include <limits>

namespace pmpl::runtime {

/// A monotonic-clock deadline. Default-constructed deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  constexpr Deadline() noexcept = default;

  /// A deadline that never expires.
  static constexpr Deadline never() noexcept { return {}; }

  /// Expires `seconds` from now (non-positive: already expired).
  static Deadline after_s(double seconds) noexcept {
    Deadline d;
    d.armed_ = true;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  /// Expires `ms` milliseconds from now.
  static Deadline after_ms(double ms) noexcept { return after_s(ms * 1e-3); }

  bool armed() const noexcept { return armed_; }

  bool expired() const noexcept { return armed_ && Clock::now() >= when_; }

  /// Seconds until expiry; +inf for never, clamped at 0 once expired.
  double remaining_s() const noexcept {
    if (!armed_) return std::numeric_limits<double>::infinity();
    const double r =
        std::chrono::duration<double>(when_ - Clock::now()).count();
    return r > 0.0 ? r : 0.0;
  }

 private:
  Clock::time_point when_{};
  bool armed_ = false;
};

/// Cooperative stop signal: an explicit `request_cancel()` from any thread,
/// or the expiry of an attached `Deadline`. Thread-safe; pass by pointer
/// (nullptr = never stops). Once stopped, stays stopped.
class CancelToken {
 public:
  CancelToken() noexcept = default;
  explicit CancelToken(Deadline deadline) noexcept : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Ask the computation to stop at its next poll. Callable from any thread.
  void request_cancel() noexcept {
    explicit_.store(true, std::memory_order_relaxed);
    stopped_.store(true, std::memory_order_release);
  }

  /// True iff request_cancel() was called (deadline expiry not included) —
  /// lets reports distinguish "cancelled" from "deadline exceeded".
  bool cancel_requested() const noexcept {
    return explicit_.load(std::memory_order_acquire);
  }

  /// The poll: true once cancellation was requested or the deadline passed.
  /// Latches, so after the first true the cost is one atomic load.
  bool stop_requested() const noexcept {
    if (stopped_.load(std::memory_order_acquire)) return true;
    if (deadline_.expired()) {
      stopped_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  const Deadline& deadline() const noexcept { return deadline_; }

 private:
  // `stopped_` is the latch stop_requested() polls (mutable: deadline
  // expiry is observed in const context).
  mutable std::atomic<bool> stopped_{false};
  std::atomic<bool> explicit_{false};
  Deadline deadline_{};
};

/// Convenience: nullable-token poll.
inline bool stop_requested(const CancelToken* token) noexcept {
  return token != nullptr && token->stop_requested();
}

}  // namespace pmpl::runtime
