#pragma once
/// \file chase_lev_deque.hpp
/// Lock-free work-stealing deque (Chase & Lev, SPAA 2005), with the C++11
/// memory orders of Lê et al., PPoPP 2013, adapted to fence-free form so
/// ThreadSanitizer models every ordering edge.
///
/// One owner thread pushes and pops at the *bottom*; any number of thief
/// threads CAS-steal from the *top*. The owner's push/pop are wait-free
/// except for the occasional array grow; a steal is lock-free (a failed
/// CAS means some other thread made progress).
///
/// Memory-order argument (see DESIGN.md "Shared-memory runtime"):
///  - Every store to `bottom_` is at least release and every thief load of
///    `bottom_` is at least acquire, so a thief that observes `bottom_ >= t+1`
///    also observes the element stored by the push that published index `t`
///    (the slot stores themselves are relaxed atomics).
///  - `pop()` needs a StoreLoad barrier between claiming an element (the
///    `bottom_` store) and reading `top_`; `steal()` needs the symmetric
///    barrier between its `top_` and `bottom_` loads. Both are obtained by
///    making those four accesses seq_cst rather than by standalone fences,
///    which TSan does not model.
///  - Retired arrays are kept alive until destruction, so a thief racing a
///    grow may read a stale array but never freed memory; the CAS on `top_`
///    rejects the value if the slot was already taken.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace pmpl::runtime {

/// Single-owner, multi-thief lock-free deque. T must be trivially copyable
/// (in practice a pointer or small index).
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ChaseLevDeque elements must be trivially copyable");

 public:
  explicit ChaseLevDeque(std::size_t capacity = 64)
      : array_(new Array(round_up_pow2(capacity))) {}

  ~ChaseLevDeque() { delete array_.load(std::memory_order_relaxed); }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: append at the bottom. Grows the circular array as needed.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= a->capacity) a = grow(a, t, b);
    a->put(b, item);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: take the most recently pushed element (LIFO end).
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      out = a->get(b);
      if (t == b) {
        // Last element: race the thieves for it via the top CAS.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return won;
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);  // was empty: restore
    return false;
  }

  /// Any thread: take the oldest element (FIFO end). Returns false when the
  /// deque looks empty or another thread won the race (caller retries).
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Array* a = array_.load(std::memory_order_acquire);
    const T item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return false;
    out = item;
    return true;
  }

  /// Racy size estimate (exact when only the owner is active).
  std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct Array {
    explicit Array(std::int64_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(
              static_cast<std::size_t>(cap))) {}
    void put(std::int64_t i, T v) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  static std::int64_t round_up_pow2(std::size_t n) {
    std::int64_t c = 8;
    while (c < static_cast<std::int64_t>(n)) c <<= 1;
    return c;
  }

  /// Owner only: double the array, copying live indices [t, b). The old
  /// array is retired, not freed: in-flight thieves may still read it.
  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    Array* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    retired_.emplace_back(old);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;  ///< owner-managed
};

}  // namespace pmpl::runtime
