#pragma once
/// \file des.hpp
/// Discrete-event simulator core.
///
/// A minimal event calendar: callbacks scheduled at absolute simulated
/// times, executed in (time, insertion) order. The work-stealing engine and
/// the bulk-synchronous phase models run on top of this. Determinism: ties
/// break by insertion sequence, so a run is a pure function of its inputs.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pmpl::runtime {

/// Event calendar with monotonically advancing simulated time.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (seconds).
  double now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now — no time travel).
  void schedule_at(double t, Callback fn) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
  }

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(double delay, Callback fn) {
    schedule_at(now_ + (delay < 0.0 ? 0.0 : delay), std::move(fn));
  }

  /// Run until the calendar is empty (or `max_events` processed as a
  /// runaway backstop). Returns the number of events processed.
  std::uint64_t run(std::uint64_t max_events = 500'000'000ULL) {
    std::uint64_t processed = 0;
    while (!queue_.empty() && processed < max_events) {
      // Move the event out before popping so the callback may schedule.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ++processed;
      ev.fn();
    }
    events_processed_ += processed;
    return processed;
  }

  bool empty() const noexcept { return queue_.empty(); }
  std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace pmpl::runtime
