#pragma once
/// \file des.hpp
/// Discrete-event simulator core.
///
/// A minimal event calendar: callbacks scheduled at absolute simulated
/// times, executed in (time, insertion) order. The work-stealing engine and
/// the bulk-synchronous phase models run on top of this. Determinism: ties
/// break by insertion sequence, so a run is a pure function of its inputs.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace pmpl::runtime {

/// Event calendar with monotonically advancing simulated time.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (seconds).
  double now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now — no time travel).
  void schedule_at(double t, Callback fn) {
    heap_.push_back(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(double delay, Callback fn) {
    schedule_at(now_ + (delay < 0.0 ? 0.0 : delay), std::move(fn));
  }

  /// Run until the calendar is empty (or `max_events` processed as a
  /// runaway backstop — check hit_event_limit() afterwards: a capped run
  /// left events pending and any derived makespan is bogus). Returns the
  /// number of events processed.
  std::uint64_t run(std::uint64_t max_events = 500'000'000ULL) {
    hit_event_limit_ = false;
    std::uint64_t processed = 0;
    while (!heap_.empty()) {
      if (processed >= max_events) {
        hit_event_limit_ = true;
        break;
      }
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      now_ = ev.time;
      ++processed;
      ev.fn();
    }
    events_processed_ += processed;
    return processed;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// True when the last run() stopped at its event cap with work pending.
  bool hit_event_limit() const noexcept { return hit_event_limit_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  /// Heap comparator: the "largest" element (the heap front) is the
  /// earliest (time, seq) — an explicit std::push_heap/std::pop_heap
  /// binary heap, so events move out by value instead of through the
  /// const_cast a std::priority_queue::top() would force.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool hit_event_limit_ = false;
};

}  // namespace pmpl::runtime
