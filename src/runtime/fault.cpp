#include "runtime/fault.hpp"

#include <algorithm>

#include "runtime/metrics_registry.hpp"

namespace pmpl::runtime {

namespace {

bool rank_matches(std::uint32_t pattern, std::uint32_t rank) noexcept {
  return pattern == kAnyRank || pattern == rank;
}

bool in_window(double t, double from_s, double until_s) noexcept {
  return t >= from_s && t < until_s;
}

}  // namespace

FaultInjector::MessageFate FaultInjector::on_message(std::uint32_t from,
                                                     std::uint32_t to,
                                                     double t) {
  MessageFate fate;
  if (!active_) return fate;
  for (const auto& cut : plan_.partitions)
    if (in_window(t, cut.from_s, cut.until_s) && cut.separates(from, to)) {
      fate.dropped = true;
      return fate;
    }
  for (const auto& link : plan_.links) {
    if (!rank_matches(link.from, from) || !rank_matches(link.to, to) ||
        !in_window(t, link.from_s, link.until_s))
      continue;
    if (link.drop_prob > 0.0 && rng_.uniform() < link.drop_prob) {
      fate.dropped = true;
      return fate;  // dropped: later faults cannot delay it further
    }
    fate.extra_delay_s += link.extra_delay_s;
  }
  return fate;
}

FaultInjector::MessageFate FaultInjector::on_token(std::uint32_t from,
                                                   std::uint32_t to,
                                                   double t) {
  if (!active_) return {};
  for (const auto& tok : plan_.tokens)
    if (in_window(t, tok.from_s, tok.until_s) && tok.drop_prob > 0.0 &&
        rng_.uniform() < tok.drop_prob)
      return {true, 0.0};
  return on_message(from, to, t);
}

double FaultInjector::stretched_service(std::uint32_t rank, double start_s,
                                        double service_s) const {
  if (!active_ || service_s <= 0.0) return service_s;
  // Collect this rank's windows, sorted by start. Windows per rank are
  // assumed disjoint (documented in StragglerFault).
  std::vector<const StragglerFault*> windows;
  for (const auto& s : plan_.stragglers)
    if (s.rank == rank && s.slowdown > 1.0) windows.push_back(&s);
  if (windows.empty()) return service_s;  // exact identity off the windows
  std::sort(windows.begin(), windows.end(),
            [](const StragglerFault* a, const StragglerFault* b) {
              return a->from_s < b->from_s;
            });
  // Walk forward in wall time, spending work at rate 1 outside windows and
  // 1/slowdown inside, until the remaining service is exhausted.
  double t = start_s;
  double remaining = service_s;
  for (const StragglerFault* w : windows) {
    if (w->until_s <= t) continue;
    if (w->from_s > t) {
      const double gap = w->from_s - t;
      if (remaining <= gap) return t + remaining - start_s;
      remaining -= gap;
      t = w->from_s;
    }
    const double span = w->until_s - t;           // wall time inside window
    const double capacity = span / w->slowdown;   // work doable inside it
    if (remaining <= capacity) return t + remaining * w->slowdown - start_s;
    remaining -= capacity;
    t = w->until_s;
  }
  return t + remaining - start_s;
}

void publish(MetricsRegistry& reg, const FaultMetrics& m,
             const std::string& prefix) {
  reg.add(prefix + "crashes", m.crashes);
  reg.add(prefix + "fenced", m.fenced);
  reg.add(prefix + "messages_dropped", m.messages_dropped);
  reg.add(prefix + "messages_delayed", m.messages_delayed);
  reg.add(prefix + "tokens_lost", m.tokens_lost);
  reg.add(prefix + "tokens_regenerated", m.tokens_regenerated);
  reg.add(prefix + "heartbeat_probes", m.heartbeat_probes);
  reg.add(prefix + "steal_retries", m.steal_retries);
  reg.add(prefix + "grant_retransmits", m.grant_retransmits);
  reg.add(prefix + "regions_recovered", m.regions_recovered);
  reg.add(prefix + "regions_reexecuted", m.regions_reexecuted);
  reg.set(prefix + "reexecuted_service_s", m.reexecuted_service_s);
  reg.set(prefix + "straggler_delay_s", m.straggler_delay_s);
  reg.set(prefix + "recovery_latency_max_s", m.recovery_latency_max_s);
}

}  // namespace pmpl::runtime
