#pragma once
/// \file fault.hpp
/// Deterministic fault injection for the DES cluster model.
///
/// A FaultPlan is pure data: crash times, straggler windows, lossy/slow
/// links and token-loss windows, plus a dedicated seed. A FaultInjector
/// evaluates the plan against concrete (rank, time) queries; all randomness
/// (message-drop rolls) comes from its own xoshiro stream, so a faulty run
/// is a pure function of (workload, config, plan) and — critically — an
/// *empty* plan consumes no randomness and schedules no events, leaving the
/// fault-free engine behavior bit-for-bit identical to a build without the
/// subsystem.
///
/// FaultMetrics collects what the resilience benchmarks report: recovery
/// latency, re-executed service seconds, retransmissions, regenerated
/// termination tokens, and straggler delay.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pmpl::runtime {

/// Wildcard rank for link faults ("any sender" / "any receiver").
inline constexpr std::uint32_t kAnyRank = 0xffffffffu;

/// `rank` halts permanently at `at_s` (fail-stop: queued and in-progress
/// work is lost from the rank; completed work is durable).
struct CrashFault {
  std::uint32_t rank = 0;
  double at_s = 0.0;
};

/// `rank` executes `slowdown`x slower inside [from_s, until_s). Windows for
/// one rank must not overlap.
struct StragglerFault {
  std::uint32_t rank = 0;
  double slowdown = 1.0;
  double from_s = 0.0;
  double until_s = std::numeric_limits<double>::infinity();
};

/// Messages from `from` to `to` (wildcards allowed) inside the window are
/// dropped with `drop_prob`; survivors pay `extra_delay_s`.
struct LinkFault {
  std::uint32_t from = kAnyRank;
  std::uint32_t to = kAnyRank;
  double drop_prob = 0.0;
  double extra_delay_s = 0.0;
  double from_s = 0.0;
  double until_s = std::numeric_limits<double>::infinity();
};

/// Termination-detection tokens forwarded inside the window are lost with
/// `drop_prob` (on top of any matching link fault).
struct TokenFault {
  double drop_prob = 0.0;
  double from_s = 0.0;
  double until_s = std::numeric_limits<double>::infinity();
};

/// `rank` is frozen (SIGSTOP) inside [from_s, until_s) and resumes after —
/// the zombie scenario: a supervisor may have started a replacement
/// incarnation in the meantime, and epoch fencing must neutralize the
/// resumed original. The DES model ignores pauses (it has no supervisor);
/// only the multi-process launcher executes them.
struct PauseFault {
  std::uint32_t rank = 0;
  double from_s = 0.0;
  double until_s = std::numeric_limits<double>::infinity();
};

/// Network partition: inside [from_s, until_s), messages crossing the cut
/// between `ranks` (side A) and everyone else (side B) are dropped.
/// Evaluated receiver-side like link faults, deterministically (no roll:
/// the cut is absolute while the window is open).
struct PartitionFault {
  std::vector<std::uint32_t> ranks;  ///< side A of the cut
  double from_s = 0.0;
  double until_s = std::numeric_limits<double>::infinity();

  bool separates(std::uint32_t from, std::uint32_t to) const noexcept {
    bool in_a = false, in_b = false;
    for (std::uint32_t r : ranks) {
      if (r == from) in_a = true;
      if (r == to) in_b = true;
    }
    return in_a != in_b;
  }
};

/// A complete, seeded failure scenario.
struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<StragglerFault> stragglers;
  std::vector<LinkFault> links;
  std::vector<TokenFault> tokens;
  std::vector<PauseFault> pauses;
  std::vector<PartitionFault> partitions;
  std::uint64_t seed = 0xfa17ed5eedULL;  ///< dedicated drop-roll stream

  bool empty() const noexcept {
    return crashes.empty() && stragglers.empty() && links.empty() &&
           tokens.empty() && pauses.empty() && partitions.empty();
  }

  // Fluent builders (return *this so plans read as one expression).
  FaultPlan& crash(std::uint32_t rank, double at_s) {
    crashes.push_back({rank, at_s});
    return *this;
  }
  FaultPlan& straggler(std::uint32_t rank, double slowdown, double from_s,
                       double until_s) {
    stragglers.push_back({rank, slowdown, from_s, until_s});
    return *this;
  }
  FaultPlan& lossy_links(double drop_prob, double extra_delay_s = 0.0,
                         double from_s = 0.0,
                         double until_s =
                             std::numeric_limits<double>::infinity()) {
    links.push_back({kAnyRank, kAnyRank, drop_prob, extra_delay_s, from_s,
                     until_s});
    return *this;
  }
  FaultPlan& lossy_link(std::uint32_t from, std::uint32_t to,
                        double drop_prob, double extra_delay_s = 0.0) {
    links.push_back({from, to, drop_prob, extra_delay_s, 0.0,
                     std::numeric_limits<double>::infinity()});
    return *this;
  }
  FaultPlan& lose_tokens(double drop_prob, double from_s = 0.0,
                         double until_s =
                             std::numeric_limits<double>::infinity()) {
    tokens.push_back({drop_prob, from_s, until_s});
    return *this;
  }
  FaultPlan& pause(std::uint32_t rank, double from_s, double until_s) {
    pauses.push_back({rank, from_s, until_s});
    return *this;
  }
  FaultPlan& partition(std::vector<std::uint32_t> side_a, double from_s,
                       double until_s) {
    partitions.push_back({std::move(side_a), from_s, until_s});
    return *this;
  }
};

/// Everything the resilience harness measures about a faulty run.
struct FaultMetrics {
  std::uint32_t crashes = 0;            ///< planned crashes that fired
  std::uint32_t fenced = 0;             ///< live ranks killed by false detection
  std::uint64_t messages_dropped = 0;   ///< basic messages lost to links
  std::uint64_t messages_delayed = 0;   ///< basic messages paying extra delay
  std::uint64_t tokens_lost = 0;        ///< tokens dropped or sent to the dead
  std::uint64_t tokens_regenerated = 0; ///< leader-side token timeouts
  std::uint64_t heartbeat_probes = 0;
  std::uint64_t steal_retries = 0;      ///< request timeouts retried as denies
  std::uint64_t grant_retransmits = 0;  ///< unacked grants re-sent
  std::uint64_t regions_recovered = 0;  ///< re-homed off dead ranks
  std::uint64_t regions_reexecuted = 0; ///< in-progress at a crash, run again
  double reexecuted_service_s = 0.0;    ///< service re-spent on those regions
  double straggler_delay_s = 0.0;       ///< extra busy seconds from slowdowns
  double recovery_latency_max_s = 0.0;  ///< worst crash -> regions re-homed
};

class MetricsRegistry;

/// Publish every FaultMetrics field into `reg` as "<prefix><field>"
/// (integer fields as counters, seconds as gauges). The single place the
/// field list is spelled for export; an all-zero struct still registers
/// its instruments so snapshots have a stable shape.
void publish(MetricsRegistry& reg, const FaultMetrics& m,
             const std::string& prefix);

/// Evaluates a FaultPlan. Const queries (crash times, straggler stretch) do
/// not touch the RNG; message-fate queries do, in call order, so the DES
/// event order fully determines the roll sequence.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(derive_seed(plan.seed, 0x0fau)),
        active_(!plan.empty()) {}

  /// False for an empty plan: the engine must schedule no fault machinery.
  bool active() const noexcept { return active_; }

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Scheduled crash time of `rank` (+inf when it never crashes).
  double crash_time(std::uint32_t rank) const noexcept {
    double t = std::numeric_limits<double>::infinity();
    for (const auto& c : plan_.crashes)
      if (c.rank == rank && c.at_s < t) t = c.at_s;
    return t;
  }

  /// Fate of a basic message sent from->to at time `t`.
  struct MessageFate {
    bool dropped = false;
    double extra_delay_s = 0.0;
  };
  MessageFate on_message(std::uint32_t from, std::uint32_t to, double t);

  /// Fate of a termination token forwarded at `t`: token faults roll
  /// first, then any matching link fault (drop or extra delay).
  MessageFate on_token(std::uint32_t from, std::uint32_t to, double t);

  /// Wall duration of `service_s` seconds of work started by `rank` at
  /// `start_s`, stretched through any straggler windows it crosses.
  /// Exactly `service_s` when the rank has no windows (no FP drift).
  double stretched_service(std::uint32_t rank, double start_s,
                           double service_s) const;

 private:
  FaultPlan plan_;
  Xoshiro256ss rng_;
  bool active_ = false;
};

}  // namespace pmpl::runtime
