#include "runtime/fault_io.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/json_mini.hpp"

namespace pmpl::runtime {

namespace {

using pmpl::json::Value;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Validation context: accumulates the first error as "<path>: <what>".
struct Check {
  std::string& error;
  bool failed = false;

  bool fail(const std::string& path, const std::string& what) {
    if (!failed) error = path + ": " + what;
    failed = true;
    return false;
  }
};

bool known_keys(Check& ck, const Value& obj, const std::string& path,
                std::initializer_list<const char*> keys) {
  for (const auto& [key, value] : obj.as_object()) {
    bool known = false;
    for (const char* k : keys) known = known || key == k;
    if (!known) return ck.fail(path + "." + key, "unknown field");
  }
  return true;
}

/// Required-or-defaulted finite number with a range. `lo`/`hi` inclusive.
bool get_number(Check& ck, const Value& obj, const std::string& path,
                const char* key, bool required, double def, double lo,
                double hi, double& out) {
  const Value* v = obj.find(key);
  if (!v) {
    if (required) return ck.fail(path + "." + key, "required field missing");
    out = def;
    return true;
  }
  if (!v->is_number() || std::isnan(v->as_number()))
    return ck.fail(path + "." + key, "must be a number");
  const double x = v->as_number();
  if (x < lo || x > hi) {
    std::ostringstream what;
    what << "must be in [" << lo << ", "
         << (hi == kInf ? std::string("inf") : std::to_string(hi)) << "]";
    return ck.fail(path + "." + key, what.str());
  }
  out = x;
  return true;
}

bool get_rank(Check& ck, const Value& obj, const std::string& path,
              const char* key, bool wildcard_ok, std::uint32_t def,
              bool required, std::uint32_t& out) {
  const Value* v = obj.find(key);
  if (!v) {
    if (required) return ck.fail(path + "." + key, "required field missing");
    out = def;
    return true;
  }
  if (wildcard_ok && v->is_string()) {
    if (v->as_string() != "any")
      return ck.fail(path + "." + key, "rank string must be \"any\"");
    out = kAnyRank;
    return true;
  }
  if (!v->is_number() || v->as_number() < 0.0 ||
      v->as_number() != std::floor(v->as_number()) ||
      v->as_number() >= static_cast<double>(kAnyRank))
    return ck.fail(path + "." + key,
                   wildcard_ok ? "must be a non-negative integer or \"any\""
                               : "must be a non-negative integer");
  out = static_cast<std::uint32_t>(v->as_number());
  return true;
}

/// [from_s, until_s) window shared by stragglers, links and tokens.
bool get_window(Check& ck, const Value& obj, const std::string& path,
                double& from_s, double& until_s) {
  if (!get_number(ck, obj, path, "from_s", false, 0.0, 0.0, kInf, from_s))
    return false;
  if (!get_number(ck, obj, path, "until_s", false, kInf, 0.0, kInf, until_s))
    return false;
  if (until_s <= from_s)
    return ck.fail(path + ".until_s", "must be greater than from_s");
  return true;
}

/// Fetch `key` as an array of objects; absent means empty.
bool get_entries(Check& ck, const Value& root, const char* key,
                 const Value*& out) {
  out = root.find(key);
  if (!out) return true;
  if (!out->is_array()) return ck.fail(key, "must be an array");
  std::size_t i = 0;
  for (const Value& entry : out->as_array()) {
    if (!entry.is_object())
      return ck.fail(std::string(key) + "[" + std::to_string(i) + "]",
                     "must be an object");
    ++i;
  }
  return true;
}

std::string item_path(const char* key, std::size_t i) {
  return std::string(key) + "[" + std::to_string(i) + "]";
}

void put_number(std::ostringstream& out, const char* key, double v,
                bool* first) {
  if (!*first) out << ", ";
  *first = false;
  out << '"' << key << "\": ";
  if (v == kInf) {
    out << 1e308;  // parses back as a huge finite; effectively unbounded
  } else {
    out.precision(17);
    out << v;
  }
}

void put_rank(std::ostringstream& out, const char* key, std::uint32_t r,
              bool* first) {
  if (!*first) out << ", ";
  *first = false;
  out << '"' << key << "\": ";
  if (r == kAnyRank)
    out << "\"any\"";
  else
    out << r;
}

}  // namespace

bool parse_fault_plan(const std::string& text, FaultPlan& out,
                      std::string& error) {
  Value root;
  if (!pmpl::json::parse(text, root, &error)) return false;
  Check ck{error};
  if (!root.is_object()) return ck.fail("(root)", "must be an object");
  if (!known_keys(ck, root, "(root)",
                  {"seed", "crashes", "stragglers", "links", "tokens",
                   "pauses", "partitions"}))
    return false;

  FaultPlan plan;
  if (const Value* seed = root.find("seed")) {
    if (!seed->is_number() || seed->as_number() < 0.0 ||
        seed->as_number() != std::floor(seed->as_number()))
      return ck.fail("seed", "must be a non-negative integer");
    plan.seed = static_cast<std::uint64_t>(seed->as_number());
  }

  const Value* entries = nullptr;
  if (!get_entries(ck, root, "crashes", entries)) return false;
  if (entries) {
    std::size_t i = 0;
    for (const Value& e : entries->as_array()) {
      const std::string path = item_path("crashes", i++);
      CrashFault c;
      if (!known_keys(ck, e, path, {"rank", "at_s"})) return false;
      if (!get_rank(ck, e, path, "rank", false, 0, true, c.rank))
        return false;
      if (!get_number(ck, e, path, "at_s", true, 0.0, 0.0, kInf, c.at_s))
        return false;
      plan.crashes.push_back(c);
    }
  }

  if (!get_entries(ck, root, "stragglers", entries)) return false;
  if (entries) {
    std::size_t i = 0;
    for (const Value& e : entries->as_array()) {
      const std::string path = item_path("stragglers", i++);
      StragglerFault s;
      if (!known_keys(ck, e, path, {"rank", "slowdown", "from_s", "until_s"}))
        return false;
      if (!get_rank(ck, e, path, "rank", false, 0, true, s.rank))
        return false;
      if (!get_number(ck, e, path, "slowdown", true, 1.0, 1.0, kInf,
                      s.slowdown))
        return false;
      if (!get_window(ck, e, path, s.from_s, s.until_s)) return false;
      plan.stragglers.push_back(s);
    }
  }

  if (!get_entries(ck, root, "links", entries)) return false;
  if (entries) {
    std::size_t i = 0;
    for (const Value& e : entries->as_array()) {
      const std::string path = item_path("links", i++);
      LinkFault l;
      if (!known_keys(ck, e, path,
                      {"from", "to", "drop_prob", "extra_delay_s", "from_s",
                       "until_s"}))
        return false;
      if (!get_rank(ck, e, path, "from", true, kAnyRank, false, l.from))
        return false;
      if (!get_rank(ck, e, path, "to", true, kAnyRank, false, l.to))
        return false;
      if (!get_number(ck, e, path, "drop_prob", false, 0.0, 0.0, 1.0,
                      l.drop_prob))
        return false;
      if (!get_number(ck, e, path, "extra_delay_s", false, 0.0, 0.0, kInf,
                      l.extra_delay_s))
        return false;
      if (!get_window(ck, e, path, l.from_s, l.until_s)) return false;
      if (l.drop_prob == 0.0 && l.extra_delay_s == 0.0)
        return ck.fail(path, "must set drop_prob or extra_delay_s");
      plan.links.push_back(l);
    }
  }

  if (!get_entries(ck, root, "tokens", entries)) return false;
  if (entries) {
    std::size_t i = 0;
    for (const Value& e : entries->as_array()) {
      const std::string path = item_path("tokens", i++);
      TokenFault t;
      if (!known_keys(ck, e, path, {"drop_prob", "from_s", "until_s"}))
        return false;
      if (!get_number(ck, e, path, "drop_prob", true, 0.0, 0.0, 1.0,
                      t.drop_prob))
        return false;
      if (!get_window(ck, e, path, t.from_s, t.until_s)) return false;
      plan.tokens.push_back(t);
    }
  }

  if (!get_entries(ck, root, "pauses", entries)) return false;
  if (entries) {
    std::size_t i = 0;
    for (const Value& e : entries->as_array()) {
      const std::string path = item_path("pauses", i++);
      PauseFault p;
      if (!known_keys(ck, e, path, {"rank", "from_s", "until_s"}))
        return false;
      if (!get_rank(ck, e, path, "rank", false, 0, true, p.rank))
        return false;
      if (!get_window(ck, e, path, p.from_s, p.until_s)) return false;
      plan.pauses.push_back(p);
    }
  }

  if (!get_entries(ck, root, "partitions", entries)) return false;
  if (entries) {
    std::size_t i = 0;
    for (const Value& e : entries->as_array()) {
      const std::string path = item_path("partitions", i++);
      PartitionFault p;
      if (!known_keys(ck, e, path, {"ranks", "from_s", "until_s"}))
        return false;
      const Value* ranks = e.find("ranks");
      if (!ranks || !ranks->is_array() || ranks->as_array().empty())
        return ck.fail(path + ".ranks", "must be a non-empty array of ranks");
      std::size_t j = 0;
      for (const Value& r : ranks->as_array()) {
        const std::string rp = path + ".ranks[" + std::to_string(j++) + "]";
        if (!r.is_number() || r.as_number() < 0.0 ||
            r.as_number() != std::floor(r.as_number()) ||
            r.as_number() >= static_cast<double>(kAnyRank))
          return ck.fail(rp, "must be a non-negative integer");
        p.ranks.push_back(static_cast<std::uint32_t>(r.as_number()));
      }
      if (!get_window(ck, e, path, p.from_s, p.until_s)) return false;
      plan.partitions.push_back(p);
    }
  }

  out = std::move(plan);
  return true;
}

bool load_fault_plan(const std::string& path, FaultPlan& out,
                     std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    error = "read error on " + path;
    return false;
  }
  if (!parse_fault_plan(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

std::string fault_plan_to_json(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\"seed\": " << plan.seed;
  out << ", \"crashes\": [";
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const CrashFault& c = plan.crashes[i];
    bool first = true;
    out << (i ? ", {" : "{");
    put_rank(out, "rank", c.rank, &first);
    put_number(out, "at_s", c.at_s, &first);
    out << '}';
  }
  out << "], \"stragglers\": [";
  for (std::size_t i = 0; i < plan.stragglers.size(); ++i) {
    const StragglerFault& s = plan.stragglers[i];
    bool first = true;
    out << (i ? ", {" : "{");
    put_rank(out, "rank", s.rank, &first);
    put_number(out, "slowdown", s.slowdown, &first);
    put_number(out, "from_s", s.from_s, &first);
    put_number(out, "until_s", s.until_s, &first);
    out << '}';
  }
  out << "], \"links\": [";
  for (std::size_t i = 0; i < plan.links.size(); ++i) {
    const LinkFault& l = plan.links[i];
    bool first = true;
    out << (i ? ", {" : "{");
    put_rank(out, "from", l.from, &first);
    put_rank(out, "to", l.to, &first);
    put_number(out, "drop_prob", l.drop_prob, &first);
    put_number(out, "extra_delay_s", l.extra_delay_s, &first);
    put_number(out, "from_s", l.from_s, &first);
    put_number(out, "until_s", l.until_s, &first);
    out << '}';
  }
  out << "], \"tokens\": [";
  for (std::size_t i = 0; i < plan.tokens.size(); ++i) {
    const TokenFault& t = plan.tokens[i];
    bool first = true;
    out << (i ? ", {" : "{");
    put_number(out, "drop_prob", t.drop_prob, &first);
    put_number(out, "from_s", t.from_s, &first);
    put_number(out, "until_s", t.until_s, &first);
    out << '}';
  }
  out << "], \"pauses\": [";
  for (std::size_t i = 0; i < plan.pauses.size(); ++i) {
    const PauseFault& p = plan.pauses[i];
    bool first = true;
    out << (i ? ", {" : "{");
    put_rank(out, "rank", p.rank, &first);
    put_number(out, "from_s", p.from_s, &first);
    put_number(out, "until_s", p.until_s, &first);
    out << '}';
  }
  out << "], \"partitions\": [";
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    const PartitionFault& p = plan.partitions[i];
    bool first = true;
    out << (i ? ", {" : "{");
    out << "\"ranks\": [";
    for (std::size_t j = 0; j < p.ranks.size(); ++j)
      out << (j ? ", " : "") << p.ranks[j];
    out << ']';
    first = false;
    put_number(out, "from_s", p.from_s, &first);
    put_number(out, "until_s", p.until_s, &first);
    out << '}';
  }
  out << "]}";
  return out.str();
}

FaultPlan scaled_fault_plan(const FaultPlan& plan, double k) {
  FaultPlan out = plan;
  const auto scale = [k](double& t) {
    if (t != kInf) t *= k;
  };
  for (auto& c : out.crashes) scale(c.at_s);
  for (auto& s : out.stragglers) {
    scale(s.from_s);
    scale(s.until_s);
  }
  for (auto& l : out.links) {
    scale(l.extra_delay_s);
    scale(l.from_s);
    scale(l.until_s);
  }
  for (auto& t : out.tokens) {
    scale(t.from_s);
    scale(t.until_s);
  }
  for (auto& p : out.pauses) {
    scale(p.from_s);
    scale(p.until_s);
  }
  for (auto& p : out.partitions) {
    scale(p.from_s);
    scale(p.until_s);
  }
  return out;
}

}  // namespace pmpl::runtime
