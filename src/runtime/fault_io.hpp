#pragma once
/// \file fault_io.hpp
/// FaultPlan <-> JSON: load plan files with up-front validation.
///
/// A fault plan fed to a run on the command line (`--faults plan.json`)
/// used to surface its malformations as mid-run protocol errors; the
/// loader here rejects a bad plan before anything starts, and every
/// rejection names the offending field path ("links[2].drop_prob: must be
/// a number in [0, 1]") so the fix is one glance away. Unknown keys are
/// errors too — a typoed "drop_porb" must not silently validate a plan
/// that injects nothing.
///
/// File format (all members optional; wildcard ranks spelled "any"):
///   {
///     "seed": 123,
///     "crashes":    [{"rank": 2, "at_s": 0.002}],
///     "stragglers": [{"rank": 3, "slowdown": 4.0,
///                     "from_s": 0.0, "until_s": 0.5}],
///     "links":      [{"from": "any", "to": 1, "drop_prob": 0.2,
///                     "extra_delay_s": 1e-5,
///                     "from_s": 0.0, "until_s": 0.5}],
///     "tokens":     [{"drop_prob": 0.1, "from_s": 0.0, "until_s": 0.5}],
///     "pauses":     [{"rank": 1, "from_s": 0.1, "until_s": 0.4}],
///     "partitions": [{"ranks": [0, 2], "from_s": 0.1, "until_s": 0.3}]
///   }

#include <string>

#include "runtime/fault.hpp"

namespace pmpl::runtime {

/// Parse and validate a plan from JSON text. On failure returns false and
/// sets `error` to "<field path>: <requirement>"; `out` is untouched.
bool parse_fault_plan(const std::string& text, FaultPlan& out,
                      std::string& error);

/// Like parse_fault_plan, reading `path` first. I/O errors report the
/// path; validation errors report "<path>: <field path>: <requirement>".
bool load_fault_plan(const std::string& path, FaultPlan& out,
                     std::string& error);

/// Serialize a plan to the file format above (round-trips through
/// parse_fault_plan; used by reports and tests).
std::string fault_plan_to_json(const FaultPlan& plan);

/// A copy of `plan` with every time field (crash instants, windows, extra
/// delays) multiplied by `k`. The cluster launcher uses this to map a
/// plan authored in simulated seconds onto the wall clock of a real run.
/// Probabilities, ranks and the seed are untouched; infinite window ends
/// stay infinite.
FaultPlan scaled_fault_plan(const FaultPlan& plan, double k);

}  // namespace pmpl::runtime
