#include "runtime/metrics_registry.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace pmpl::runtime {

namespace {

/// %.17g prints doubles round-trip exactly, keeping snapshots deterministic
/// without trailing-zero noise for integral values.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               Kind kind) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + name +
                           "' already registered as a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *entry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *entry(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *entry(name, Kind::kHistogram).histogram;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string counters, gauges, histograms;
  char buf[64];
  for (const auto& [name, e] : entries_) {  // std::map: sorted by name
    switch (e.kind) {
      case Kind::kCounter: {
        if (!counters.empty()) counters += ", ";
        append_quoted(counters, name);
        std::snprintf(buf, sizeof buf, ": %" PRIu64, e.counter->value());
        counters += buf;
        break;
      }
      case Kind::kGauge: {
        if (!gauges.empty()) gauges += ", ";
        append_quoted(gauges, name);
        gauges += ": ";
        append_double(gauges, e.gauge->value());
        break;
      }
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        append_quoted(histograms, name);
        std::snprintf(buf, sizeof buf, ": {\"count\": %" PRIu64 ", \"sum\": ",
                      e.histogram->count());
        histograms += buf;
        append_double(histograms, e.histogram->sum());
        histograms += ", \"buckets\": {";
        bool first = true;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t n = e.histogram->bucket(b);
          if (n == 0) continue;
          if (!first) histograms += ", ";
          first = false;
          std::snprintf(buf, sizeof buf, "\"%zu\": %" PRIu64, b, n);
          histograms += buf;
        }
        histograms += "}}";
        break;
      }
    }
  }
  std::string out = "{\"counters\": {";
  out += counters;
  out += "}, \"gauges\": {";
  out += gauges;
  out += "}, \"histograms\": {";
  out += histograms;
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never dtor'd
  return *instance;
}

}  // namespace pmpl::runtime
