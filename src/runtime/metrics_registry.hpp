#pragma once
/// \file metrics_registry.hpp
/// Process-wide registry of named counters, gauges and histograms.
///
/// The repo's stat structs (WorkerStats, FaultMetrics, WsResult phase
/// counters, WorkCounts) each grew up as ad-hoc parallel bookkeeping; this
/// registry is the single sink they publish into, and the flat metrics
/// JSON snapshot (`--metrics`, BENCH_*.json "metrics" objects) is its
/// serialization. Publishing helpers live next to the structs they
/// publish (fault.hpp, ws_engine.hpp, loadbal/metrics.hpp, work_units.hpp)
/// so layering stays intact; the registry itself knows nothing about them.
///
/// Concurrency: instrument creation takes a mutex (rare); updates are
/// lock-free atomics, so counters may be bumped from scheduler workers.
/// Snapshots are deterministic: instruments serialize sorted by name, and
/// a fixed-seed run that publishes only deterministic quantities (DES
/// replays, op counts) produces a byte-identical snapshot.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pmpl::runtime {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (seconds, ratios, sizes).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log2-bucketed histogram of non-negative samples. Bucket i counts
/// samples in [2^(i-1), 2^i) (bucket 0: [0, 1)), over a value scaled by
/// the caller (e.g. seconds -> microseconds) so the 64 buckets span any
/// practical range. Lock-free observe; sum/count exact, quantiles coarse —
/// enough for "where did the time go" without a full reservoir.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double value) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    // Atomic double sum via CAS (observe rate is per-region, not per-op).
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  static std::size_t bucket_of(double value) noexcept {
    if (!(value >= 1.0)) return 0;  // negatives and NaN land in bucket 0
    std::size_t b = 1;
    double hi = 2.0;
    while (b + 1 < kBuckets && value >= hi) {
      hi *= 2.0;
      ++b;
    }
    return b;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Named instrument registry. Instruments are created on first use and
/// live for the registry's lifetime (references stay valid). A name is
/// one kind of instrument for the registry's lifetime; asking for the
/// same name as a different kind throws std::logic_error (catching the
/// "parallel bookkeeping" bug this layer exists to end).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Convenience forms for one-shot publishing.
  void add(const std::string& name, std::uint64_t delta) {
    counter(name).add(delta);
  }
  void set(const std::string& name, double value) { gauge(name).set(value); }
  void observe(const std::string& name, double value) {
    histogram(name).observe(value);
  }

  /// Flat JSON snapshot, deterministic (sorted by name):
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Histograms serialize count/sum plus the non-empty buckets.
  std::string to_json() const;

  /// Drop every instrument (tests and per-run benches).
  void reset();

  /// The process-wide default registry most call sites publish into.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace pmpl::runtime
