#include "runtime/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

namespace pmpl::runtime {

namespace {

/// Who am I? Set once per worker thread; external threads keep {nullptr}.
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local int tls_worker = -1;

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// xorshift64*: tiny per-worker victim-selection stream (no allocation,
/// no shared state).
inline std::uint64_t next_rand(std::uint64_t& s) noexcept {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1Dull;
}

inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z ? z : 1;  // xorshift state must be nonzero
}

constexpr int kSpinIters = 64;    ///< pause-loop iterations before yielding
constexpr int kYieldIters = 16;   ///< yields before parking

}  // namespace

Scheduler::Scheduler(std::size_t threads, SchedulerOptions options)
    : options_(options) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w)
    workers_.push_back(std::make_unique<Worker>());
  for (std::size_t w = 0; w < n; ++w)
    workers_[w]->thread =
        std::thread([this, w] { worker_loop(static_cast<std::uint32_t>(w)); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard lock(park_mutex_);
    stop_.store(true, std::memory_order_seq_cst);
  }
  park_cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

int Scheduler::current_worker() const noexcept {
  return tls_scheduler == this ? tls_worker : -1;
}

void Scheduler::wake_all() {
  if (parked_.load(std::memory_order_seq_cst) > 0 ||
      waiters_.load(std::memory_order_seq_cst) > 0) {
    // Taking the mutex (even empty) closes the race with a worker that has
    // registered in parked_ but not yet entered the condition wait.
    std::lock_guard lock(park_mutex_);
    park_cv_.notify_all();
  }
}

void Scheduler::enqueue_to(std::uint32_t w, Task* task) {
  Worker& target = *workers_[w];
  {
    std::lock_guard lock(target.inbox_mutex);
    target.inbox.push_back(task);
    target.inbox_size.store(static_cast<std::int64_t>(target.inbox.size()),
                            std::memory_order_seq_cst);
  }
  pending_.fetch_add(1, std::memory_order_seq_cst);
  wake_all();
}

void Scheduler::submit(std::function<void()> fn, TaskGroup* group) {
  if (group) group->outstanding_.fetch_add(1, std::memory_order_seq_cst);
  Task* task = new Task{std::move(fn), group};
  const int self = current_worker();
  if (self >= 0) {
    workers_[static_cast<std::size_t>(self)]->deque.push(task);
    pending_.fetch_add(1, std::memory_order_seq_cst);
    wake_all();
  } else {
    const std::uint32_t target =
        next_inbox_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<std::uint32_t>(size());
    enqueue_to(target, task);
  }
}

void Scheduler::submit_to(std::uint32_t worker, std::function<void()> fn,
                          TaskGroup* group) {
  assert(worker < size());
  if (group) group->outstanding_.fetch_add(1, std::memory_order_seq_cst);
  Task* task = new Task{std::move(fn), group};
  if (current_worker() == static_cast<int>(worker)) {
    workers_[worker]->deque.push(task);
    pending_.fetch_add(1, std::memory_order_seq_cst);
    wake_all();
  } else {
    enqueue_to(worker, task);
  }
}

void Scheduler::run_task(Task* task, Worker* self) {
  TaskGroup* group = task->group;
  TraceBuffer* const trace = self ? self->trace : nullptr;
  // A cancelled group's queued tasks are dropped, not executed: cancelled
  // waves drain at pointer speed, which bounds the overrun of a deadline.
  if (group && group->cancel_ && group->cancel_->stop_requested()) {
    if (trace) trace->instant_at("task_cancelled", options_.tracer->now_s());
    group->skipped_.fetch_add(1, std::memory_order_acq_rel);
    delete task;
    if (group->outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1)
      wake_all();
    return;
  }
  if (trace) trace->begin_at("task", options_.tracer->now_s());
  try {
    task->fn();
  } catch (...) {
    // Never let a task exception unwind the worker loop (std::terminate).
    // Grouped: latched on the group, rethrown at its join. Ungrouped:
    // latched on the scheduler for take_orphan_error().
    if (group) {
      group->store_error(std::current_exception());
    } else {
      std::lock_guard lock(orphan_mutex_);
      if (!orphan_error_) orphan_error_ = std::current_exception();
    }
  }
  if (trace) trace->end_at("task", options_.tracer->now_s());
  delete task;
  if (group &&
      group->outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Last task of the wave: the group may be a stack object about to be
    // destroyed by its waiter, so only scheduler members are touched here.
    wake_all();
  }
}

Scheduler::Task* Scheduler::try_steal(std::uint32_t w, std::uint32_t victim) {
  Worker& v = *workers_[victim];
  Worker& self = *workers_[w];
  Task* first = nullptr;
  if (v.deque.steal(first)) {
    // Batched half-steal: grab up to half the victim's remaining queue.
    // steal() hands out the victim's oldest tasks in order; re-pushing the
    // extras in reverse makes our own LIFO pops run them in that same
    // (victim-FIFO) order.
    const std::size_t want = std::min<std::size_t>(
        v.deque.size_approx() / 2, options_.steal_batch_max);
    std::vector<Task*> extras;
    extras.reserve(want);
    Task* t = nullptr;
    while (extras.size() < want && v.deque.steal(t)) extras.push_back(t);
    for (auto it = extras.rbegin(); it != extras.rend(); ++it)
      self.deque.push(*it);
    return first;
  }
  if (v.inbox_size.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(v.inbox_mutex);
    if (!v.inbox.empty()) {
      Task* t = v.inbox.front();
      v.inbox.pop_front();
      v.inbox_size.store(static_cast<std::int64_t>(v.inbox.size()),
                         std::memory_order_seq_cst);
      return t;
    }
  }
  return nullptr;
}

Scheduler::Task* Scheduler::find_task(std::uint32_t w,
                                      std::uint64_t& rng_state) {
  Worker& self = *workers_[w];
  Task* task = nullptr;

  // 1. Own deque: the lock-free hot path.
  if (self.deque.pop(task)) {
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    self.executed_local.fetch_add(1, std::memory_order_relaxed);
    return task;
  }

  // 2. Own inbox: bulk-drain into the deque (reversed, so LIFO pops run
  // the tasks in arrival order), then pop.
  if (self.inbox_size.load(std::memory_order_seq_cst) > 0) {
    std::vector<Task*> drained;
    {
      std::lock_guard lock(self.inbox_mutex);
      drained.assign(self.inbox.begin(), self.inbox.end());
      self.inbox.clear();
      self.inbox_size.store(0, std::memory_order_seq_cst);
    }
    for (auto it = drained.rbegin(); it != drained.rend(); ++it)
      self.deque.push(*it);
    if (self.deque.pop(task)) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      self.executed_local.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }

  // 3. Steal: a few random probes, then one deterministic sweep so that a
  // lone runnable task is always discovered, not just with probability.
  const auto n = static_cast<std::uint32_t>(size());
  if (!options_.steal || n == 1) return nullptr;
  const std::uint32_t random_probes = 2 * n;
  for (std::uint32_t i = 0; i < random_probes; ++i) {
    const auto victim =
        static_cast<std::uint32_t>(next_rand(rng_state) % n);
    if (victim == w) continue;
    self.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    if ((task = try_steal(w, victim))) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      self.executed_stolen.fetch_add(1, std::memory_order_relaxed);
      if (self.trace)
        self.trace->instant_at("steal", options_.tracer->now_s(), victim);
      return task;
    }
    self.steal_failures.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::uint32_t victim = 0; victim < n; ++victim) {
    if (victim == w) continue;
    self.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    if ((task = try_steal(w, victim))) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      self.executed_stolen.fetch_add(1, std::memory_order_relaxed);
      if (self.trace)
        self.trace->instant_at("steal", options_.tracer->now_s(), victim);
      return task;
    }
    self.steal_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

void Scheduler::worker_loop(std::uint32_t w) {
  tls_scheduler = this;
  tls_worker = static_cast<int>(w);
  Worker& self = *workers_[w];
  if (options_.tracer) {
    char track_name[32];
    std::snprintf(track_name, sizeof track_name, "worker %u", w);
    self.trace = options_.tracer->thread_track(track_name);
  }
  std::uint64_t rng_state = mix_seed(options_.seed, w);
  int idle = 0;
  for (;;) {
    Task* task = find_task(w, rng_state);
    if (task) {
      run_task(task, &self);
      idle = 0;
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst) &&
        self.deque.empty_approx() &&
        self.inbox_size.load(std::memory_order_seq_cst) == 0 &&
        (!options_.steal ||
         pending_.load(std::memory_order_seq_cst) <= 0))
      return;
    // Exponential idle backoff: spin, then yield, then park. Parking never
    // races a wakeup: parked_ is registered under park_mutex_ and the
    // submit side takes the same mutex before notifying.
    ++idle;
    if (idle <= kSpinIters) {
      cpu_relax();
      continue;
    }
    if (idle <= kSpinIters + kYieldIters) {
      std::this_thread::yield();
      continue;
    }
    {
      std::unique_lock lock(park_mutex_);
      parked_.fetch_add(1, std::memory_order_seq_cst);
      const auto runnable = [&] {
        return stop_.load(std::memory_order_seq_cst) ||
               self.inbox_size.load(std::memory_order_seq_cst) > 0 ||
               (options_.steal &&
                pending_.load(std::memory_order_seq_cst) > 0);
      };
      if (!runnable()) {
        if (self.trace) self.trace->begin_at("park", options_.tracer->now_s());
        const auto start = std::chrono::steady_clock::now();
        park_cv_.wait(lock, runnable);
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        self.park_ns.fetch_add(static_cast<std::uint64_t>(ns),
                               std::memory_order_relaxed);
        if (self.trace) self.trace->end_at("park", options_.tracer->now_s());
      }
      parked_.fetch_sub(1, std::memory_order_seq_cst);
    }
    idle = 0;
  }
}

void Scheduler::report_stall(std::int64_t outstanding) {
  if (options_.on_watchdog) {
    options_.on_watchdog(outstanding);
    return;
  }
  std::fprintf(stderr,
               "[pmpl] scheduler watchdog: wait() stalled for %.1fs with "
               "%lld task(s) outstanding\n",
               options_.watchdog_s, static_cast<long long>(outstanding));
}

void Scheduler::wait(TaskGroup& group) {
  const bool watch = options_.watchdog_s > 0.0;
  const int self = current_worker();
  if (self >= 0) {
    // Called from one of our own workers: help execute instead of blocking
    // so that recursive submission (nested parallel_for) cannot deadlock.
    const auto w = static_cast<std::uint32_t>(self);
    std::uint64_t rng_state =
        mix_seed(options_.seed, 0x5157ull + static_cast<std::uint64_t>(w));
    int idle = 0;
    auto last_progress = std::chrono::steady_clock::now();
    std::int64_t last_outstanding =
        group.outstanding_.load(std::memory_order_seq_cst);
    while (!group.finished()) {
      Task* task = find_task(w, rng_state);
      if (task) {
        run_task(task, workers_[w].get());
        idle = 0;
        if (watch) last_progress = std::chrono::steady_clock::now();
        continue;
      }
      // The group's remaining tasks are running on other workers.
      if (++idle <= kSpinIters)
        cpu_relax();
      else
        std::this_thread::yield();
      if (watch && idle > kSpinIters) {
        const auto now = std::chrono::steady_clock::now();
        const std::int64_t outstanding =
            group.outstanding_.load(std::memory_order_seq_cst);
        if (outstanding != last_outstanding) {
          last_outstanding = outstanding;
          last_progress = now;
        } else if (std::chrono::duration<double>(now - last_progress)
                       .count() >= options_.watchdog_s) {
          report_stall(outstanding);
          last_progress = now;
        }
      }
    }
  } else if (!group.finished()) {
    std::unique_lock lock(park_mutex_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    const auto done = [&] { return group.finished(); };
    if (!watch) {
      park_cv_.wait(lock, done);
    } else {
      const auto interval = std::chrono::duration<double>(options_.watchdog_s);
      std::int64_t last_outstanding =
          group.outstanding_.load(std::memory_order_seq_cst);
      while (!park_cv_.wait_for(lock, interval, done)) {
        const std::int64_t outstanding =
            group.outstanding_.load(std::memory_order_seq_cst);
        if (outstanding == last_outstanding) {
          lock.unlock();  // never call user code under the park mutex
          report_stall(outstanding);
          lock.lock();
        }
        last_outstanding = outstanding;
      }
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (group.has_error())
    if (auto e = group.take_error()) std::rethrow_exception(e);
}

std::exception_ptr Scheduler::take_orphan_error() {
  std::lock_guard lock(orphan_mutex_);
  return std::exchange(orphan_error_, nullptr);
}

std::vector<WorkerCounters> Scheduler::counters() const {
  std::vector<WorkerCounters> out(size());
  for (std::size_t w = 0; w < size(); ++w) {
    const Worker& src = *workers_[w];
    WorkerCounters& dst = out[w];
    dst.executed_local = src.executed_local.load(std::memory_order_relaxed);
    dst.executed_stolen = src.executed_stolen.load(std::memory_order_relaxed);
    dst.steal_attempts = src.steal_attempts.load(std::memory_order_relaxed);
    dst.steal_failures = src.steal_failures.load(std::memory_order_relaxed);
    dst.park_s =
        static_cast<double>(src.park_ns.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return out;
}

void parallel_for(Scheduler& sched, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) chunk = std::max<std::size_t>(1, n / (sched.size() * 8));
  TaskGroup group;
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    sched.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }, &group);
  }
  sched.wait(group);
}

bool parallel_for_cancellable(Scheduler& sched, std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancelToken& cancel, std::size_t chunk) {
  if (n == 0) return true;
  if (chunk == 0) chunk = std::max<std::size_t>(1, n / (sched.size() * 8));
  TaskGroup group(&cancel);
  std::atomic<bool> cut_short{false};
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    sched.submit([lo, hi, &fn, &cancel, &cut_short] {
      for (std::size_t i = lo; i < hi; ++i) {
        if (cancel.stop_requested()) {
          cut_short.store(true, std::memory_order_release);
          return;
        }
        fn(i);
      }
    }, &group);
  }
  sched.wait(group);
  return group.skipped() == 0 && !cut_short.load(std::memory_order_acquire);
}

}  // namespace pmpl::runtime
